// Quickstart: one pass through all five phases of the I/O knowledge cycle.
//
//   $ ./build/examples/quickstart
//
// 1. Generation  — run an IOR benchmark on the simulated cluster (via the
//                  JUBE-style runner, which lays out a workspace on disk).
// 2. Extraction  — parse the benchmark output plus system/file-system
//                  snapshots into a knowledge object.
// 3. Persistence — store the object in the relational knowledge database.
// 4. Analysis    — render the knowledge view and an iteration chart.
// 5. Usage       — derive a new benchmark configuration from the stored one.
#include <cstdio>
#include <filesystem>

#include "src/analysis/charts.hpp"
#include "src/cycle/cycle.hpp"
#include "src/usage/config_generator.hpp"

int main() {
  std::filesystem::remove_all("example_artifacts/quickstart");

  // The simulated environment: a FUCHS-CSC-like cluster with a BeeGFS-like
  // parallel file system (see DESIGN.md for the substitution rationale).
  iokc::cycle::SimEnvironment env;

  // The cycle facade owns workspace, database, and explorer.
  iokc::cycle::KnowledgeCycle cycle(
      env, "example_artifacts/quickstart",
      iokc::persist::RepoTarget::parse(
          "file:example_artifacts/quickstart/knowledge.db"));

  // Phase 1: generation.
  std::printf("[1/5] generating: running IOR on the simulated cluster...\n");
  cycle.generate_command(
      "quickstart",
      "ior -a mpiio -b 4m -t 2m -s 10 -F -C -e -i 3 -N 40 -o /scratch/qs -k");

  // Phases 2 + 3: extraction + persistence.
  std::printf("[2/5] extracting benchmark output from the workspace...\n");
  const iokc::extract::ExtractionResult extracted = cycle.extract_and_persist();
  std::printf("[3/5] persisted %zu knowledge object(s) to the database\n",
              extracted.total());

  // Phase 4: analysis.
  const std::int64_t id = cycle.stored_knowledge_ids().front();
  std::printf("[4/5] analysis — the knowledge viewer:\n\n%s\n",
              cycle.explorer().render_knowledge_view(id).c_str());
  const iokc::analysis::Chart chart =
      cycle.explorer().iteration_chart(id, "bw_mib");
  iokc::analysis::save_svg("example_artifacts/quickstart/iterations.svg",
                           iokc::analysis::render_svg_line(chart));
  std::printf("%s\n", iokc::analysis::render_ascii_bar(chart).c_str());

  // Phase 5: usage — knowledge begets knowledge.
  const auto commands = cycle.repository().list_commands();
  iokc::usage::IorOverrides overrides;
  overrides.transfer_size = 4ull << 20;
  overrides.test_file = "/scratch/qs2";
  const std::string next =
      iokc::usage::create_configuration(commands.front().second, overrides);
  std::printf("[5/5] usage — 'create configuration' produced the next run:\n"
              "      %s\n\n",
              next.c_str());

  cycle.save();
  std::printf("database:  example_artifacts/quickstart/knowledge.db\n");
  std::printf("chart:     example_artifacts/quickstart/iterations.svg\n");
  std::printf("workspace: example_artifacts/quickstart/quickstart/\n");
  return 0;
}
