// An I/O tuning campaign: the offline-optimization use case of Section IV.
// A JUBE sweep populates the knowledge base with runs across APIs, transfer
// sizes, and layouts; the recommendation module then advises a user whose
// application matches the *worst* pattern, and the prediction module
// estimates the bandwidth of a configuration that was never run.
#include <cstdio>
#include <filesystem>

#include "src/cycle/cycle.hpp"
#include "src/usage/prediction.hpp"
#include "src/usage/recommendation.hpp"

int main() {
  std::filesystem::remove_all("example_artifacts/tuning");
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, "example_artifacts/tuning",
      iokc::persist::RepoTarget::parse("mem:"));

  // Populate the knowledge base with a 2-dimensional sweep (the "training
  // set" role the paper assigns to systematic benchmarking).
  std::printf("running the benchmarking campaign (api x transfer sweep)...\n");
  iokc::jube::JubeBenchmarkConfig campaign;
  campaign.name = "campaign";
  campaign.space.add_csv("api", "POSIX,MPIIO");
  campaign.space.add_csv("transfer", "64k,256k,1m,2m");
  campaign.steps.push_back(iokc::jube::JubeStep{
      "run", "ior -a $api -b 4m -t $transfer -s 6 -F -C -i 1 -N 40 "
             "-o /scratch/camp_$api$transfer"});
  cycle.generate(campaign);
  cycle.extract_and_persist();
  std::printf("knowledge base now holds %zu runs\n\n",
              cycle.repository().knowledge_ids().size());

  // A user shows up with the worst configuration of the space.
  const iokc::gen::IorConfig user_config = iokc::gen::parse_ior_command(
      "ior -a POSIX -b 4m -t 64k -s 6 -F -C -i 1 -N 40 -o /scratch/mine");
  std::printf("user's configuration: %s\n\n",
              user_config.render_command().c_str());

  // Recommendation module (offline optimization).
  const iokc::usage::RecommendationReport recommendations =
      iokc::usage::recommend(cycle.repository(), user_config);
  std::printf("%s\n", recommendations.render().c_str());

  // Performance prediction: linear regression + k-NN over the knowledge
  // base, queried for a configuration that was never benchmarked (512k).
  const auto samples =
      iokc::usage::build_training_set(cycle.repository(), "write");
  std::printf("training set: %zu samples\n", samples.size());
  const iokc::usage::BandwidthPredictor predictor =
      iokc::usage::BandwidthPredictor::fit(samples);
  const iokc::usage::ConfigFeatures query =
      iokc::usage::ConfigFeatures::from_command(
          "ior -a MPIIO -b 4m -t 512k -s 6 -F -C -i 1 -N 40 -o /scratch/q");
  std::printf("prediction for unseen '-a MPIIO -t 512k':\n");
  std::printf("  linear regression: %8.1f MiB/s\n", predictor.predict(query));
  std::printf("  3-NN estimate:     %8.1f MiB/s\n",
              iokc::usage::knn_predict(samples, query, 3));

  // Ground truth: actually run it and close the loop.
  cycle.generate_command(
      "truth", "ior -a MPIIO -b 4m -t 512k -s 6 -F -C -w -i 1 -N 40 "
               "-o /scratch/truth");
  cycle.extract_and_persist();
  const iokc::knowledge::Knowledge truth = cycle.repository().load_knowledge(
      cycle.stored_knowledge_ids().back());
  std::printf("  measured:          %8.1f MiB/s\n",
              truth.find_summary("write")->mean_bw_mib);
  return 0;
}
