// Workload generation and replay — the fifth-phase use case "the knowledge
// obtained ... can be used to generate ... synthetic workload for simulation
// and thus drive the simulation".
//
// A HACC-IO checkpoint run produces knowledge; an IOR run produces more; a
// synthetic trace is generated from the IOR knowledge object's pattern and
// replayed against the simulator, closing the loop knowledge -> workload ->
// new measurement.
#include <cstdio>
#include <filesystem>

#include "src/cycle/cycle.hpp"
#include "src/cycle/replay.hpp"
#include "src/usage/workload_generator.hpp"

int main() {
  std::filesystem::remove_all("example_artifacts/replay");
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, "example_artifacts/replay",
      iokc::persist::RepoTarget::parse("mem:"));

  // Knowledge sources: a checkpoint/restart kernel and an IOR pattern.
  std::printf("generating knowledge (HACC-IO checkpoint + IOR pattern)...\n");
  cycle.generate_command(
      "hacc", "hacc_io -p 2000000 -a MPIIO -m file-per-process -i 1 -N 40 "
              "-o /scratch/hacc/part");
  cycle.generate_command(
      "ior", "ior -a posix -b 4m -t 1m -s 8 -F -C -i 1 -N 40 -o /scratch/wr "
             "-k");
  cycle.extract_and_persist();

  for (const std::int64_t id : cycle.stored_knowledge_ids()) {
    const iokc::knowledge::Knowledge k = cycle.repository().load_knowledge(id);
    const auto* write = k.find_summary("write");
    std::printf("  #%lld %-8s write %8.1f MiB/s\n",
                static_cast<long long>(id), k.benchmark.c_str(),
                write != nullptr ? write->mean_bw_mib : 0.0);
  }

  // Generate a synthetic trace from the IOR knowledge object: same volume
  // and file layout, lognormally jittered request sizes.
  const iokc::knowledge::Knowledge source = cycle.repository().load_knowledge(
      cycle.stored_knowledge_ids().back());
  const iokc::usage::SyntheticTrace trace =
      iokc::usage::generate_trace(source, /*seed=*/2026);
  std::printf("\nsynthetic trace: %zu ops, %.1f MiB written, %.1f MiB read\n",
              trace.ops.size(),
              static_cast<double>(trace.total_bytes_written()) / (1 << 20),
              static_cast<double>(trace.total_bytes_read()) / (1 << 20));

  // Replay it on the simulator (driving the simulation with generated load).
  const iokc::cycle::ReplayResult replay =
      iokc::cycle::replay_trace(env, trace);
  std::printf("replay: %.2f s simulated, write %.1f MiB/s, read %.1f MiB/s, "
              "%llu ops executed\n",
              replay.duration_sec, replay.write_bw_mib, replay.read_bw_mib,
              static_cast<unsigned long long>(replay.ops_executed));

  // Derived configurations for the next campaign.
  std::printf("\nderived configurations for the next campaign:\n");
  for (const iokc::gen::IorConfig& config :
       iokc::usage::generate_similar_configs(source, 4, /*seed=*/7)) {
    std::printf("  %s\n", config.render_command().c_str());
  }
  return 0;
}
