// New-knowledge generation — the paper's Example I, plus the JUBE sweep the
// outlook promises ("can be extended to generate JUBE configuration
// additionally"). A stored command is loaded, modified, re-run; then a whole
// parameter sweep is generated from it and pushed through the cycle.
#include <cstdio>
#include <filesystem>

#include "src/cycle/cycle.hpp"
#include "src/usage/config_generator.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

int main() {
  std::filesystem::remove_all("example_artifacts/knowgen");
  iokc::cycle::SimEnvironment env;
  iokc::cycle::KnowledgeCycle cycle(
      env, "example_artifacts/knowgen",
      iokc::persist::RepoTarget::parse("mem:"));

  // Seed knowledge: the paper's command (reduced to 2 iterations for speed).
  std::printf("seeding the knowledge base with the paper's command...\n");
  cycle.generate_command(
      "seed", "ior -a mpiio -b 4m -t 2m -s 10 -F -C -e -i 2 -N 80 "
              "-o /scratch/fuchs/zhuz/test80 -k");
  cycle.extract_and_persist();

  // Example I: select stored command -> modify -> "create configuration".
  const auto commands = cycle.repository().list_commands();
  std::printf("stored command: %s\n", commands.front().second.c_str());
  iokc::usage::IorOverrides overrides;
  overrides.num_tasks = 40;
  overrides.test_file = "/scratch/fuchs/zhuz/test40";
  const std::string modified =
      iokc::usage::create_configuration(commands.front().second, overrides);
  std::printf("created configuration: %s\n\n", modified.c_str());
  cycle.generate_command("modified", modified);
  cycle.extract_and_persist();

  // Outlook: generate a JUBE configuration sweeping the modified command.
  const iokc::jube::JubeBenchmarkConfig sweep =
      iokc::usage::generate_jube_config(
          "transfer-sweep", modified,
          {{"-t", iokc::usage::SweepDimension{"transfer",
                                              {"512k", "1m", "2m"}}}});
  std::printf("generated JUBE configuration:\n%s\n", sweep.to_xml().c_str());
  cycle.generate(sweep);
  cycle.extract_and_persist();

  // The knowledge base after three turns of the cycle.
  iokc::util::TextTable table;
  table.set_header({"id", "command", "write MiB/s"});
  table.set_alignment({iokc::util::Align::kRight, iokc::util::Align::kLeft,
                       iokc::util::Align::kRight});
  for (const std::int64_t id : cycle.repository().knowledge_ids()) {
    const iokc::knowledge::Knowledge k = cycle.repository().load_knowledge(id);
    const auto* write = k.find_summary("write");
    table.add_row({std::to_string(id), k.command,
                   iokc::util::format_double(
                       write != nullptr ? write->mean_bw_mib : 0.0, 1)});
  }
  std::printf("knowledge base after the loop:\n%s", table.render().c_str());
  std::printf("\nthe cycle \"can be repeated as often as required\" — each "
              "row here is input\nfor the next create-configuration turn.\n");
  return 0;
}
