// Anomaly detection — the paper's Example II, end to end.
//
// Scenario A: a competing job bursts onto the shared storage back-end during
//             one iteration of an IOR run; the per-iteration visualization
//             and the statistical detectors expose it.
// Scenario B: a silently degraded node drags down the IO500 boundary test
//             cases; the Liem-et-al. bounding box and cross-run comparison
//             identify the likely cause ("a broken node").
#include <cstdio>
#include <filesystem>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/bounding_box.hpp"
#include "src/analysis/charts.hpp"
#include "src/cycle/cycle.hpp"

namespace {

void scenario_interference() {
  std::printf("--- scenario A: interference burst during iteration 2 ---\n");
  iokc::cycle::SimEnvironment env;
  // Iterations are ~5.3 s each here; the burst covers iteration 2's write.
  env.interference().add_window(
      {5.4, 13.0, 0.6, "competing I/O-heavy job on /scratch"});

  iokc::cycle::KnowledgeCycle cycle(
      env, "example_artifacts/anomaly/interference",
      iokc::persist::RepoTarget::parse("mem:"));
  cycle.generate_command(
      "burst", "ior -a mpiio -b 4m -t 2m -s 12 -F -C -e -i 4 -N 80 "
               "-o /scratch/an -k");
  cycle.extract_and_persist();

  const std::int64_t id = cycle.stored_knowledge_ids().front();
  std::printf("%s\n", cycle.explorer().render_iteration_details(id).c_str());

  const iokc::knowledge::Knowledge k = cycle.repository().load_knowledge(id);
  const iokc::analysis::AnomalyReport report =
      iokc::analysis::detect_in_knowledge(k);
  std::printf("detectors say:\n%s\n", report.render().c_str());

  iokc::analysis::save_svg(
      "example_artifacts/anomaly/iterations.svg",
      iokc::analysis::render_svg_line(
          cycle.explorer().iteration_chart(id, "bw_mib")));
}

void scenario_degraded_node() {
  std::printf("--- scenario B: degraded node vs the IO500 bounding box ---\n");
  const char* command =
      "io500 -N 40 -o /scratch/io500 --easy-bytes 64m --hard-bytes 4m "
      "--easy-files 100 --hard-files 50";

  auto run = [command](bool degraded) {
    iokc::cycle::SimEnvironmentConfig config;
    config.cluster.degraded_rate_fraction = 0.05;
    iokc::cycle::SimEnvironment env(config);
    if (degraded) {
      env.cluster().set_health(1, iokc::sim::NodeHealth::kDegraded);
    }
    iokc::cycle::KnowledgeCycle cycle(
        env,
        std::string("example_artifacts/anomaly/io500_") +
            (degraded ? "degraded" : "healthy"),
        iokc::persist::RepoTarget::parse("mem:"));
    cycle.generate_command("io500", command);
    cycle.extract_and_persist();
    return cycle.repository().load_io500(cycle.stored_io500_ids().front());
  };

  const iokc::knowledge::Io500Knowledge healthy = run(false);
  const iokc::knowledge::Io500Knowledge degraded = run(true);

  // The expectation box comes from the healthy system...
  const iokc::analysis::BoundingBox2D box =
      iokc::analysis::make_bounding_box(healthy);
  // ...and the degraded run's "application-level" numbers land outside it.
  const double app_bw = degraded.find_testcase("ior-easy-write")->value;
  const double app_md = degraded.find_testcase("mdtest-easy-write")->value;
  const iokc::analysis::BoxPlacement placement =
      iokc::analysis::place_application(box, app_bw, app_md);
  std::printf("%s\n",
              iokc::analysis::render_bounding_box(box, &placement).c_str());

  const iokc::analysis::AnomalyReport comparison =
      iokc::analysis::compare_io500_runs(healthy, degraded, 0.25);
  std::printf("cross-run comparison:\n%s\n", comparison.render().c_str());
  std::printf("=> ior-easy collapses while ior-hard barely moves: the "
              "bottleneck sits on a\n   single client node, not the storage "
              "back-end — \"a broken node\".\n\n");
}

}  // namespace

int main() {
  std::filesystem::remove_all("example_artifacts/anomaly");
  scenario_interference();
  scenario_degraded_node();
  return 0;
}
