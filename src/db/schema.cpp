#include "src/db/schema.hpp"

#include "src/util/error.hpp"

namespace iokc::db {

std::size_t TableSchema::column_index(const std::string& column) const {
  if (const auto index = find_column(column)) {
    return *index;
  }
  throw DbError("table '" + name + "' has no column '" + column + "'");
}

std::optional<std::size_t> TableSchema::find_column(
    const std::string& column) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == column) {
      return i;
    }
  }
  return std::nullopt;
}

std::optional<std::size_t> TableSchema::primary_key_index() const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].primary_key) {
      return i;
    }
  }
  return std::nullopt;
}

std::string TableSchema::render_create() const {
  std::string out = "CREATE TABLE " + name + " (";
  for (std::size_t i = 0; i < columns.size(); ++i) {
    const ColumnDef& column = columns[i];
    if (i != 0) {
      out += ", ";
    }
    out += column.name + " " + to_string(column.type);
    if (column.primary_key) {
      out += " PRIMARY KEY";
    }
    if (column.not_null) {
      out += " NOT NULL";
    }
    if (column.references.has_value()) {
      out += " REFERENCES " + column.references->table + "(" +
             column.references->column + ")";
    }
  }
  out += ");";
  return out;
}

}  // namespace iokc::db
