#include "src/db/planner.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/util/error.hpp"

namespace iokc::db {

namespace {

/// One pushable conjunct: table column `slot` <op> `value`, already coerced
/// to the column's type.
struct Conjunct {
  std::size_t slot = 0;
  Expr::Op op = Expr::Op::kEq;  // kEq, kLt, kLe, kGt, kGe
  Value value;
};

/// Resolves `name` to a column slot of `table`, or nullopt when it does not
/// name one unambiguously ("t.col" with the wrong table, or a bare name the
/// join partner also has).
std::optional<std::size_t> resolve_slot(const Table& table, const Table* other,
                                        const std::string& name) {
  std::string bare = name;
  const std::size_t dot = name.find('.');
  if (dot != std::string::npos) {
    if (name.substr(0, dot) != table.schema().name) {
      return std::nullopt;
    }
    bare = name.substr(dot + 1);
  } else if (other != nullptr && other->schema().find_column(bare)) {
    // A bare name both tables carry is ambiguous; evaluation will throw, so
    // pushing it down would mask the error with an empty candidate set.
    return std::nullopt;
  }
  return table.schema().find_column(bare);
}

Expr::Op flip(Expr::Op op) {
  switch (op) {
    case Expr::Op::kLt: return Expr::Op::kGt;
    case Expr::Op::kLe: return Expr::Op::kGe;
    case Expr::Op::kGt: return Expr::Op::kLt;
    case Expr::Op::kGe: return Expr::Op::kLe;
    default: return op;  // kEq is symmetric
  }
}

/// The constant an expression side evaluates to without a row: a literal or
/// a bound parameter. nullptr otherwise.
const Value* constant_of(const Expr* expr, const std::vector<Value>& params) {
  if (expr == nullptr) {
    return nullptr;
  }
  if (expr->kind == Expr::Kind::kLiteral) {
    return &expr->literal;
  }
  if (expr->kind == Expr::Kind::kParam && expr->param_index < params.size()) {
    return &params[expr->param_index];
  }
  return nullptr;
}

/// Collects pushable conjuncts from the top-level AND tree. Conjuncts that
/// fail to coerce to the column type are dropped (they stay in the residual
/// filter, so the plan remains a superset).
void collect_conjuncts(const Expr* expr, const Table& table,
                       const Table* other, const std::vector<Value>& params,
                       std::vector<Conjunct>& out) {
  if (expr == nullptr || expr->kind != Expr::Kind::kBinary) {
    return;
  }
  if (expr->op == Expr::Op::kAnd) {
    collect_conjuncts(expr->lhs.get(), table, other, params, out);
    collect_conjuncts(expr->rhs.get(), table, other, params, out);
    return;
  }
  if (expr->op != Expr::Op::kEq && expr->op != Expr::Op::kLt &&
      expr->op != Expr::Op::kLe && expr->op != Expr::Op::kGt &&
      expr->op != Expr::Op::kGe) {
    return;
  }
  const Expr* column_side = expr->lhs.get();
  const Value* constant = constant_of(expr->rhs.get(), params);
  Expr::Op op = expr->op;
  if (constant == nullptr) {
    // Try the flipped orientation: `5 < col` bounds col from below.
    column_side = expr->rhs.get();
    constant = constant_of(expr->lhs.get(), params);
    op = flip(op);
  }
  if (constant == nullptr || column_side == nullptr ||
      column_side->kind != Expr::Kind::kColumn) {
    return;
  }
  const auto slot = resolve_slot(table, other, column_side->column);
  if (!slot.has_value()) {
    return;
  }
  // Range bounds with NULL never match anything (three-valued logic), and
  // NULL sorts below every value in the index, so pushing one would change
  // the scan window semantics. Equality-with-NULL is well-defined (matches
  // NULL cells) and stays.
  if (constant->is_null() && op != Expr::Op::kEq) {
    return;
  }
  Conjunct conjunct;
  conjunct.slot = *slot;
  conjunct.op = op;
  try {
    conjunct.value =
        constant->coerce(table.schema().columns[*slot].type);
  } catch (const DbError&) {
    return;  // incomparable constant; leave it to the residual filter
  }
  out.push_back(std::move(conjunct));
}

struct Bound {
  Value value;
  bool inclusive = true;
};

/// Per-slot predicate summary assembled from the conjuncts.
struct SlotPredicates {
  std::vector<std::optional<Value>> eq;     // slot -> equality constant
  std::vector<std::optional<Bound>> lower;  // slot -> lower range bound
  std::vector<std::optional<Bound>> upper;  // slot -> upper range bound
};

SlotPredicates summarize(const std::vector<Conjunct>& conjuncts,
                         std::size_t columns) {
  SlotPredicates predicates;
  predicates.eq.resize(columns);
  predicates.lower.resize(columns);
  predicates.upper.resize(columns);
  for (const Conjunct& conjunct : conjuncts) {
    switch (conjunct.op) {
      case Expr::Op::kEq:
        if (!predicates.eq[conjunct.slot].has_value()) {
          predicates.eq[conjunct.slot] = conjunct.value;
        }
        break;
      case Expr::Op::kGt:
      case Expr::Op::kGe:
        if (!predicates.lower[conjunct.slot].has_value()) {
          predicates.lower[conjunct.slot] =
              Bound{conjunct.value, conjunct.op == Expr::Op::kGe};
        }
        break;
      case Expr::Op::kLt:
      case Expr::Op::kLe:
        if (!predicates.upper[conjunct.slot].has_value()) {
          predicates.upper[conjunct.slot] =
              Bound{conjunct.value, conjunct.op == Expr::Op::kLe};
        }
        break;
      default:
        break;
    }
  }
  return predicates;
}

double log2_cost(std::size_t rows) {
  return std::log2(static_cast<double>(rows) + 1.0);
}

/// Estimated rows matching an equality over `prefix` of an index's
/// `columns`, from the distinct-full-key count: N/D for the full key,
/// widened 2x per unconstrained trailing column (full-key distincts
/// under-count prefix groups).
double prefix_estimate(std::size_t rows, std::size_t distinct,
                       std::size_t columns, std::size_t prefix) {
  const double n = static_cast<double>(rows);
  double estimate = n / static_cast<double>(std::max<std::size_t>(distinct, 1));
  for (std::size_t i = prefix; i < columns; ++i) {
    estimate *= 2.0;
  }
  return std::min(n, std::max(estimate, 1.0));
}

/// Builds the best path this index supports under `predicates`, or a path
/// with cost > `scan_cost` when unusable.
std::optional<AccessPath> plan_index(const SecondaryIndex& index,
                                     const Table& table,
                                     const SlotPredicates& predicates) {
  const std::vector<std::size_t>& slots = index.slots();
  const std::size_t rows = table.row_count();
  const std::size_t distinct = index.distinct_keys();

  // Longest equality prefix in key order.
  std::size_t prefix = 0;
  while (prefix < slots.size() &&
         predicates.eq[slots[prefix]].has_value()) {
    ++prefix;
  }

  AccessPath path;
  path.index_name = index.def().name;
  for (std::size_t i = 0; i < prefix; ++i) {
    path.key_columns.push_back(index.def().columns[i]);
    path.key_values.push_back(*predicates.eq[slots[i]]);
  }

  if (index.kind() == IndexKind::kHash) {
    // Hash answers full-key equality only.
    if (prefix != slots.size()) {
      return std::nullopt;
    }
    path.kind = AccessPath::Kind::kHashEq;
    path.estimated_rows = prefix_estimate(rows, distinct, slots.size(),
                                          slots.size());
    path.cost = 1.0 + path.estimated_rows;
    return path;
  }

  const bool has_range =
      prefix < slots.size() &&
      (predicates.lower[slots[prefix]].has_value() ||
       predicates.upper[slots[prefix]].has_value());
  if (prefix == 0 && !has_range) {
    return std::nullopt;
  }
  if (has_range) {
    path.kind = AccessPath::Kind::kOrderedRange;
    path.range_column = index.def().columns[prefix];
    if (const auto& lower = predicates.lower[slots[prefix]]) {
      path.range_lower = lower->value;
      path.range_lower_inclusive = lower->inclusive;
    }
    if (const auto& upper = predicates.upper[slots[prefix]]) {
      path.range_upper = upper->value;
      path.range_upper_inclusive = upper->inclusive;
    }
    // Fixed 25% range selectivity within the equality-prefix group.
    const double group = prefix == 0
                             ? static_cast<double>(rows)
                             : prefix_estimate(rows, distinct, slots.size(),
                                               prefix);
    path.estimated_rows = std::max(group * 0.25, 1.0);
  } else {
    path.kind = AccessPath::Kind::kOrderedEq;
    path.estimated_rows = prefix_estimate(rows, distinct, slots.size(),
                                          prefix);
  }
  path.cost = log2_cost(rows) + path.estimated_rows;
  return path;
}

}  // namespace

std::string to_string(AccessPath::Kind kind) {
  switch (kind) {
    case AccessPath::Kind::kScan: return "scan";
    case AccessPath::Kind::kHashEq: return "hash_eq";
    case AccessPath::Kind::kOrderedEq: return "ordered_eq";
    case AccessPath::Kind::kOrderedRange: return "ordered_range";
  }
  throw DbError("corrupt access-path kind");
}

std::string describe_key(const AccessPath& path) {
  std::string out;
  auto append = [&out](const std::string& term) {
    if (!out.empty()) {
      out += " AND ";
    }
    out += term;
  };
  for (std::size_t i = 0; i < path.key_columns.size(); ++i) {
    append(path.key_columns[i] + " = " + path.key_values[i].render());
  }
  if (path.kind == AccessPath::Kind::kOrderedRange) {
    if (path.range_lower.has_value()) {
      append(path.range_column +
             (path.range_lower_inclusive ? " >= " : " > ") +
             path.range_lower->render());
    }
    if (path.range_upper.has_value()) {
      append(path.range_column +
             (path.range_upper_inclusive ? " <= " : " < ") +
             path.range_upper->render());
    }
  }
  return out;
}

AccessPath choose_access(const Table& table, const Expr* where,
                         const std::vector<Value>& params,
                         const Table* other) {
  AccessPath scan;
  scan.kind = AccessPath::Kind::kScan;
  scan.cost = std::max<double>(static_cast<double>(table.row_count()), 1.0);
  scan.estimated_rows = static_cast<double>(table.row_count());
  if (where == nullptr || table.indexes().empty()) {
    return scan;
  }

  std::vector<Conjunct> conjuncts;
  collect_conjuncts(where, table, other, params, conjuncts);
  if (conjuncts.empty()) {
    return scan;
  }
  const SlotPredicates predicates =
      summarize(conjuncts, table.schema().columns.size());

  AccessPath best = scan;
  for (const SecondaryIndex& index : table.indexes()) {
    const auto path = plan_index(index, table, predicates);
    if (path.has_value() && path->cost < best.cost) {
      best = *path;
    }
  }
  return best;
}

std::vector<std::size_t> execute_access(const Table& table,
                                        const AccessPath& path) {
  if (path.kind == AccessPath::Kind::kScan) {
    std::vector<std::size_t> all(table.row_count());
    std::iota(all.begin(), all.end(), 0);
    return all;
  }
  const SecondaryIndex* index = nullptr;
  for (const SecondaryIndex& candidate : table.indexes()) {
    if (candidate.def().name == path.index_name) {
      index = &candidate;
      break;
    }
  }
  if (index == nullptr) {
    throw DbError("access path references unknown index '" + path.index_name +
                  "' on '" + table.schema().name + "'");
  }
  switch (path.kind) {
    case AccessPath::Kind::kHashEq:
      return index->equal(path.key_values);
    case AccessPath::Kind::kOrderedEq:
      if (path.key_values.size() == index->def().columns.size()) {
        return index->equal(path.key_values);
      }
      return index->prefix_scan(path.key_values, nullptr, true, nullptr,
                                true);
    case AccessPath::Kind::kOrderedRange:
      return index->prefix_scan(
          path.key_values,
          path.range_lower.has_value() ? &*path.range_lower : nullptr,
          path.range_lower_inclusive,
          path.range_upper.has_value() ? &*path.range_upper : nullptr,
          path.range_upper_inclusive);
    case AccessPath::Kind::kScan:
      break;
  }
  throw DbError("corrupt access path");
}

}  // namespace iokc::db
