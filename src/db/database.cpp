#include "src/db/database.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "src/db/planner.hpp"
#include "src/obs/observability.hpp"
#include "src/util/csv.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/fsio.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace iokc::db {

const Value& ResultSet::at(std::size_t row, const std::string& column) const {
  for (std::size_t c = 0; c < columns.size(); ++c) {
    if (columns[c] == column) {
      if (row >= rows.size()) {
        throw DbError("result row " + std::to_string(row) + " out of range");
      }
      return rows[row][c];
    }
  }
  throw DbError("result set has no column '" + column + "'");
}

std::string ResultSet::render_table() const {
  util::TextTable table;
  table.set_header(columns);
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& value : row) {
      cells.push_back(value.is_null() ? "NULL" : value.render_raw());
    }
    table.add_row(std::move(cells));
  }
  return table.render();
}

std::string ResultSet::render_csv() const {
  util::CsvWriter writer;
  writer.add_row(columns);
  for (const Row& row : rows) {
    std::vector<std::string> cells;
    cells.reserve(row.size());
    for (const Value& value : row) {
      cells.push_back(value.render_raw());
    }
    writer.add_row(cells);
  }
  return writer.text();
}

ResultSet Database::execute(std::string_view sql) {
  const Statement statement = parse_sql(sql);
  const bool mutates = statement_mutates(statement);
  if (in_transaction_) {
    ResultSet result = execute_statement(statement);
    if (mutates) {
      txn_statements_.emplace_back(sql);
    }
    return result;
  }
  if (!mutates) {
    return execute_statement(statement);
  }
  // Auto-commit: a mutating statement outside an explicit transaction is an
  // atomic single-statement transaction (a multi-row INSERT that fails on
  // row 2 must not leave row 1 behind).
  begin();
  try {
    ResultSet result = execute_statement(statement);
    txn_statements_.emplace_back(sql);
    commit();
    return result;
  } catch (...) {
    if (in_transaction_) {
      rollback();
    }
    throw;
  }
}

void Database::execute_script(std::string_view script) {
  for (const std::string& piece : split_sql_script(script)) {
    execute(piece);
  }
}

void Database::begin() {
  if (in_transaction_) {
    throw DbError("BEGIN inside an open transaction (no nesting)");
  }
  in_transaction_ = true;
  txn_last_insert_rowid_ = last_insert_rowid_;
}

namespace {

void clear_transaction_state(std::vector<std::string>& statements,
                             auto& baselines, auto& snapshots,
                             std::vector<std::string>& created) {
  statements.clear();
  baselines.clear();
  snapshots.clear();
  created.clear();
}

}  // namespace

void Database::commit() {
  if (!in_transaction_) {
    throw DbError("COMMIT without BEGIN");
  }
  if (journal_ != nullptr && !txn_statements_.empty()) {
    try {
      journal_->append(txn_statements_);
    } catch (...) {
      // The journal is the durability point: if it cannot record the
      // transaction, undo the in-memory effects so commit() stays
      // all-or-nothing.
      rollback();
      throw;
    }
  }
  capture_committed_statements();
  clear_transaction_state(txn_statements_, txn_insert_baselines_,
                          txn_snapshots_, txn_created_tables_);
  in_transaction_ = false;
}

std::uint64_t Database::commit_buffered() {
  if (!in_transaction_) {
    throw DbError("COMMIT without BEGIN");
  }
  std::uint64_t ticket = 0;
  if (journal_ != nullptr && !txn_statements_.empty()) {
    try {
      ticket = journal_->stage(txn_statements_);
    } catch (...) {
      // Staging only fails when the journal is poisoned; the transaction
      // was never recorded, so it can still be undone cleanly.
      rollback();
      throw;
    }
  }
  capture_committed_statements();
  clear_transaction_state(txn_statements_, txn_insert_baselines_,
                          txn_snapshots_, txn_created_tables_);
  in_transaction_ = false;
  return ticket;
}

void Database::wait_journal_durable(std::uint64_t ticket) {
  if (ticket == 0 || journal_ == nullptr) {
    return;
  }
  journal_->wait_durable(ticket);
}

void Database::capture_committed_statements() {
  if (!capture_enabled_ || capture_overflowed_ || txn_statements_.empty()) {
    return;
  }
  for (const std::string& statement : txn_statements_) {
    captured_bytes_ += statement.size();
  }
  if (captured_bytes_ > kCaptureCapBytes) {
    capture_overflowed_ = true;
    captured_.clear();
    captured_bytes_ = 0;
    return;
  }
  captured_.insert(captured_.end(),
                   std::make_move_iterator(txn_statements_.begin()),
                   std::make_move_iterator(txn_statements_.end()));
}

void Database::set_commit_capture(bool enabled) {
  capture_enabled_ = enabled;
  if (!enabled) {
    captured_.clear();
    captured_bytes_ = 0;
    capture_overflowed_ = false;
  }
}

Database::CapturedCommits Database::drain_captured_commits() {
  CapturedCommits drained;
  drained.statements = std::move(captured_);
  drained.overflowed = capture_overflowed_;
  captured_.clear();
  captured_bytes_ = 0;
  capture_overflowed_ = false;
  return drained;
}

Database Database::clone_snapshot() const {
  if (in_transaction_) {
    throw DbError("clone_snapshot inside an open transaction");
  }
  Database clone;
  for (const auto& [name, table] : tables_) {
    clone.tables_.emplace(name, std::make_unique<Table>(*table));
  }
  clone.last_insert_rowid_ = last_insert_rowid_;
  clone.planning_enabled_ = planning_enabled_;
  return clone;
}

ResultSet Database::execute_prepared(const Statement& statement,
                                     const std::vector<Value>& params) {
  if (!statement_is_read_only(statement)) {
    throw DbError(
        "execute_prepared only runs read-only statements (SELECT, EXPLAIN)");
  }
  const std::size_t needed = statement_param_count(statement);
  if (needed > params.size()) {
    throw DbError("statement needs " + std::to_string(needed) +
                  " parameters, got " + std::to_string(params.size()));
  }
  if (const auto* select = std::get_if<SelectStmt>(&statement)) {
    obs::count("db.statements");
    return run_select(*select, params);
  }
  obs::count("db.statements");
  return run_explain(std::get<ExplainStmt>(statement), params);
}

void Database::rollback() {
  if (!in_transaction_) {
    throw DbError("ROLLBACK without BEGIN");
  }
  for (auto& [name, snapshot] : txn_snapshots_) {
    tables_[name] = std::move(snapshot);
  }
  for (const auto& [name, baseline] : txn_insert_baselines_) {
    if (txn_snapshots_.contains(name)) {
      continue;  // wholesale restore already covered the inserts
    }
    const auto it = tables_.find(name);
    if (it == tables_.end()) {
      continue;  // created and dropped within the transaction
    }
    it->second->truncate_rows(baseline.rows);
    it->second->set_next_rowid(baseline.next_rowid);
  }
  for (const std::string& name : txn_created_tables_) {
    tables_.erase(name);
  }
  last_insert_rowid_ = txn_last_insert_rowid_;
  clear_transaction_state(txn_statements_, txn_insert_baselines_,
                          txn_snapshots_, txn_created_tables_);
  in_transaction_ = false;
}

bool Database::statement_mutates(const Statement& statement) const {
  // The shared read-only classifier decides the easy half; what remains is
  // the state-dependent refinement (IF NOT EXISTS no-ops don't journal).
  if (statement_is_read_only(statement)) {
    return false;
  }
  return std::visit(
      [this](const auto& stmt) -> bool {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          // CREATE TABLE IF NOT EXISTS on an existing table is a no-op and
          // must not bloat the journal.
          return !(stmt.if_not_exists && tables_.contains(stmt.schema.name));
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          return !(stmt.if_not_exists && tables_.contains(stmt.table) &&
                   tables_.at(stmt.table)->has_index_named(stmt.index_name));
        } else if constexpr (std::is_same_v<T, DropTableStmt>) {
          return !(stmt.if_exists && !tables_.contains(stmt.table));
        } else {
          return true;
        }
      },
      statement);
}

void Database::note_insert(const std::string& name) {
  if (!in_transaction_ || txn_snapshots_.contains(name) ||
      txn_insert_baselines_.contains(name)) {
    return;
  }
  if (std::find(txn_created_tables_.begin(), txn_created_tables_.end(),
                name) != txn_created_tables_.end()) {
    return;  // rollback erases the whole table
  }
  const Table& table = *tables_.at(name);
  txn_insert_baselines_[name] =
      InsertBaseline{table.row_count(), table.next_rowid()};
}

void Database::note_overwrite(const std::string& name) {
  if (!in_transaction_ || txn_snapshots_.contains(name)) {
    return;
  }
  if (std::find(txn_created_tables_.begin(), txn_created_tables_.end(),
                name) != txn_created_tables_.end()) {
    return;
  }
  auto snapshot = std::make_unique<Table>(*tables_.at(name));
  // The snapshot must be the pre-transaction image: drop any rows this
  // transaction already appended (inserts only ever append).
  const auto baseline = txn_insert_baselines_.find(name);
  if (baseline != txn_insert_baselines_.end()) {
    snapshot->truncate_rows(baseline->second.rows);
    snapshot->set_next_rowid(baseline->second.next_rowid);
    txn_insert_baselines_.erase(baseline);
  }
  txn_snapshots_[name] = std::move(snapshot);
}

bool Database::has_table(const std::string& name) const {
  return tables_.contains(name);
}

Table& Database::require_table(const std::string& name) {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw DbError("no such table '" + name + "'");
  }
  return *it->second;
}

const Table& Database::require_table(const std::string& name) const {
  const auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw DbError("no such table '" + name + "'");
  }
  return *it->second;
}

std::vector<std::string> Database::table_names() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) {
    names.push_back(name);
  }
  return names;
}

ResultSet Database::execute_statement(const Statement& statement) {
  obs::count("db.statements");
  return std::visit(
      [this](const auto& stmt) -> ResultSet {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) {
          if (tables_.contains(stmt.schema.name)) {
            if (stmt.if_not_exists) {
              return {};
            }
            throw DbError("table '" + stmt.schema.name + "' already exists");
          }
          for (const ColumnDef& column : stmt.schema.columns) {
            if (column.references.has_value()) {
              const Table& referenced = require_table(column.references->table);
              referenced.schema().column_index(column.references->column);
            }
          }
          tables_.emplace(stmt.schema.name,
                          std::make_unique<Table>(stmt.schema));
          if (in_transaction_) {
            txn_created_tables_.push_back(stmt.schema.name);
          }
          // Index FK columns: joins and referential checks hit them often.
          for (const ColumnDef& column : stmt.schema.columns) {
            if (column.references.has_value()) {
              tables_.at(stmt.schema.name)->create_index(column.name);
            }
          }
          return {};
        } else if constexpr (std::is_same_v<T, CreateIndexStmt>) {
          Table& table = require_table(stmt.table);
          if (table.has_index_named(stmt.index_name)) {
            if (stmt.if_not_exists) {
              return {};
            }
            throw DbError("index '" + stmt.index_name +
                          "' already exists on '" + stmt.table + "'");
          }
          // Crash window: the statement is journaled only at commit, so a
          // kill here loses the index with its transaction — recovery must
          // converge either way (iokc-crashtest drives this site).
          util::fault_point("db.index.create");
          note_overwrite(stmt.table);
          IndexDef def;
          def.name = stmt.index_name;
          def.columns = stmt.columns;
          def.kind = stmt.kind;
          table.create_index(std::move(def));
          return {};
        } else if constexpr (std::is_same_v<T, InsertStmt>) {
          run_insert(stmt);
          return {};
        } else if constexpr (std::is_same_v<T, SelectStmt>) {
          return run_select(stmt, {});
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          return run_explain(stmt, {});
        } else if constexpr (std::is_same_v<T, UpdateStmt>) {
          run_update(stmt);
          return {};
        } else if constexpr (std::is_same_v<T, DeleteStmt>) {
          run_delete(stmt);
          return {};
        } else {
          static_assert(std::is_same_v<T, DropTableStmt>);
          if (!tables_.contains(stmt.table)) {
            if (stmt.if_exists) {
              return ResultSet{};
            }
            throw DbError("no such table '" + stmt.table + "'");
          }
          for (const auto& [name, table] : tables_) {
            if (name == stmt.table) {
              continue;
            }
            for (const ColumnDef& column : table->schema().columns) {
              if (column.references.has_value() &&
                  column.references->table == stmt.table) {
                throw DbError("cannot drop '" + stmt.table +
                              "': referenced by '" + name + "." + column.name +
                              "'");
              }
            }
          }
          note_overwrite(stmt.table);
          tables_.erase(stmt.table);
          return ResultSet{};
        }
      },
      statement);
}

void Database::check_foreign_keys(const TableSchema& schema, const Row& row) {
  for (std::size_t i = 0; i < schema.columns.size(); ++i) {
    const ColumnDef& column = schema.columns[i];
    if (!column.references.has_value() || row[i].is_null()) {
      continue;
    }
    const Table& referenced = require_table(column.references->table);
    if (!referenced.contains(column.references->column, row[i])) {
      throw DbError("foreign key violation: " + schema.name + "." +
                    column.name + " = " + row[i].render() +
                    " has no match in " + column.references->table + "." +
                    column.references->column);
    }
  }
}

void Database::check_no_references(const std::string& table, const Value& key,
                                   const std::string& key_column) {
  for (const auto& [name, other] : tables_) {
    for (const ColumnDef& column : other->schema().columns) {
      if (column.references.has_value() && column.references->table == table &&
          column.references->column == key_column &&
          other->contains(column.name, key)) {
        throw DbError("cannot delete " + table + " row with " + key_column +
                      " = " + key.render() + ": referenced by " + name + "." +
                      column.name);
      }
    }
  }
}

void Database::run_insert(const InsertStmt& stmt) {
  Table& table = require_table(stmt.table);
  note_insert(stmt.table);
  for (const std::vector<Value>& values : stmt.rows) {
    // Build the full row first so FK checks see defaults applied.
    Row row_copy = values;
    const std::int64_t rowid = table.insert(stmt.columns, std::move(row_copy));
    // The inserted row is the last one; validate its FKs, rolling back on
    // violation to keep the table consistent.
    try {
      check_foreign_keys(table.schema(), table.rows().back());
    } catch (const DbError&) {
      table.remove_rows({table.row_count() - 1});
      throw;
    }
    last_insert_rowid_ = rowid;
  }
}

namespace {

/// Combined projection environment for (joined) rows.
struct Projection {
  std::vector<std::string> qualified;  // "table.column" per combined slot
  std::vector<std::string> bare;       // "column" per combined slot
};

Projection make_projection(const Table& left, const Table* right) {
  Projection projection;
  for (const ColumnDef& column : left.schema().columns) {
    projection.qualified.push_back(left.schema().name + "." + column.name);
    projection.bare.push_back(column.name);
  }
  if (right != nullptr) {
    for (const ColumnDef& column : right->schema().columns) {
      projection.qualified.push_back(right->schema().name + "." + column.name);
      projection.bare.push_back(column.name);
    }
  }
  return projection;
}

std::size_t resolve_column(const Projection& projection,
                           const std::string& name) {
  std::size_t found = SIZE_MAX;
  for (std::size_t i = 0; i < projection.qualified.size(); ++i) {
    if (projection.qualified[i] == name || projection.bare[i] == name) {
      if (found != SIZE_MAX) {
        throw DbError("ambiguous column '" + name + "'");
      }
      found = i;
    }
  }
  if (found == SIZE_MAX) {
    throw DbError("unknown column '" + name + "'");
  }
  return found;
}

EvalContext bind_row(const Projection& projection, const Row& row) {
  EvalContext context;
  for (std::size_t i = 0; i < row.size(); ++i) {
    context.bind(projection.qualified[i], &row[i]);
    context.bind(projection.bare[i], &row[i]);
  }
  return context;
}

/// Resolves a join's ON operands to (left column, right column) bare names,
/// whichever way round the statement wrote them.
std::pair<std::string, std::string> resolve_join_columns(
    const Table& left, const Table& right, const JoinClause& join) {
  auto strip = [](const std::string& name) {
    const std::size_t dot = name.find('.');
    return dot == std::string::npos ? name : name.substr(dot + 1);
  };
  auto belongs_to = [&strip](const Table& table, const std::string& name) {
    return table.schema().find_column(strip(name)).has_value() &&
           (name.find('.') == std::string::npos ||
            name.substr(0, name.find('.')) == table.schema().name);
  };
  if (belongs_to(left, join.left_column) &&
      belongs_to(right, join.right_column)) {
    return {strip(join.left_column), strip(join.right_column)};
  }
  if (belongs_to(left, join.right_column) &&
      belongs_to(right, join.left_column)) {
    return {strip(join.right_column), strip(join.left_column)};
  }
  throw DbError("cannot resolve join condition " + join.left_column + " = " +
                join.right_column);
}

/// The scan access path (used when planning is disabled).
AccessPath scan_path(const Table& table) {
  AccessPath path;
  path.kind = AccessPath::Kind::kScan;
  path.cost = std::max<double>(static_cast<double>(table.row_count()), 1.0);
  path.estimated_rows = static_cast<double>(table.row_count());
  return path;
}

}  // namespace

ResultSet Database::run_select(const SelectStmt& stmt,
                               const std::vector<Value>& params) {
  Table& left = require_table(stmt.table);
  Table* right = stmt.join.has_value()
                     ? &require_table(stmt.join->table)
                     : nullptr;
  const Projection projection = make_projection(left, right);

  // Access-path selection: the planner pushes top-level AND conjuncts of
  // the WHERE down to an index of the (left) table; its candidate set is a
  // superset of the matches and ascends in row order, so the residual
  // filter below yields exactly the scan plan's output.
  const AccessPath path =
      planning_enabled_
          ? choose_access(left, stmt.where.get(), params, right)
          : scan_path(left);
  const std::vector<std::size_t> candidates = execute_access(left, path);

  // Materialize candidate combined rows.
  std::vector<Row> combined;
  if (right == nullptr) {
    combined.reserve(candidates.size());
    for (const std::size_t r : candidates) {
      combined.push_back(left.rows()[r]);
    }
  } else {
    // Nested-loop join probing the right table through lookup() (which uses
    // an index when one exists on the join column).
    const auto [left_col, right_col] =
        resolve_join_columns(left, *right, *stmt.join);
    const std::size_t left_idx = left.schema().column_index(left_col);
    for (const std::size_t lr : candidates) {
      const Row& lrow = left.rows()[lr];
      for (const std::size_t r : right->lookup(right_col, lrow[left_idx])) {
        Row joined = lrow;
        const Row& rrow = right->rows()[r];
        joined.insert(joined.end(), rrow.begin(), rrow.end());
        combined.push_back(std::move(joined));
      }
    }
  }

  // WHERE filter (always the full clause — pushed conjuncts are a superset,
  // not a replacement).
  std::vector<Row> filtered;
  if (stmt.where != nullptr) {
    for (Row& row : combined) {
      EvalContext context = bind_row(projection, row);
      context.set_params(&params);
      if (stmt.where->evaluate_bool(context)) {
        filtered.push_back(std::move(row));
      }
    }
  } else {
    filtered = std::move(combined);
  }

  // ORDER BY.
  if (!stmt.order_by.empty()) {
    std::vector<std::size_t> keys;
    keys.reserve(stmt.order_by.size());
    for (const OrderBy& order : stmt.order_by) {
      keys.push_back(resolve_column(projection, order.column));
    }
    std::stable_sort(filtered.begin(), filtered.end(),
                     [&](const Row& a, const Row& b) {
                       for (std::size_t k = 0; k < keys.size(); ++k) {
                         const auto ordering = a[keys[k]] <=> b[keys[k]];
                         if (ordering == std::partial_ordering::equivalent) {
                           continue;
                         }
                         const bool less =
                             ordering == std::partial_ordering::less;
                         return stmt.order_by[k].descending ? !less : less;
                       }
                       return false;
                     });
  }

  // LIMIT.
  if (stmt.limit.has_value() && filtered.size() > *stmt.limit) {
    filtered.resize(*stmt.limit);
  }

  // Projection.
  ResultSet result;
  if (stmt.columns.empty()) {
    result.columns =
        right == nullptr ? projection.bare : projection.qualified;
    result.rows = std::move(filtered);
  } else {
    std::vector<std::size_t> slots;
    for (const std::string& column : stmt.columns) {
      slots.push_back(resolve_column(projection, column));
      result.columns.push_back(column);
    }
    result.rows.reserve(filtered.size());
    for (const Row& row : filtered) {
      Row projected;
      projected.reserve(slots.size());
      for (const std::size_t slot : slots) {
        projected.push_back(row[slot]);
      }
      result.rows.push_back(std::move(projected));
    }
  }
  return result;
}

void Database::run_update(const UpdateStmt& stmt) {
  Table& table = require_table(stmt.table);
  note_overwrite(stmt.table);
  const Projection projection = make_projection(table, nullptr);
  const AccessPath path = planning_enabled_
                              ? choose_access(table, stmt.where.get(), {})
                              : scan_path(table);
  std::vector<std::size_t> matches;
  for (const std::size_t r : execute_access(table, path)) {
    if (stmt.where == nullptr ||
        stmt.where->evaluate_bool(bind_row(projection, table.rows()[r]))) {
      matches.push_back(r);
    }
  }
  for (const std::size_t r : matches) {
    for (const auto& [column, value] : stmt.assignments) {
      const std::size_t c = table.schema().column_index(column);
      if (table.schema().columns[c].primary_key) {
        const auto existing = table.lookup(column, value);
        if (!existing.empty() && !(existing.size() == 1 && existing[0] == r)) {
          throw DbError("UPDATE would duplicate primary key " +
                        value.render() + " in '" + stmt.table + "'");
        }
      }
      table.update_cell(r, c, value);
    }
    check_foreign_keys(table.schema(), table.rows()[r]);
  }
}

void Database::run_delete(const DeleteStmt& stmt) {
  Table& table = require_table(stmt.table);
  note_overwrite(stmt.table);
  const Projection projection = make_projection(table, nullptr);
  const auto pk = table.schema().primary_key_index();
  const AccessPath path = planning_enabled_
                              ? choose_access(table, stmt.where.get(), {})
                              : scan_path(table);
  std::vector<std::size_t> matches;
  for (const std::size_t r : execute_access(table, path)) {
    if (stmt.where == nullptr ||
        stmt.where->evaluate_bool(bind_row(projection, table.rows()[r]))) {
      if (pk.has_value()) {
        check_no_references(stmt.table, table.rows()[r][*pk],
                            table.schema().columns[*pk].name);
      }
      matches.push_back(r);
    }
  }
  table.remove_rows(matches);
}

ResultSet Database::run_explain(const ExplainStmt& stmt,
                                const std::vector<Value>& params) {
  ResultSet result;
  result.columns = {"step", "table", "access", "index",
                    "key",  "est_rows", "cost"};
  auto add_step = [&result](std::int64_t step, const std::string& table_name,
                            const std::string& access,
                            const std::string& index_name,
                            const std::string& key, double est_rows,
                            double cost) {
    result.rows.push_back(
        {Value(step), Value(table_name), Value(access), Value(index_name),
         Value(key), Value(static_cast<std::int64_t>(std::llround(est_rows))),
         Value(static_cast<std::int64_t>(std::llround(cost)))});
  };
  auto add_access = [&](std::int64_t step, const Table& table,
                        const AccessPath& path) {
    add_step(step, table.schema().name, to_string(path.kind), path.index_name,
             describe_key(path), path.estimated_rows, path.cost);
  };

  std::visit(
      [&](const auto& inner) {
        using T = std::decay_t<decltype(inner)>;
        if constexpr (std::is_same_v<T, SelectStmt>) {
          const Table& left = require_table(inner.table);
          const Table* right = inner.join.has_value()
                                   ? &require_table(inner.join->table)
                                   : nullptr;
          const AccessPath path =
              planning_enabled_
                  ? choose_access(left, inner.where.get(), params, right)
                  : scan_path(left);
          add_access(1, left, path);
          if (right != nullptr) {
            const auto [left_col, right_col] =
                resolve_join_columns(left, *right, *inner.join);
            const SecondaryIndex* probe = right->index_for_column(right_col);
            const double probe_rows =
                probe == nullptr
                    ? static_cast<double>(right->row_count())
                    : static_cast<double>(right->row_count()) /
                          static_cast<double>(
                              std::max<std::size_t>(probe->distinct_keys(), 1));
            add_step(2, right->schema().name,
                     probe == nullptr
                         ? "probe_scan"
                         : std::string("probe_") + to_string(probe->kind()),
                     probe == nullptr ? "" : probe->def().name,
                     right_col + " = " + left.schema().name + "." + left_col,
                     probe_rows, probe_rows);
          }
        } else if constexpr (std::is_same_v<T, UpdateStmt> ||
                             std::is_same_v<T, DeleteStmt>) {
          const Table& table = require_table(inner.table);
          const AccessPath path =
              planning_enabled_
                  ? choose_access(table, inner.where.get(), params)
                  : scan_path(table);
          add_access(1, table, path);
        } else {
          throw DbError("EXPLAIN supports SELECT, UPDATE, and DELETE");
        }
      },
      *stmt.inner);
  return result;
}

std::string Database::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

void Database::dump_to(std::string& out) const {
  out += "-- iokc database dump v1\n";
  // Emit parents before children so FK checks pass on reload: repeatedly
  // emit tables whose references are already emitted.
  std::vector<std::string> pending = table_names();
  std::vector<std::string> emitted;
  while (!pending.empty()) {
    bool progress = false;
    for (auto it = pending.begin(); it != pending.end();) {
      const Table& table = require_table(*it);
      bool ready = true;
      for (const ColumnDef& column : table.schema().columns) {
        if (column.references.has_value() &&
            column.references->table != table.schema().name &&
            std::find(emitted.begin(), emitted.end(),
                      column.references->table) == emitted.end()) {
          ready = false;
          break;
        }
      }
      if (!ready) {
        ++it;
        continue;
      }
      out += table.schema().render_create() + "\n";
      for (const Row& row : table.rows()) {
        out += "INSERT INTO " + table.schema().name + " VALUES (";
        for (std::size_t c = 0; c < row.size(); ++c) {
          if (c != 0) {
            out += ", ";
          }
          out += row[c].render();
        }
        out += ");\n";
      }
      // Named indexes are part of the dump (replay rebuilds them over the
      // rows just inserted); implicit PK/FK indexes are not — CREATE TABLE
      // recreates those itself.
      for (const SecondaryIndex& index : table.indexes()) {
        if (!index.def().implicit) {
          out += render_create_index(index.def(), table.schema().name) + "\n";
        }
      }
      emitted.push_back(*it);
      it = pending.erase(it);
      progress = true;
    }
    if (!progress) {
      throw DbError("cyclic foreign-key dependencies; cannot dump");
    }
  }
}

void Database::save(const std::string& path) {
  if (in_transaction_) {
    throw DbError("cannot save with an open transaction");
  }
  std::string content = dump();
  if (journal_ != nullptr) {
    // Record the journal epoch right after the header line so open() can
    // skip journal records this dump already contains (a crash between the
    // dump rename and the journal truncation must not double-apply them).
    const std::size_t eol = content.find('\n');
    content.insert(eol == std::string::npos ? content.size() : eol + 1,
                   "-- journal-epoch " + std::to_string(journal_->last_seq()) +
                       "\n");
  }
  util::atomic_replace_file(path, content);
  if (journal_ != nullptr && path == home_path_) {
    journal_epoch_ = journal_->last_seq();
    journal_->checkpoint();
  }
}

namespace {

/// A dump script with its `--` comment lines (header, epoch marker) removed.
std::string strip_sql_comments(std::string_view script) {
  std::string cleaned;
  for (const std::string& line : util::split_lines(std::string(script))) {
    if (!util::starts_with(util::trim(line), "--")) {
      cleaned += line;
      cleaned += '\n';
    }
  }
  return cleaned;
}

}  // namespace

Database Database::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot open database file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Database database;
  database.execute_script(strip_sql_comments(buffer.str()));
  return database;
}

namespace {

/// The journal epoch recorded in a dump's header comments (0 when absent).
std::uint64_t read_journal_epoch(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string line;
  for (int i = 0; i < 8 && std::getline(in, line); ++i) {
    constexpr std::string_view kPrefix = "-- journal-epoch ";
    if (util::starts_with(line, kPrefix)) {
      return static_cast<std::uint64_t>(
          util::parse_i64(util::trim(line.substr(kPrefix.size()))));
    }
  }
  return 0;
}

}  // namespace

Database Database::open(const std::string& path) {
  Database database;
  std::uint64_t epoch = 0;
  if (std::filesystem::exists(path)) {
    database = load(path);
    epoch = read_journal_epoch(path);
  }
  // Crash recovery: fold committed journal records newer than the dump back
  // in, each as one atomic transaction. A torn tail (crash mid-append) was
  // already discarded by read_records — and must be CUT OFF, not just
  // skipped: replay stops at the first invalid record, so appending after a
  // leftover tear would make every later record unreachable and silently
  // lose acknowledged writes on the crash after next.
  const std::string journal_path = journal_path_for(path);
  Journal::truncate_torn_tail(journal_path);
  std::uint64_t last_seq = epoch;
  for (const JournalRecord& record : Journal::read_records(journal_path)) {
    if (record.seq <= epoch) {
      continue;
    }
    database.begin();
    try {
      for (const std::string& statement : record.statements) {
        database.execute(statement);
      }
    } catch (const Error& error) {
      database.rollback();
      throw DbError("journal replay failed at transaction " +
                    std::to_string(record.seq) + ": " + error.what());
    }
    database.commit();
    last_seq = record.seq;
  }
  database.home_path_ = path;
  database.journal_epoch_ = epoch;
  database.attach_journal(journal_path, last_seq);
  return database;
}

void Database::attach_journal(const std::string& path, std::uint64_t last_seq) {
  journal_ = std::make_unique<Journal>(path, last_seq);
}

void Database::set_journal_ship_sink(Journal::ShipSink sink) {
  if (journal_ == nullptr) {
    throw DbError("cannot install a ship sink without an attached journal");
  }
  journal_->set_ship_sink(std::move(sink));
}

void Database::reset_from_script(const std::string& script,
                                 std::uint64_t epoch) {
  if (in_transaction_) {
    throw DbError("cannot reset inside an open transaction");
  }
  // Build the replacement aside first: a parse error must leave the live
  // database untouched. The scratch database has no journal, so nothing in
  // the script is journaled (or captured) while it executes.
  Database fresh;
  fresh.execute_script(strip_sql_comments(script));
  tables_ = std::move(fresh.tables_);
  last_insert_rowid_ = fresh.last_insert_rowid_;
  if (capture_enabled_) {
    // The capture buffer no longer describes a statement-prefix of this
    // state; flag overflow so drain_captured_commits() forces consumers
    // into their full-rebuild path.
    capture_overflowed_ = true;
    captured_.clear();
    captured_bytes_ = 0;
  }
  journal_epoch_ = epoch;
  if (journal_ != nullptr) {
    const std::string journal_path = journal_->path();
    journal_ = std::make_unique<Journal>(journal_path, epoch);
    journal_->checkpoint();
  }
  if (!home_path_.empty()) {
    save(home_path_);
  }
}

}  // namespace iokc::db
