#include "src/db/sql.hpp"

#include <cctype>
#include <utility>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::db {

namespace {

enum class TokenKind { kKeywordOrIdent, kNumber, kString, kSymbol, kEnd };

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // identifier/keyword (original case) or symbol
  std::string upper;  // uppercase form for keyword comparison
  Value value;        // kNumber / kString
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) { advance(); }

  const Token& current() const { return current_; }

  Token take() {
    Token token = std::move(current_);
    advance();
    return token;
  }

  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("SQL at offset " + std::to_string(pos_) + ": " + message);
  }

 private:
  void advance() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    current_ = Token{};
    if (pos_ >= text_.size()) {
      current_.kind = TokenKind::kEnd;
      return;
    }
    const char c = text_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const std::size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      current_.kind = TokenKind::kKeywordOrIdent;
      current_.text = std::string(text_.substr(start, pos_ - start));
      current_.upper = current_.text;
      for (char& ch : current_.upper) {
        ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
      }
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      const std::size_t start = pos_;
      if (c == '-') {
        ++pos_;
      }
      bool is_real = false;
      while (pos_ < text_.size()) {
        const char d = text_[pos_];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++pos_;
        } else if (d == '.' || d == 'e' || d == 'E' ||
                   ((d == '+' || d == '-') && pos_ > start &&
                    (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E'))) {
          is_real = true;
          ++pos_;
        } else {
          break;
        }
      }
      const std::string token{text_.substr(start, pos_ - start)};
      current_.kind = TokenKind::kNumber;
      current_.value = is_real ? Value(util::parse_f64(token))
                               : Value(util::parse_i64(token));
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (true) {
        if (pos_ >= text_.size()) {
          fail("unterminated string literal");
        }
        const char d = text_[pos_++];
        if (d == '\'') {
          if (pos_ < text_.size() && text_[pos_] == '\'') {
            out += '\'';
            ++pos_;
          } else {
            break;
          }
        } else {
          out += d;
        }
      }
      current_.kind = TokenKind::kString;
      current_.value = Value(std::move(out));
      return;
    }
    // Symbols, including two-character comparison operators.
    static constexpr std::string_view kTwoChar[] = {"<=", ">=", "!=", "<>"};
    for (const std::string_view two : kTwoChar) {
      if (text_.substr(pos_, 2) == two) {
        current_.kind = TokenKind::kSymbol;
        current_.text = std::string(two);
        pos_ += 2;
        return;
      }
    }
    current_.kind = TokenKind::kSymbol;
    current_.text = std::string(1, c);
    ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  Token current_;
};

class Parser {
 public:
  explicit Parser(std::string_view sql) : lexer_(sql) {}

  Statement parse_statement() {
    Statement statement = [&]() -> Statement {
      if (lexer_.current().kind == TokenKind::kKeywordOrIdent &&
          lexer_.current().upper == "EXPLAIN") {
        lexer_.take();
        ExplainStmt stmt;
        stmt.inner =
            std::make_shared<const Statement>(parse_statement_body());
        return stmt;
      }
      return parse_statement_body();
    }();
    accept_symbol(";");
    if (lexer_.current().kind != TokenKind::kEnd) {
      lexer_.fail("trailing tokens after statement");
    }
    return statement;
  }

 private:
  Statement parse_statement_body() {
    const Token& token = lexer_.current();
    if (token.kind != TokenKind::kKeywordOrIdent) {
      lexer_.fail("expected a statement keyword");
    }
    if (token.upper == "CREATE") {
      return parse_create();
    }
    if (token.upper == "INSERT") {
      return parse_insert();
    }
    if (token.upper == "SELECT") {
      return parse_select();
    }
    if (token.upper == "UPDATE") {
      return parse_update();
    }
    if (token.upper == "DELETE") {
      return parse_delete();
    }
    if (token.upper == "DROP") {
      return parse_drop();
    }
    lexer_.fail("unsupported statement '" + token.text + "'");
  }

  bool accept_keyword(std::string_view keyword) {
    if (lexer_.current().kind == TokenKind::kKeywordOrIdent &&
        lexer_.current().upper == keyword) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_keyword(std::string_view keyword) {
    if (!accept_keyword(keyword)) {
      lexer_.fail("expected " + std::string(keyword));
    }
  }

  bool accept_symbol(std::string_view symbol) {
    if (lexer_.current().kind == TokenKind::kSymbol &&
        lexer_.current().text == symbol) {
      lexer_.take();
      return true;
    }
    return false;
  }

  void expect_symbol(std::string_view symbol) {
    if (!accept_symbol(symbol)) {
      lexer_.fail("expected '" + std::string(symbol) + "'");
    }
  }

  std::string expect_identifier(const char* what) {
    if (lexer_.current().kind != TokenKind::kKeywordOrIdent) {
      lexer_.fail(std::string("expected ") + what);
    }
    return lexer_.take().text;
  }

  /// Identifier with optional qualification: name or table.name.
  std::string expect_column_ref() {
    std::string name = expect_identifier("column name");
    if (accept_symbol(".")) {
      name += "." + expect_identifier("column name after '.'");
    }
    return name;
  }

  Value expect_literal() {
    const Token& token = lexer_.current();
    if (token.kind == TokenKind::kNumber || token.kind == TokenKind::kString) {
      return lexer_.take().value;
    }
    if (token.kind == TokenKind::kKeywordOrIdent && token.upper == "NULL") {
      lexer_.take();
      return Value();
    }
    lexer_.fail("expected a literal value");
  }

  Statement parse_create() {
    expect_keyword("CREATE");
    if (accept_keyword("INDEX")) {
      CreateIndexStmt stmt;
      if (accept_keyword("IF")) {
        expect_keyword("NOT");
        expect_keyword("EXISTS");
        stmt.if_not_exists = true;
      }
      stmt.index_name = expect_identifier("index name");
      expect_keyword("ON");
      stmt.table = expect_identifier("table name");
      expect_symbol("(");
      while (true) {
        stmt.columns.push_back(expect_identifier("column name"));
        if (accept_symbol(",")) {
          continue;
        }
        expect_symbol(")");
        break;
      }
      if (accept_keyword("USING")) {
        const std::string method = expect_identifier("index method");
        std::string upper = method;
        for (char& ch : upper) {
          ch = static_cast<char>(std::toupper(static_cast<unsigned char>(ch)));
        }
        if (upper == "HASH") {
          stmt.kind = IndexKind::kHash;
        } else if (upper == "ORDERED" || upper == "BTREE") {
          stmt.kind = IndexKind::kOrdered;
        } else {
          lexer_.fail("unknown index method '" + method +
                      "' (expected HASH or ORDERED)");
        }
      }
      return stmt;
    }
    expect_keyword("TABLE");
    CreateTableStmt stmt;
    if (accept_keyword("IF")) {
      expect_keyword("NOT");
      expect_keyword("EXISTS");
      stmt.if_not_exists = true;
    }
    stmt.schema.name = expect_identifier("table name");
    expect_symbol("(");
    while (true) {
      ColumnDef column;
      column.name = expect_identifier("column name");
      column.type = column_type_from_string(expect_identifier("column type"));
      while (true) {
        if (accept_keyword("PRIMARY")) {
          expect_keyword("KEY");
          column.primary_key = true;
        } else if (accept_keyword("NOT")) {
          expect_keyword("NULL");
          column.not_null = true;
        } else if (accept_keyword("REFERENCES")) {
          ForeignKey fk;
          fk.table = expect_identifier("referenced table");
          expect_symbol("(");
          fk.column = expect_identifier("referenced column");
          expect_symbol(")");
          column.references = fk;
        } else {
          break;
        }
      }
      stmt.schema.columns.push_back(std::move(column));
      if (accept_symbol(",")) {
        continue;
      }
      expect_symbol(")");
      break;
    }
    if (stmt.schema.columns.empty()) {
      lexer_.fail("table needs at least one column");
    }
    return stmt;
  }

  Statement parse_insert() {
    expect_keyword("INSERT");
    expect_keyword("INTO");
    InsertStmt stmt;
    stmt.table = expect_identifier("table name");
    if (accept_symbol("(")) {
      while (true) {
        stmt.columns.push_back(expect_identifier("column name"));
        if (accept_symbol(",")) {
          continue;
        }
        expect_symbol(")");
        break;
      }
    }
    expect_keyword("VALUES");
    while (true) {
      expect_symbol("(");
      std::vector<Value> row;
      while (true) {
        row.push_back(expect_literal());
        if (accept_symbol(",")) {
          continue;
        }
        expect_symbol(")");
        break;
      }
      stmt.rows.push_back(std::move(row));
      if (!accept_symbol(",")) {
        break;
      }
    }
    return stmt;
  }

  Statement parse_select() {
    expect_keyword("SELECT");
    SelectStmt stmt;
    if (!accept_symbol("*")) {
      while (true) {
        stmt.columns.push_back(expect_column_ref());
        if (!accept_symbol(",")) {
          break;
        }
      }
    }
    expect_keyword("FROM");
    stmt.table = expect_identifier("table name");
    if (accept_keyword("INNER") || lexer_.current().upper == "JOIN") {
      expect_keyword("JOIN");
      JoinClause join;
      join.table = expect_identifier("joined table");
      expect_keyword("ON");
      join.left_column = expect_column_ref();
      expect_symbol("=");
      join.right_column = expect_column_ref();
      stmt.join = std::move(join);
    }
    if (accept_keyword("WHERE")) {
      stmt.where = parse_expr();
    }
    if (accept_keyword("ORDER")) {
      expect_keyword("BY");
      while (true) {
        OrderBy order;
        order.column = expect_column_ref();
        if (accept_keyword("DESC")) {
          order.descending = true;
        } else {
          accept_keyword("ASC");
        }
        stmt.order_by.push_back(std::move(order));
        if (!accept_symbol(",")) {
          break;
        }
      }
    }
    if (accept_keyword("LIMIT")) {
      const Value limit = expect_literal();
      if (!limit.is_integer() || limit.as_integer() < 0) {
        lexer_.fail("LIMIT must be a non-negative integer");
      }
      stmt.limit = static_cast<std::size_t>(limit.as_integer());
    }
    return stmt;
  }

  Statement parse_update() {
    expect_keyword("UPDATE");
    UpdateStmt stmt;
    stmt.table = expect_identifier("table name");
    expect_keyword("SET");
    while (true) {
      std::string column = expect_identifier("column name");
      expect_symbol("=");
      stmt.assignments.emplace_back(std::move(column), expect_literal());
      if (!accept_symbol(",")) {
        break;
      }
    }
    if (accept_keyword("WHERE")) {
      stmt.where = parse_expr();
    }
    return stmt;
  }

  Statement parse_delete() {
    expect_keyword("DELETE");
    expect_keyword("FROM");
    DeleteStmt stmt;
    stmt.table = expect_identifier("table name");
    if (accept_keyword("WHERE")) {
      stmt.where = parse_expr();
    }
    return stmt;
  }

  Statement parse_drop() {
    expect_keyword("DROP");
    expect_keyword("TABLE");
    DropTableStmt stmt;
    if (accept_keyword("IF")) {
      expect_keyword("EXISTS");
      stmt.if_exists = true;
    }
    stmt.table = expect_identifier("table name");
    return stmt;
  }

  // expr := or_term; or_term := and_term (OR and_term)*;
  // and_term := unary (AND unary)*; unary := NOT unary | comparison;
  // comparison := primary (op primary)?;
  // primary := literal | ? | column | (expr)
  ExprPtr parse_expr() { return parse_or(); }

  ExprPtr parse_or() {
    ExprPtr lhs = parse_and();
    while (accept_keyword("OR")) {
      lhs = make_binary(Expr::Op::kOr, std::move(lhs), parse_and());
    }
    return lhs;
  }

  ExprPtr parse_and() {
    ExprPtr lhs = parse_unary();
    while (accept_keyword("AND")) {
      lhs = make_binary(Expr::Op::kAnd, std::move(lhs), parse_unary());
    }
    return lhs;
  }

  ExprPtr parse_unary() {
    if (accept_keyword("NOT")) {
      return make_not(parse_unary());
    }
    return parse_comparison();
  }

  ExprPtr parse_comparison() {
    ExprPtr lhs = parse_primary();
    const Token& token = lexer_.current();
    if (token.kind != TokenKind::kSymbol) {
      return lhs;
    }
    Expr::Op op;
    if (token.text == "=") {
      op = Expr::Op::kEq;
    } else if (token.text == "!=" || token.text == "<>") {
      op = Expr::Op::kNe;
    } else if (token.text == "<") {
      op = Expr::Op::kLt;
    } else if (token.text == "<=") {
      op = Expr::Op::kLe;
    } else if (token.text == ">") {
      op = Expr::Op::kGt;
    } else if (token.text == ">=") {
      op = Expr::Op::kGe;
    } else {
      return lhs;
    }
    lexer_.take();
    return make_binary(op, std::move(lhs), parse_primary());
  }

  ExprPtr parse_primary() {
    const Token& token = lexer_.current();
    if (token.kind == TokenKind::kNumber || token.kind == TokenKind::kString) {
      return make_literal(lexer_.take().value);
    }
    if (token.kind == TokenKind::kSymbol && token.text == "?") {
      lexer_.take();
      return make_param(next_param_++);
    }
    if (token.kind == TokenKind::kSymbol && token.text == "(") {
      lexer_.take();
      ExprPtr inner = parse_expr();
      expect_symbol(")");
      return inner;
    }
    if (token.kind == TokenKind::kKeywordOrIdent) {
      if (token.upper == "NULL") {
        lexer_.take();
        return make_literal(Value());
      }
      return make_column(expect_column_ref());
    }
    lexer_.fail("expected an expression");
  }

  Lexer lexer_;
  std::size_t next_param_ = 0;  // ordinal of the next `?` marker
};

}  // namespace

Statement parse_sql(std::string_view sql) {
  return Parser(sql).parse_statement();
}

std::vector<std::string> split_sql_script(std::string_view script) {
  std::vector<std::string> pieces;
  std::string fragment;
  bool in_string = false;
  for (std::size_t i = 0; i < script.size(); ++i) {
    const char c = script[i];
    if (c == '\'') {
      in_string = !in_string;
      fragment += c;
    } else if (c == ';' && !in_string) {
      if (!util::trim(fragment).empty()) {
        pieces.push_back(fragment);
      }
      fragment.clear();
    } else {
      fragment += c;
    }
  }
  if (!util::trim(fragment).empty()) {
    pieces.push_back(fragment);
  }
  return pieces;
}

std::vector<Statement> parse_sql_script(std::string_view script) {
  std::vector<Statement> statements;
  for (const std::string& piece : split_sql_script(script)) {
    statements.push_back(parse_sql(piece));
  }
  return statements;
}

bool statement_is_read_only(const Statement& statement) {
  // EXPLAIN never executes its inner statement — it only plans it — so it
  // is read-only even over UPDATE/DELETE.
  return std::holds_alternative<SelectStmt>(statement) ||
         std::holds_alternative<ExplainStmt>(statement);
}

bool sql_is_read_only(std::string_view sql) {
  return statement_is_read_only(parse_sql(sql));
}

std::size_t statement_param_count(const Statement& statement) {
  return std::visit(
      [](const auto& stmt) -> std::size_t {
        using T = std::decay_t<decltype(stmt)>;
        if constexpr (std::is_same_v<T, SelectStmt> ||
                      std::is_same_v<T, UpdateStmt> ||
                      std::is_same_v<T, DeleteStmt>) {
          return expr_param_count(stmt.where.get());
        } else if constexpr (std::is_same_v<T, ExplainStmt>) {
          return statement_param_count(*stmt.inner);
        } else {
          return 0;
        }
      },
      statement);
}

StatementCache::StatementCache(std::size_t capacity) : capacity_(capacity) {}

std::shared_ptr<const Statement> StatementCache::get(const std::string& sql) {
  {
    const util::LockGuard lock(mutex_);
    const auto it = by_text_.find(sql);
    if (it != by_text_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);  // promote to front
      ++stats_.hits;
      return it->second->second;
    }
    ++stats_.misses;
  }
  // Parse outside the lock: ParseError must not poison the cache, and a
  // slow parse must not serialize concurrent cache hits. Two threads racing
  // on the same miss both parse; the second insert below is a no-op.
  auto parsed = std::make_shared<const Statement>(parse_sql(sql));
  const util::LockGuard lock(mutex_);
  const auto it = by_text_.find(sql);
  if (it != by_text_.end()) {
    return it->second->second;  // lost the race; reuse the winner's AST
  }
  lru_.emplace_front(sql, parsed);
  by_text_[sql] = lru_.begin();
  if (lru_.size() > capacity_) {
    by_text_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  return parsed;
}

StatementCache::Stats StatementCache::stats() const {
  const util::LockGuard lock(mutex_);
  return stats_;
}

}  // namespace iokc::db
