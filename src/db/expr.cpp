#include "src/db/expr.hpp"

#include <algorithm>
#include <utility>

#include "src/util/error.hpp"

namespace iokc::db {

void EvalContext::bind(const std::string& name, const Value* value) {
  bindings_.emplace_back(name, value);
}

const Value& EvalContext::lookup(const std::string& name) const {
  const Value* found = nullptr;
  for (const auto& [bound_name, value] : bindings_) {
    if (bound_name == name) {
      if (found != nullptr && found != value) {
        throw DbError("ambiguous column reference '" + name + "'");
      }
      found = value;
    }
  }
  if (found == nullptr) {
    throw DbError("unknown column '" + name + "'");
  }
  return *found;
}

const Value& EvalContext::param(std::size_t ordinal) const {
  if (params_ == nullptr || ordinal >= params_->size()) {
    throw DbError("statement parameter ?" + std::to_string(ordinal + 1) +
                  " is not bound");
  }
  return (*params_)[ordinal];
}

namespace {

bool truthy(const Value& value) {
  if (value.is_null()) {
    return false;
  }
  if (value.is_text()) {
    return !value.as_text().empty();
  }
  return value.as_real() != 0.0;
}

Value compare(Expr::Op op, const Value& lhs, const Value& rhs) {
  // SQL three-valued logic collapses to false for NULL comparisons here.
  if (lhs.is_null() || rhs.is_null()) {
    return Value(static_cast<std::int64_t>(
        op == Expr::Op::kEq ? (lhs.is_null() && rhs.is_null()) : 0));
  }
  const auto ordering = lhs <=> rhs;
  bool result = false;
  switch (op) {
    case Expr::Op::kEq: result = ordering == std::partial_ordering::equivalent; break;
    case Expr::Op::kNe: result = ordering != std::partial_ordering::equivalent; break;
    case Expr::Op::kLt: result = ordering == std::partial_ordering::less; break;
    case Expr::Op::kLe:
      result = ordering == std::partial_ordering::less ||
               ordering == std::partial_ordering::equivalent;
      break;
    case Expr::Op::kGt: result = ordering == std::partial_ordering::greater; break;
    case Expr::Op::kGe:
      result = ordering == std::partial_ordering::greater ||
               ordering == std::partial_ordering::equivalent;
      break;
    default:
      throw DbError("compare() called with a logic operator");
  }
  return Value(static_cast<std::int64_t>(result));
}

}  // namespace

Value Expr::evaluate(const EvalContext& context) const {
  switch (kind) {
    case Kind::kLiteral:
      return literal;
    case Kind::kColumn:
      return context.lookup(column);
    case Kind::kParam:
      return context.param(param_index);
    case Kind::kNot:
      return Value(static_cast<std::int64_t>(!rhs->evaluate_bool(context)));
    case Kind::kBinary:
      switch (op) {
        case Op::kAnd:
          return Value(static_cast<std::int64_t>(
              lhs->evaluate_bool(context) && rhs->evaluate_bool(context)));
        case Op::kOr:
          return Value(static_cast<std::int64_t>(
              lhs->evaluate_bool(context) || rhs->evaluate_bool(context)));
        default:
          return compare(op, lhs->evaluate(context), rhs->evaluate(context));
      }
  }
  throw DbError("corrupt expression node");
}

bool Expr::evaluate_bool(const EvalContext& context) const {
  return truthy(evaluate(context));
}

ExprPtr make_literal(Value value) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kLiteral;
  expr->literal = std::move(value);
  return expr;
}

ExprPtr make_column(std::string name) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kColumn;
  expr->column = std::move(name);
  return expr;
}

ExprPtr make_param(std::size_t ordinal) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kParam;
  expr->param_index = ordinal;
  return expr;
}

ExprPtr make_binary(Expr::Op op, ExprPtr lhs, ExprPtr rhs) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kBinary;
  expr->op = op;
  expr->lhs = std::move(lhs);
  expr->rhs = std::move(rhs);
  return expr;
}

ExprPtr make_not(ExprPtr operand) {
  auto expr = std::make_unique<Expr>();
  expr->kind = Expr::Kind::kNot;
  expr->rhs = std::move(operand);
  return expr;
}

std::size_t expr_param_count(const Expr* expr) {
  if (expr == nullptr) {
    return 0;
  }
  std::size_t count = expr->kind == Expr::Kind::kParam
                          ? expr->param_index + 1
                          : 0;
  count = std::max(count, expr_param_count(expr->lhs.get()));
  count = std::max(count, expr_param_count(expr->rhs.get()));
  return count;
}

}  // namespace iokc::db
