// The embedded relational database: executes the SQL subset against typed
// tables with primary/foreign-key enforcement and secondary indexes, and
// persists itself as a SQL dump (the same way `sqlite3 .dump` round-trips a
// database). This is the substrate the paper's persistence phase plugs into
// in place of SQLite.
//
// Durability model: open(path) loads the last saved dump, replays the
// write-ahead journal (<path>-journal) on top of it, and keeps journaling
// every committed transaction from then on — so a crash after a commit
// never loses acknowledged writes. save() writes the dump atomically
// (sibling temp file + fsync + rename) and checkpoints the journal. Every
// mutating statement executed outside an explicit transaction is an atomic
// single-statement transaction of its own.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/journal.hpp"
#include "src/db/sql.hpp"
#include "src/db/table.hpp"

namespace iokc::db {

/// Rows returned by a SELECT.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  std::size_t size() const { return rows.size(); }
  /// Value at (row, column name); throws DbError for unknown columns.
  const Value& at(std::size_t row, const std::string& column) const;
  /// Renders an aligned text table (the CLI knowledge viewer output).
  std::string render_table() const;
  /// Renders CSV (header + rows).
  std::string render_csv() const;
};

/// The database.
///
/// Concurrency contract: a Database object is *externally synchronized* — it
/// is movable, so it cannot carry a util::Mutex of its own, and internal
/// locking would also serialize concurrent SELECTs against the immutable
/// snapshot clones the service layer hands out. Writers funnel through
/// persist::KnowledgeRepository's single-writer gate (rank persist.write);
/// the one shared piece of state, the attached write-ahead Journal, locks
/// itself (rank db.journal).
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Parses and executes one statement. SELECT fills the returned ResultSet;
  /// other statements return an empty set. Outside an explicit transaction
  /// a mutating statement is atomic: it either applies fully (and is
  /// journaled, when a journal is attached) or leaves the database unchanged.
  ResultSet execute(std::string_view sql);

  /// Executes a ';'-separated script (errors abort at the failing statement;
  /// already-executed statements stay committed).
  void execute_script(std::string_view script);

  /// Executes an already-parsed statement with positional values bound to
  /// its `?` markers. Only read-only statements (SELECT, EXPLAIN) are
  /// accepted — prepared ASTs are shared across threads by the statement
  /// cache and bypass the journal, so a write here could never be made
  /// durable. Throws DbError for a write statement or too few parameters.
  ResultSet execute_prepared(const Statement& statement,
                             const std::vector<Value>& params = {});

  /// Toggles index-based access-path selection (on by default). With
  /// planning off every query runs the scan plan; the property tests
  /// compare both modes byte-for-byte.
  void set_index_planning(bool enabled) { planning_enabled_ = enabled; }
  bool index_planning() const { return planning_enabled_; }

  // -- Transactions ---------------------------------------------------------

  /// Opens an explicit transaction. Statements executed until commit() apply
  /// immediately but can be undone wholesale with rollback(). Transactions
  /// do not nest; begin() inside a transaction throws DbError.
  void begin();
  /// Commits: makes the transaction's statements durable (journal append +
  /// fsync when a journal is attached). On journal failure the transaction
  /// is rolled back and the error rethrown, so commit() is all-or-nothing.
  void commit();  // iokc-lint: blocking
  /// Commits the transaction in memory and *stages* its journal record
  /// without waiting for durability. Returns a ticket for
  /// wait_journal_durable() (0 when nothing was journaled — no journal
  /// attached or a read-only transaction). The caller must not acknowledge
  /// the write until wait_journal_durable(ticket) returns; calling it
  /// *outside* the single-writer gate is what lets the journal's group
  /// commit amortize one fsync across concurrent committers. On staging
  /// failure (poisoned journal) the transaction is rolled back and the
  /// error rethrown, exactly like commit().
  std::uint64_t commit_buffered();
  /// Blocks until the journal record behind `ticket` is on disk (no-op for
  /// ticket 0). Throws IoError if the flush failed; the in-memory effects
  /// of the transaction remain (snapshots mirror memory), but the write
  /// must not be acknowledged.
  void wait_journal_durable(std::uint64_t ticket);  // iokc-lint: blocking
  /// Undoes every statement since begin(). Throws DbError outside a
  /// transaction.
  void rollback();
  bool in_transaction() const { return in_transaction_; }

  /// Primary key assigned by the most recent INSERT.
  std::int64_t last_insert_rowid() const { return last_insert_rowid_; }

  bool has_table(const std::string& name) const;
  Table& require_table(const std::string& name);
  const Table& require_table(const std::string& name) const;
  std::vector<std::string> table_names() const;

  /// Serializes the database as an executable SQL script.
  std::string dump() const;
  /// Appends dump() to `out` — the buffer-reuse path: a caller dumping
  /// repeatedly (snapshot rebuilds, periodic saves) clears and reuses one
  /// string instead of reallocating the full image each time.
  void dump_to(std::string& out) const;
  /// Writes dump() to `path` atomically (temp file + fsync + rename): a
  /// crash mid-save leaves the previous dump intact, never a torn file.
  /// When `path` is this database's journaled home, the dump records the
  /// journal epoch and the journal is checkpointed (truncated). Throws
  /// IoError on failure.
  void save(const std::string& path);  // iokc-lint: blocking
  /// Loads a dump written by save(). Throws IoError / ParseError / DbError.
  static Database load(const std::string& path);
  /// Opens `path` (an empty database when missing), replays any committed
  /// transactions from the write-ahead journal beside it, and attaches the
  /// journal so later commits are durable. This is the crash-recovery
  /// entry point: open() after a crash converges to the last committed
  /// state.
  static Database open(const std::string& path);

  /// Attaches a write-ahead journal (created lazily on first commit). Older
  /// records are NOT replayed — use open() for recovery. `last_seq` seeds
  /// the record sequence counter.
  void attach_journal(const std::string& path, std::uint64_t last_seq = 0);
  void detach_journal() { journal_.reset(); }
  bool journaling() const { return journal_ != nullptr; }

  /// The highest assigned journal sequence number (0 with no journal). This
  /// is the replication *offset*; together with journal_epoch() it names a
  /// position in the WAL stream.
  std::uint64_t last_journal_seq() const {
    return journal_ != nullptr ? journal_->last_seq() : 0;
  }
  /// The checkpoint epoch: the sequence number folded into the last dump
  /// (from open() or a home-path save()). Records with seq <= epoch live in
  /// the dump, not the journal sidecar.
  std::uint64_t journal_epoch() const { return journal_epoch_; }
  const std::string& home_path() const { return home_path_; }

  /// Forwards to Journal::set_ship_sink (see journal.hpp for the delivery
  /// contract). Throws DbError when no journal is attached — a primary
  /// without a WAL has nothing to ship.
  void set_journal_ship_sink(Journal::ShipSink sink);

  /// Replaces the entire database in place from a dump script (the
  /// replication bootstrap / fence-recovery path). The replacement is built
  /// aside first, so a parse error leaves the live database untouched. The
  /// attached journal (if any) restarts its sequence counter at `epoch` on a
  /// truncated sidecar — stale records from the old timeline can never
  /// replay on top of the installed state — and a journaled home database
  /// is re-saved so the dump on disk records the new epoch. The commit
  /// capture buffer is invalidated (overflow-flagged) so delta consumers
  /// fall back to a full rebuild instead of replaying across the reset.
  void reset_from_script(const std::string& script,
                         std::uint64_t epoch);  // iokc-lint: blocking

  // -- Commit capture & snapshot clones (the service delta-snapshot hooks) --

  /// The statements committed since the last drain, in commit order.
  /// `overflowed` reports that the capture buffer hit its cap and was
  /// discarded — the drained statements are incomplete and the consumer
  /// must fall back to a full rebuild.
  struct CapturedCommits {
    std::vector<std::string> statements;
    bool overflowed = false;
  };

  /// Starts (or stops) recording every committed transaction's statements
  /// into an in-memory capture buffer, drained with
  /// drain_captured_commits(). Like the rest of Database this is externally
  /// synchronized: toggle and drain under the same gate that serializes
  /// commits.
  void set_commit_capture(bool enabled);
  /// Returns and clears the capture buffer (statements in commit order).
  CapturedCommits drain_captured_commits();

  /// Deep-copies the tables and rowid state into a standalone read-only
  /// snapshot (no journal, no home path, capture off). Statement replay on
  /// the clone is deterministic against the original — the same property
  /// WAL replay relies on. Throws DbError inside an open transaction.
  Database clone_snapshot() const;

 private:
  ResultSet execute_statement(const Statement& statement);
  bool statement_mutates(const Statement& statement) const;
  /// Moves the committed transaction's statements into the capture buffer
  /// (when capture is on). Call after the journal accepted the record and
  /// before the transaction state is cleared.
  void capture_committed_statements();
  /// Transaction bookkeeping: capture enough pre-image state to undo a
  /// mutation of `name`. note_insert records an append baseline (cheap);
  /// note_overwrite snapshots the whole table (update/delete/index/drop).
  void note_insert(const std::string& name);
  void note_overwrite(const std::string& name);
  ResultSet run_select(const SelectStmt& stmt,
                       const std::vector<Value>& params);
  ResultSet run_explain(const ExplainStmt& stmt,
                        const std::vector<Value>& params);
  void run_insert(const InsertStmt& stmt);
  void run_update(const UpdateStmt& stmt);
  void run_delete(const DeleteStmt& stmt);
  void check_foreign_keys(const TableSchema& schema, const Row& row);
  void check_no_references(const std::string& table, const Value& key,
                           const std::string& key_column);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::int64_t last_insert_rowid_ = 0;
  bool planning_enabled_ = true;

  /// Explicit-transaction state. Inserts only append, so they roll back by
  /// truncating to the baseline; destructive statements snapshot the whole
  /// table once (first touch) and roll back by restoring it.
  struct InsertBaseline {
    std::size_t rows = 0;
    std::int64_t next_rowid = 1;
  };
  bool in_transaction_ = false;
  std::vector<std::string> txn_statements_;
  std::map<std::string, InsertBaseline> txn_insert_baselines_;
  std::map<std::string, std::unique_ptr<Table>> txn_snapshots_;
  std::vector<std::string> txn_created_tables_;
  std::int64_t txn_last_insert_rowid_ = 0;

  std::unique_ptr<Journal> journal_;
  std::string home_path_;  // the file open() loaded; save() there checkpoints
  std::uint64_t journal_epoch_ = 0;  // seq folded into the last dump

  /// Commit-capture state (see set_commit_capture). The cap bounds memory
  /// when nobody drains; past it the buffer is discarded and `overflowed`
  /// reported, forcing the consumer to rebuild from a dump.
  static constexpr std::size_t kCaptureCapBytes = 4u << 20;
  bool capture_enabled_ = false;
  bool capture_overflowed_ = false;
  std::size_t captured_bytes_ = 0;
  std::vector<std::string> captured_;
};

}  // namespace iokc::db
