// The embedded relational database: executes the SQL subset against typed
// tables with primary/foreign-key enforcement and secondary indexes, and
// persists itself as a SQL dump (the same way `sqlite3 .dump` round-trips a
// database). This is the substrate the paper's persistence phase plugs into
// in place of SQLite.
#pragma once

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/db/sql.hpp"
#include "src/db/table.hpp"

namespace iokc::db {

/// Rows returned by a SELECT.
struct ResultSet {
  std::vector<std::string> columns;
  std::vector<Row> rows;

  bool empty() const { return rows.empty(); }
  std::size_t size() const { return rows.size(); }
  /// Value at (row, column name); throws DbError for unknown columns.
  const Value& at(std::size_t row, const std::string& column) const;
  /// Renders an aligned text table (the CLI knowledge viewer output).
  std::string render_table() const;
  /// Renders CSV (header + rows).
  std::string render_csv() const;
};

/// The database.
class Database {
 public:
  Database() = default;

  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Parses and executes one statement. SELECT fills the returned ResultSet;
  /// other statements return an empty set.
  ResultSet execute(std::string_view sql);

  /// Executes a ';'-separated script (errors abort at the failing statement).
  void execute_script(std::string_view script);

  /// Primary key assigned by the most recent INSERT.
  std::int64_t last_insert_rowid() const { return last_insert_rowid_; }

  bool has_table(const std::string& name) const;
  Table& require_table(const std::string& name);
  const Table& require_table(const std::string& name) const;
  std::vector<std::string> table_names() const;

  /// Serializes the database as an executable SQL script.
  std::string dump() const;
  /// Writes dump() to a file; throws IoError on failure.
  void save(const std::string& path) const;
  /// Loads a dump written by save(). Throws IoError / ParseError / DbError.
  static Database load(const std::string& path);
  /// Loads `path` when it exists, otherwise returns an empty database.
  static Database open(const std::string& path);

 private:
  ResultSet execute_statement(const Statement& statement);
  ResultSet run_select(const SelectStmt& stmt);
  void run_insert(const InsertStmt& stmt);
  void run_update(const UpdateStmt& stmt);
  void run_delete(const DeleteStmt& stmt);
  void check_foreign_keys(const TableSchema& schema, const Row& row);
  void check_no_references(const std::string& table, const Value& key,
                           const std::string& key_column);

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::int64_t last_insert_rowid_ = 0;
};

}  // namespace iokc::db
