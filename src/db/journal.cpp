#include "src/db/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/strings.hpp"

namespace iokc::db {

namespace {

constexpr std::string_view kFileHeader = "#iokc-journal v1\n";

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw IoError("failed writing journal " + path + ": " +
                    // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::string journal_path_for(const std::string& db_path) {
  return db_path + "-journal";
}

Journal::Journal(std::string path, std::uint64_t last_seq)
    : path_(std::move(path)), last_seq_(last_seq) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Journal::ensure_open() {
  if (fd_ >= 0) {
    return;
  }
  // The journal lives beside a database file that may not have been saved
  // yet, so its directory may not exist either.
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("cannot open journal " + path_ + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    write_all(fd_, kFileHeader, path_);
  }
}

void Journal::append(const std::vector<std::string>& statements) {
  const util::LockGuard lock(mutex_);
  ensure_open();
  std::string payload;
  for (const std::string& statement : statements) {
    payload += statement;
    payload += ";\n";
  }
  const std::uint64_t seq = last_seq_ + 1;
  char checksum[24];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  std::string head = "#txn " + std::to_string(seq) + " " +
                     std::to_string(payload.size()) + " " + checksum + "\n";
  // Two writes on purpose: a crash between them leaves a record with no end
  // marker, which read_records treats as a torn tail and discards.
  write_all(fd_, head + payload, path_);
  util::fault_point("journal.append.torn");
  write_all(fd_, "#end " + std::to_string(seq) + "\n", path_);
  util::fault_point("journal.append.unsynced");
  // iokc-lint: allow(blocking-under-lock): WAL durability contract -- the
  // commit must not return before its record is on disk. Group commit
  // (ROADMAP item 1) will amortize this fsync across transactions.
  if (::fsync(fd_) != 0) {
    throw IoError("fsync failed for journal " + path_ + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  last_seq_ = seq;
  util::fault_point("journal.append.committed");
}

void Journal::checkpoint() {
  const util::LockGuard lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!std::filesystem::exists(path_)) {
    return;  // never appended; nothing to truncate
  }
  util::fault_point("journal.checkpoint.pre");
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw IoError("cannot truncate journal " + path_ + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  try {
    write_all(fd, kFileHeader, path_);
    // iokc-lint: allow(blocking-under-lock): checkpoint truncation must be
    // durable before save() declares the journal epoch folded into the dump.
    if (::fsync(fd) != 0) {
      throw IoError("fsync failed for journal " + path_ + ": " +
                    // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  util::fault_point("journal.checkpoint.done");
}

std::vector<JournalRecord> Journal::read_records(const std::string& path) {
  std::vector<JournalRecord> records;
  if (!std::filesystem::exists(path)) {
    return records;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read journal " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();

  std::size_t pos = 0;
  auto next_line = [&](std::string& line) -> bool {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      return false;  // no terminating newline: torn
    }
    line = text.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string line;
  if (!next_line(line) || line != "#iokc-journal v1") {
    return records;  // empty, torn, or foreign file: no valid records
  }
  std::uint64_t previous_seq = 0;
  while (pos < text.size()) {
    if (!next_line(line) || !util::starts_with(line, "#txn ")) {
      break;
    }
    std::uint64_t seq = 0;
    std::size_t nbytes = 0;
    unsigned long long checksum = 0;
    {
      unsigned long long seq_v = 0;
      unsigned long long nbytes_v = 0;
      if (std::sscanf(line.c_str(), "#txn %llu %llu %llx", &seq_v, &nbytes_v,
                      &checksum) != 3) {
        break;
      }
      seq = seq_v;
      nbytes = static_cast<std::size_t>(nbytes_v);
    }
    if (seq <= previous_seq && previous_seq != 0) {
      break;  // sequence must increase; anything else is corruption
    }
    if (pos + nbytes > text.size()) {
      break;  // torn payload
    }
    const std::string_view payload(text.data() + pos, nbytes);
    pos += nbytes;
    if (fnv1a64(payload) != checksum) {
      break;
    }
    if (!next_line(line) || line != "#end " + std::to_string(seq)) {
      break;
    }
    JournalRecord record;
    record.seq = seq;
    // Statements were written one per line, ';'-terminated; re-split with
    // the raw text preserved (the SQL layer re-parses on replay).
    std::string fragment;
    bool in_string = false;
    for (const char c : payload) {
      if (c == '\'') {
        in_string = !in_string;
        fragment += c;
      } else if (c == ';' && !in_string) {
        if (!util::trim(fragment).empty()) {
          // Drop the "\n" separators append() wrote between statements.
          record.statements.emplace_back(util::trim(fragment));
        }
        fragment.clear();
      } else {
        fragment += c;
      }
    }
    if (!util::trim(fragment).empty()) {
      record.statements.emplace_back(util::trim(fragment));
    }
    previous_seq = seq;
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace iokc::db
