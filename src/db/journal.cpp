#include "src/db/journal.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/strings.hpp"

namespace iokc::db {

namespace {

constexpr std::string_view kFileHeader = "#iokc-journal v1\n";

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw IoError("failed writing journal " + path + ": " +
                    // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

std::uint64_t fnv1a64(std::string_view data) {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : data) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

std::string journal_path_for(const std::string& db_path) {
  return db_path + "-journal";
}

Journal::Journal(std::string path, std::uint64_t last_seq)
    : path_(std::move(path)), last_seq_(last_seq), durable_seq_(last_seq) {}

Journal::~Journal() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

void Journal::ensure_open() {
  if (fd_ >= 0) {
    return;
  }
  // The journal lives beside a database file that may not have been saved
  // yet, so its directory may not exist either.
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0) {
    throw IoError("cannot open journal " + path_ + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  struct ::stat st {};
  if (::fstat(fd_, &st) == 0 && st.st_size == 0) {
    write_all(fd_, kFileHeader, path_);
  }
}

std::uint64_t Journal::stage(const std::vector<std::string>& statements) {
  std::string payload;
  for (const std::string& statement : statements) {
    payload += statement;
    payload += ";\n";
  }
  char checksum[24];
  std::snprintf(checksum, sizeof checksum, "%016llx",
                static_cast<unsigned long long>(fnv1a64(payload)));
  const util::LockGuard lock(mutex_);
  if (poisoned_) {
    throw IoError("journal " + path_ +
                  " is poisoned by an earlier flush failure: " +
                  poison_error_);
  }
  const std::uint64_t seq = ++last_seq_;
  StagedRecord record;
  record.seq = seq;
  record.body = "#txn " + std::to_string(seq) + " " +
                std::to_string(payload.size()) + " " + checksum + "\n";
  record.body += payload;
  record.end_marker = "#end " + std::to_string(seq) + "\n";
  if (ship_sink_) {
    record.statements = statements;
  }
  staged_.push_back(std::move(record));
  return seq;
}

void Journal::set_ship_sink(ShipSink sink) {
  const util::LockGuard lock(mutex_);
  ship_sink_ = std::move(sink);
}

void Journal::wait_durable(std::uint64_t seq) {
  util::UniqueLock lock(mutex_);
  while (durable_seq_ < seq) {
    if (poisoned_) {
      throw IoError("journal " + path_ +
                    " flush failed; the record may be torn on disk: " +
                    poison_error_);
    }
    if (flush_in_progress_) {
      // A leader is flushing; it notifies when durable_seq_ advances (or
      // the journal is poisoned), and the loop re-evaluates.
      durable_cv_.wait(lock);
      continue;
    }
    if (staged_.empty()) {
      throw IoError("journal " + path_ + ": waiting for sequence " +
                    std::to_string(seq) + " which was never staged");
    }
    // Become the batch leader: take everything staged so far and flush it
    // with the mutex released, so later committers can keep staging (they
    // form the next batch).
    ensure_open();
    const int fd = fd_;
    std::vector<StagedRecord> batch;
    batch.swap(staged_);
    const std::uint64_t batch_high = batch.back().seq;
    const ShipSink ship = ship_sink_;
    flush_in_progress_ = true;
    lock.unlock();
    std::string flush_error;
    try {
      flush_batch(fd, batch, path_);
    } catch (const IoError& error) {
      flush_error = error.what();
    }
    if (flush_error.empty() && ship) {
      // Hand the durable batch to replication while the flush window is
      // still held: the next leader cannot start until flush_in_progress_
      // clears, so sink calls are serialized and strictly seq-ordered
      // without holding the journal mutex. Shipping failures must not
      // poison the journal — a replica that misses a batch resubscribes
      // and catches up from a dump.
      std::vector<JournalRecord> shipped;
      shipped.reserve(batch.size());
      for (StagedRecord& record : batch) {
        JournalRecord out;
        out.seq = record.seq;
        out.statements = std::move(record.statements);
        shipped.push_back(std::move(out));
      }
      try {
        ship(shipped);
      } catch (...) {
        // Swallowed by design; see above.
      }
    }
    lock.lock();
    flush_in_progress_ = false;
    if (flush_error.empty()) {
      durable_seq_ = batch_high;
    } else {
      // A torn batch makes every later append unreachable by replay (it
      // stops at the first invalid record), so fail all current and future
      // waiters instead of silently acknowledging lost writes.
      poisoned_ = true;
      poison_error_ = flush_error;
    }
    durable_cv_.notify_all();
  }
}

void Journal::append(const std::vector<std::string>& statements) {
  wait_durable(stage(statements));
}

// The fault points mirror the per-record crash windows the crashtest kills
// at: "torn" between a record's body and end marker, "unsynced" after the
// record is fully written but before the batch fsync, and "committed" once
// per durable batch.
void Journal::flush_batch(int fd, const std::vector<StagedRecord>& batch,
                          const std::string& path) {
  for (const StagedRecord& record : batch) {
    // Two writes on purpose: a crash between them leaves a record with no
    // end marker, which read_records treats as a torn tail and discards.
    write_all(fd, record.body, path);
    util::fault_point("journal.append.torn");
    write_all(fd, record.end_marker, path);
    util::fault_point("journal.append.unsynced");
  }
  if (::fsync(fd) != 0) {
    throw IoError("fsync failed for journal " + path + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  util::fault_point("journal.append.committed");
}

void Journal::checkpoint() {
  util::UniqueLock lock(mutex_);
  while (flush_in_progress_) {
    durable_cv_.wait(lock);
  }
  // Staged-but-unflushed records are folded into the dump the caller just
  // wrote (save() reads last_seq() while holding the single-writer gate),
  // so they are durable via the dump and must NOT be flushed after the
  // truncation — their sequence numbers are covered by the new epoch.
  staged_.clear();
  durable_seq_ = last_seq_;
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!std::filesystem::exists(path_)) {
    return;  // never flushed; nothing to truncate
  }
  util::fault_point("journal.checkpoint.pre");
  const int fd =
      ::open(path_.c_str(), O_WRONLY | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    throw IoError("cannot truncate journal " + path_ + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  try {
    write_all(fd, kFileHeader, path_);
    // iokc-lint: allow(blocking-under-lock): cold path — checkpoint runs
    // under save(), not per commit. The truncation must be durable before
    // save() declares the journal epoch folded into the dump, and it must
    // be ordered against concurrent flush leaders, so the fsync stays
    // inside the critical section.
    if (::fsync(fd) != 0) {
      throw IoError("fsync failed for journal " + path_ + ": " +
                    // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);
  util::fault_point("journal.checkpoint.done");
}

namespace {

/// Scans journal text into records, stopping at the first invalid record.
/// `valid_end` receives the byte offset just past the last fully valid
/// element (end marker, or header line when no record is valid) — the
/// length the file must be truncated to before it is appended to again.
std::vector<JournalRecord> scan_records(const std::string& text,
                                        std::size_t& valid_end) {
  std::vector<JournalRecord> records;
  valid_end = 0;
  std::size_t pos = 0;
  auto next_line = [&](std::string& line) -> bool {
    const std::size_t end = text.find('\n', pos);
    if (end == std::string::npos) {
      return false;  // no terminating newline: torn
    }
    line = text.substr(pos, end - pos);
    pos = end + 1;
    return true;
  };

  std::string line;
  if (!next_line(line) || line != "#iokc-journal v1") {
    return records;  // empty, torn, or foreign file: no valid records
  }
  valid_end = pos;
  std::uint64_t previous_seq = 0;
  while (pos < text.size()) {
    if (!next_line(line) || !util::starts_with(line, "#txn ")) {
      break;
    }
    std::uint64_t seq = 0;
    std::size_t nbytes = 0;
    unsigned long long checksum = 0;
    {
      unsigned long long seq_v = 0;
      unsigned long long nbytes_v = 0;
      if (std::sscanf(line.c_str(), "#txn %llu %llu %llx", &seq_v, &nbytes_v,
                      &checksum) != 3) {
        break;
      }
      seq = seq_v;
      nbytes = static_cast<std::size_t>(nbytes_v);
    }
    if (seq <= previous_seq && previous_seq != 0) {
      break;  // sequence must increase; anything else is corruption
    }
    if (pos + nbytes > text.size()) {
      break;  // torn payload
    }
    const std::string_view payload(text.data() + pos, nbytes);
    pos += nbytes;
    if (fnv1a64(payload) != checksum) {
      break;
    }
    if (!next_line(line) || line != "#end " + std::to_string(seq)) {
      break;
    }
    JournalRecord record;
    record.seq = seq;
    // Statements were written one per line, ';'-terminated; re-split with
    // the raw text preserved (the SQL layer re-parses on replay).
    std::string fragment;
    bool in_string = false;
    for (const char c : payload) {
      if (c == '\'') {
        in_string = !in_string;
        fragment += c;
      } else if (c == ';' && !in_string) {
        if (!util::trim(fragment).empty()) {
          // Drop the "\n" separators stage() wrote between statements.
          record.statements.emplace_back(util::trim(fragment));
        }
        fragment.clear();
      } else {
        fragment += c;
      }
    }
    if (!util::trim(fragment).empty()) {
      record.statements.emplace_back(util::trim(fragment));
    }
    previous_seq = seq;
    valid_end = pos;  // this record is whole: the valid prefix grows past it
    records.push_back(std::move(record));
  }
  return records;
}

/// The whole journal file as a string; empty optional when it is absent.
std::optional<std::string> read_journal_text(const std::string& path) {
  if (!std::filesystem::exists(path)) {
    return std::nullopt;
  }
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read journal " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

std::vector<JournalRecord> Journal::read_records(const std::string& path) {
  const std::optional<std::string> text = read_journal_text(path);
  if (!text.has_value()) {
    return {};
  }
  std::size_t valid_end = 0;
  return scan_records(*text, valid_end);
}

void Journal::truncate_torn_tail(const std::string& path) {
  const std::optional<std::string> text = read_journal_text(path);
  if (!text.has_value()) {
    return;
  }
  std::size_t valid_end = 0;
  (void)scan_records(*text, valid_end);
  if (valid_end >= text->size()) {
    return;  // the file ends cleanly at a record boundary
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open journal " + path + " for tail repair: " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<::off_t>(valid_end)) != 0) {
    const int saved = errno;
    ::close(fd);
    throw IoError("cannot truncate torn journal tail of " + path + ": " +
                  // NOLINTNEXTLINE(concurrency-mt-unsafe): message formatting
                  std::strerror(saved));
  }
  // Make the repair durable before any new record is appended at the cut:
  // a re-crash must see either the torn tail (repaired again) or the clean
  // boundary — never a new record beyond a resurrected tear.
  ::fsync(fd);
  ::close(fd);
}

}  // namespace iokc::db
