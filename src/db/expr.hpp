// WHERE-clause expression AST and evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/value.hpp"

namespace iokc::db {

/// Name -> value binding for one candidate row. Column names may be bare
/// ("id") or qualified ("performances.id"); both are registered when rows of
/// joined tables are evaluated. Prepared-statement parameters (`?`) resolve
/// through set_params — the binding is per-execution, not per-row, so one
/// parameter vector serves every row of a statement.
class EvalContext {
 public:
  void bind(const std::string& name, const Value* value);
  /// Resolves a column reference; throws DbError for unknown or ambiguous
  /// names (a name bound twice with different slots is ambiguous).
  const Value& lookup(const std::string& name) const;

  /// Binds the positional parameter values for this execution (not owned;
  /// must outlive the context).
  void set_params(const std::vector<Value>* params) { params_ = params; }
  /// The value behind parameter `ordinal` (0-based); throws DbError when
  /// the statement has more `?` markers than bound values.
  const Value& param(std::size_t ordinal) const;

 private:
  std::vector<std::pair<std::string, const Value*>> bindings_;
  const std::vector<Value>* params_ = nullptr;
};

/// Expression node.
struct Expr {
  enum class Kind { kLiteral, kColumn, kParam, kBinary, kNot };
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

  Kind kind = Kind::kLiteral;
  Value literal;                 // kLiteral
  std::string column;            // kColumn
  std::size_t param_index = 0;   // kParam: 0-based `?` ordinal
  Op op = Op::kEq;               // kBinary
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;  // also the operand of kNot

  /// Evaluates to a Value (comparisons/logic yield INTEGER 0/1).
  Value evaluate(const EvalContext& context) const;
  /// Evaluates and interprets as a condition (NULL and 0 are false).
  bool evaluate_bool(const EvalContext& context) const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_literal(Value value);
ExprPtr make_column(std::string name);
ExprPtr make_param(std::size_t ordinal);
ExprPtr make_binary(Expr::Op op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_not(ExprPtr operand);

/// Number of positional `?` parameters the expression tree references
/// (max ordinal + 1; 0 for expr == nullptr or no parameters).
std::size_t expr_param_count(const Expr* expr);

}  // namespace iokc::db
