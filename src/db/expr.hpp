// WHERE-clause expression AST and evaluation.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/db/value.hpp"

namespace iokc::db {

/// Name -> value binding for one candidate row. Column names may be bare
/// ("id") or qualified ("performances.id"); both are registered when rows of
/// joined tables are evaluated.
class EvalContext {
 public:
  void bind(const std::string& name, const Value* value);
  /// Resolves a column reference; throws DbError for unknown or ambiguous
  /// names (a name bound twice with different slots is ambiguous).
  const Value& lookup(const std::string& name) const;

 private:
  std::vector<std::pair<std::string, const Value*>> bindings_;
};

/// Expression node.
struct Expr {
  enum class Kind { kLiteral, kColumn, kBinary, kNot };
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe, kAnd, kOr };

  Kind kind = Kind::kLiteral;
  Value literal;          // kLiteral
  std::string column;     // kColumn
  Op op = Op::kEq;        // kBinary
  std::unique_ptr<Expr> lhs;
  std::unique_ptr<Expr> rhs;  // also the operand of kNot

  /// Evaluates to a Value (comparisons/logic yield INTEGER 0/1).
  Value evaluate(const EvalContext& context) const;
  /// Evaluates and interprets as a condition (NULL and 0 are false).
  bool evaluate_bool(const EvalContext& context) const;
};

using ExprPtr = std::unique_ptr<Expr>;

ExprPtr make_literal(Value value);
ExprPtr make_column(std::string name);
ExprPtr make_binary(Expr::Op op, ExprPtr lhs, ExprPtr rhs);
ExprPtr make_not(ExprPtr operand);

/// If `expr` is a conjunction containing `column = <literal>` at the top
/// level, returns the literal (used by the index-lookup planner).
const Value* find_equality_literal(const Expr* expr, const std::string& column);

}  // namespace iokc::db
