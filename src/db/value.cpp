#include "src/db/value.hpp"

#include <cmath>
#include <cstdio>
#include <functional>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::db {

std::string to_string(ColumnType type) {
  switch (type) {
    case ColumnType::kInteger: return "INTEGER";
    case ColumnType::kReal: return "REAL";
    case ColumnType::kText: return "TEXT";
  }
  return "?";
}

ColumnType column_type_from_string(const std::string& text) {
  const std::string upper = util::to_lower(text);
  if (upper == "integer" || upper == "int") {
    return ColumnType::kInteger;
  }
  if (upper == "real" || upper == "double" || upper == "float") {
    return ColumnType::kReal;
  }
  if (upper == "text" || upper == "varchar" || upper == "string") {
    return ColumnType::kText;
  }
  throw DbError("unknown column type '" + text + "'");
}

std::int64_t Value::as_integer() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return *i;
  }
  throw DbError("value " + render() + " is not an integer");
}

double Value::as_real() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw DbError("value " + render() + " is not numeric");
}

const std::string& Value::as_text() const {
  if (const auto* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  throw DbError("value " + render() + " is not text");
}

bool Value::matches(ColumnType type) const {
  if (is_null()) {
    return true;  // nullability is checked separately
  }
  switch (type) {
    case ColumnType::kInteger: return is_integer();
    case ColumnType::kReal: return is_real() || is_integer();
    case ColumnType::kText: return is_text();
  }
  return false;
}

Value Value::coerce(ColumnType type) const {
  if (is_null()) {
    return Value();
  }
  if (type == ColumnType::kReal && is_integer()) {
    return Value(static_cast<double>(as_integer()));
  }
  if (!matches(type)) {
    throw DbError("cannot store " + render() + " in a " + to_string(type) +
                  " column");
  }
  // Non-finite doubles render as "nan"/"inf", which the SQL parser rejects —
  // a stored one would make the dump unloadable. Refuse at the door so every
  // dump round-trips.
  if (is_real() && !std::isfinite(as_real())) {
    throw DbError("non-finite REAL value (" + render_raw() +
                  ") cannot be stored");
  }
  return *this;
}

std::string Value::render() const {
  if (is_null()) {
    return "NULL";
  }
  if (is_text()) {
    return "'" + util::replace_all(as_text(), "'", "''") + "'";
  }
  return render_raw();
}

std::string Value::render_raw() const {
  if (is_null()) {
    return "";
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return std::to_string(*i);
  }
  if (const auto* d = std::get_if<double>(&value_)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.17g", *d);
    return buf;
  }
  return as_text();
}

namespace {

int type_rank(const Value& v) {
  if (v.is_null()) {
    return 0;
  }
  if (v.is_integer() || v.is_real()) {
    return 1;
  }
  return 2;
}

}  // namespace

std::partial_ordering Value::operator<=>(const Value& other) const {
  const int lhs_rank = type_rank(*this);
  const int rhs_rank = type_rank(other);
  if (lhs_rank != rhs_rank) {
    return lhs_rank <=> rhs_rank;
  }
  switch (lhs_rank) {
    case 0:
      return std::partial_ordering::equivalent;
    case 1: {
      if (is_integer() && other.is_integer()) {
        return as_integer() <=> other.as_integer();
      }
      return as_real() <=> other.as_real();
    }
    default:
      return as_text() <=> other.as_text();
  }
}

bool Value::operator==(const Value& other) const {
  return (*this <=> other) == std::partial_ordering::equivalent;
}

std::size_t Value::hash() const {
  if (is_null()) {
    return 0x9E3779B9u;
  }
  if (is_text()) {
    return std::hash<std::string>{}(as_text());
  }
  // Integers and equal-valued reals must hash identically.
  const double d = as_real();
  if (d == std::floor(d) && std::abs(d) < 1e18) {
    return std::hash<std::int64_t>{}(static_cast<std::int64_t>(d));
  }
  return std::hash<double>{}(d);
}

}  // namespace iokc::db
