// The write-ahead journal: every committed transaction's statements are
// appended to a sidecar log file (<db path>-journal) and fsynced before the
// commit returns, so a crash after commit never loses acknowledged writes.
// Database::open replays the journal on top of the last saved dump; save()
// checkpoints (records the replayed sequence number in the dump header and
// truncates the log).
//
// File format (text, length-prefixed and checksummed so a torn tail is
// detected, never misparsed):
//
//   #iokc-journal v1
//   #txn <seq> <payload bytes> <fnv1a-64 hex>
//   <payload: one ';'-terminated SQL statement per line>
//   #end <seq>
//   ...
//
// A record is valid only when the header, full payload, checksum, and end
// marker are all present and consistent; replay stops at the first invalid
// record (the torn tail a crash mid-append leaves behind). Sequence numbers
// are strictly increasing and never reset, so records already folded into a
// dump (seq <= the dump's journal-epoch) are skipped on replay.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::db {

/// One committed transaction as recovered from the log.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::vector<std::string> statements;
};

/// Append-side handle to a journal file. The file is created lazily on the
/// first append, so read-only databases never leave empty sidecars behind.
/// Thread-safe: appends from concurrent committers serialize on an internal
/// mutex (the owning Database object is externally synchronized, but shared
/// snapshot clones funnel into one primary journal).
class Journal {
 public:
  /// `last_seq` seeds the sequence counter (the highest sequence number
  /// already durable — from the dump epoch or a replayed record).
  Journal(std::string path, std::uint64_t last_seq);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }
  std::uint64_t last_seq() const IOKC_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return last_seq_;
  }

  /// Appends one transaction record and fsyncs; the statements are durable
  /// when this returns. Throws IoError on failure.
  void append(const std::vector<std::string>& statements)  // iokc-lint: blocking
      IOKC_EXCLUDES(mutex_);

  /// Truncates the log after its contents were checkpointed into a dump.
  /// The sequence counter keeps counting, so a crash that undoes the
  /// truncation (impossible) or leaves stale records is still safe: stale
  /// records have seq <= the dump epoch and are skipped on replay.
  void checkpoint() IOKC_EXCLUDES(mutex_);  // iokc-lint: blocking

  /// Reads every valid record, stopping silently at a torn or corrupt tail.
  /// A missing file yields no records. Throws IoError when the file exists
  /// but cannot be read.
  static std::vector<JournalRecord> read_records(const std::string& path);

 private:
  void ensure_open() IOKC_REQUIRES(mutex_);

  std::string path_;
  mutable util::Mutex mutex_{util::LockRank::kDb, "db.journal"};
  std::uint64_t last_seq_ IOKC_GUARDED_BY(mutex_);
  int fd_ IOKC_GUARDED_BY(mutex_) = -1;
};

/// The journal sidecar path for a database file.
std::string journal_path_for(const std::string& db_path);

/// FNV-1a 64-bit checksum (the record payload checksum).
std::uint64_t fnv1a64(std::string_view data);

}  // namespace iokc::db
