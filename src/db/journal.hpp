// The write-ahead journal: every committed transaction's statements are
// appended to a sidecar log file (<db path>-journal) and made durable before
// the commit is acknowledged, so a crash after commit never loses
// acknowledged writes. Database::open replays the journal on top of the last
// saved dump; save() checkpoints (records the replayed sequence number in
// the dump header and truncates the log).
//
// Durability uses *group commit*: stage() assigns a sequence number and
// buffers the fully formatted record in memory under the mutex (no I/O);
// wait_durable() blocks until that sequence is on disk. The first waiter to
// find no flush in progress becomes the batch leader — it takes every staged
// record, releases the mutex, writes them all, and issues ONE fsync for the
// whole batch; followers wait on a condition variable keyed by the durable
// sequence number. Under concurrent commit load the fsync cost is amortized
// across the batch; a lone committer degenerates to exactly the old
// fsync-per-commit behavior. append() is stage() + wait_durable().
//
// If a flush fails partway, the journal is poisoned: the file may end in a
// torn record, and replay stops at the first invalid record — appending more
// records after the tear would make durable-looking records unreachable.
// Every waiter for a non-durable sequence (and every later stage()) then
// fails with the original error.
//
// File format (text, length-prefixed and checksummed so a torn tail is
// detected, never misparsed):
//
//   #iokc-journal v1
//   #txn <seq> <payload bytes> <fnv1a-64 hex>
//   <payload: one ';'-terminated SQL statement per line>
//   #end <seq>
//   ...
//
// A record is valid only when the header, full payload, checksum, and end
// marker are all present and consistent; replay stops at the first invalid
// record (the torn tail a crash mid-append leaves behind). Sequence numbers
// are strictly increasing and never reset, so records already folded into a
// dump (seq <= the dump's journal-epoch) are skipped on replay.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::db {

/// One committed transaction as recovered from the log.
struct JournalRecord {
  std::uint64_t seq = 0;
  std::vector<std::string> statements;
};

/// Append-side handle to a journal file. The file is created lazily on the
/// first flush, so read-only databases never leave empty sidecars behind.
/// Thread-safe: staging from concurrent committers serializes on an internal
/// mutex (the owning Database object is externally synchronized, but shared
/// snapshot clones funnel into one primary journal), and flushing follows
/// the leader/follower group-commit protocol described above.
class Journal {
 public:
  /// `last_seq` seeds the sequence counter (the highest sequence number
  /// already durable — from the dump epoch or a replayed record).
  Journal(std::string path, std::uint64_t last_seq);
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  const std::string& path() const { return path_; }

  /// The highest *assigned* sequence number. Staged-but-unflushed records
  /// count: callers that fold the journal into a dump (Database::save) hold
  /// the single-writer gate, so nothing is in flight when they read this.
  std::uint64_t last_seq() const IOKC_EXCLUDES(mutex_) {
    const util::LockGuard lock(mutex_);
    return last_seq_;
  }

  /// Stages one transaction record in the group-commit buffer and returns
  /// its sequence number. The record is formatted and sequenced but NOT yet
  /// durable — pair with wait_durable(seq) before acknowledging the commit.
  /// Performs no I/O. Throws IoError if the journal is poisoned.
  std::uint64_t stage(const std::vector<std::string>& statements)
      IOKC_EXCLUDES(mutex_);

  /// Blocks until every record with sequence <= `seq` is on disk, leading a
  /// batch flush if none is in progress. Throws IoError if the flush failed
  /// (the record may be torn on disk; the journal is poisoned).
  void wait_durable(std::uint64_t seq)  // iokc-lint: blocking
      IOKC_EXCLUDES(mutex_);

  /// stage() + wait_durable(): the statements are durable when this
  /// returns. Throws IoError on failure.
  void append(const std::vector<std::string>& statements)  // iokc-lint: blocking
      IOKC_EXCLUDES(mutex_);

  /// Receives every durable group-commit batch, in sequence order, exactly
  /// once. Called by the batch flush leader AFTER the batch fsync succeeded
  /// and with the journal mutex released — but while the flush window is
  /// still held, so deliveries never overlap or reorder. The sink must not
  /// re-enter the journal and must not block on replica acks (replication
  /// enqueues and returns; ack gating happens at the service layer).
  using ShipSink = std::function<void(const std::vector<JournalRecord>&)>;

  /// Installs (or clears) the ship sink. Install before the first commit is
  /// staged: records staged earlier carry no statement text and are never
  /// delivered (subscribers cover them via a dump bootstrap instead).
  void set_ship_sink(ShipSink sink) IOKC_EXCLUDES(mutex_);

  /// Truncates the log after its contents were checkpointed into a dump.
  /// Waits out any in-flight batch flush first; staged-but-unflushed records
  /// are dropped (the caller's dump already contains their effects — see
  /// Database::save). The sequence counter keeps counting, so stale records
  /// a crash leaves behind have seq <= the dump epoch and are skipped on
  /// replay.
  void checkpoint() IOKC_EXCLUDES(mutex_);  // iokc-lint: blocking

  /// Reads every valid record, stopping silently at a torn or corrupt tail.
  /// A missing file yields no records. Throws IoError when the file exists
  /// but cannot be read.
  static std::vector<JournalRecord> read_records(const std::string& path);

  /// Cuts a torn/corrupt tail off the journal so it ends exactly at the
  /// last valid record (durably: ftruncate + fsync). Recovery must run this
  /// before appending again: replay stops at the first invalid record, so a
  /// record appended after a leftover tear would be unreachable — the
  /// journal would acknowledge writes its own replay silently drops on the
  /// crash after next. No-op when the file is absent or ends cleanly.
  static void truncate_torn_tail(const std::string& path);  // iokc-lint: blocking

 private:
  /// One staged transaction, pre-formatted. The body (header line + payload)
  /// and end marker are kept separate so the flusher can place the torn-tail
  /// fault point between the two writes, mirroring the crash window. When a
  /// ship sink is installed the raw statement text rides along so the leader
  /// can hand durable batches to replication without re-parsing the payload.
  struct StagedRecord {
    std::uint64_t seq = 0;
    std::string body;
    std::string end_marker;
    std::vector<std::string> statements;
  };

  void ensure_open() IOKC_REQUIRES(mutex_);

  /// Writes one group-commit batch and issues a single fsync for all of it.
  /// Runs with the mutex RELEASED (the fd stays valid because the leader
  /// holds flush_in_progress_, which checkpoint() waits out).
  static void flush_batch(int fd, const std::vector<StagedRecord>& batch,
                          const std::string& path);

  std::string path_;
  mutable util::Mutex mutex_{util::LockRank::kDb, "db.journal"};
  std::condition_variable_any durable_cv_;
  std::uint64_t last_seq_ IOKC_GUARDED_BY(mutex_);
  std::uint64_t durable_seq_ IOKC_GUARDED_BY(mutex_);
  std::vector<StagedRecord> staged_ IOKC_GUARDED_BY(mutex_);
  bool flush_in_progress_ IOKC_GUARDED_BY(mutex_) = false;
  ShipSink ship_sink_ IOKC_GUARDED_BY(mutex_);
  bool poisoned_ IOKC_GUARDED_BY(mutex_) = false;
  std::string poison_error_ IOKC_GUARDED_BY(mutex_);
  int fd_ IOKC_GUARDED_BY(mutex_) = -1;
};

/// The journal sidecar path for a database file.
std::string journal_path_for(const std::string& db_path);

/// FNV-1a 64-bit checksum (the record payload checksum).
std::uint64_t fnv1a64(std::string_view data);

}  // namespace iokc::db
