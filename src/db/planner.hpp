// Cost-based access-path selection for single-table predicates.
//
// The planner looks only at top-level AND conjuncts of the WHERE clause of
// the shape `column <op> literal` (or `literal <op> column`, or a bound `?`
// parameter): equality conjuncts can probe a hash or ordered index, a
// </>/<=/>= conjunct can bound an ordered range scan. Everything else —
// OR trees, NOT, column-to-column comparisons — stays in the residual
// filter, so the candidate set an access path produces is always a
// *superset* of the matching rows and the executor re-applies the full
// WHERE to every candidate. Candidates come back in ascending row order,
// which makes an indexed plan's output byte-identical to the scan plan's
// (the property tests in tests/db/test_planner.cpp pin this down).
//
// Cost model (unit: rows visited; N = table rows, D = distinct index keys):
//   scan            N
//   hash equality   1 + N/D
//   ordered eq      log2(N+1) + N/D      (full key or leading prefix)
//   ordered range   log2(N+1) + max(1, N/4)  (fixed 25% selectivity)
// The cheapest path wins; ties break toward the earlier-created index.
// Selection rules and worked EXPLAIN examples live in DESIGN.md §5f.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/db/expr.hpp"
#include "src/db/table.hpp"
#include "src/db/value.hpp"

namespace iokc::db {

/// The chosen way to produce candidate rows for one table.
struct AccessPath {
  enum class Kind { kScan, kHashEq, kOrderedEq, kOrderedRange };

  Kind kind = Kind::kScan;
  std::string index_name;                 // empty for kScan
  std::vector<std::string> key_columns;   // equality prefix, key order
  std::vector<Value> key_values;          // bound values (coerced)
  std::string range_column;               // kOrderedRange only
  std::optional<Value> range_lower;
  std::optional<Value> range_upper;
  bool range_lower_inclusive = true;
  bool range_upper_inclusive = true;
  double cost = 0.0;            // estimated rows visited
  double estimated_rows = 0.0;  // estimated candidates produced
};

std::string to_string(AccessPath::Kind kind);

/// Renders the pushed-down predicate for EXPLAIN's `key` column, e.g.
/// "benchmark = 'IOR' AND num_nodes >= 4" (empty for kScan).
std::string describe_key(const AccessPath& path);

/// Chooses the cheapest access path for `table` under `where` (null = scan).
/// Column references may be bare or qualified with the table name; a bare
/// name that also exists in `other` (the join partner, may be null) is
/// ambiguous and never pushed down. `params` binds `?` markers so prepared
/// point lookups plan exactly like literal ones.
AccessPath choose_access(const Table& table, const Expr* where,
                         const std::vector<Value>& params,
                         const Table* other = nullptr);

/// Candidate row positions for `path`, strictly ascending (kScan = every
/// row). The caller still applies the full WHERE to each candidate.
std::vector<std::size_t> execute_access(const Table& table,
                                        const AccessPath& path);

}  // namespace iokc::db
