#include "src/db/table.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/error.hpp"

namespace iokc::db {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  if (schema_.columns.empty()) {
    throw DbError("table '" + schema_.name + "' has no columns");
  }
  // A PRIMARY KEY column is always indexed: uniqueness checks and FK
  // existence checks hit it on every insert.
  if (const auto pk = schema_.primary_key_index()) {
    create_index(schema_.columns[*pk].name);
  }
}

std::int64_t Table::insert(const std::vector<std::string>& columns,
                           Row values) {
  Row row(schema_.columns.size());
  if (columns.empty()) {
    if (values.size() != schema_.columns.size()) {
      throw DbError("INSERT into '" + schema_.name + "' expects " +
                    std::to_string(schema_.columns.size()) + " values, got " +
                    std::to_string(values.size()));
    }
    row = std::move(values);
  } else {
    if (columns.size() != values.size()) {
      throw DbError("INSERT column/value count mismatch for '" + schema_.name +
                    "'");
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      row[schema_.column_index(columns[i])] = std::move(values[i]);
    }
  }

  const auto pk = schema_.primary_key_index();
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& column = schema_.columns[i];
    // Auto-assign an INTEGER PRIMARY KEY left NULL.
    if (pk.has_value() && i == *pk && row[i].is_null() &&
        column.type == ColumnType::kInteger) {
      row[i] = Value(next_rowid_);
    }
    row[i] = row[i].coerce(column.type);
    if (row[i].is_null() && (column.not_null || column.primary_key)) {
      throw DbError("column '" + column.name + "' of '" + schema_.name +
                    "' must not be NULL");
    }
  }

  std::int64_t returned = static_cast<std::int64_t>(rows_.size());
  if (pk.has_value()) {
    const Value& key = row[*pk];
    if (!lookup(schema_.columns[*pk].name, key).empty()) {
      throw DbError("duplicate primary key " + key.render() + " in '" +
                    schema_.name + "'");
    }
    if (key.is_integer()) {
      returned = key.as_integer();
      next_rowid_ = std::max(next_rowid_, key.as_integer() + 1);
    }
  }

  IOKC_ASSERT(row.size() == schema_.columns.size());
  rows_.push_back(std::move(row));
  index_row(rows_.size() - 1);
  return returned;
}

void Table::create_index(IndexDef def) {
  if (def.columns.empty()) {
    throw DbError("CREATE INDEX on '" + schema_.name + "' needs columns");
  }
  if (has_index_named(def.name)) {
    throw DbError("index '" + def.name + "' already exists on '" +
                  schema_.name + "'");
  }
  std::vector<std::size_t> slots;
  slots.reserve(def.columns.size());
  for (const std::string& column : def.columns) {
    const std::size_t slot = schema_.column_index(column);  // validates
    if (std::find(slots.begin(), slots.end(), slot) != slots.end()) {
      throw DbError("index '" + def.name + "' lists column '" + column +
                    "' twice");
    }
    slots.push_back(slot);
  }
  SecondaryIndex index(std::move(def), std::move(slots));
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    index.add(rows_[r], r);
  }
  indexes_.push_back(std::move(index));
}

void Table::create_index(const std::string& column) {
  if (has_index(column)) {
    return;  // an existing leading-column index already serves lookups
  }
  IndexDef def;
  def.name = "auto_" + schema_.name + "_" + column;
  def.columns = {column};
  def.kind = IndexKind::kHash;
  def.implicit = true;
  create_index(std::move(def));
}

bool Table::has_index(const std::string& column) const {
  return index_for_column(column) != nullptr;
}

bool Table::has_index_named(const std::string& name) const {
  for (const SecondaryIndex& index : indexes_) {
    if (index.def().name == name) {
      return true;
    }
  }
  return false;
}

const SecondaryIndex* Table::index_for_column(const std::string& column) const {
  const SecondaryIndex* best = nullptr;
  for (const SecondaryIndex& index : indexes_) {
    if (index.def().columns.front() != column) {
      continue;
    }
    // A single-column index answers equality exactly; a composite one only
    // yields a prefix group (still correct, more postings to merge).
    if (index.def().columns.size() == 1) {
      return &index;
    }
    if (best == nullptr) {
      best = &index;
    }
  }
  return best;
}

std::vector<std::size_t> Table::lookup(const std::string& column,
                                       const Value& value) const {
  if (const SecondaryIndex* index = index_for_column(column)) {
    if (index->def().columns.size() == 1) {
      return index->equal({value});
    }
    // Composite ordered index: scan the leading-column prefix group. (A
    // composite *hash* index cannot answer a prefix probe.)
    if (index->kind() == IndexKind::kOrdered) {
      return index->prefix_scan({value}, nullptr, true, nullptr, true);
    }
  }
  std::vector<std::size_t> matches;
  const std::size_t col = schema_.column_index(column);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r][col] == value) {
      matches.push_back(r);
    }
  }
  return matches;
}

void Table::update_cell(std::size_t row, std::size_t column, Value value) {
  if (row >= rows_.size() || column >= schema_.columns.size()) {
    throw DbError("update_cell out of range on '" + schema_.name + "'");
  }
  const ColumnDef& def = schema_.columns[column];
  value = value.coerce(def.type);
  if (value.is_null() && (def.not_null || def.primary_key)) {
    throw DbError("column '" + def.name + "' of '" + schema_.name +
                  "' must not be NULL");
  }
  // Re-key every index touching this column: erase under the old key while
  // the row still holds it, mutate, then add under the new key.
  for (SecondaryIndex& index : indexes_) {
    if (index.uses_slot(column)) {
      index.erase(rows_[row], row);
    }
  }
  rows_[row][column] = std::move(value);
  for (SecondaryIndex& index : indexes_) {
    if (index.uses_slot(column)) {
      index.add(rows_[row], row);
    }
  }
}

void Table::remove_rows(const std::vector<std::size_t>& ascending_indices) {
  if (ascending_indices.empty()) {
    return;
  }
  // Validate up front so a bad index list leaves the table untouched.
  for (std::size_t i = 0; i < ascending_indices.size(); ++i) {
    if (ascending_indices[i] >= rows_.size()) {
      throw DbError("remove_rows index out of range on '" + schema_.name + "'");
    }
    if (i > 0 && ascending_indices[i] <= ascending_indices[i - 1]) {
      throw DbError("remove_rows indices must be strictly ascending on '" +
                    schema_.name + "'");
    }
  }
  // Single-pass compaction: shift each surviving row left over the gaps
  // instead of erasing one index at a time (which re-shifts the whole tail
  // per removal).
  std::size_t next_removed = 0;
  std::size_t write = ascending_indices.front();
  for (std::size_t r = ascending_indices.front(); r < rows_.size(); ++r) {
    if (next_removed < ascending_indices.size() &&
        ascending_indices[next_removed] == r) {
      ++next_removed;
      continue;
    }
    rows_[write] = std::move(rows_[r]);
    ++write;
  }
  rows_.resize(write);
  rebuild_indexes();
}

bool Table::contains(const std::string& column, const Value& value) const {
  return !lookup(column, value).empty();
}

void Table::truncate_rows(std::size_t count) {
  IOKC_CHECK(count <= rows_.size(),
             "truncate_rows beyond current row count");
  for (std::size_t r = rows_.size(); r-- > count;) {
    unindex_row(r);
    rows_.pop_back();
  }
}

void Table::rebuild_indexes() {
  for (SecondaryIndex& index : indexes_) {
    index.clear();
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      index.add(rows_[r], r);
    }
  }
}

void Table::index_row(std::size_t row) {
  IOKC_ASSERT(row < rows_.size());
  for (SecondaryIndex& index : indexes_) {
    index.add(rows_[row], row);
  }
  // Every index must stay in lockstep with the row store; a mismatch here
  // corrupts lookup() silently instead of failing fast.
  IOKC_CHECK(indexes_.empty() || indexes_.front().entries() == rows_.size(),
             "index out of sync with row store");
}

void Table::unindex_row(std::size_t row) {
  IOKC_ASSERT(row < rows_.size());
  for (SecondaryIndex& index : indexes_) {
    index.erase(rows_[row], row);
  }
}

}  // namespace iokc::db
