#include "src/db/table.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/error.hpp"

namespace iokc::db {

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  if (schema_.columns.empty()) {
    throw DbError("table '" + schema_.name + "' has no columns");
  }
  // A PRIMARY KEY column is always indexed: uniqueness checks and FK
  // existence checks hit it on every insert.
  if (const auto pk = schema_.primary_key_index()) {
    create_index(schema_.columns[*pk].name);
  }
}

std::int64_t Table::insert(const std::vector<std::string>& columns,
                           Row values) {
  Row row(schema_.columns.size());
  if (columns.empty()) {
    if (values.size() != schema_.columns.size()) {
      throw DbError("INSERT into '" + schema_.name + "' expects " +
                    std::to_string(schema_.columns.size()) + " values, got " +
                    std::to_string(values.size()));
    }
    row = std::move(values);
  } else {
    if (columns.size() != values.size()) {
      throw DbError("INSERT column/value count mismatch for '" + schema_.name +
                    "'");
    }
    for (std::size_t i = 0; i < columns.size(); ++i) {
      row[schema_.column_index(columns[i])] = std::move(values[i]);
    }
  }

  const auto pk = schema_.primary_key_index();
  for (std::size_t i = 0; i < row.size(); ++i) {
    const ColumnDef& column = schema_.columns[i];
    // Auto-assign an INTEGER PRIMARY KEY left NULL.
    if (pk.has_value() && i == *pk && row[i].is_null() &&
        column.type == ColumnType::kInteger) {
      row[i] = Value(next_rowid_);
    }
    row[i] = row[i].coerce(column.type);
    if (row[i].is_null() && (column.not_null || column.primary_key)) {
      throw DbError("column '" + column.name + "' of '" + schema_.name +
                    "' must not be NULL");
    }
  }

  std::int64_t returned = static_cast<std::int64_t>(rows_.size());
  if (pk.has_value()) {
    const Value& key = row[*pk];
    if (!lookup(schema_.columns[*pk].name, key).empty()) {
      throw DbError("duplicate primary key " + key.render() + " in '" +
                    schema_.name + "'");
    }
    if (key.is_integer()) {
      returned = key.as_integer();
      next_rowid_ = std::max(next_rowid_, key.as_integer() + 1);
    }
  }

  IOKC_ASSERT(row.size() == schema_.columns.size());
  rows_.push_back(std::move(row));
  index_row(rows_.size() - 1);
  return returned;
}

void Table::create_index(const std::string& column) {
  schema_.column_index(column);  // validates the name
  indexes_[column] = HashIndex{};
  const std::size_t col = schema_.column_index(column);
  HashIndex& index = indexes_[column];
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    index.emplace(rows_[r][col], r);
  }
}

bool Table::has_index(const std::string& column) const {
  return indexes_.contains(column);
}

std::vector<std::size_t> Table::lookup(const std::string& column,
                                       const Value& value) const {
  std::vector<std::size_t> matches;
  const auto index_it = indexes_.find(column);
  if (index_it != indexes_.end()) {
    const auto [begin, end] = index_it->second.equal_range(value);
    for (auto it = begin; it != end; ++it) {
      matches.push_back(it->second);
    }
    std::sort(matches.begin(), matches.end());
    return matches;
  }
  const std::size_t col = schema_.column_index(column);
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r][col] == value) {
      matches.push_back(r);
    }
  }
  return matches;
}

void Table::update_cell(std::size_t row, std::size_t column, Value value) {
  if (row >= rows_.size() || column >= schema_.columns.size()) {
    throw DbError("update_cell out of range on '" + schema_.name + "'");
  }
  const ColumnDef& def = schema_.columns[column];
  value = value.coerce(def.type);
  if (value.is_null() && (def.not_null || def.primary_key)) {
    throw DbError("column '" + def.name + "' of '" + schema_.name +
                  "' must not be NULL");
  }
  const auto index_it = indexes_.find(def.name);
  if (index_it != indexes_.end()) {
    auto [begin, end] = index_it->second.equal_range(rows_[row][column]);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row) {
        index_it->second.erase(it);
        break;
      }
    }
    index_it->second.emplace(value, row);
  }
  rows_[row][column] = std::move(value);
}

void Table::remove_rows(const std::vector<std::size_t>& ascending_indices) {
  if (ascending_indices.empty()) {
    return;
  }
  // Validate up front so a bad index list leaves the table untouched.
  for (std::size_t i = 0; i < ascending_indices.size(); ++i) {
    if (ascending_indices[i] >= rows_.size()) {
      throw DbError("remove_rows index out of range on '" + schema_.name + "'");
    }
    if (i > 0 && ascending_indices[i] <= ascending_indices[i - 1]) {
      throw DbError("remove_rows indices must be strictly ascending on '" +
                    schema_.name + "'");
    }
  }
  // Single-pass compaction: shift each surviving row left over the gaps
  // instead of erasing one index at a time (which re-shifts the whole tail
  // per removal).
  std::size_t next_removed = 0;
  std::size_t write = ascending_indices.front();
  for (std::size_t r = ascending_indices.front(); r < rows_.size(); ++r) {
    if (next_removed < ascending_indices.size() &&
        ascending_indices[next_removed] == r) {
      ++next_removed;
      continue;
    }
    rows_[write] = std::move(rows_[r]);
    ++write;
  }
  rows_.resize(write);
  rebuild_indexes();
}

bool Table::contains(const std::string& column, const Value& value) const {
  return !lookup(column, value).empty();
}

void Table::truncate_rows(std::size_t count) {
  IOKC_CHECK(count <= rows_.size(),
             "truncate_rows beyond current row count");
  for (std::size_t r = rows_.size(); r-- > count;) {
    unindex_row(r);
    rows_.pop_back();
  }
}

void Table::rebuild_indexes() {
  for (auto& [column, index] : indexes_) {
    index.clear();
    const std::size_t col = schema_.column_index(column);
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      index.emplace(rows_[r][col], r);
    }
  }
}

void Table::index_row(std::size_t row) {
  IOKC_ASSERT(row < rows_.size());
  for (auto& [column, index] : indexes_) {
    const std::size_t col = schema_.column_index(column);
    index.emplace(rows_[row][col], row);
  }
  // Every index must stay in lockstep with the row store; a mismatch here
  // corrupts lookup() silently instead of failing fast.
  IOKC_CHECK(indexes_.empty() || indexes_.begin()->second.size() == rows_.size(),
             "index out of sync with row store");
}

void Table::unindex_row(std::size_t row) {
  IOKC_ASSERT(row < rows_.size());
  for (auto& [column, index] : indexes_) {
    const std::size_t col = schema_.column_index(column);
    auto [begin, end] = index.equal_range(rows_[row][col]);
    for (auto it = begin; it != end; ++it) {
      if (it->second == row) {
        index.erase(it);
        break;
      }
    }
  }
}

}  // namespace iokc::db
