#include "src/db/index.hpp"

#include <algorithm>
#include <compare>

#include "src/util/check.hpp"
#include "src/util/error.hpp"

namespace iokc::db {

std::string to_string(IndexKind kind) {
  return kind == IndexKind::kHash ? "hash" : "ordered";
}

std::string render_create_index(const IndexDef& def,
                                const std::string& table) {
  std::string out = "CREATE INDEX " + def.name + " ON " + table + " (";
  for (std::size_t i = 0; i < def.columns.size(); ++i) {
    if (i != 0) {
      out += ", ";
    }
    out += def.columns[i];
  }
  out += ")";
  if (def.kind == IndexKind::kHash) {
    out += " USING HASH";
  }
  out += ";";
  return out;
}

bool SecondaryIndex::KeyLess::operator()(const IndexKey& a,
                                         const IndexKey& b) const {
  // Lexicographic over Value's total order (NULL < numbers < text). A
  // shorter key that is a prefix of a longer one sorts first, which is what
  // lower_bound with a partial (prefix) key relies on.
  const std::size_t n = std::min(a.size(), b.size());
  for (std::size_t i = 0; i < n; ++i) {
    const auto ordering = a[i] <=> b[i];
    if (ordering == std::partial_ordering::less) {
      return true;
    }
    if (ordering == std::partial_ordering::greater) {
      return false;
    }
  }
  return a.size() < b.size();
}

std::size_t SecondaryIndex::KeyHash::operator()(const IndexKey& key) const {
  std::size_t seed = key.size();
  for (const Value& value : key) {
    // boost::hash_combine's mixing constant; Value::hash already normalizes
    // integral REALs to the INTEGER hash, so 4 and 4.0 probe the same slot.
    seed ^= value.hash() + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  }
  return seed;
}

SecondaryIndex::SecondaryIndex(IndexDef def, std::vector<std::size_t> slots)
    : def_(std::move(def)), slots_(std::move(slots)) {
  IOKC_ASSERT(def_.columns.size() == slots_.size());
  if (def_.columns.empty()) {
    throw DbError("index '" + def_.name + "' has no columns");
  }
}

bool SecondaryIndex::uses_slot(std::size_t slot) const {
  return std::find(slots_.begin(), slots_.end(), slot) != slots_.end();
}

IndexKey SecondaryIndex::key_of(const Row& row) const {
  IndexKey key;
  key.reserve(slots_.size());
  for (const std::size_t slot : slots_) {
    IOKC_ASSERT(slot < row.size());
    key.push_back(row[slot]);
  }
  return key;
}

void SecondaryIndex::add(const Row& row, std::size_t position) {
  if (def_.kind == IndexKind::kOrdered) {
    ordered_[key_of(row)].push_back(position);
  } else {
    hashed_[key_of(row)].push_back(position);
  }
  ++entries_;
}

void SecondaryIndex::erase(const Row& row, std::size_t position) {
  auto drop = [&](auto& container) {
    const auto it = container.find(key_of(row));
    IOKC_CHECK(it != container.end(), "erase of unindexed key");
    auto& postings = it->second;
    const auto pos = std::find(postings.begin(), postings.end(), position);
    IOKC_CHECK(pos != postings.end(), "erase of unindexed row position");
    postings.erase(pos);
    if (postings.empty()) {
      container.erase(it);
    }
  };
  if (def_.kind == IndexKind::kOrdered) {
    drop(ordered_);
  } else {
    drop(hashed_);
  }
  --entries_;
}

void SecondaryIndex::clear() {
  ordered_.clear();
  hashed_.clear();
  entries_ = 0;
}

std::size_t SecondaryIndex::distinct_keys() const {
  return def_.kind == IndexKind::kOrdered ? ordered_.size() : hashed_.size();
}

std::vector<std::size_t> SecondaryIndex::equal(const IndexKey& key) const {
  std::vector<std::size_t> matches;
  if (def_.kind == IndexKind::kOrdered) {
    const auto it = ordered_.find(key);
    if (it != ordered_.end()) {
      matches = it->second;
    }
  } else {
    const auto it = hashed_.find(key);
    if (it != hashed_.end()) {
      matches = it->second;
    }
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

std::vector<std::size_t> SecondaryIndex::prefix_scan(
    const IndexKey& eq_prefix, const Value* lower, bool lower_inclusive,
    const Value* upper, bool upper_inclusive) const {
  if (def_.kind != IndexKind::kOrdered) {
    throw DbError("prefix_scan on hash index '" + def_.name + "'");
  }
  if (eq_prefix.size() >= slots_.size() && (lower || upper)) {
    throw DbError("range bound past the last column of '" + def_.name + "'");
  }
  // Seek: stored keys are full-length, so lower_bound with a shorter
  // (prefix) key lands on the first stored key whose leading columns are
  // >= the prefix (KeyLess orders a strict prefix before its extensions).
  IndexKey seek = eq_prefix;
  if (lower != nullptr) {
    seek.push_back(*lower);
  }
  const std::size_t bound_slot = eq_prefix.size();
  std::vector<std::size_t> matches;
  for (auto it = ordered_.lower_bound(seek); it != ordered_.end(); ++it) {
    const IndexKey& key = it->first;
    // Past the prefix group: every later key differs too.
    if (!std::equal(eq_prefix.begin(), eq_prefix.end(), key.begin(),
                    key.begin() + static_cast<std::ptrdiff_t>(bound_slot),
                    [](const Value& a, const Value& b) {
                      return (a <=> b) == std::partial_ordering::equivalent;
                    })) {
      break;
    }
    if (lower != nullptr || upper != nullptr) {
      const Value& bound_value = key[bound_slot];
      if (lower != nullptr && !lower_inclusive &&
          (bound_value <=> *lower) == std::partial_ordering::equivalent) {
        continue;  // exclusive lower: skip the boundary group
      }
      if (upper != nullptr) {
        const auto ordering = bound_value <=> *upper;
        if (ordering == std::partial_ordering::greater ||
            (!upper_inclusive &&
             ordering == std::partial_ordering::equivalent)) {
          break;
        }
      }
    }
    matches.insert(matches.end(), it->second.begin(), it->second.end());
  }
  std::sort(matches.begin(), matches.end());
  return matches;
}

}  // namespace iokc::db
