// Secondary indexes over table rows: an ordered (B-tree-style) index for
// range and prefix scans and a hash index for point lookups, both over
// composite keys. Indexes map a key (one Value per indexed column) to the
// positions of the rows holding it; they never own row data.
//
// Consistency contract: the owning Table mirrors every row mutation into
// every index (add on insert, erase-then-add on update, full rebuild on
// compaction), so an index always holds exactly one entry per row. Indexes
// are *derived* state — the journal and dumps record the CREATE INDEX
// statement, not index contents, and replaying the statements rebuilds the
// same structures (see DESIGN.md §5f).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/schema.hpp"
#include "src/db/value.hpp"

namespace iokc::db {

using Row = std::vector<Value>;
/// One composite key: the indexed columns' values in definition order.
using IndexKey = std::vector<Value>;

enum class IndexKind {
  kHash,     // equality over the full key only; O(1) probes
  kOrdered,  // sorted; supports prefix equality and range scans
};

std::string to_string(IndexKind kind);

/// An index definition as declared by CREATE INDEX (or implied by the
/// schema). `implicit` marks indexes the schema itself recreates (PRIMARY
/// KEY / REFERENCES columns); they are excluded from dumps because replaying
/// CREATE TABLE rebuilds them.
struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
  IndexKind kind = IndexKind::kOrdered;
  bool implicit = false;
};

/// Renders `CREATE INDEX name ON table (c1, c2) [USING HASH];` — the dump
/// and journal representation of an index.
std::string render_create_index(const IndexDef& def, const std::string& table);

/// One secondary index over a table's rows.
class SecondaryIndex {
 public:
  /// `slots` are the row positions of def.columns (precomputed by the
  /// owning table against its schema).
  SecondaryIndex(IndexDef def, std::vector<std::size_t> slots);

  const IndexDef& def() const { return def_; }
  IndexKind kind() const { return def_.kind; }
  /// Row slots of the indexed columns, in key order.
  const std::vector<std::size_t>& slots() const { return slots_; }
  bool uses_slot(std::size_t slot) const;

  void add(const Row& row, std::size_t position);
  void erase(const Row& row, std::size_t position);
  void clear();

  /// Indexed entries (== the table's row count when in sync).
  std::size_t entries() const { return entries_; }
  /// Distinct full keys currently present (the planner's selectivity input).
  std::size_t distinct_keys() const;

  /// Row positions whose full key equals `key`, ascending. Both kinds.
  std::vector<std::size_t> equal(const IndexKey& key) const;

  /// Ordered indexes only: row positions matching `eq_prefix` on the
  /// leading columns and, when given, a bound on the next column. Either
  /// bound may be null (open end). Positions ascending. Throws DbError on a
  /// hash index.
  std::vector<std::size_t> prefix_scan(const IndexKey& eq_prefix,
                                       const Value* lower,
                                       bool lower_inclusive,
                                       const Value* upper,
                                       bool upper_inclusive) const;

 private:
  struct KeyLess {
    bool operator()(const IndexKey& a, const IndexKey& b) const;
  };
  struct KeyHash {
    std::size_t operator()(const IndexKey& key) const;
  };

  IndexKey key_of(const Row& row) const;

  IndexDef def_;
  std::vector<std::size_t> slots_;
  std::size_t entries_ = 0;
  // Exactly one of these is populated, by kind. Postings are unsorted; the
  // lookup paths sort before returning (results stay small relative to N).
  std::map<IndexKey, std::vector<std::size_t>, KeyLess> ordered_;
  std::unordered_map<IndexKey, std::vector<std::size_t>, KeyHash> hashed_;
};

}  // namespace iokc::db
