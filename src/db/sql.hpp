// The SQL subset: lexer, statement AST, and recursive-descent parser.
//
// Supported statements (enough to host the paper's nine-table schema and the
// knowledge explorer's queries):
//   CREATE TABLE [IF NOT EXISTS] t (col TYPE [PRIMARY KEY] [NOT NULL]
//                                   [REFERENCES t2(col)], ...)
//   CREATE INDEX idx ON t (col)
//   INSERT INTO t [(cols)] VALUES (v, ...) [, (v, ...) ...]
//   SELECT *|cols FROM t [INNER JOIN t2 ON a = b] [WHERE expr]
//          [ORDER BY col [ASC|DESC], ...] [LIMIT n]
//   UPDATE t SET col = value, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   DROP TABLE [IF EXISTS] t
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "src/db/expr.hpp"
#include "src/db/schema.hpp"
#include "src/db/value.hpp"

namespace iokc::db {

struct CreateTableStmt {
  TableSchema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty -> all columns in order
  std::vector<std::vector<Value>> rows;
};

struct JoinClause {
  std::string table;
  std::string left_column;   // qualified or bare
  std::string right_column;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  std::vector<std::string> columns;  // empty -> "*"
  std::string table;
  std::optional<JoinClause> join;
  ExprPtr where;  // may be null
  std::vector<OrderBy> order_by;
  std::optional<std::size_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

using Statement = std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt,
                               SelectStmt, UpdateStmt, DeleteStmt,
                               DropTableStmt>;

/// Parses exactly one statement (a trailing ';' is allowed).
Statement parse_sql(std::string_view sql);

/// Splits on statement-terminating semicolons (string-literal aware) and
/// parses each; empty fragments are skipped.
std::vector<Statement> parse_sql_script(std::string_view script);

/// The splitting half of parse_sql_script: raw statement texts, unparsed
/// (the database's journal records statements at the text level).
std::vector<std::string> split_sql_script(std::string_view script);

/// True when the statement cannot change database state (today: SELECT).
/// The read-only gates of the knowledge service's `sql` endpoint and the
/// CLI `sql` verb both classify through here, so they can never disagree.
bool statement_is_read_only(const Statement& statement);

/// Parses `sql` and classifies it; ParseError propagates, so a statement
/// that fails to parse is neither accepted nor silently treated as a write.
bool sql_is_read_only(std::string_view sql);

}  // namespace iokc::db
