// The SQL subset: lexer, statement AST, recursive-descent parser, and a
// bounded parse cache for prepared statements.
//
// Supported statements (enough to host the paper's nine-table schema and the
// knowledge explorer's queries):
//   CREATE TABLE [IF NOT EXISTS] t (col TYPE [PRIMARY KEY] [NOT NULL]
//                                   [REFERENCES t2(col)], ...)
//   CREATE INDEX [IF NOT EXISTS] idx ON t (col, ...) [USING HASH|ORDERED]
//   INSERT INTO t [(cols)] VALUES (v, ...) [, (v, ...) ...]
//   SELECT *|cols FROM t [INNER JOIN t2 ON a = b] [WHERE expr]
//          [ORDER BY col [ASC|DESC], ...] [LIMIT n]
//   UPDATE t SET col = value, ... [WHERE expr]
//   DELETE FROM t [WHERE expr]
//   DROP TABLE [IF EXISTS] t
//   EXPLAIN <SELECT|UPDATE|DELETE>
//
// WHERE expressions may hold positional `?` parameters (prepared
// statements); values are bound at execution time through
// Database::execute_prepared.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <variant>
#include <vector>

#include "src/db/expr.hpp"
#include "src/db/index.hpp"
#include "src/db/schema.hpp"
#include "src/db/value.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::db {

struct CreateTableStmt {
  TableSchema schema;
  bool if_not_exists = false;
};

struct CreateIndexStmt {
  std::string index_name;
  std::string table;
  std::vector<std::string> columns;
  IndexKind kind = IndexKind::kOrdered;
  bool if_not_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;  // empty -> all columns in order
  std::vector<std::vector<Value>> rows;
};

struct JoinClause {
  std::string table;
  std::string left_column;   // qualified or bare
  std::string right_column;
};

struct OrderBy {
  std::string column;
  bool descending = false;
};

struct SelectStmt {
  std::vector<std::string> columns;  // empty -> "*"
  std::string table;
  std::optional<JoinClause> join;
  ExprPtr where;  // may be null
  std::vector<OrderBy> order_by;
  std::optional<std::size_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, Value>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

struct ExplainStmt;

using Statement = std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt,
                               SelectStmt, UpdateStmt, DeleteStmt,
                               DropTableStmt, ExplainStmt>;

/// EXPLAIN <stmt>: runs the planner over the inner statement and returns the
/// chosen plan as a result set instead of executing it (schema in DESIGN.md
/// §5f). The indirection is required — a variant cannot contain itself by
/// value — and shared because Statement is move-only (ExprPtr).
struct ExplainStmt {
  std::shared_ptr<const Statement> inner;
};

/// Parses exactly one statement (a trailing ';' is allowed).
Statement parse_sql(std::string_view sql);

/// Splits on statement-terminating semicolons (string-literal aware) and
/// parses each; empty fragments are skipped.
std::vector<Statement> parse_sql_script(std::string_view script);

/// The splitting half of parse_sql_script: raw statement texts, unparsed
/// (the database's journal records statements at the text level).
std::vector<std::string> split_sql_script(std::string_view script);

/// True when the statement cannot change database state (SELECT and
/// EXPLAIN). The read-only gates of the knowledge service's `sql` endpoint
/// and the CLI `sql` verb both classify through here, so they can never
/// disagree.
bool statement_is_read_only(const Statement& statement);

/// Parses `sql` and classifies it; ParseError propagates, so a statement
/// that fails to parse is neither accepted nor silently treated as a write.
bool sql_is_read_only(std::string_view sql);

/// Number of positional `?` parameters the statement needs bound.
std::size_t statement_param_count(const Statement& statement);

/// Bounded LRU cache of parsed statements, keyed by statement text. This is
/// the "prepare" half of prepared statements: the service's hot `sql` and
/// `knowledge get` endpoints fetch the parsed AST here and execute it with
/// Database::execute_prepared, skipping the parser on repeats. Thread-safe
/// (the service dispatches from several connection handlers); parsing runs
/// outside the lock so a slow parse never blocks concurrent hits.
class StatementCache {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  explicit StatementCache(std::size_t capacity = kDefaultCapacity);

  /// The parsed statement for `sql`, parsing and inserting on miss.
  /// ParseError propagates (never cached). The returned AST is shared and
  /// immutable — safe to execute from any number of threads.
  std::shared_ptr<const Statement> get(const std::string& sql)
      IOKC_EXCLUDES(mutex_);

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };
  Stats stats() const IOKC_EXCLUDES(mutex_);

 private:
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const Statement>>>;

  mutable util::Mutex mutex_{util::LockRank::kDb, "db.statement_cache"};
  std::size_t capacity_;
  LruList lru_ IOKC_GUARDED_BY(mutex_);  // front = most recent
  std::unordered_map<std::string, LruList::iterator> by_text_
      IOKC_GUARDED_BY(mutex_);
  Stats stats_ IOKC_GUARDED_BY(mutex_);
};

}  // namespace iokc::db
