// Table schemas: column definitions with primary-key, NOT NULL, and
// foreign-key (REFERENCES) constraints, serializable back to CREATE TABLE
// statements for database file persistence.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/db/value.hpp"

namespace iokc::db {

/// A REFERENCES constraint.
struct ForeignKey {
  std::string table;
  std::string column;
};

/// One column definition.
struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::kText;
  bool primary_key = false;
  bool not_null = false;
  std::optional<ForeignKey> references;
};

/// A table schema.
struct TableSchema {
  std::string name;
  std::vector<ColumnDef> columns;

  /// Index of a column by name; throws DbError when unknown.
  std::size_t column_index(const std::string& column) const;
  /// Index of a column by name; nullopt when unknown.
  std::optional<std::size_t> find_column(const std::string& column) const;
  /// Index of the PRIMARY KEY column; nullopt when the table has none.
  std::optional<std::size_t> primary_key_index() const;

  /// Renders "CREATE TABLE name (col TYPE PRIMARY KEY, ...);".
  std::string render_create() const;
};

}  // namespace iokc::db
