// Database values and column types (SQLite-flavoured: INTEGER, REAL, TEXT,
// plus NULL), with total ordering and text rendering.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

namespace iokc::db {

/// Column type.
enum class ColumnType { kInteger, kReal, kText };

std::string to_string(ColumnType type);
ColumnType column_type_from_string(const std::string& text);

/// A dynamically-typed cell value.
class Value {
 public:
  Value() : value_(nullptr) {}
  Value(std::nullptr_t) : value_(nullptr) {}
  Value(std::int64_t i) : value_(i) {}
  Value(int i) : value_(static_cast<std::int64_t>(i)) {}
  Value(double d) : value_(d) {}
  Value(const char* s) : value_(std::string(s)) {}
  Value(std::string s) : value_(std::move(s)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_integer() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_real() const { return std::holds_alternative<double>(value_); }
  bool is_text() const { return std::holds_alternative<std::string>(value_); }

  /// Typed accessors; throw DbError on type mismatch. as_real accepts
  /// integers (numeric affinity).
  std::int64_t as_integer() const;
  double as_real() const;
  const std::string& as_text() const;

  /// True if the value is compatible with (or coercible to) `type`.
  /// Integers are acceptable for REAL columns.
  bool matches(ColumnType type) const;
  /// Coerces to the column type (int->real); throws DbError when impossible.
  Value coerce(ColumnType type) const;

  /// SQL-ish rendering: NULL, 42, 3.14, 'text'.
  std::string render() const;
  /// Raw text (no quotes) for CSV export.
  std::string render_raw() const;

  /// Total ordering: NULL < numbers < text; numbers compare numerically
  /// across INTEGER/REAL.
  std::partial_ordering operator<=>(const Value& other) const;
  bool operator==(const Value& other) const;

  /// Stable hash consistent with operator== (for hash indexes).
  std::size_t hash() const;

 private:
  std::variant<std::nullptr_t, std::int64_t, double, std::string> value_;
};

}  // namespace iokc::db
