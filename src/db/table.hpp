// In-memory table storage: typed rows, auto-increment INTEGER PRIMARY KEY,
// uniqueness enforcement, and named secondary indexes (hash and ordered)
// kept in lockstep with every row mutation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/db/index.hpp"
#include "src/db/schema.hpp"
#include "src/db/value.hpp"

namespace iokc::db {

/// One table.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Inserts one row given a column list (empty = schema order). Missing
  /// columns become NULL; an INTEGER PRIMARY KEY left NULL is auto-assigned.
  /// Returns the row's primary-key value (or the row index when the table
  /// has no integer primary key). Enforces types, NOT NULL, and PK
  /// uniqueness; foreign keys are enforced by the Database.
  std::int64_t insert(const std::vector<std::string>& columns, Row values);

  /// Creates a named index from a CREATE INDEX definition and builds it
  /// over the existing rows. Throws DbError for unknown/duplicate columns
  /// or a name already used on this table.
  void create_index(IndexDef def);
  /// Creates an *implicit* single-column hash index (PRIMARY KEY and
  /// REFERENCES columns; excluded from dumps). No-op when an index already
  /// leads with `column`.
  void create_index(const std::string& column);
  /// True when any index's leading column is `column` (so equality lookups
  /// on it are indexed).
  bool has_index(const std::string& column) const;
  bool has_index_named(const std::string& name) const;
  const std::vector<SecondaryIndex>& indexes() const { return indexes_; }
  /// The index equality lookups on `column` resolve through (leading
  /// column == `column`), or nullptr. Single-column indexes win over
  /// composite ones.
  const SecondaryIndex* index_for_column(const std::string& column) const;

  /// Row indices whose `column` equals `value`, ascending; uses an index
  /// when one leads with the column, otherwise scans.
  std::vector<std::size_t> lookup(const std::string& column,
                                  const Value& value) const;

  /// Updates cell (row, column) maintaining indexes. No constraint checks
  /// beyond type coercion (callers re-validate PKs when touching them).
  void update_cell(std::size_t row, std::size_t column, Value value);

  /// Removes rows by strictly ascending indices in one compaction pass and
  /// rebuilds indexes. Throws DbError for out-of-range, unsorted, or
  /// duplicate indices (nothing is removed in that case).
  void remove_rows(const std::vector<std::size_t>& ascending_indices);

  /// True if any row has `value` in `column` (FK existence checks).
  bool contains(const std::string& column, const Value& value) const;

  /// Transaction-rollback support: inserts only ever append, so a
  /// transaction's inserts are undone by truncating back to the row count
  /// (and rowid counter) captured at transaction begin.
  void truncate_rows(std::size_t count);
  std::int64_t next_rowid() const { return next_rowid_; }
  void set_next_rowid(std::int64_t next) { next_rowid_ = next; }

 private:
  void rebuild_indexes();
  void index_row(std::size_t row);
  void unindex_row(std::size_t row);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::vector<SecondaryIndex> indexes_;  // creation order
  std::int64_t next_rowid_ = 1;
};

}  // namespace iokc::db
