// In-memory table storage: typed rows, auto-increment INTEGER PRIMARY KEY,
// uniqueness enforcement, and secondary hash indexes for equality lookups.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/db/schema.hpp"
#include "src/db/value.hpp"

namespace iokc::db {

using Row = std::vector<Value>;

/// One table.
class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::size_t row_count() const { return rows_.size(); }

  /// Inserts one row given a column list (empty = schema order). Missing
  /// columns become NULL; an INTEGER PRIMARY KEY left NULL is auto-assigned.
  /// Returns the row's primary-key value (or the row index when the table
  /// has no integer primary key). Enforces types, NOT NULL, and PK
  /// uniqueness; foreign keys are enforced by the Database.
  std::int64_t insert(const std::vector<std::string>& columns, Row values);

  /// Creates (or re-creates) a hash index on `column`.
  void create_index(const std::string& column);
  bool has_index(const std::string& column) const;

  /// Row indices whose `column` equals `value`; uses the index when present,
  /// otherwise scans.
  std::vector<std::size_t> lookup(const std::string& column,
                                  const Value& value) const;

  /// Updates cell (row, column) maintaining indexes. No constraint checks
  /// beyond type coercion (callers re-validate PKs when touching them).
  void update_cell(std::size_t row, std::size_t column, Value value);

  /// Removes rows by strictly ascending indices in one compaction pass and
  /// rebuilds indexes. Throws DbError for out-of-range, unsorted, or
  /// duplicate indices (nothing is removed in that case).
  void remove_rows(const std::vector<std::size_t>& ascending_indices);

  /// True if any row has `value` in `column` (FK existence checks).
  bool contains(const std::string& column, const Value& value) const;

  /// Transaction-rollback support: inserts only ever append, so a
  /// transaction's inserts are undone by truncating back to the row count
  /// (and rowid counter) captured at transaction begin.
  void truncate_rows(std::size_t count);
  std::int64_t next_rowid() const { return next_rowid_; }
  void set_next_rowid(std::int64_t next) { next_rowid_ = next; }

 private:
  struct ValueHash {
    std::size_t operator()(const Value& v) const { return v.hash(); }
  };
  using HashIndex = std::unordered_multimap<Value, std::size_t, ValueHash>;

  void rebuild_indexes();
  void index_row(std::size_t row);
  void unindex_row(std::size_t row);

  TableSchema schema_;
  std::vector<Row> rows_;
  std::map<std::string, HashIndex> indexes_;  // column name -> index
  std::int64_t next_rowid_ = 1;
};

}  // namespace iokc::db
