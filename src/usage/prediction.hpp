// I/O performance prediction (phase 5 / outlook): turns the knowledge base
// into training data and predicts the bandwidth of an unseen configuration,
// via linear regression over pattern features (the outlook's "knowledge
// objects ... as training data for linear regression analysis") and a k-NN
// estimator for comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/generators/ior.hpp"
#include "src/persist/repository.hpp"

namespace iokc::usage {

/// Numeric features of an IOR configuration used for learning.
struct ConfigFeatures {
  double log2_transfer = 0.0;
  double log2_block = 0.0;
  double log2_segments = 0.0;
  double tasks = 0.0;
  double file_per_process = 0.0;  // 0/1
  double api_mpiio = 0.0;         // one-hot
  double api_hdf5 = 0.0;

  static ConfigFeatures from_config(const gen::IorConfig& config);
  static ConfigFeatures from_command(const std::string& command);
  std::vector<double> as_vector() const;
};

/// One training sample: features plus the observed mean bandwidth.
struct TrainingSample {
  ConfigFeatures features;
  double mean_bw_mib = 0.0;
  std::string operation;  // "write" or "read"
};

/// Extracts training samples for one operation from every IOR knowledge
/// object in a repository (non-IOR objects are skipped).
std::vector<TrainingSample> build_training_set(
    persist::KnowledgeRepository& repository, const std::string& operation);

/// Linear-regression predictor.
class BandwidthPredictor {
 public:
  /// Fits on the sample set (needs >= 8 samples; throws ConfigError below).
  static BandwidthPredictor fit(const std::vector<TrainingSample>& samples);

  /// Predicted mean bandwidth (MiB/s, floored at 0).
  double predict(const ConfigFeatures& features) const;

  const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  std::vector<double> coefficients_;  // intercept first
};

/// k-nearest-neighbour estimate over feature space (Euclidean distance on
/// standardized features). Throws ConfigError on an empty sample set.
double knn_predict(const std::vector<TrainingSample>& samples,
                   const ConfigFeatures& query, std::size_t k = 3);

}  // namespace iokc::usage
