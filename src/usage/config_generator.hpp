// New-knowledge generation (the paper's Example I): load a stored benchmark
// command, modify it ("the previously applied command is selected and then
// loaded from the corresponding configuration in the view and can be modified
// as required"), and emit a new command — or a whole JUBE sweep configuration
// — whose execution feeds the next turn of the knowledge cycle.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/generators/ior.hpp"
#include "src/jube/runner.hpp"

namespace iokc::usage {

/// The modifications a user can apply to a loaded IOR configuration before
/// "create configuration". Unset fields keep the stored value.
struct IorOverrides {
  std::optional<iostack::IoApi> api;
  std::optional<std::uint64_t> block_size;
  std::optional<std::uint64_t> transfer_size;
  std::optional<std::uint32_t> segments;
  std::optional<std::uint32_t> num_tasks;
  std::optional<int> iterations;
  std::optional<bool> file_per_process;
  std::optional<bool> collective;
  std::optional<std::string> test_file;
};

/// Applies overrides to a configuration.
gen::IorConfig apply_overrides(gen::IorConfig config,
                               const IorOverrides& overrides);

/// The "create configuration" button: stored command + overrides -> new
/// command string (validated).
std::string create_configuration(const std::string& stored_command,
                                 const IorOverrides& overrides);

/// One swept dimension for a generated JUBE configuration.
struct SweepDimension {
  std::string parameter;              // e.g. "transfer"
  std::vector<std::string> values;    // e.g. {"1m", "2m", "4m"}
};

/// Generates a JUBE benchmark configuration around a base command: each sweep
/// dimension must correspond to a $parameter placeholder patched into the
/// command. Example:
///   base    "ior -a mpiio -b 4m -t 2m -s 40 -N 80 -o /scratch/f"
///   sweep   {"transfer", {"1m","2m","4m"}} patching option "-t"
/// yields a config whose step command is the base with "-t $transfer".
jube::JubeBenchmarkConfig generate_jube_config(
    const std::string& name, const std::string& base_command,
    const std::vector<std::pair<std::string, SweepDimension>>&
        option_sweeps /* option flag -> dimension */);

}  // namespace iokc::usage
