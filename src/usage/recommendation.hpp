// The recommendation module (phase 5, offline optimization): "the users can
// be suggested with suitable configurations via a recommendation module,
// which can be applied manually for individual runs". Recommendations are
// mined from the knowledge base: among stored runs resembling the user's
// pattern, which tunables correlate with higher bandwidth?
#pragma once

#include <string>
#include <vector>

#include "src/generators/ior.hpp"
#include "src/persist/repository.hpp"

namespace iokc::usage {

/// One actionable suggestion.
struct Recommendation {
  std::string tunable;     // e.g. "transfer_size", "api", "stripe width"
  std::string current;     // the user's current setting
  std::string suggested;   // the mined better setting
  double expected_gain = 0.0;  // relative mean-bandwidth gain observed
  std::string rationale;
};

/// A set of suggestions plus the evidence base size.
struct RecommendationReport {
  std::vector<Recommendation> recommendations;
  std::size_t evidence_runs = 0;

  bool empty() const { return recommendations.empty(); }
  std::string render() const;
};

/// Mines the repository for configurations similar to `target` (same
/// benchmark, same task count within a factor of two) whose mean write
/// bandwidth beats the best run matching `target` exactly; emits one
/// recommendation per differing tunable. `operation` selects the metric
/// ("write" by default).
RecommendationReport recommend(persist::KnowledgeRepository& repository,
                               const gen::IorConfig& target,
                               const std::string& operation = "write");

}  // namespace iokc::usage
