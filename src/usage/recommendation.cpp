#include "src/usage/recommendation.hpp"

#include <algorithm>
#include <cstdio>

#include "src/obs/observability.hpp"
#include "src/util/error.hpp"
#include "src/util/units.hpp"

namespace iokc::usage {

std::string RecommendationReport::render() const {
  std::string out = "Recommendations (mined from " +
                    std::to_string(evidence_runs) + " stored runs):\n";
  if (recommendations.empty()) {
    out += "  current configuration already matches the best stored run\n";
    return out;
  }
  for (const Recommendation& recommendation : recommendations) {
    char buf[512];
    std::snprintf(buf, sizeof buf, "  %-14s %s -> %s  (expected %+.1f%%)  %s\n",
                  recommendation.tunable.c_str(),
                  recommendation.current.c_str(),
                  recommendation.suggested.c_str(),
                  recommendation.expected_gain * 100.0,
                  recommendation.rationale.c_str());
    out += buf;
  }
  return out;
}

namespace {

struct StoredRun {
  gen::IorConfig config;
  double bandwidth = 0.0;
};

bool similar_scale(const gen::IorConfig& a, const gen::IorConfig& b) {
  const double ratio = a.num_tasks > 0 && b.num_tasks > 0
                           ? static_cast<double>(a.num_tasks) /
                                 static_cast<double>(b.num_tasks)
                           : 0.0;
  return ratio >= 0.5 && ratio <= 2.0;
}

bool same_pattern(const gen::IorConfig& a, const gen::IorConfig& b) {
  return a.api == b.api && a.transfer_size == b.transfer_size &&
         a.block_size == b.block_size &&
         a.file_per_process == b.file_per_process &&
         a.collective == b.collective;
}

}  // namespace

RecommendationReport recommend(persist::KnowledgeRepository& repository,
                               const gen::IorConfig& target,
                               const std::string& operation) {
  obs::Span span("usage:recommend", {.category = "usage", .phase = "usage"});
  RecommendationReport report;

  std::vector<StoredRun> candidates;
  double baseline = 0.0;
  for (const std::int64_t id : repository.knowledge_ids()) {
    const knowledge::Knowledge k = repository.load_knowledge(id);
    if (k.benchmark != "IOR") {
      continue;
    }
    const knowledge::OpSummary* summary = k.find_summary(operation);
    if (summary == nullptr || summary->mean_bw_mib <= 0.0) {
      continue;
    }
    StoredRun run;
    try {
      run.config = gen::parse_ior_command(k.command);
    } catch (const ParseError&) {
      continue;
    }
    run.bandwidth = summary->mean_bw_mib;
    if (!similar_scale(run.config, target)) {
      continue;
    }
    if (same_pattern(run.config, target)) {
      baseline = std::max(baseline, run.bandwidth);
    }
    candidates.push_back(std::move(run));
  }
  report.evidence_runs = candidates.size();
  if (candidates.empty()) {
    return report;
  }
  if (baseline <= 0.0) {
    // No exact match stored: use the median candidate as the baseline.
    std::vector<double> bws;
    for (const StoredRun& run : candidates) {
      bws.push_back(run.bandwidth);
    }
    std::nth_element(
        bws.begin(),
        bws.begin() + static_cast<std::ptrdiff_t>(bws.size() / 2), bws.end());
    baseline = bws[bws.size() / 2];
  }

  // The best stored run that beats the baseline drives the suggestions.
  const StoredRun* best = nullptr;
  for (const StoredRun& run : candidates) {
    if (run.bandwidth > baseline &&
        (best == nullptr || run.bandwidth > best->bandwidth)) {
      best = &run;
    }
  }
  if (best == nullptr) {
    return report;
  }
  const double gain = best->bandwidth / baseline - 1.0;
  auto suggest = [&](const std::string& tunable, const std::string& current,
                     const std::string& suggested) {
    if (current == suggested) {
      return;
    }
    Recommendation recommendation;
    recommendation.tunable = tunable;
    recommendation.current = current;
    recommendation.suggested = suggested;
    recommendation.expected_gain = gain;
    recommendation.rationale = "best similar stored run uses this setting";
    report.recommendations.push_back(std::move(recommendation));
  };

  suggest("api", iostack::to_string(target.api),
          iostack::to_string(best->config.api));
  suggest("transfer_size", util::format_size_token(target.transfer_size),
          util::format_size_token(best->config.transfer_size));
  suggest("block_size", util::format_size_token(target.block_size),
          util::format_size_token(best->config.block_size));
  suggest("file layout",
          target.file_per_process ? "file-per-process" : "shared",
          best->config.file_per_process ? "file-per-process" : "shared");
  suggest("collective", target.collective ? "collective" : "independent",
          best->config.collective ? "collective" : "independent");
  return report;
}

}  // namespace iokc::usage
