#include "src/usage/config_generator.hpp"

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::usage {

gen::IorConfig apply_overrides(gen::IorConfig config,
                               const IorOverrides& overrides) {
  if (overrides.api.has_value()) {
    config.api = *overrides.api;
  }
  if (overrides.block_size.has_value()) {
    config.block_size = *overrides.block_size;
  }
  if (overrides.transfer_size.has_value()) {
    config.transfer_size = *overrides.transfer_size;
  }
  if (overrides.segments.has_value()) {
    config.segments = *overrides.segments;
  }
  if (overrides.num_tasks.has_value()) {
    config.num_tasks = *overrides.num_tasks;
  }
  if (overrides.iterations.has_value()) {
    config.iterations = *overrides.iterations;
  }
  if (overrides.file_per_process.has_value()) {
    config.file_per_process = *overrides.file_per_process;
  }
  if (overrides.collective.has_value()) {
    config.collective = *overrides.collective;
  }
  if (overrides.test_file.has_value()) {
    config.test_file = *overrides.test_file;
  }
  return config;
}

std::string create_configuration(const std::string& stored_command,
                                 const IorOverrides& overrides) {
  gen::IorConfig config =
      apply_overrides(gen::parse_ior_command(stored_command), overrides);
  config.validate();
  return config.render_command();
}

jube::JubeBenchmarkConfig generate_jube_config(
    const std::string& name, const std::string& base_command,
    const std::vector<std::pair<std::string, SweepDimension>>& option_sweeps) {
  // Validate the base command parses at all.
  gen::parse_ior_command(base_command).validate();

  std::vector<std::string> tokens = util::split_ws(base_command);
  jube::JubeBenchmarkConfig config;
  config.name = name;
  config.outpath = name;

  for (const auto& [option, sweep] : option_sweeps) {
    if (sweep.values.empty()) {
      throw ConfigError("sweep dimension '" + sweep.parameter +
                        "' has no values");
    }
    bool patched = false;
    for (std::size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i] == option) {
        tokens[i + 1] = "$" + sweep.parameter;
        patched = true;
        break;
      }
    }
    if (!patched) {
      // Option absent from the base command: append it.
      tokens.push_back(option);
      tokens.push_back("$" + sweep.parameter);
    }
    jube::Parameter parameter;
    parameter.name = sweep.parameter;
    parameter.values = sweep.values;
    config.space.add(std::move(parameter));
  }

  config.steps.push_back(
      jube::JubeStep{"run", util::join(tokens, " ")});
  return config;
}

}  // namespace iokc::usage
