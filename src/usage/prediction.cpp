#include "src/usage/prediction.hpp"

#include <algorithm>
#include <cmath>

#include "src/analysis/stats.hpp"
#include "src/obs/observability.hpp"
#include "src/util/error.hpp"

namespace iokc::usage {

ConfigFeatures ConfigFeatures::from_config(const gen::IorConfig& config) {
  ConfigFeatures features;
  features.log2_transfer = std::log2(
      std::max<double>(static_cast<double>(config.transfer_size), 1.0));
  features.log2_block =
      std::log2(std::max<double>(static_cast<double>(config.block_size), 1.0));
  features.log2_segments =
      std::log2(std::max<double>(static_cast<double>(config.segments), 1.0));
  features.tasks = static_cast<double>(config.num_tasks);
  features.file_per_process = config.file_per_process ? 1.0 : 0.0;
  features.api_mpiio = config.api == iostack::IoApi::kMpiio ? 1.0 : 0.0;
  features.api_hdf5 = config.api == iostack::IoApi::kHdf5 ? 1.0 : 0.0;
  return features;
}

ConfigFeatures ConfigFeatures::from_command(const std::string& command) {
  return from_config(gen::parse_ior_command(command));
}

std::vector<double> ConfigFeatures::as_vector() const {
  return {log2_transfer, log2_block,       log2_segments, tasks,
          file_per_process, api_mpiio, api_hdf5};
}

std::vector<TrainingSample> build_training_set(
    persist::KnowledgeRepository& repository, const std::string& operation) {
  std::vector<TrainingSample> samples;
  for (const std::int64_t id : repository.knowledge_ids()) {
    const knowledge::Knowledge k = repository.load_knowledge(id);
    if (k.benchmark != "IOR") {
      continue;
    }
    const knowledge::OpSummary* summary = k.find_summary(operation);
    if (summary == nullptr || summary->mean_bw_mib <= 0.0) {
      continue;
    }
    TrainingSample sample;
    try {
      sample.features = ConfigFeatures::from_command(k.command);
    } catch (const ParseError&) {
      continue;  // foreign command dialect; skip
    }
    sample.mean_bw_mib = summary->mean_bw_mib;
    sample.operation = operation;
    samples.push_back(std::move(sample));
  }
  return samples;
}

BandwidthPredictor BandwidthPredictor::fit(
    const std::vector<TrainingSample>& samples) {
  obs::Span span("usage:fit", {.category = "usage", .phase = "usage"});
  if (samples.size() < 8) {
    throw ConfigError("bandwidth predictor needs >= 8 training samples, got " +
                      std::to_string(samples.size()));
  }
  std::vector<std::vector<double>> design;
  std::vector<double> targets;
  design.reserve(samples.size());
  targets.reserve(samples.size());
  for (const TrainingSample& sample : samples) {
    design.push_back(sample.features.as_vector());
    targets.push_back(sample.mean_bw_mib);
  }
  BandwidthPredictor predictor;
  // Small ridge term: training sets mined from a repository routinely have
  // constant features (every run used the same API, say), which would make
  // an unregularized normal system singular.
  predictor.coefficients_ =
      analysis::fit_multilinear(design, targets, /*ridge=*/1e-8);
  return predictor;
}

double BandwidthPredictor::predict(const ConfigFeatures& features) const {
  const std::vector<double> x = features.as_vector();
  double y = coefficients_.at(0);
  for (std::size_t i = 0; i < x.size(); ++i) {
    y += coefficients_.at(i + 1) * x[i];
  }
  return std::max(y, 0.0);
}

double knn_predict(const std::vector<TrainingSample>& samples,
                   const ConfigFeatures& query, std::size_t k) {
  obs::Span span("usage:knn_predict", {.category = "usage", .phase = "usage"});
  if (samples.empty()) {
    throw ConfigError("k-NN prediction over an empty sample set");
  }
  const std::size_t dims = query.as_vector().size();

  // Standardize each feature over the sample set to keep distances sane.
  std::vector<double> mean(dims, 0.0);
  std::vector<double> stddev(dims, 0.0);
  for (const TrainingSample& sample : samples) {
    const std::vector<double> x = sample.features.as_vector();
    for (std::size_t d = 0; d < dims; ++d) {
      mean[d] += x[d];
    }
  }
  for (double& m : mean) {
    m /= static_cast<double>(samples.size());
  }
  for (const TrainingSample& sample : samples) {
    const std::vector<double> x = sample.features.as_vector();
    for (std::size_t d = 0; d < dims; ++d) {
      stddev[d] += (x[d] - mean[d]) * (x[d] - mean[d]);
    }
  }
  for (double& s : stddev) {
    s = std::sqrt(s / static_cast<double>(samples.size()));
    if (s < 1e-9) {
      s = 1.0;  // constant feature: neutral scaling
    }
  }

  auto distance = [&](const ConfigFeatures& features) {
    const std::vector<double> a = features.as_vector();
    const std::vector<double> b = query.as_vector();
    double sum = 0.0;
    for (std::size_t d = 0; d < dims; ++d) {
      const double delta = (a[d] - b[d]) / stddev[d];
      sum += delta * delta;
    }
    return std::sqrt(sum);
  };

  std::vector<std::pair<double, double>> scored;  // (distance, bw)
  scored.reserve(samples.size());
  for (const TrainingSample& sample : samples) {
    scored.emplace_back(distance(sample.features), sample.mean_bw_mib);
  }
  std::sort(scored.begin(), scored.end());
  const std::size_t neighbours = std::min(k, scored.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < neighbours; ++i) {
    sum += scored[i].second;
  }
  return sum / static_cast<double>(neighbours);
}

}  // namespace iokc::usage
