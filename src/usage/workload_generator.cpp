#include "src/usage/workload_generator.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iokc::usage {

std::vector<gen::IorConfig> generate_similar_configs(
    const knowledge::Knowledge& knowledge, std::size_t count,
    std::uint64_t seed) {
  const gen::IorConfig base = gen::parse_ior_command(knowledge.command);
  util::Rng rng(seed);
  std::vector<gen::IorConfig> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    gen::IorConfig config = base;
    // Perturb transfer size by a power-of-two step, keeping block a multiple.
    const int shift = static_cast<int>(rng.uniform_int(-1, 1));
    if (shift > 0) {
      config.transfer_size = std::min(config.transfer_size << 1,
                                      config.block_size);
    } else if (shift < 0 && config.transfer_size > 4096) {
      config.transfer_size >>= 1;
    }
    // Perturb segments within +/- 50%.
    const double segment_factor = rng.uniform(0.5, 1.5);
    config.segments = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(static_cast<double>(base.segments) * segment_factor)));
    // Tasks within a factor of two, multiples of the original node fill.
    const double task_factor = rng.uniform(0.5, 2.0);
    config.num_tasks = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(
               std::lround(static_cast<double>(base.num_tasks) * task_factor)));
    config.test_file = base.test_file + ".gen" + std::to_string(i);
    config.validate();
    configs.push_back(std::move(config));
  }
  return configs;
}

std::uint64_t SyntheticTrace::total_bytes_written() const {
  std::uint64_t total = 0;
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kWrite) {
      total += op.length;
    }
  }
  return total;
}

std::uint64_t SyntheticTrace::total_bytes_read() const {
  std::uint64_t total = 0;
  for (const TraceOp& op : ops) {
    if (op.kind == TraceOp::Kind::kRead) {
      total += op.length;
    }
  }
  return total;
}

SyntheticTrace generate_trace(const knowledge::Knowledge& knowledge,
                              std::uint64_t seed) {
  const gen::IorConfig config = gen::parse_ior_command(knowledge.command);
  util::Rng rng(seed);
  SyntheticTrace trace;
  trace.num_tasks = config.num_tasks;

  const bool do_write = knowledge.find_summary("write") != nullptr;
  const bool do_read = knowledge.find_summary("read") != nullptr;

  for (std::uint32_t rank = 0; rank < config.num_tasks; ++rank) {
    const std::string file =
        config.file_per_process
            ? config.test_file + "." + std::to_string(rank)
            : config.test_file;
    trace.ops.push_back({TraceOp::Kind::kOpen, rank, file, 0, 0});
    std::uint64_t offset =
        config.file_per_process
            ? 0
            : static_cast<std::uint64_t>(rank) * config.bytes_per_rank();
    std::uint64_t remaining = config.bytes_per_rank();
    while (remaining > 0 && do_write) {
      // Lognormal jitter around the configured transfer size keeps the mean
      // volume while varying individual requests like a real application.
      const double jitter = rng.lognormal(0.0, 0.35);
      std::uint64_t length = static_cast<std::uint64_t>(
          std::max(4096.0, static_cast<double>(config.transfer_size) * jitter));
      length = std::min(length, remaining);
      trace.ops.push_back({TraceOp::Kind::kWrite, rank, file, offset, length});
      offset += length;
      remaining -= length;
    }
    if (do_write && config.fsync) {
      trace.ops.push_back({TraceOp::Kind::kFsync, rank, file, 0, 0});
    }
    if (do_read) {
      std::uint64_t read_offset =
          config.file_per_process
              ? 0
              : static_cast<std::uint64_t>(rank) * config.bytes_per_rank();
      std::uint64_t to_read = config.bytes_per_rank();
      while (to_read > 0) {
        const std::uint64_t length = std::min(
            static_cast<std::uint64_t>(config.transfer_size), to_read);
        trace.ops.push_back(
            {TraceOp::Kind::kRead, rank, file, read_offset, length});
        read_offset += length;
        to_read -= length;
      }
    }
    trace.ops.push_back({TraceOp::Kind::kClose, rank, file, 0, 0});
  }
  return trace;
}

}  // namespace iokc::usage
