// Workload generation (phase 5): "the knowledge obtained from our generic
// workflow can be used to, e.g., generate new benchmark configurations, but
// also synthetic workload for simulation". Produces (a) IOR configurations
// resembling a stored knowledge object with controlled perturbation, and
// (b) synthetic rank-level operation traces that can drive the simulator
// directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/generators/ior.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/util/rng.hpp"

namespace iokc::usage {

/// Derives `count` IOR configurations around a stored knowledge object's
/// command, perturbing transfer size (half/double steps), segment count, and
/// task count within a factor of two, deterministically from `seed`.
std::vector<gen::IorConfig> generate_similar_configs(
    const knowledge::Knowledge& knowledge, std::size_t count,
    std::uint64_t seed);

/// One synthetic I/O operation of a trace.
struct TraceOp {
  enum class Kind { kOpen, kWrite, kRead, kFsync, kClose };
  Kind kind = Kind::kWrite;
  std::uint32_t rank = 0;
  std::string file;
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
};

/// A synthetic workload trace.
struct SyntheticTrace {
  std::vector<TraceOp> ops;
  std::uint32_t num_tasks = 0;

  std::uint64_t total_bytes_written() const;
  std::uint64_t total_bytes_read() const;
};

/// Builds a trace whose volume/op-size distribution matches the knowledge
/// object's pattern (from its command) with lognormal size jitter.
SyntheticTrace generate_trace(const knowledge::Knowledge& knowledge,
                              std::uint64_t seed);

}  // namespace iokc::usage
