#include "src/extract/extractor.hpp"

#include <fstream>
#include <sstream>

#include "src/jube/runner.hpp"
#include "src/obs/observability.hpp"
#include "src/util/error.hpp"
#include "src/util/log.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::extract {

namespace {

std::string read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read " + path.string());
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

void ExtractionResult::merge(ExtractionResult other) {
  for (auto& k : other.knowledge) {
    knowledge.push_back(std::move(k));
  }
  for (auto& k : other.io500) {
    io500.push_back(std::move(k));
  }
  for (auto& path : other.skipped) {
    skipped.push_back(std::move(path));
  }
}

ExtractionResult KnowledgeExtractor::extract_text(
    std::string_view text, const std::filesystem::path& origin) const {
  ExtractionResult result;
  switch (sniff_format(text)) {
    case SourceFormat::kIor:
      result.knowledge.push_back(parse_ior_output(text));
      break;
    case SourceFormat::kMdtest:
      result.knowledge.push_back(parse_mdtest_output(text));
      break;
    case SourceFormat::kIo500:
      result.io500.push_back(parse_io500_output(text));
      break;
    case SourceFormat::kHaccIo:
      result.knowledge.push_back(parse_haccio_output(text));
      break;
    case SourceFormat::kDarshan:
      result.knowledge.push_back(darshan_to_knowledge(parse_darshan_log(text)));
      break;
    case SourceFormat::kUnknown:
      result.skipped.push_back(origin);
      util::log_info() << "extractor: skipping unrecognized source "
                       << origin.string();
      break;
  }
  return result;
}

ExtractionResult KnowledgeExtractor::extract_file(
    const std::filesystem::path& path) const {
  ExtractionResult result = extract_text(read_file(path), path);

  // Attach sibling snapshots when present.
  const std::filesystem::path dir = path.parent_path();
  const std::filesystem::path sysinfo_path = dir / kSysinfoFile;
  const std::filesystem::path fsinfo_path = dir / kFsinfoFile;
  if (std::filesystem::exists(sysinfo_path)) {
    const knowledge::SystemInfoRecord record =
        parse_sysinfo(read_file(sysinfo_path));
    for (auto& k : result.knowledge) {
      k.system = record;
    }
    for (auto& k : result.io500) {
      k.system = record;
    }
  }
  const std::filesystem::path jobinfo_path = dir / kJobinfoFile;
  if (std::filesystem::exists(jobinfo_path)) {
    const knowledge::JobInfoRecord record =
        parse_jobinfo(read_file(jobinfo_path));
    for (auto& k : result.knowledge) {
      k.job = record;
    }
  }
  if (std::filesystem::exists(fsinfo_path)) {
    // First line carries the file-system name: "fs: <name>".
    const std::string text = read_file(fsinfo_path);
    std::string fs_name = "unknown";
    const std::size_t newline = text.find('\n');
    const std::string first = text.substr(0, newline);
    if (first.rfind("fs: ", 0) == 0) {
      fs_name = first.substr(4);
    }
    const knowledge::FileSystemInfo info = parse_fsinfo(text, fs_name);
    for (auto& k : result.knowledge) {
      k.filesystem = info;
    }
  }
  return result;
}

ExtractionResult KnowledgeExtractor::extract_workspace(
    const std::filesystem::path& root, int jobs) const {
  if (jobs < 0) {
    throw ConfigError("jobs must be >= 0");
  }
  obs::Span workspace_span("extract:workspace",
                           {.category = "extract", .phase = "extraction"});
  const obs::SpanContext handoff = workspace_span.context();
  const std::vector<std::filesystem::path> outputs =
      jube::JubeRunner::discover_outputs(root);
  std::vector<ExtractionResult> extracted(outputs.size());
  util::parallel_for(
      outputs.size(), static_cast<std::size_t>(jobs),
      [&](const util::TaskContext& task) {
        const std::size_t i = task.index;
        obs::Span file_span("extract",
                            {.category = "extract",
                             .work_package = static_cast<int>(i),
                             .parent = &handoff});
        obs::count("extract.files");
        extracted[i] = extract_file(outputs[i]);
        // A Darshan log captured alongside the benchmark is its own source.
        const std::filesystem::path darshan =
            outputs[i].parent_path() / "darshan.log";
        if (std::filesystem::exists(darshan)) {
          extracted[i].merge(extract_file(darshan));
        }
      });
  ExtractionResult result;
  for (ExtractionResult& part : extracted) {
    result.merge(std::move(part));
  }
  return result;
}

}  // namespace iokc::extract
