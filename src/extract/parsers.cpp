#include "src/extract/parsers.hpp"

#include <algorithm>
#include <cctype>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/units.hpp"

namespace iokc::extract {

namespace {

using util::contains;
using util::parse_f64;
using util::parse_i64;
using util::split;
using util::split_lines;
using util::split_ws;
using util::starts_with;
using util::trim;

/// "key        : value" -> value (empty when the line doesn't match).
std::string colon_value(std::string_view line, std::string_view key) {
  const std::string_view t = trim(line);
  if (!starts_with(t, key)) {
    return {};
  }
  const std::size_t colon = t.find(':', key.size());
  if (colon == std::string_view::npos) {
    return {};
  }
  // Ensure only whitespace between the key and the colon.
  const std::string_view between = t.substr(key.size(), colon - key.size());
  if (!trim(between).empty()) {
    return {};
  }
  return std::string(trim(t.substr(colon + 1)));
}

}  // namespace

knowledge::Knowledge parse_ior_output(std::string_view text) {
  knowledge::Knowledge k;
  k.benchmark = "IOR";
  bool in_results = false;
  bool saw_results_header = false;
  std::map<std::string, knowledge::OpSummary> summaries;

  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (t.empty()) {
      continue;
    }
    if (!(v = colon_value(line, "Command line")).empty()) {
      k.command = v;
    } else if (!(v = colon_value(line, "api")).empty()) {
      k.api = v;
    } else if (!(v = colon_value(line, "test filename")).empty()) {
      k.test_file = v;
    } else if (!(v = colon_value(line, "access")).empty()) {
      k.file_per_process = v == "file-per-process";
    } else if (!(v = colon_value(line, "tasks")).empty()) {
      k.num_tasks = static_cast<std::uint32_t>(parse_i64(v));
    } else if (!(v = colon_value(line, "nodes")).empty()) {
      k.num_nodes = static_cast<std::uint32_t>(parse_i64(v));
    } else if (!(v = colon_value(line, "Began")).empty()) {
      if (starts_with(v, "t+")) {
        k.start_time = parse_f64(v.substr(2));
      }
    } else if (!(v = colon_value(line, "Finished")).empty()) {
      if (starts_with(v, "t+")) {
        k.end_time = parse_f64(v.substr(2));
      }
    } else if (starts_with(t, "Results:")) {
      in_results = true;
    } else if (starts_with(t, "Summary of all tests:")) {
      in_results = false;
    } else if (in_results) {
      if (starts_with(t, "access")) {
        saw_results_header = true;
        continue;
      }
      if (starts_with(t, "---") || !saw_results_header) {
        continue;
      }
      const std::vector<std::string> fields = split_ws(t);
      if (fields.size() < 11 ||
          (fields[0] != "write" && fields[0] != "read")) {
        continue;
      }
      knowledge::OpResult result;
      result.bw_mib = parse_f64(fields[1]);
      result.iops = parse_f64(fields[2]);
      result.latency_sec = parse_f64(fields[3]);
      result.open_sec = parse_f64(fields[6]);
      result.wrrd_sec = parse_f64(fields[7]);
      result.close_sec = parse_f64(fields[8]);
      result.total_sec = parse_f64(fields[9]);
      result.iteration = static_cast<int>(parse_i64(fields[10]));
      knowledge::OpSummary& summary = summaries[fields[0]];
      summary.operation = fields[0];
      summary.results.push_back(result);
    }
  }

  if (k.command.empty()) {
    throw ParseError("IOR output has no 'Command line' field");
  }
  if (summaries.empty()) {
    throw ParseError("IOR output has no result lines");
  }
  // Keep write before read for stable presentation.
  for (const char* op : {"write", "read"}) {
    const auto it = summaries.find(op);
    if (it != summaries.end()) {
      it->second.api = k.api;
      it->second.recompute();
      k.summaries.push_back(std::move(it->second));
    }
  }
  return k;
}

knowledge::Knowledge parse_mdtest_output(std::string_view text) {
  knowledge::Knowledge k;
  k.benchmark = "mdtest";
  k.api = "POSIX";
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (starts_with(t, "mdtest-")) {
      const auto fields = split_ws(t);
      // "mdtest-... was launched with <N> total task(s) on <M> node(s)"
      for (std::size_t i = 0; i + 1 < fields.size(); ++i) {
        if (fields[i] == "with") {
          k.num_tasks = static_cast<std::uint32_t>(parse_i64(fields[i + 1]));
        }
        if (fields[i] == "on") {
          k.num_nodes = static_cast<std::uint32_t>(parse_i64(fields[i + 1]));
        }
      }
    } else if (!(v = colon_value(line, "Command line used")).empty()) {
      k.command = v;
    } else {
      // "   File creation          :      4300.123  4300.123 ..."
      static const std::pair<const char*, const char*> kOps[] = {
          {"File creation", "create"},
          {"File stat", "stat"},
          {"File read", "read"},
          {"File removal", "removal"},
      };
      for (const auto& [label, op] : kOps) {
        if (!starts_with(t, label)) {
          continue;
        }
        const std::size_t colon = t.find(':');
        if (colon == std::string_view::npos) {
          continue;
        }
        const auto numbers = split_ws(t.substr(colon + 1));
        if (numbers.size() < 4) {
          throw ParseError("mdtest summary line for '" + std::string(label) +
                           "' is truncated");
        }
        knowledge::OpSummary summary;
        summary.operation = op;
        summary.api = k.api;
        summary.max_ops = parse_f64(numbers[0]);
        summary.min_ops = parse_f64(numbers[1]);
        summary.mean_ops = parse_f64(numbers[2]);
        summary.stddev_ops = parse_f64(numbers[3]);
        k.summaries.push_back(std::move(summary));
      }
    }
  }
  if (k.command.empty()) {
    throw ParseError("mdtest output has no 'Command line used' field");
  }
  if (k.summaries.empty()) {
    throw ParseError("mdtest output has no SUMMARY rates");
  }
  return k;
}

knowledge::Io500Knowledge parse_io500_output(std::string_view text) {
  knowledge::Io500Knowledge k;
  bool saw_score = false;
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (starts_with(t, "[CONFIG]")) {
      const auto fields = split_ws(t.substr(8));
      if (fields.size() >= 2 && fields[0] == "tasks") {
        k.num_tasks = static_cast<std::uint32_t>(parse_i64(fields[1]));
      } else if (fields.size() >= 2 && fields[0] == "nodes") {
        k.num_nodes = static_cast<std::uint32_t>(parse_i64(fields[1]));
      } else if (!fields.empty() && fields[0] == "command") {
        k.command = std::string(trim(t.substr(t.find("command") + 7)));
      }
    } else if (starts_with(t, "[RESULT]")) {
      // "[RESULT]  ior-easy-write  2.123456 GiB/s : time 12.345 seconds"
      const auto fields = split_ws(t.substr(8));
      if (fields.size() < 7) {
        throw ParseError("truncated IO500 [RESULT] line: " + line);
      }
      knowledge::Io500Testcase testcase;
      testcase.name = fields[0];
      testcase.value = parse_f64(fields[1]);
      testcase.unit = fields[2];
      testcase.time_sec = parse_f64(fields[5]);
      k.testcases.push_back(std::move(testcase));
    } else if (starts_with(t, "[SCORE")) {
      // "[SCORE ] Bandwidth 1.2 GiB/s : IOPS 3.4 kiops : TOTAL 2.0"
      const auto fields = split_ws(t);
      for (std::size_t i = 0; i + 1 < fields.size(); ++i) {
        if (fields[i] == "Bandwidth") {
          k.score_bw_gib = parse_f64(fields[i + 1]);
        } else if (fields[i] == "IOPS") {
          k.score_md_kiops = parse_f64(fields[i + 1]);
        } else if (fields[i] == "TOTAL") {
          k.score_total = parse_f64(fields[i + 1]);
        }
      }
      saw_score = true;
    }
  }
  if (k.testcases.empty() || !saw_score) {
    throw ParseError("IO500 output lacks [RESULT] lines or the [SCORE ] line");
  }
  if (k.command.empty()) {
    k.command = "io500";
  }
  return k;
}

knowledge::Knowledge parse_haccio_output(std::string_view text) {
  knowledge::Knowledge k;
  k.benchmark = "HACC-IO";
  knowledge::OpSummary write_summary;
  write_summary.operation = "write";
  knowledge::OpSummary read_summary;
  read_summary.operation = "read";
  bool in_table = false;
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (!(v = colon_value(line, "Command line")).empty()) {
      k.command = v;
    } else if (!(v = colon_value(line, "API")).empty()) {
      k.api = v;
    } else if (!(v = colon_value(line, "Tasks")).empty()) {
      k.num_tasks = static_cast<std::uint32_t>(parse_i64(v));
    } else if (!(v = colon_value(line, "Nodes")).empty()) {
      k.num_nodes = static_cast<std::uint32_t>(parse_i64(v));
    } else if (starts_with(t, "iter")) {
      in_table = true;
    } else if (in_table && !t.empty()) {
      const auto fields = split_ws(t);
      if (fields.size() < 5) {
        continue;
      }
      const int iteration = static_cast<int>(parse_i64(fields[0]));
      knowledge::OpResult write_result;
      write_result.iteration = iteration;
      write_result.bw_mib = parse_f64(fields[1]);
      write_result.wrrd_sec = parse_f64(fields[3]);
      write_result.total_sec = write_result.wrrd_sec;
      write_summary.results.push_back(write_result);
      knowledge::OpResult read_result;
      read_result.iteration = iteration;
      read_result.bw_mib = parse_f64(fields[2]);
      read_result.wrrd_sec = parse_f64(fields[4]);
      read_result.total_sec = read_result.wrrd_sec;
      read_summary.results.push_back(read_result);
    }
  }
  if (k.command.empty()) {
    throw ParseError("HACC-IO output has no 'Command line' field");
  }
  if (write_summary.results.empty()) {
    throw ParseError("HACC-IO output has no iteration table");
  }
  write_summary.api = k.api;
  read_summary.api = k.api;
  write_summary.recompute();
  read_summary.recompute();
  k.summaries.push_back(std::move(write_summary));
  k.summaries.push_back(std::move(read_summary));
  return k;
}

std::uint64_t DarshanLog::total_bytes_written() const {
  std::uint64_t total = 0;
  for (const auto& [file, counters] : files) {
    total += counters.bytes_written;
  }
  return total;
}

std::uint64_t DarshanLog::total_bytes_read() const {
  std::uint64_t total = 0;
  for (const auto& [file, counters] : files) {
    total += counters.bytes_read;
  }
  return total;
}

DarshanLog parse_darshan_log(std::string_view text) {
  DarshanLog log;
  bool saw_header = false;
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (t.empty()) {
      continue;
    }
    if (starts_with(t, "#")) {
      if (!(v = colon_value(t.substr(1), "darshan log version")).empty()) {
        saw_header = true;
      } else if (!(v = colon_value(t.substr(1), "exe")).empty()) {
        log.command = v;
      } else if (!(v = colon_value(t.substr(1), "nprocs")).empty()) {
        log.nprocs = static_cast<std::uint32_t>(parse_i64(v));
      } else if (!(v = colon_value(t.substr(1), "module")).empty()) {
        log.module = v;
      }
      continue;
    }
    const auto fields = split_ws(t);
    if (fields.size() != 5) {
      throw ParseError("bad Darshan counter line: " + line);
    }
    const std::string& file = fields[2];
    const std::string& counter = fields[3];
    const auto value = static_cast<std::uint64_t>(parse_i64(fields[4]));
    DarshanLog::Counters& counters = log.files[file];
    if (counter.ends_with("_OPENS")) {
      counters.opens = value;
    } else if (counter.ends_with("_CLOSES")) {
      counters.closes = value;
    } else if (counter.ends_with("_WRITES")) {
      counters.writes = value;
    } else if (counter.ends_with("_READS")) {
      counters.reads = value;
    } else if (counter.ends_with("_BYTES_WRITTEN")) {
      counters.bytes_written = value;
    } else if (counter.ends_with("_BYTES_READ")) {
      counters.bytes_read = value;
    } else if (counter.ends_with("_MAX_WRITE_SIZE")) {
      counters.max_write_size = value;
    } else if (counter.ends_with("_MAX_READ_SIZE")) {
      counters.max_read_size = value;
    } else {
      throw ParseError("unknown Darshan counter '" + counter + "'");
    }
  }
  if (!saw_header) {
    throw ParseError("missing Darshan log header");
  }
  return log;
}

knowledge::Knowledge darshan_to_knowledge(const DarshanLog& log) {
  knowledge::Knowledge k;
  k.benchmark = "darshan";
  k.command = log.command;
  k.api = log.module;
  k.num_tasks = log.nprocs;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  for (const auto& [file, counters] : log.files) {
    writes += counters.writes;
    reads += counters.reads;
  }
  knowledge::OpSummary write_summary;
  write_summary.operation = "write";
  write_summary.api = log.module;
  write_summary.mean_ops = static_cast<double>(writes);
  write_summary.mean_bw_mib =
      static_cast<double>(log.total_bytes_written()) / (1024.0 * 1024.0);
  knowledge::OpSummary read_summary;
  read_summary.operation = "read";
  read_summary.api = log.module;
  read_summary.mean_ops = static_cast<double>(reads);
  read_summary.mean_bw_mib =
      static_cast<double>(log.total_bytes_read()) / (1024.0 * 1024.0);
  k.summaries.push_back(std::move(write_summary));
  k.summaries.push_back(std::move(read_summary));
  return k;
}

knowledge::SystemInfoRecord parse_sysinfo(std::string_view text) {
  knowledge::SystemInfoRecord record;
  bool saw_any = false;
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    const std::string key{trim(line.substr(0, colon))};
    const std::string value{trim(line.substr(colon + 1))};
    saw_any = true;
    if (key == "hostname") {
      record.hostname = value;
    } else if (key == "os_release") {
      record.os_release = value;
    } else if (key == "cpu_model") {
      record.cpu_model = value;
    } else if (key == "sockets") {
      record.sockets = static_cast<int>(parse_i64(value));
    } else if (key == "cores_per_socket") {
      record.cores_per_socket = static_cast<int>(parse_i64(value));
    } else if (key == "total_cores") {
      record.total_cores = static_cast<int>(parse_i64(value));
    } else if (key == "frequency_mhz") {
      record.frequency_mhz = parse_f64(value);
    } else if (key == "l1d_kib") {
      record.l1d_kib = static_cast<std::uint64_t>(parse_i64(value));
    } else if (key == "l2_kib") {
      record.l2_kib = static_cast<std::uint64_t>(parse_i64(value));
    } else if (key == "l3_kib") {
      record.l3_kib = static_cast<std::uint64_t>(parse_i64(value));
    } else if (key == "memory_bytes") {
      record.memory_bytes = static_cast<std::uint64_t>(parse_i64(value));
    } else if (key == "interconnect") {
      record.interconnect = value;
    }
    // Unknown keys are tolerated: future providers may add fields.
  }
  if (!saw_any) {
    throw ParseError("system info snapshot is empty");
  }
  return record;
}

namespace {

/// `lfs getstripe` dialect (Lustre).
knowledge::FileSystemInfo parse_lustre_fsinfo(std::string_view text,
                                              const std::string& fs_name) {
  knowledge::FileSystemInfo info;
  info.fs_name = fs_name;
  info.entry_type = "file";
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (!(v = colon_value(t, "lmm_stripe_count")).empty()) {
      info.num_targets = static_cast<std::uint32_t>(parse_i64(v));
    } else if (!(v = colon_value(t, "lmm_stripe_size")).empty()) {
      info.chunk_size = static_cast<std::uint64_t>(parse_i64(v));
    } else if (!(v = colon_value(t, "lmm_pattern")).empty()) {
      info.stripe_pattern = v == "raid0" ? "RAID0" : v;
    } else if (!(v = colon_value(t, "lmm_fid")).empty()) {
      // "[0x200000400:0x<entry>:0x0]" -> middle token without the 0x prefix
      const auto fields = split(v, ':');
      if (fields.size() == 3 && fields[1].size() > 2) {
        info.entry_id = fields[1].substr(2);
      }
    } else if (!(v = colon_value(t, "lmm_pool")).empty()) {
      if (starts_with(v, "pool")) {
        info.storage_pool =
            static_cast<std::uint32_t>(parse_i64(v.substr(4)));
      }
    }
  }
  // Lustre's getstripe does not name the MDT; the model's files all resolve
  // through MDT0 equivalently.
  info.metadata_node = 1;
  if (info.entry_id.empty()) {
    throw ParseError("Lustre file-system info lacks an lmm_fid");
  }
  return info;
}

}  // namespace

knowledge::FileSystemInfo parse_fsinfo(std::string_view text,
                                       const std::string& fs_name) {
  if (contains(text, "lmm_stripe_count")) {
    return parse_lustre_fsinfo(text, fs_name);
  }
  knowledge::FileSystemInfo info;
  info.fs_name = fs_name;
  std::string v;
  for (const std::string& line : split_lines(text)) {
    const std::string_view t = trim(line);
    if (!(v = colon_value(t, "Entry type")).empty()) {
      info.entry_type = v;
    } else if (!(v = colon_value(t, "EntryID")).empty()) {
      info.entry_id = v;
    } else if (!(v = colon_value(t, "Metadata node")).empty()) {
      // "meta2 [ID: 2]"
      const std::size_t id = v.find("[ID:");
      if (id != std::string::npos) {
        const std::size_t close = v.find(']', id);
        info.metadata_node = static_cast<std::uint32_t>(
            parse_i64(trim(v.substr(id + 4, close - id - 4))));
      }
    } else if (!(v = colon_value(t, "+ Type")).empty()) {
      info.stripe_pattern = v;
    } else if (!(v = colon_value(t, "+ Chunksize")).empty()) {
      // "512K" in IOR token form
      std::string token = v;
      std::transform(token.begin(), token.end(), token.begin(), [](char c) {
        return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
      });
      info.chunk_size = util::parse_size(token);
    } else if (!(v = colon_value(t, "+ Number of storage targets")).empty()) {
      // "desired: 4; actual: 4"
      const std::size_t actual = v.find("actual:");
      if (actual != std::string::npos) {
        info.num_targets = static_cast<std::uint32_t>(
            parse_i64(trim(v.substr(actual + 7))));
      }
    } else if (!(v = colon_value(t, "+ Storage Pool")).empty()) {
      // "1 (Default)"
      const auto fields = split_ws(v);
      if (!fields.empty()) {
        info.storage_pool = static_cast<std::uint32_t>(parse_i64(fields[0]));
      }
    }
  }
  if (info.entry_id.empty()) {
    throw ParseError("file-system info lacks an EntryID");
  }
  return info;
}

knowledge::JobInfoRecord parse_jobinfo(std::string_view text) {
  knowledge::JobInfoRecord record;
  bool saw_job_id = false;
  for (const std::string& line : split_lines(text)) {
    for (const std::string& token : split_ws(line)) {
      const std::size_t eq = token.find('=');
      if (eq == std::string::npos) {
        continue;
      }
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "JobId") {
        record.job_id = static_cast<std::uint64_t>(parse_i64(value));
        saw_job_id = true;
      } else if (key == "JobName") {
        record.job_name = value;
      } else if (key == "Partition") {
        record.partition = value;
      } else if (key == "UserId") {
        record.user = value;
      } else if (key == "NumNodes") {
        record.num_nodes = static_cast<std::uint32_t>(parse_i64(value));
      } else if (key == "NumTasks") {
        record.num_tasks = static_cast<std::uint32_t>(parse_i64(value));
      } else if (key == "NodeList") {
        record.node_list = value;
      } else if (key == "SubmitTime" && starts_with(value, "t+")) {
        record.submit_time = parse_f64(value.substr(2));
      } else if (key == "StartTime" && starts_with(value, "t+")) {
        record.start_time = parse_f64(value.substr(2));
      }
    }
  }
  if (!saw_job_id) {
    throw ParseError("job info snapshot lacks a JobId");
  }
  return record;
}

SourceFormat sniff_format(std::string_view text) {
  const auto lines = split_lines(text.substr(0, std::min<std::size_t>(
                                                     text.size(), 4096)));
  for (const std::string& line : lines) {
    const std::string_view t = trim(line);
    if (starts_with(t, "IOR-")) {
      return SourceFormat::kIor;
    }
    if (starts_with(t, "mdtest-")) {
      return SourceFormat::kMdtest;
    }
    if (starts_with(t, "IO500 version")) {
      return SourceFormat::kIo500;
    }
    if (starts_with(t, "HACC-IO")) {
      return SourceFormat::kHaccIo;
    }
    if (starts_with(t, "# darshan log version")) {
      return SourceFormat::kDarshan;
    }
  }
  return SourceFormat::kUnknown;
}

}  // namespace iokc::extract
