// Text parsers for every knowledge source: IOR, mdtest, IO500, HACC-IO,
// Darshan-style logs, plus the system-info and file-system-info snapshots.
// These operate strictly on the text the generation phase wrote to disk —
// the extraction phase never peeks at in-memory benchmark structs.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"

namespace iokc::extract {

/// Parses an IOR report (render_output format) into a knowledge object with
/// one OpSummary per access direction and per-iteration OpResults.
/// Throws ParseError on malformed reports.
knowledge::Knowledge parse_ior_output(std::string_view text);

/// Parses an mdtest "SUMMARY rate" report. Rates land in the ops fields of
/// the summaries ("File creation" -> operation "create", etc.).
knowledge::Knowledge parse_mdtest_output(std::string_view text);

/// Parses an IO500 report ([RESULT] lines + [SCORE ] line).
knowledge::Io500Knowledge parse_io500_output(std::string_view text);

/// Parses a HACC-IO report into a knowledge object with write/read summaries.
knowledge::Knowledge parse_haccio_output(std::string_view text);

/// One parsed Darshan-style log.
struct DarshanLog {
  std::string command;
  std::uint32_t nprocs = 0;
  std::string module;  // "POSIX" or "MPIIO"
  struct Counters {
    std::uint64_t opens = 0;
    std::uint64_t closes = 0;
    std::uint64_t writes = 0;
    std::uint64_t reads = 0;
    std::uint64_t bytes_written = 0;
    std::uint64_t bytes_read = 0;
    std::uint64_t max_write_size = 0;
    std::uint64_t max_read_size = 0;
  };
  std::map<std::string, Counters> files;

  std::uint64_t total_bytes_written() const;
  std::uint64_t total_bytes_read() const;
};

/// Parses a Darshan-style counter log (the PyDarshan role).
DarshanLog parse_darshan_log(std::string_view text);

/// Converts a Darshan log into a knowledge object (volume-oriented summary:
/// op counts and byte totals; no timing, as Darshan counters carry none here).
knowledge::Knowledge darshan_to_knowledge(const DarshanLog& log);

/// Parses the render_sysinfo_summary "key: value" snapshot.
knowledge::SystemInfoRecord parse_sysinfo(std::string_view text);

/// Parses file-system entry info in either the BeeGFS dialect ("Entry type:
/// ... Stripe pattern details") or the Lustre `lfs getstripe` dialect
/// (auto-detected). `fs_name` tags the result (the mount's file-system name).
knowledge::FileSystemInfo parse_fsinfo(std::string_view text,
                                       const std::string& fs_name);

/// Parses an `scontrol show job`-style snapshot ("JobId=.. JobName=.." plus
/// NodeList/NumNodes/NumTasks lines) into the job record.
knowledge::JobInfoRecord parse_jobinfo(std::string_view text);

/// Source format sniffing for workspace auto-discovery.
enum class SourceFormat { kIor, kMdtest, kIo500, kHaccIo, kDarshan, kUnknown };
SourceFormat sniff_format(std::string_view text);

}  // namespace iokc::extract
