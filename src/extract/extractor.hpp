// The knowledge extractor (phase 2 of the cycle). Runs manually on a single
// output file or automatically over a JUBE workspace ("if the path is not
// specified, our tool automatically searches in the JUBE workspace for
// available benchmark results"), sniffing the format of each source and
// attaching sibling system-info and file-system-info snapshots.
#pragma once

#include <filesystem>
#include <string_view>
#include <vector>

#include "src/extract/parsers.hpp"
#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"

namespace iokc::extract {

/// Everything one extraction pass produced.
struct ExtractionResult {
  std::vector<knowledge::Knowledge> knowledge;
  std::vector<knowledge::Io500Knowledge> io500;
  std::vector<std::filesystem::path> skipped;  // unrecognized sources

  std::size_t total() const { return knowledge.size() + io500.size(); }
  void merge(ExtractionResult other);
};

/// The extractor.
class KnowledgeExtractor {
 public:
  /// Names of the sibling snapshot files the extractor looks for.
  static constexpr const char* kSysinfoFile = "sysinfo.txt";
  static constexpr const char* kFsinfoFile = "fsinfo.txt";
  static constexpr const char* kJobinfoFile = "jobinfo.txt";

  /// Dispatches one output document on its sniffed format. IO500 documents
  /// land in `io500`; unknown formats are recorded in `skipped` (with the
  /// given path for reporting).
  ExtractionResult extract_text(std::string_view text,
                                const std::filesystem::path& origin = {}) const;

  /// Extracts one file plus sibling sysinfo.txt / fsinfo.txt snapshots.
  ExtractionResult extract_file(const std::filesystem::path& path) const;

  /// Auto-discovers every completed output under a JUBE workspace tree
  /// (work packages without a "done" marker — crashed or in-flight — are
  /// skipped) and extracts each, fanning the parsing out over `jobs`
  /// threads (1 = serial, 0 = hardware concurrency). Results merge in
  /// discovery order, so the outcome is identical for any job count.
  ExtractionResult extract_workspace(const std::filesystem::path& root,
                                     int jobs = 1) const;
};

}  // namespace iokc::extract
