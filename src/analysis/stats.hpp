// Analysis-phase statistics: boxplot (five-number summary with Tukey fences),
// z-scores, and ordinary least-squares linear regression (the predictive
// model named in the paper's outlook).
#pragma once

#include <span>
#include <vector>

namespace iokc::analysis {

/// Five-number summary plus Tukey outliers, as the knowledge explorer's
/// overview boxplots display them.
struct BoxplotStats {
  double min = 0.0;  // lowest non-outlier (lower whisker)
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;  // highest non-outlier (upper whisker)
  double mean = 0.0;
  std::vector<double> outliers;  // beyond 1.5 * IQR fences

  double iqr() const { return q3 - q1; }
};

/// Computes the boxplot summary. Throws ConfigError on empty input.
BoxplotStats boxplot(std::span<const double> values);

/// Z-scores of each sample against the sample mean/stddev. A zero stddev
/// yields all-zero scores.
std::vector<double> z_scores(std::span<const double> values);

/// Simple linear model y = intercept + slope * x.
struct LinearModel {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;

  double predict(double x) const { return intercept + slope * x; }
};

/// Ordinary least squares over (x, y) pairs; needs >= 2 points and non-zero
/// x variance (throws ConfigError otherwise).
LinearModel fit_linear(std::span<const double> x, std::span<const double> y);

/// Multiple linear regression y = b0 + b1*x1 + ... via normal equations with
/// Gaussian elimination. `rows` is the design matrix without the intercept
/// column. `ridge` > 0 adds Tikhonov regularization (scaled by the normal
/// matrix trace), which keeps constant or collinear features — common in
/// real knowledge bases — from making the system singular. Throws
/// ConfigError on shape mismatch or (with ridge == 0) a singular system.
std::vector<double> fit_multilinear(
    const std::vector<std::vector<double>>& rows,
    std::span<const double> y, double ridge = 0.0);

}  // namespace iokc::analysis
