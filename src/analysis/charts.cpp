#include "src/analysis/charts.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::analysis {

namespace {

constexpr const char* kPalette[] = {"#4e79a7", "#f28e2b", "#59a14f",
                                    "#e15759", "#76b7b2", "#edc948"};
constexpr int kMarginLeft = 64;
constexpr int kMarginRight = 16;
constexpr int kMarginTop = 36;
constexpr int kMarginBottom = 56;

std::string escape(const std::string& text) {
  return util::replace_all(
      util::replace_all(util::replace_all(text, "&", "&amp;"), "<", "&lt;"),
      ">", "&gt;");
}

std::string fmt(double value) {
  char buf[48];
  if (std::abs(value) >= 1000.0 || value == std::floor(value)) {
    std::snprintf(buf, sizeof buf, "%.0f", value);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f", value);
  }
  return buf;
}

struct Frame {
  int width;
  int height;
  double y_min;
  double y_max;

  double plot_width() const {
    return static_cast<double>(width - kMarginLeft - kMarginRight);
  }
  double plot_height() const {
    return static_cast<double>(height - kMarginTop - kMarginBottom);
  }
  double map_y(double value) const {
    const double range = std::max(y_max - y_min, 1e-12);
    return static_cast<double>(kMarginTop) +
           plot_height() * (1.0 - (value - y_min) / range);
  }
};

std::string svg_header(int width, int height) {
  char buf[256];
  std::snprintf(buf, sizeof buf,
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                "height=\"%d\" viewBox=\"0 0 %d %d\" font-family=\"sans-serif\""
                " font-size=\"12\">\n",
                width, height, width, height);
  return std::string(buf) +
         "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
}

std::string text_at(double x, double y, const std::string& content,
                    const char* anchor = "middle", int size = 12,
                    const char* extra = "") {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"%s\" "
                "font-size=\"%d\" %s>",
                x, y, anchor, size, extra);
  return std::string(buf) + escape(content) + "</text>\n";
}

std::string line_at(double x1, double y1, double x2, double y2,
                    const char* stroke = "#333", double width = 1.0) {
  char buf[200];
  std::snprintf(buf, sizeof buf,
                "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                "stroke=\"%s\" stroke-width=\"%.1f\"/>\n",
                x1, y1, x2, y2, stroke, width);
  return buf;
}

/// Axes, ticks, labels, and title common to every chart.
std::string chart_scaffold(const Frame& frame, const std::string& title,
                           const std::string& x_label,
                           const std::string& y_label) {
  std::string out;
  out += text_at(frame.width / 2.0, 20, title, "middle", 14,
                 "font-weight=\"bold\"");
  const double x0 = kMarginLeft;
  const double x1 = frame.width - kMarginRight;
  const double y0 = frame.map_y(frame.y_min);
  const double y1 = frame.map_y(frame.y_max);
  out += line_at(x0, y0, x1, y0);  // x axis
  out += line_at(x0, y0, x0, y1);  // y axis
  // 5 y ticks with grid lines.
  for (int t = 0; t <= 5; ++t) {
    const double value =
        frame.y_min + (frame.y_max - frame.y_min) * t / 5.0;
    const double y = frame.map_y(value);
    out += line_at(x0 - 4, y, x0, y);
    if (t > 0) {
      out += line_at(x0, y, x1, y, "#ddd", 0.5);
    }
    out += text_at(x0 - 8, y + 4, fmt(value), "end", 11);
  }
  if (!x_label.empty()) {
    out += text_at((x0 + x1) / 2.0, frame.height - 8, x_label);
  }
  if (!y_label.empty()) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" "
                  "font-size=\"12\" transform=\"rotate(-90 14 %.1f)\">",
                  (y0 + y1) / 2.0, (y0 + y1) / 2.0);
    out += std::string(buf) + escape(y_label) + "</text>\n";
  }
  return out;
}

std::string legend(const std::vector<Series>& series, int width) {
  std::string out;
  double x = width - kMarginRight - 110.0;
  double y = kMarginTop + 4.0;
  for (std::size_t s = 0; s < series.size(); ++s) {
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "<rect x=\"%.1f\" y=\"%.1f\" width=\"10\" height=\"10\" "
                  "fill=\"%s\"/>\n",
                  x, y - 9, kPalette[s % std::size(kPalette)]);
    out += buf;
    out += text_at(x + 14, y, series[s].label, "start", 11);
    y += 16;
  }
  return out;
}

Frame make_frame(int width, int height, double min_value, double max_value,
                 bool zero_base) {
  Frame frame{width, height, min_value, max_value};
  if (zero_base && frame.y_min > 0.0) {
    frame.y_min = 0.0;
  }
  if (frame.y_max <= frame.y_min) {
    frame.y_max = frame.y_min + 1.0;
  }
  // Headroom for markers and the legend.
  frame.y_max += (frame.y_max - frame.y_min) * 0.08;
  return frame;
}

void data_range(const std::vector<Series>& series, double& min_value,
                double& max_value) {
  min_value = 0.0;
  max_value = 1.0;
  bool first = true;
  for (const Series& s : series) {
    for (const double v : s.values) {
      if (first) {
        min_value = v;
        max_value = v;
        first = false;
      } else {
        min_value = std::min(min_value, v);
        max_value = std::max(max_value, v);
      }
    }
  }
}

}  // namespace

void Chart::validate() const {
  if (categories.empty()) {
    throw ConfigError("chart '" + title + "' has no categories");
  }
  for (const Series& s : series) {
    if (s.values.size() != categories.size()) {
      throw ConfigError("chart '" + title + "': series '" + s.label + "' has " +
                        std::to_string(s.values.size()) + " values for " +
                        std::to_string(categories.size()) + " categories");
    }
  }
}

std::string render_svg_line(const Chart& chart, int width, int height) {
  chart.validate();
  double min_value = 0.0;
  double max_value = 1.0;
  data_range(chart.series, min_value, max_value);
  const Frame frame = make_frame(width, height, min_value, max_value, true);

  std::string out = svg_header(width, height);
  out += chart_scaffold(frame, chart.title, chart.x_label, chart.y_label);

  const double step =
      frame.plot_width() /
      static_cast<double>(std::max<std::size_t>(chart.categories.size(), 1));
  for (std::size_t c = 0; c < chart.categories.size(); ++c) {
    const double x = kMarginLeft + step * (static_cast<double>(c) + 0.5);
    out += text_at(x, height - kMarginBottom + 16, chart.categories[c],
                   "middle", 11);
  }
  for (std::size_t s = 0; s < chart.series.size(); ++s) {
    const char* color = kPalette[s % std::size(kPalette)];
    std::string points;
    for (std::size_t c = 0; c < chart.series[s].values.size(); ++c) {
      const double x = kMarginLeft + step * (static_cast<double>(c) + 0.5);
      const double y = frame.map_y(chart.series[s].values[c]);
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.1f,%.1f ", x, y);
      points += buf;
      char marker[160];
      std::snprintf(marker, sizeof marker,
                    "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"3\" fill=\"%s\"/>\n",
                    x, y, color);
      out += marker;
    }
    out += "<polyline fill=\"none\" stroke=\"" + std::string(color) +
           "\" stroke-width=\"2\" points=\"" + points + "\"/>\n";
  }
  out += legend(chart.series, width);
  out += "</svg>\n";
  return out;
}

std::string render_svg_bar(const Chart& chart, int width, int height) {
  chart.validate();
  double min_value = 0.0;
  double max_value = 1.0;
  data_range(chart.series, min_value, max_value);
  const Frame frame = make_frame(width, height, std::min(min_value, 0.0),
                                 max_value, true);

  std::string out = svg_header(width, height);
  out += chart_scaffold(frame, chart.title, chart.x_label, chart.y_label);

  const double group_step =
      frame.plot_width() /
      static_cast<double>(std::max<std::size_t>(chart.categories.size(), 1));
  const double bar_width =
      group_step * 0.8 /
      static_cast<double>(std::max<std::size_t>(chart.series.size(), 1));
  const double baseline = frame.map_y(std::max(frame.y_min, 0.0));
  for (std::size_t c = 0; c < chart.categories.size(); ++c) {
    const double group_x =
        kMarginLeft + group_step * static_cast<double>(c) + group_step * 0.1;
    out += text_at(group_x + group_step * 0.4, height - kMarginBottom + 16,
                   chart.categories[c], "middle", 11);
    for (std::size_t s = 0; s < chart.series.size(); ++s) {
      const double value = chart.series[s].values[c];
      const double y = frame.map_y(value);
      const double top = std::min(y, baseline);
      const double h = std::abs(baseline - y);
      char buf[240];
      std::snprintf(buf, sizeof buf,
                    "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\""
                    " fill=\"%s\"/>\n",
                    group_x + bar_width * static_cast<double>(s), top,
                    bar_width * 0.92, h, kPalette[s % std::size(kPalette)]);
      out += buf;
    }
  }
  out += legend(chart.series, width);
  out += "</svg>\n";
  return out;
}

std::string render_svg_boxplot(const BoxplotChart& chart, int width,
                               int height) {
  if (chart.boxes.empty()) {
    throw ConfigError("boxplot chart '" + chart.title + "' has no boxes");
  }
  double min_value = chart.boxes.front().second.min;
  double max_value = chart.boxes.front().second.max;
  for (const auto& [label, box] : chart.boxes) {
    min_value = std::min(min_value, box.min);
    max_value = std::max(max_value, box.max);
    for (const double v : box.outliers) {
      min_value = std::min(min_value, v);
      max_value = std::max(max_value, v);
    }
  }
  const Frame frame = make_frame(width, height, min_value, max_value, true);

  std::string out = svg_header(width, height);
  out += chart_scaffold(frame, chart.title, "", chart.y_label);

  const double step = frame.plot_width() / static_cast<double>(
                                               chart.boxes.size());
  for (std::size_t b = 0; b < chart.boxes.size(); ++b) {
    const auto& [label, box] = chart.boxes[b];
    const double cx = kMarginLeft + step * (static_cast<double>(b) + 0.5);
    const double half = std::min(step * 0.3, 40.0);
    const char* color = kPalette[b % std::size(kPalette)];

    const double y_min = frame.map_y(box.min);
    const double y_q1 = frame.map_y(box.q1);
    const double y_med = frame.map_y(box.median);
    const double y_q3 = frame.map_y(box.q3);
    const double y_max = frame.map_y(box.max);

    out += line_at(cx, y_min, cx, y_q1, "#333");            // lower whisker
    out += line_at(cx, y_q3, cx, y_max, "#333");            // upper whisker
    out += line_at(cx - half * 0.6, y_min, cx + half * 0.6, y_min, "#333");
    out += line_at(cx - half * 0.6, y_max, cx + half * 0.6, y_max, "#333");
    char buf[240];
    std::snprintf(buf, sizeof buf,
                  "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
                  "fill=\"%s\" fill-opacity=\"0.5\" stroke=\"#333\"/>\n",
                  cx - half, y_q3, half * 2.0, std::max(y_q1 - y_q3, 1.0),
                  color);
    out += buf;
    out += line_at(cx - half, y_med, cx + half, y_med, "#000", 2.0);
    for (const double v : box.outliers) {
      char marker[160];
      std::snprintf(marker, sizeof marker,
                    "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"none\" "
                    "stroke=\"%s\"/>\n",
                    cx, frame.map_y(v), color);
      out += marker;
    }
    out += text_at(cx, frame.height - kMarginBottom + 16, label, "middle", 11);
  }
  out += "</svg>\n";
  return out;
}

void HeatmapChart::validate() const {
  if (rows.empty() || columns.empty()) {
    throw ConfigError("heatmap '" + title + "' needs rows and columns");
  }
  if (values.size() != rows.size()) {
    throw ConfigError("heatmap '" + title + "': value grid has " +
                      std::to_string(values.size()) + " rows for " +
                      std::to_string(rows.size()) + " labels");
  }
  for (const auto& row : values) {
    if (row.size() != columns.size()) {
      throw ConfigError("heatmap '" + title + "': ragged value grid");
    }
  }
}

std::string render_svg_heatmap(const HeatmapChart& chart, int width,
                               int height) {
  chart.validate();
  double min_value = chart.values[0][0];
  double max_value = chart.values[0][0];
  for (const auto& row : chart.values) {
    for (const double v : row) {
      min_value = std::min(min_value, v);
      max_value = std::max(max_value, v);
    }
  }
  const double range = std::max(max_value - min_value, 1e-12);

  std::string out = svg_header(width, height);
  out += text_at(width / 2.0, 20, chart.title, "middle", 14,
                 "font-weight=\"bold\"");
  const double x0 = kMarginLeft;
  const double y0 = kMarginTop;
  const double cell_w =
      (width - kMarginLeft - kMarginRight) /
      static_cast<double>(chart.columns.size());
  const double cell_h = (height - kMarginTop - kMarginBottom) /
                        static_cast<double>(chart.rows.size());

  for (std::size_t r = 0; r < chart.rows.size(); ++r) {
    out += text_at(x0 - 8, y0 + cell_h * (static_cast<double>(r) + 0.6),
                   chart.rows[r], "end", 11);
    for (std::size_t c = 0; c < chart.columns.size(); ++c) {
      const double v = chart.values[r][c];
      const double normalized = (v - min_value) / range;
      // White -> saturated blue ramp.
      const int red = static_cast<int>(255.0 - 177.0 * normalized);
      const int green = static_cast<int>(255.0 - 134.0 * normalized);
      const int blue = static_cast<int>(255.0 - 88.0 * normalized);
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" "
                    "height=\"%.1f\" fill=\"rgb(%d,%d,%d)\" "
                    "stroke=\"#fff\"/>\n",
                    x0 + cell_w * static_cast<double>(c),
                    y0 + cell_h * static_cast<double>(r), cell_w, cell_h, red,
                    green, blue);
      out += buf;
      out += text_at(x0 + cell_w * (static_cast<double>(c) + 0.5),
                     y0 + cell_h * (static_cast<double>(r) + 0.6), fmt(v),
                     "middle", 10,
                     normalized > 0.6 ? "fill=\"#fff\"" : "fill=\"#222\"");
    }
  }
  for (std::size_t c = 0; c < chart.columns.size(); ++c) {
    out += text_at(x0 + cell_w * (static_cast<double>(c) + 0.5),
                   height - kMarginBottom + 16, chart.columns[c], "middle",
                   11);
  }
  if (!chart.x_label.empty()) {
    out += text_at((x0 + width - kMarginRight) / 2.0, height - 8,
                   chart.x_label);
  }
  if (!chart.y_label.empty()) {
    char buf[200];
    const double mid = y0 + (height - kMarginTop - kMarginBottom) / 2.0;
    std::snprintf(buf, sizeof buf,
                  "<text x=\"14\" y=\"%.1f\" text-anchor=\"middle\" "
                  "font-size=\"12\" transform=\"rotate(-90 14 %.1f)\">",
                  mid, mid);
    out += std::string(buf) + escape(chart.y_label) + "</text>\n";
  }
  out += "</svg>\n";
  return out;
}

std::string render_ascii_bar(const Chart& chart, int bar_width) {
  chart.validate();
  double min_value = 0.0;
  double max_value = 1.0;
  data_range(chart.series, min_value, max_value);
  max_value = std::max(max_value, 1e-12);

  std::size_t label_width = 0;
  for (const std::string& category : chart.categories) {
    for (const Series& s : chart.series) {
      label_width =
          std::max(label_width, category.size() + s.label.size() + 1);
    }
  }

  std::string out = chart.title + "\n";
  for (std::size_t c = 0; c < chart.categories.size(); ++c) {
    for (const Series& s : chart.series) {
      const double value = s.values[c];
      const int filled = static_cast<int>(
          std::round(std::max(value, 0.0) / max_value * bar_width));
      std::string label = chart.categories[c];
      if (!s.label.empty()) {
        label += "/" + s.label;
      }
      out += util::pad_right(label, label_width + 1);
      out += "|" + std::string(static_cast<std::size_t>(filled), '#');
      out += " " + fmt(value) + "\n";
    }
  }
  return out;
}

void save_svg(const std::string& path, const std::string& svg) {
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write SVG file: " + path);
  }
  out << svg;
  if (!out) {
    throw IoError("failed writing SVG file: " + path);
  }
}

}  // namespace iokc::analysis
