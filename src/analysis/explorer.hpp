// The knowledge explorer (phase 4): the headless counterpart of the paper's
// web-based analysis tool. It reads from a KnowledgeRepository (the "global"
// database) or directly from knowledge objects ("local data"), and offers:
//  - the knowledge viewer: everything about one run at a glance,
//  - per-iteration detail tables and charts (the paper's Fig. 5 view),
//  - comparison across knowledge objects with runtime-selectable axes,
//  - overview boxplots of selected objects' throughput,
//  - filtering/sorting through SQL WHERE clauses,
//  - the IO500 viewer with scores and test cases (Fig. 6 view).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/analysis/charts.hpp"
#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/persist/repository.hpp"

namespace iokc::analysis {

/// Per-iteration metric accessor. Valid names: bw_mib, iops, latency_sec,
/// open_sec, wrrd_sec, close_sec, total_sec. Throws ConfigError otherwise.
double op_result_metric(const knowledge::OpResult& result,
                        const std::string& metric);

/// Per-summary (aggregate) metric accessor. Valid names: mean_bw_mib,
/// max_bw_mib, min_bw_mib, stddev_bw_mib, mean_ops, max_ops, min_ops,
/// mean_time_sec.
double op_summary_metric(const knowledge::OpSummary& summary,
                         const std::string& metric);

/// The explorer bound to a repository.
class KnowledgeExplorer {
 public:
  explicit KnowledgeExplorer(persist::KnowledgeRepository& repository)
      : repository_(repository) {}

  // -- Knowledge viewer --------------------------------------------------

  /// Full text panel for one knowledge object: run parameters, file-system
  /// info, system info, and the per-operation summary table.
  std::string render_knowledge_view(std::int64_t id);

  /// Per-operation, per-iteration detail table.
  std::string render_iteration_details(std::int64_t id);

  /// Chart of a per-iteration metric with one series per operation — the
  /// paper's Fig. 5 ("throughput and number of ops over 6 iterations").
  Chart iteration_chart(std::int64_t id, const std::string& metric);

  // -- Comparison --------------------------------------------------------

  /// Comparison across knowledge objects: x axis = the objects, series = the
  /// selected operation(s), values = the selected aggregate metric. Axes are
  /// chosen at call time, matching the GUI's runtime axis selection.
  Chart comparison_chart(const std::vector<std::int64_t>& ids,
                         const std::string& metric,
                         const std::vector<std::string>& operations);

  /// Overview boxplot: per selected object, the distribution of a
  /// per-iteration metric for one operation.
  BoxplotChart overview_boxplot(const std::vector<std::int64_t>& ids,
                                const std::string& operation,
                                const std::string& metric = "bw_mib");

  /// Filtering/sorting: SQL tail against the performances table, e.g.
  /// "num_tasks = 80 ORDER BY start_time DESC". Returns matching ids.
  std::vector<std::int64_t> filter_ids(const std::string& sql_tail);

  // -- IO500 viewer --------------------------------------------------------

  /// Score + test case panel of one IO500 run.
  std::string render_io500_view(std::int64_t iofh_id);

  /// Bar chart of every test case value of one IO500 run.
  Chart io500_testcase_chart(std::int64_t iofh_id);

  /// Fig. 6: boxplots of the four boundary test cases across several runs.
  BoxplotChart io500_boundary_boxplot(const std::vector<std::int64_t>& ids);

 private:
  persist::KnowledgeRepository& repository_;
};

}  // namespace iokc::analysis
