#include "src/analysis/explorer.hpp"

#include <cstdio>

#include "src/obs/observability.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"
#include "src/util/units.hpp"

namespace iokc::analysis {

double op_result_metric(const knowledge::OpResult& result,
                        const std::string& metric) {
  if (metric == "bw_mib") return result.bw_mib;
  if (metric == "iops") return result.iops;
  if (metric == "latency_sec") return result.latency_sec;
  if (metric == "open_sec") return result.open_sec;
  if (metric == "wrrd_sec") return result.wrrd_sec;
  if (metric == "close_sec") return result.close_sec;
  if (metric == "total_sec") return result.total_sec;
  throw ConfigError("unknown per-iteration metric '" + metric + "'");
}

double op_summary_metric(const knowledge::OpSummary& summary,
                         const std::string& metric) {
  if (metric == "mean_bw_mib") return summary.mean_bw_mib;
  if (metric == "max_bw_mib") return summary.max_bw_mib;
  if (metric == "min_bw_mib") return summary.min_bw_mib;
  if (metric == "stddev_bw_mib") return summary.stddev_bw_mib;
  if (metric == "mean_ops") return summary.mean_ops;
  if (metric == "max_ops") return summary.max_ops;
  if (metric == "min_ops") return summary.min_ops;
  if (metric == "mean_time_sec") return summary.mean_time_sec;
  throw ConfigError("unknown summary metric '" + metric + "'");
}

std::string KnowledgeExplorer::render_knowledge_view(std::int64_t id) {
  obs::Span span("analysis:knowledge_view",
                 {.category = "analysis", .phase = "analysis"});
  const knowledge::Knowledge k = repository_.load_knowledge(id);
  std::string out;
  out += "Knowledge object #" + std::to_string(id) + "\n";
  out += "  command   : " + k.command + "\n";
  out += "  benchmark : " + k.benchmark + "\n";
  out += "  api       : " + k.api + "\n";
  out += "  test file : " + k.test_file + "\n";
  out += "  tasks     : " + std::to_string(k.num_tasks) + " on " +
         std::to_string(k.num_nodes) + " node(s)\n";
  out += std::string("  access    : ") +
         (k.file_per_process ? "file-per-process" : "single-shared-file") +
         "\n";
  if (k.filesystem.has_value()) {
    const knowledge::FileSystemInfo& f = *k.filesystem;
    out += "  file system:\n";
    out += "    name / entry  : " + f.fs_name + " / " + f.entry_id + "\n";
    out += "    metadata node : " + std::to_string(f.metadata_node) + "\n";
    out += "    stripe        : " + f.stripe_pattern + ", chunk " +
           util::format_bytes(f.chunk_size) + ", " +
           std::to_string(f.num_targets) + " targets, pool " +
           std::to_string(f.storage_pool) + "\n";
  }
  if (k.job.has_value()) {
    const knowledge::JobInfoRecord& j = *k.job;
    out += "  job context (Slurm):\n";
    out += "    JobId " + std::to_string(j.job_id) + " (" + j.job_name +
           "), partition " + j.partition + ", user " + j.user + "\n";
    out += "    " + std::to_string(j.num_tasks) + " tasks on " +
           std::to_string(j.num_nodes) + " node(s): " + j.node_list + "\n";
  }
  if (k.system.has_value()) {
    const knowledge::SystemInfoRecord& s = *k.system;
    out += "  system:\n";
    out += "    host  : " + s.hostname + " (" + s.os_release + ")\n";
    out += "    cpu   : " + s.cpu_model + ", " +
           std::to_string(s.total_cores) + " cores @ " +
           util::format_double(s.frequency_mhz, 0) + " MHz\n";
    out += "    memory: " + util::format_bytes(s.memory_bytes) + ", L3 " +
           std::to_string(s.l3_kib) + " KiB\n";
  }
  util::TextTable table;
  table.set_header({"operation", "api", "max(MiB/s)", "min(MiB/s)",
                    "mean(MiB/s)", "stddev", "mean(OPs)", "mean(s)"});
  table.set_alignment({util::Align::kLeft, util::Align::kLeft,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight});
  for (const knowledge::OpSummary& summary : k.summaries) {
    table.add_row({summary.operation, summary.api,
                   util::format_double(summary.max_bw_mib, 2),
                   util::format_double(summary.min_bw_mib, 2),
                   util::format_double(summary.mean_bw_mib, 2),
                   util::format_double(summary.stddev_bw_mib, 2),
                   util::format_double(summary.mean_ops, 2),
                   util::format_double(summary.mean_time_sec, 4)});
  }
  out += table.render();
  return out;
}

std::string KnowledgeExplorer::render_iteration_details(std::int64_t id) {
  obs::Span span("analysis:iteration_details",
                 {.category = "analysis", .phase = "analysis"});
  const knowledge::Knowledge k = repository_.load_knowledge(id);
  util::TextTable table;
  table.set_header({"operation", "iter", "bw(MiB/s)", "IOPS", "latency(s)",
                    "open(s)", "wr/rd(s)", "close(s)", "total(s)"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight, util::Align::kRight,
                       util::Align::kRight});
  for (const knowledge::OpSummary& summary : k.summaries) {
    for (const knowledge::OpResult& result : summary.results) {
      table.add_row({summary.operation, std::to_string(result.iteration),
                     util::format_double(result.bw_mib, 2),
                     util::format_double(result.iops, 2),
                     util::format_double(result.latency_sec, 5),
                     util::format_double(result.open_sec, 5),
                     util::format_double(result.wrrd_sec, 5),
                     util::format_double(result.close_sec, 5),
                     util::format_double(result.total_sec, 5)});
    }
  }
  return table.render();
}

Chart KnowledgeExplorer::iteration_chart(std::int64_t id,
                                         const std::string& metric) {
  const knowledge::Knowledge k = repository_.load_knowledge(id);
  Chart chart;
  chart.title = metric + " per iteration (knowledge #" + std::to_string(id) +
                ")";
  chart.x_label = "iteration";
  chart.y_label = metric;
  std::size_t iterations = 0;
  for (const knowledge::OpSummary& summary : k.summaries) {
    iterations = std::max(iterations, summary.results.size());
  }
  for (std::size_t i = 0; i < iterations; ++i) {
    chart.categories.push_back(std::to_string(i + 1));
  }
  for (const knowledge::OpSummary& summary : k.summaries) {
    Series series;
    series.label = summary.operation;
    series.values.assign(iterations, 0.0);
    for (std::size_t i = 0;
         i < summary.results.size() && i < iterations; ++i) {
      series.values[i] = op_result_metric(summary.results[i], metric);
    }
    chart.series.push_back(std::move(series));
  }
  return chart;
}

Chart KnowledgeExplorer::comparison_chart(
    const std::vector<std::int64_t>& ids, const std::string& metric,
    const std::vector<std::string>& operations) {
  Chart chart;
  chart.title = "comparison: " + metric;
  chart.x_label = "knowledge object";
  chart.y_label = metric;
  std::vector<knowledge::Knowledge> objects;
  for (const std::int64_t id : ids) {
    objects.push_back(repository_.load_knowledge(id));
    chart.categories.push_back("#" + std::to_string(id));
  }
  for (const std::string& operation : operations) {
    Series series;
    series.label = operation;
    for (const knowledge::Knowledge& k : objects) {
      const knowledge::OpSummary* summary = k.find_summary(operation);
      series.values.push_back(
          summary != nullptr ? op_summary_metric(*summary, metric) : 0.0);
    }
    chart.series.push_back(std::move(series));
  }
  return chart;
}

BoxplotChart KnowledgeExplorer::overview_boxplot(
    const std::vector<std::int64_t>& ids, const std::string& operation,
    const std::string& metric) {
  BoxplotChart chart;
  chart.title = "overview: " + operation + " " + metric;
  chart.y_label = metric;
  for (const std::int64_t id : ids) {
    const knowledge::Knowledge k = repository_.load_knowledge(id);
    const knowledge::OpSummary* summary = k.find_summary(operation);
    if (summary == nullptr || summary->results.empty()) {
      continue;
    }
    std::vector<double> values;
    values.reserve(summary->results.size());
    for (const knowledge::OpResult& result : summary->results) {
      values.push_back(op_result_metric(result, metric));
    }
    chart.boxes.emplace_back("#" + std::to_string(id), boxplot(values));
  }
  if (chart.boxes.empty()) {
    throw ConfigError("no knowledge object provides operation '" + operation +
                      "'");
  }
  return chart;
}

std::vector<std::int64_t> KnowledgeExplorer::filter_ids(
    const std::string& sql_tail) {
  std::string sql = "SELECT id FROM performances";
  const std::string trimmed{util::trim(sql_tail)};
  if (!trimmed.empty()) {
    const std::string lower = util::to_lower(trimmed);
    if (util::starts_with(lower, "order") || util::starts_with(lower, "limit")) {
      sql += " " + trimmed;
    } else {
      sql += " WHERE " + trimmed;
    }
  }
  const db::ResultSet rows = repository_.database().execute(sql);
  std::vector<std::int64_t> ids;
  ids.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ids.push_back(rows.at(r, "id").as_integer());
  }
  return ids;
}

std::string KnowledgeExplorer::render_io500_view(std::int64_t iofh_id) {
  obs::Span span("analysis:io500_view",
                 {.category = "analysis", .phase = "analysis"});
  const knowledge::Io500Knowledge k = repository_.load_io500(iofh_id);
  std::string out;
  out += "IO500 knowledge object #" + std::to_string(iofh_id) + "\n";
  out += "  command : " + k.command + "\n";
  out += "  tasks   : " + std::to_string(k.num_tasks) + " on " +
         std::to_string(k.num_nodes) + " node(s)\n";
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "  score   : bw %.4f GiB/s | md %.4f kIOPS | total %.4f\n",
                k.score_bw_gib, k.score_md_kiops, k.score_total);
  out += buf;
  util::TextTable table;
  table.set_header({"testcase", "value", "unit", "time(s)"});
  table.set_alignment({util::Align::kLeft, util::Align::kRight,
                       util::Align::kLeft, util::Align::kRight});
  for (const knowledge::Io500Testcase& testcase : k.testcases) {
    table.add_row({testcase.name, util::format_double(testcase.value, 4),
                   testcase.unit, util::format_double(testcase.time_sec, 3)});
  }
  out += table.render();
  return out;
}

Chart KnowledgeExplorer::io500_testcase_chart(std::int64_t iofh_id) {
  const knowledge::Io500Knowledge k = repository_.load_io500(iofh_id);
  Chart chart;
  chart.title = "IO500 run #" + std::to_string(iofh_id);
  chart.x_label = "testcase";
  chart.y_label = "GiB/s | kIOPS";
  Series series;
  series.label = "value";
  for (const knowledge::Io500Testcase& testcase : k.testcases) {
    chart.categories.push_back(testcase.name);
    series.values.push_back(testcase.value);
  }
  chart.series.push_back(std::move(series));
  return chart;
}

BoxplotChart KnowledgeExplorer::io500_boundary_boxplot(
    const std::vector<std::int64_t>& ids) {
  static constexpr const char* kBoundaryCases[] = {
      "ior-easy-write", "ior-hard-write", "ior-easy-read", "ior-hard-read"};
  BoxplotChart chart;
  chart.title = "IO500 boundary test cases";
  chart.y_label = "GiB/s";
  for (const char* name : kBoundaryCases) {
    std::vector<double> values;
    for (const std::int64_t id : ids) {
      const knowledge::Io500Knowledge k = repository_.load_io500(id);
      if (const knowledge::Io500Testcase* testcase = k.find_testcase(name)) {
        values.push_back(testcase->value);
      }
    }
    if (!values.empty()) {
      chart.boxes.emplace_back(name, boxplot(values));
    }
  }
  if (chart.boxes.empty()) {
    throw ConfigError("no IO500 boundary test cases among the selected runs");
  }
  return chart;
}

}  // namespace iokc::analysis
