#include "src/analysis/stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"
#include "src/util/summary_stats.hpp"

namespace iokc::analysis {

BoxplotStats boxplot(std::span<const double> values) {
  if (values.empty()) {
    throw ConfigError("boxplot of empty sample");
  }
  BoxplotStats stats;
  stats.q1 = util::percentile(values, 25.0);
  stats.median = util::percentile(values, 50.0);
  stats.q3 = util::percentile(values, 75.0);
  stats.mean = util::summarize(values).mean;
  const double fence_low = stats.q1 - 1.5 * stats.iqr();
  const double fence_high = stats.q3 + 1.5 * stats.iqr();
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  stats.min = sorted.back();
  stats.max = sorted.front();
  for (const double v : sorted) {
    if (v < fence_low || v > fence_high) {
      stats.outliers.push_back(v);
    } else {
      stats.min = std::min(stats.min, v);
      stats.max = std::max(stats.max, v);
    }
  }
  if (stats.outliers.size() == sorted.size()) {
    // Degenerate: everything outlying (can't happen with Tukey fences, but
    // keep the invariant min <= max).
    stats.min = sorted.front();
    stats.max = sorted.back();
  }
  return stats;
}

std::vector<double> z_scores(std::span<const double> values) {
  const auto stats = util::summarize(values);
  std::vector<double> scores(values.size(), 0.0);
  if (stats.stddev <= 0.0) {
    return scores;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    scores[i] = (values[i] - stats.mean) / stats.stddev;
  }
  return scores;
}

LinearModel fit_linear(std::span<const double> x, std::span<const double> y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw ConfigError("linear fit needs >= 2 paired points");
  }
  const double n = static_cast<double>(x.size());
  double sum_x = 0.0;
  double sum_y = 0.0;
  double sum_xx = 0.0;
  double sum_xy = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sum_x += x[i];
    sum_y += y[i];
    sum_xx += x[i] * x[i];
    sum_xy += x[i] * y[i];
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  if (std::abs(denom) < 1e-12) {
    throw ConfigError("linear fit: x has zero variance");
  }
  LinearModel model;
  model.slope = (n * sum_xy - sum_x * sum_y) / denom;
  model.intercept = (sum_y - model.slope * sum_x) / n;

  const double mean_y = sum_y / n;
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double predicted = model.predict(x[i]);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
    ss_res += (y[i] - predicted) * (y[i] - predicted);
  }
  model.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return model;
}

std::vector<double> fit_multilinear(
    const std::vector<std::vector<double>>& rows, std::span<const double> y,
    double ridge) {
  if (rows.empty() || rows.size() != y.size()) {
    throw ConfigError("multilinear fit: shape mismatch");
  }
  const std::size_t features = rows.front().size();
  for (const auto& row : rows) {
    if (row.size() != features) {
      throw ConfigError("multilinear fit: ragged design matrix");
    }
  }
  const std::size_t dims = features + 1;  // + intercept
  // Normal equations: (X^T X) b = X^T y, with X prefixed by a ones column.
  std::vector<std::vector<double>> ata(dims, std::vector<double>(dims, 0.0));
  std::vector<double> aty(dims, 0.0);
  for (std::size_t r = 0; r < rows.size(); ++r) {
    std::vector<double> x(dims);
    x[0] = 1.0;
    for (std::size_t f = 0; f < features; ++f) {
      x[f + 1] = rows[r][f];
    }
    for (std::size_t i = 0; i < dims; ++i) {
      for (std::size_t j = 0; j < dims; ++j) {
        ata[i][j] += x[i] * x[j];
      }
      aty[i] += x[i] * y[r];
    }
  }
  if (ridge > 0.0) {
    double trace = 0.0;
    for (std::size_t i = 0; i < dims; ++i) {
      trace += ata[i][i];
    }
    const double lambda = ridge * std::max(trace / static_cast<double>(dims),
                                           1.0);
    for (std::size_t i = 0; i < dims; ++i) {
      ata[i][i] += lambda;
    }
  }

  // Gaussian elimination with partial pivoting.
  for (std::size_t col = 0; col < dims; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < dims; ++r) {
      if (std::abs(ata[r][col]) > std::abs(ata[pivot][col])) {
        pivot = r;
      }
    }
    if (std::abs(ata[pivot][col]) < 1e-12) {
      throw ConfigError("multilinear fit: singular system");
    }
    std::swap(ata[col], ata[pivot]);
    std::swap(aty[col], aty[pivot]);
    for (std::size_t r = 0; r < dims; ++r) {
      if (r == col) {
        continue;
      }
      const double factor = ata[r][col] / ata[col][col];
      for (std::size_t c = col; c < dims; ++c) {
        ata[r][c] -= factor * ata[col][c];
      }
      aty[r] -= factor * aty[col];
    }
  }
  std::vector<double> coefficients(dims);
  for (std::size_t i = 0; i < dims; ++i) {
    coefficients[i] = aty[i] / ata[i][i];
  }
  return coefficients;
}

}  // namespace iokc::analysis
