// Anomaly detection (the paper's Example II): statistical outlier detectors
// over per-iteration knowledge, cross-run IO500 comparison, and bounding-box
// violations.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/analysis/bounding_box.hpp"
#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"

namespace iokc::analysis {

enum class AnomalySeverity { kInfo, kWarning, kCritical };

std::string to_string(AnomalySeverity severity);

/// One detected anomaly.
struct Anomaly {
  std::string metric;       // e.g. "write bw_mib"
  std::string location;     // e.g. "iteration 1" or "testcase ior-easy-read"
  double value = 0.0;
  double reference = 0.0;   // the expectation it deviates from
  double deviation = 0.0;   // relative deviation (value/reference - 1)
  AnomalySeverity severity = AnomalySeverity::kWarning;
  std::string description;
};

/// A collection of findings.
struct AnomalyReport {
  std::vector<Anomaly> anomalies;

  bool empty() const { return anomalies.empty(); }
  std::size_t size() const { return anomalies.size(); }
  void merge(AnomalyReport other);
  std::string render() const;
};

/// Flags samples outside the Tukey fences (k * IQR beyond the quartiles).
/// Deviations below 5% of the median are suppressed as immaterial.
AnomalyReport detect_iqr_outliers(const std::string& metric,
                                  std::span<const double> values,
                                  double k = 1.5);

/// Flags samples with |z| >= threshold. Deviations below 5% of the mean are
/// suppressed as immaterial.
AnomalyReport detect_zscore(const std::string& metric,
                            std::span<const double> values,
                            double threshold = 2.5);

/// Flags samples below `fraction` of the median of the *other* samples —
/// the paper's observation style ("less than half the average throughput").
AnomalyReport detect_relative_drop(const std::string& metric,
                                   std::span<const double> values,
                                   double fraction = 0.5);

/// Runs the iteration-level detectors over every operation summary of a
/// knowledge object (bandwidth and ops series).
AnomalyReport detect_in_knowledge(const knowledge::Knowledge& knowledge);

/// Compares an IO500 run against a reference run; flags test cases deviating
/// by more than `tolerance` (relative).
AnomalyReport compare_io500_runs(const knowledge::Io500Knowledge& reference,
                                 const knowledge::Io500Knowledge& probe,
                                 double tolerance = 0.3);

/// Flags application measurements falling outside a bounding box.
AnomalyReport detect_box_violation(const BoundingBox2D& box, double app_bw_gib,
                                   double app_md_kiops);

/// Annotates every finding with the run's workload-manager context (job id
/// and node list) when the knowledge object carries one — "providing context
/// between anomaly and causes".
AnomalyReport with_job_context(AnomalyReport report,
                               const knowledge::Knowledge& knowledge);

}  // namespace iokc::analysis
