// Chart rendering for the headless knowledge explorer. The paper's web GUI
// shows interactive charts and exports them as image files; this build
// renders SVG directly (line, grouped bar, boxplot) plus an ASCII bar chart
// for terminals.
#pragma once

#include <string>
#include <vector>

#include "src/analysis/stats.hpp"

namespace iokc::analysis {

/// One plotted series.
struct Series {
  std::string label;
  std::vector<double> values;  // one value per category
};

/// A categorical chart (iterations, configurations, ... on the x axis).
struct Chart {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> categories;
  std::vector<Series> series;

  /// Throws ConfigError when series lengths disagree with categories.
  void validate() const;
};

/// A boxplot chart (one box per labelled group).
struct BoxplotChart {
  std::string title;
  std::string y_label;
  std::vector<std::pair<std::string, BoxplotStats>> boxes;
};

/// A heat map (the outlook's "additional chart types, including heat map"):
/// one cell per (row, column) pair, e.g. transfer size x task count -> MiB/s.
struct HeatmapChart {
  std::string title;
  std::string x_label;
  std::string y_label;
  std::vector<std::string> columns;
  std::vector<std::string> rows;
  std::vector<std::vector<double>> values;  // [row][column]

  /// Throws ConfigError when the value grid disagrees with the labels.
  void validate() const;
};

/// SVG renderers. Dimensions are the outer pixel size.
std::string render_svg_line(const Chart& chart, int width = 720,
                            int height = 420);
std::string render_svg_bar(const Chart& chart, int width = 720,
                           int height = 420);
std::string render_svg_boxplot(const BoxplotChart& chart, int width = 720,
                               int height = 420);
std::string render_svg_heatmap(const HeatmapChart& chart, int width = 720,
                               int height = 420);

/// Terminal rendering: one bar per (category, series) pair.
std::string render_ascii_bar(const Chart& chart, int bar_width = 48);

/// Writes an SVG document to a file (creating parent directories).
void save_svg(const std::string& path, const std::string& svg);

}  // namespace iokc::analysis
