// The IO500 performance bounding box after Liem et al. (the paper's Section
// II-B and the Fig. 6 use case): ior-easy / ior-hard bound the bandwidth
// dimension and mdtest-easy / mdtest-hard bound the metadata dimension,
// giving users a realistic expectation window for application I/O and a
// reference frame for anomaly detection.
#pragma once

#include <string>
#include <vector>

#include "src/knowledge/io500_knowledge.hpp"

namespace iokc::analysis {

/// One dimension of the expectation box.
struct BoundingBox1D {
  std::string dimension;  // e.g. "bandwidth-write"
  std::string unit;       // "GiB/s" or "kIOPS"
  double lower = 0.0;     // the "hard" (suboptimal-pattern) bound
  double upper = 0.0;     // the "easy" (optimized-pattern) bound

  bool contains(double value) const {
    return value >= lower && value <= upper;
  }
  /// Normalized position of a value inside the box (0 = lower, 1 = upper;
  /// values outside map below 0 / above 1).
  double position(double value) const;
};

/// The two-dimensional box of Liem et al.
struct BoundingBox2D {
  BoundingBox1D bandwidth;
  BoundingBox1D metadata;
};

/// Builds the bandwidth dimension from ior-easy-<access> / ior-hard-<access>.
/// `access` is "write" or "read". Throws ConfigError when the run lacks the
/// boundary test cases.
BoundingBox1D make_bandwidth_box(const knowledge::Io500Knowledge& run,
                                 const std::string& access);

/// Builds the metadata dimension from mdtest-easy-<op> / mdtest-hard-<op>
/// (`op` is "write", "stat", or "delete").
BoundingBox1D make_metadata_box(const knowledge::Io500Knowledge& run,
                                const std::string& op);

/// The standard 2-D box (write bandwidth x create metadata).
BoundingBox2D make_bounding_box(const knowledge::Io500Knowledge& run);

/// Where an application's measurements land in the box.
struct BoxPlacement {
  double bandwidth_position = 0.0;
  double metadata_position = 0.0;
  bool within_bandwidth = false;
  bool within_metadata = false;
  std::string assessment;  // human-readable verdict
};

/// Maps application-level measurements (GiB/s, kIOPS) into the box.
BoxPlacement place_application(const BoundingBox2D& box, double app_bw_gib,
                               double app_md_kiops);

/// Renders a box (with optional placement) as a text panel.
std::string render_bounding_box(const BoundingBox2D& box,
                                const BoxPlacement* placement = nullptr);

/// Renders the two-dimensional expectation box as SVG (the outlook's
/// bounding-box chart type): bandwidth on x, metadata on y, the box spanning
/// [lower, upper] on both axes, and optional application markers.
struct BoxApplicationPoint {
  std::string label;
  double bw_gib = 0.0;
  double md_kiops = 0.0;
};
std::string render_svg_bounding_box(
    const BoundingBox2D& box,
    const std::vector<BoxApplicationPoint>& applications = {},
    int width = 560, int height = 560);

}  // namespace iokc::analysis
