#include "src/analysis/bounding_box.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::analysis {

double BoundingBox1D::position(double value) const {
  const double range = std::max(upper - lower, 1e-12);
  return (value - lower) / range;
}

namespace {

double testcase_value(const knowledge::Io500Knowledge& run,
                      const std::string& name) {
  const knowledge::Io500Testcase* testcase = run.find_testcase(name);
  if (testcase == nullptr) {
    throw ConfigError("IO500 run lacks boundary test case '" + name + "'");
  }
  return testcase->value;
}

}  // namespace

BoundingBox1D make_bandwidth_box(const knowledge::Io500Knowledge& run,
                                 const std::string& access) {
  BoundingBox1D box;
  box.dimension = "bandwidth-" + access;
  box.unit = "GiB/s";
  box.lower = testcase_value(run, "ior-hard-" + access);
  box.upper = testcase_value(run, "ior-easy-" + access);
  if (box.lower > box.upper) {
    std::swap(box.lower, box.upper);  // an inverted box is itself an anomaly
  }
  return box;
}

BoundingBox1D make_metadata_box(const knowledge::Io500Knowledge& run,
                                const std::string& op) {
  BoundingBox1D box;
  box.dimension = "metadata-" + op;
  box.unit = "kIOPS";
  box.lower = testcase_value(run, "mdtest-hard-" + op);
  box.upper = testcase_value(run, "mdtest-easy-" + op);
  if (box.lower > box.upper) {
    std::swap(box.lower, box.upper);
  }
  return box;
}

BoundingBox2D make_bounding_box(const knowledge::Io500Knowledge& run) {
  BoundingBox2D box;
  box.bandwidth = make_bandwidth_box(run, "write");
  box.metadata = make_metadata_box(run, "write");
  return box;
}

BoxPlacement place_application(const BoundingBox2D& box, double app_bw_gib,
                               double app_md_kiops) {
  BoxPlacement placement;
  placement.bandwidth_position = box.bandwidth.position(app_bw_gib);
  placement.metadata_position = box.metadata.position(app_md_kiops);
  placement.within_bandwidth = box.bandwidth.contains(app_bw_gib);
  placement.within_metadata = box.metadata.contains(app_md_kiops);
  if (placement.within_bandwidth && placement.within_metadata) {
    placement.assessment =
        "within expectations; tuning potential toward the easy bounds";
  } else if (app_bw_gib < box.bandwidth.lower ||
             app_md_kiops < box.metadata.lower) {
    placement.assessment =
        "below the suboptimal bound: anomaly or severe access-pattern issue";
  } else {
    placement.assessment =
        "above the optimized bound: measurement likely cache-affected";
  }
  return placement;
}

std::string render_bounding_box(const BoundingBox2D& box,
                                const BoxPlacement* placement) {
  char buf[256];
  std::string out = "IO500 expectation bounding box\n";
  std::snprintf(buf, sizeof buf, "  %-16s [%10.4f .. %10.4f] %s\n",
                box.bandwidth.dimension.c_str(), box.bandwidth.lower,
                box.bandwidth.upper, box.bandwidth.unit.c_str());
  out += buf;
  std::snprintf(buf, sizeof buf, "  %-16s [%10.4f .. %10.4f] %s\n",
                box.metadata.dimension.c_str(), box.metadata.lower,
                box.metadata.upper, box.metadata.unit.c_str());
  out += buf;
  if (placement != nullptr) {
    std::snprintf(buf, sizeof buf,
                  "  application: bw at %.0f%%%s, md at %.0f%%%s of the box\n",
                  placement->bandwidth_position * 100.0,
                  placement->within_bandwidth ? "" : " (outside)",
                  placement->metadata_position * 100.0,
                  placement->within_metadata ? "" : " (outside)");
    out += buf;
    out += "  assessment: " + placement->assessment + "\n";
  }
  return out;
}

std::string render_svg_bounding_box(
    const BoundingBox2D& box,
    const std::vector<BoxApplicationPoint>& applications, int width,
    int height) {
  // Plot range: the box plus margin, extended to include every application.
  double x_min = box.bandwidth.lower;
  double x_max = box.bandwidth.upper;
  double y_min = box.metadata.lower;
  double y_max = box.metadata.upper;
  for (const BoxApplicationPoint& application : applications) {
    x_min = std::min(x_min, application.bw_gib);
    x_max = std::max(x_max, application.bw_gib);
    y_min = std::min(y_min, application.md_kiops);
    y_max = std::max(y_max, application.md_kiops);
  }
  const double x_pad = std::max((x_max - x_min) * 0.15, 1e-6);
  const double y_pad = std::max((y_max - y_min) * 0.15, 1e-6);
  x_min -= x_pad;
  x_max += x_pad;
  y_min = std::max(0.0, y_min - y_pad);
  y_max += y_pad;

  const double margin = 64.0;
  const double plot_w = width - 2 * margin;
  const double plot_h = height - 2 * margin;
  auto map_x = [&](double v) {
    return margin + plot_w * (v - x_min) / (x_max - x_min);
  };
  auto map_y = [&](double v) {
    return height - margin - plot_h * (v - y_min) / (y_max - y_min);
  };

  char buf[512];
  std::string out;
  std::snprintf(buf, sizeof buf,
                "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" "
                "height=\"%d\" font-family=\"sans-serif\" font-size=\"12\">\n"
                "<rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n",
                width, height);
  out += buf;
  out += "<text x=\"" + std::to_string(width / 2) +
         "\" y=\"22\" text-anchor=\"middle\" font-weight=\"bold\">IO500 "
         "expectation bounding box</text>\n";

  // Axes.
  std::snprintf(buf, sizeof buf,
                "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                "stroke=\"#333\"/>\n",
                margin, height - margin, width - margin, height - margin);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
                "stroke=\"#333\"/>\n",
                margin, height - margin, margin, margin);
  out += buf;
  out += "<text x=\"" + std::to_string(width / 2) + "\" y=\"" +
         std::to_string(height - 12) + "\" text-anchor=\"middle\">" +
         box.bandwidth.dimension + " (" + box.bandwidth.unit + ")</text>\n";
  std::snprintf(buf, sizeof buf,
                "<text x=\"18\" y=\"%.1f\" text-anchor=\"middle\" "
                "transform=\"rotate(-90 18 %.1f)\">%s (%s)</text>\n",
                height / 2.0, height / 2.0, box.metadata.dimension.c_str(),
                box.metadata.unit.c_str());
  out += buf;

  // The box itself.
  const double bx = map_x(box.bandwidth.lower);
  const double by = map_y(box.metadata.upper);
  const double bw = map_x(box.bandwidth.upper) - bx;
  const double bh = map_y(box.metadata.lower) - by;
  std::snprintf(buf, sizeof buf,
                "<rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
                "fill=\"#4e79a7\" fill-opacity=\"0.18\" stroke=\"#4e79a7\" "
                "stroke-width=\"2\"/>\n",
                bx, by, bw, bh);
  out += buf;
  // Bound annotations.
  std::snprintf(buf, sizeof buf,
                "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\">easy "
                "(%.3f, %.3f)</text>\n",
                bx + bw + 4, by + 4, box.bandwidth.upper, box.metadata.upper);
  out += buf;
  std::snprintf(buf, sizeof buf,
                "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\" "
                "text-anchor=\"end\">hard (%.3f, %.3f)</text>\n",
                bx - 4, by + bh + 12, box.bandwidth.lower,
                box.metadata.lower);
  out += buf;

  // Application markers.
  for (std::size_t i = 0; i < applications.size(); ++i) {
    const BoxApplicationPoint& application = applications[i];
    const bool inside =
        box.bandwidth.contains(application.bw_gib) &&
        box.metadata.contains(application.md_kiops);
    const double px = map_x(application.bw_gib);
    const double py = map_y(application.md_kiops);
    std::snprintf(buf, sizeof buf,
                  "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"5\" fill=\"%s\"/>\n",
                  px, py, inside ? "#59a14f" : "#e15759");
    out += buf;
    std::snprintf(buf, sizeof buf,
                  "<text x=\"%.1f\" y=\"%.1f\" font-size=\"10\">%s</text>\n",
                  px + 8, py + 4,
                  util::replace_all(
                      util::replace_all(application.label, "&", "&amp;"), "<",
                      "&lt;")
                      .c_str());
    out += buf;
  }
  out += "</svg>\n";
  return out;
}

}  // namespace iokc::analysis
