#include "src/analysis/anomaly.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "src/analysis/stats.hpp"
#include "src/util/summary_stats.hpp"

namespace iokc::analysis {

std::string to_string(AnomalySeverity severity) {
  switch (severity) {
    case AnomalySeverity::kInfo: return "info";
    case AnomalySeverity::kWarning: return "warning";
    case AnomalySeverity::kCritical: return "critical";
  }
  return "?";
}

void AnomalyReport::merge(AnomalyReport other) {
  for (Anomaly& anomaly : other.anomalies) {
    anomalies.push_back(std::move(anomaly));
  }
}

std::string AnomalyReport::render() const {
  if (anomalies.empty()) {
    return "no anomalies detected\n";
  }
  std::string out;
  for (const Anomaly& anomaly : anomalies) {
    char buf[512];
    std::snprintf(buf, sizeof buf,
                  "[%s] %s @ %s: value %.3f vs reference %.3f (%+.1f%%) — %s\n",
                  to_string(anomaly.severity).c_str(), anomaly.metric.c_str(),
                  anomaly.location.c_str(), anomaly.value, anomaly.reference,
                  anomaly.deviation * 100.0, anomaly.description.c_str());
    out += buf;
  }
  return out;
}

namespace {

Anomaly make_anomaly(const std::string& metric, std::size_t index,
                     double value, double reference,
                     const std::string& description) {
  Anomaly anomaly;
  anomaly.metric = metric;
  anomaly.location = "iteration " + std::to_string(index);
  anomaly.value = value;
  anomaly.reference = reference;
  anomaly.deviation = reference != 0.0 ? value / reference - 1.0 : 0.0;
  anomaly.severity = std::abs(anomaly.deviation) >= 0.5
                         ? AnomalySeverity::kCritical
                         : AnomalySeverity::kWarning;
  anomaly.description = description;
  return anomaly;
}

}  // namespace

namespace {

/// Very tight samples make Tukey fences and z-scores hypersensitive: a run
/// whose iterations agree to 0.1% would flag 1% wobble. Deviations below
/// this relative floor are never reported.
constexpr double kMinRelativeDeviation = 0.05;

bool material(double value, double reference) {
  return reference == 0.0 ||
         std::abs(value / reference - 1.0) >= kMinRelativeDeviation;
}

}  // namespace

AnomalyReport detect_iqr_outliers(const std::string& metric,
                                  std::span<const double> values, double k) {
  AnomalyReport report;
  if (values.size() < 4) {
    return report;  // quartiles are meaningless below four samples
  }
  const BoxplotStats box = boxplot(values);
  const double fence_low = box.q1 - k * box.iqr();
  const double fence_high = box.q3 + k * box.iqr();
  for (std::size_t i = 0; i < values.size(); ++i) {
    if ((values[i] < fence_low || values[i] > fence_high) &&
        material(values[i], box.median)) {
      report.anomalies.push_back(make_anomaly(
          metric, i, values[i], box.median,
          "outside Tukey fences (k=" + std::to_string(k).substr(0, 4) + ")"));
    }
  }
  return report;
}

AnomalyReport detect_zscore(const std::string& metric,
                            std::span<const double> values, double threshold) {
  AnomalyReport report;
  if (values.size() < 3) {
    return report;
  }
  const std::vector<double> scores = z_scores(values);
  const double mean = util::summarize(values).mean;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (std::abs(scores[i]) >= threshold && material(values[i], mean)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "|z| = %.2f", std::abs(scores[i]));
      report.anomalies.push_back(
          make_anomaly(metric, i, values[i], mean, buf));
    }
  }
  return report;
}

AnomalyReport detect_relative_drop(const std::string& metric,
                                   std::span<const double> values,
                                   double fraction) {
  AnomalyReport report;
  if (values.size() < 3) {
    return report;
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    // Median of the other samples, so the candidate cannot mask itself.
    std::vector<double> others;
    others.reserve(values.size() - 1);
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (j != i) {
        others.push_back(values[j]);
      }
    }
    const double reference = util::median(others);
    if (reference > 0.0 && values[i] < fraction * reference) {
      char buf[96];
      std::snprintf(buf, sizeof buf,
                    "below %.0f%% of the median of the other iterations",
                    fraction * 100.0);
      report.anomalies.push_back(
          make_anomaly(metric, i, values[i], reference, buf));
    }
  }
  return report;
}

AnomalyReport detect_in_knowledge(const knowledge::Knowledge& knowledge) {
  AnomalyReport report;
  for (const knowledge::OpSummary& summary : knowledge.summaries) {
    std::vector<double> bws;
    std::vector<double> ops;
    for (const knowledge::OpResult& result : summary.results) {
      bws.push_back(result.bw_mib);
      ops.push_back(result.iops);
    }
    report.merge(
        detect_relative_drop(summary.operation + " bw_mib", bws));
    report.merge(detect_iqr_outliers(summary.operation + " bw_mib", bws));
    report.merge(detect_relative_drop(summary.operation + " iops", ops));
  }
  // Deduplicate (same metric+location found by several detectors).
  std::vector<Anomaly> unique;
  for (Anomaly& anomaly : report.anomalies) {
    const bool seen = std::any_of(
        unique.begin(), unique.end(), [&anomaly](const Anomaly& other) {
          return other.metric == anomaly.metric &&
                 other.location == anomaly.location;
        });
    if (!seen) {
      unique.push_back(std::move(anomaly));
    }
  }
  report.anomalies = std::move(unique);
  return report;
}

AnomalyReport compare_io500_runs(const knowledge::Io500Knowledge& reference,
                                 const knowledge::Io500Knowledge& probe,
                                 double tolerance) {
  AnomalyReport report;
  for (const knowledge::Io500Testcase& testcase : probe.testcases) {
    const knowledge::Io500Testcase* base =
        reference.find_testcase(testcase.name);
    if (base == nullptr || base->value <= 0.0) {
      continue;
    }
    const double deviation = testcase.value / base->value - 1.0;
    if (std::abs(deviation) > tolerance) {
      Anomaly anomaly;
      anomaly.metric = testcase.name + " (" + testcase.unit + ")";
      anomaly.location = "testcase " + testcase.name;
      anomaly.value = testcase.value;
      anomaly.reference = base->value;
      anomaly.deviation = deviation;
      anomaly.severity = std::abs(deviation) > 2.0 * tolerance
                             ? AnomalySeverity::kCritical
                             : AnomalySeverity::kWarning;
      anomaly.description = deviation < 0.0
                                ? "regressed against the reference run"
                                : "improved against the reference run";
      report.anomalies.push_back(std::move(anomaly));
    }
  }
  return report;
}

AnomalyReport detect_box_violation(const BoundingBox2D& box, double app_bw_gib,
                                   double app_md_kiops) {
  AnomalyReport report;
  const BoxPlacement placement =
      place_application(box, app_bw_gib, app_md_kiops);
  if (!placement.within_bandwidth) {
    Anomaly anomaly;
    anomaly.metric = box.bandwidth.dimension;
    anomaly.location = "bounding box";
    anomaly.value = app_bw_gib;
    anomaly.reference =
        app_bw_gib < box.bandwidth.lower ? box.bandwidth.lower
                                         : box.bandwidth.upper;
    anomaly.deviation =
        anomaly.reference != 0.0 ? app_bw_gib / anomaly.reference - 1.0 : 0.0;
    anomaly.severity = app_bw_gib < box.bandwidth.lower
                           ? AnomalySeverity::kCritical
                           : AnomalySeverity::kInfo;
    anomaly.description = placement.assessment;
    report.anomalies.push_back(std::move(anomaly));
  }
  if (!placement.within_metadata) {
    Anomaly anomaly;
    anomaly.metric = box.metadata.dimension;
    anomaly.location = "bounding box";
    anomaly.value = app_md_kiops;
    anomaly.reference = app_md_kiops < box.metadata.lower
                            ? box.metadata.lower
                            : box.metadata.upper;
    anomaly.deviation =
        anomaly.reference != 0.0 ? app_md_kiops / anomaly.reference - 1.0 : 0.0;
    anomaly.severity = app_md_kiops < box.metadata.lower
                           ? AnomalySeverity::kCritical
                           : AnomalySeverity::kInfo;
    anomaly.description = placement.assessment;
    report.anomalies.push_back(std::move(anomaly));
  }
  return report;
}

AnomalyReport with_job_context(AnomalyReport report,
                               const knowledge::Knowledge& knowledge) {
  if (!knowledge.job.has_value()) {
    return report;
  }
  const knowledge::JobInfoRecord& job = *knowledge.job;
  const std::string context = " [job " + std::to_string(job.job_id) + " (" +
                              job.job_name + ") on " + job.node_list + "]";
  for (Anomaly& anomaly : report.anomalies) {
    anomaly.description += context;
  }
  return report;
}

}  // namespace iokc::analysis
