// The iokc command-line front-end: every phase of the knowledge cycle as a
// subcommand, against a persistent knowledge database. The core is a plain
// function over argument vectors and streams so tests can drive it without a
// process boundary; `tools` builds the thin main() around it.
//
//   iokc [--db <url>] [--workspace <dir>] [--seed <n>] <command> [args...]
//
//   run <benchmark command...>   phase 1+2+3: run, extract, persist, view
//   sweep <config.xml>           phase 1+2+3 over a JUBE configuration file
//   extract <path>               phase 2+3 on an existing workspace/file
//   list                         stored knowledge objects and IO500 runs
//   view <id> | iters <id>       knowledge viewer / per-iteration details
//   io500 <id>                   IO500 viewer
//   compare <metric> <op> <id..> comparison chart (ASCII)
//   sql <statement...>           raw SQL against the knowledge database
//   export-csv <table>           CSV of one table to stdout
//   export-json <id> <file>      knowledge object -> JSON file
//   import-json <file>           JSON file -> knowledge database
//   recommend <ior command...>   tuning advice mined from the database
//   predict <ior command...>     bandwidth prediction from the database
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace iokc::cli {

/// Executes one CLI invocation. Returns the process exit code (0 on
/// success, 1 on usage errors, 2 on runtime failures).
int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);

/// The usage text (printed by `help` and on usage errors).
std::string usage_text();

}  // namespace iokc::cli
