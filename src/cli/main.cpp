// Thin process wrapper around the CLI core.
#include <iostream>
#include <string>
#include <vector>

#include "src/cli/cli.hpp"

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  return iokc::cli::run_cli(args, std::cout, std::cerr);
}
