#include "src/cli/cli.hpp"

#include <fstream>
#include <optional>
#include <ostream>
#include <sstream>

#include <poll.h>
#include <unistd.h>

#include "src/analysis/anomaly.hpp"
#include "src/analysis/charts.hpp"
#include "src/cycle/cycle.hpp"
#include "src/db/sql.hpp"
#include "src/obs/observability.hpp"
#include "src/repl/node.hpp"
#include "src/repl/router.hpp"
#include "src/repl/wire.hpp"
#include "src/svc/client.hpp"
#include "src/svc/server.hpp"
#include "src/usage/prediction.hpp"
#include "src/usage/recommendation.hpp"
#include "src/util/error.hpp"
#include "src/util/json.hpp"
#include "src/util/strings.hpp"
#include "src/util/table.hpp"

namespace iokc::cli {

namespace {

struct GlobalOptions {
  std::string db = "mem:";
  std::string workspace = "iokc_workspace";
  std::uint64_t seed = 0x10C5EED;
  /// -1 = flag absent: legacy serial shared-environment execution. >= 0
  /// switches the cycle to isolated per-work-package environments on that
  /// many threads (0 = hardware concurrency).
  int jobs = -1;
  bool resume = false;  // --resume: continue an interrupted sweep
  std::string trace;    // --trace: Chrome-trace JSON output path
  std::string metrics;  // --metrics: metrics CSV output path
};

/// A CLI invocation's bundle: environment + cycle, built lazily because
/// database-only commands (sql, list, ...) don't need a simulator.
struct Session {
  explicit Session(const GlobalOptions& options,
                   obs::Observability* observability = nullptr)
      : env(make_env_config(options)),
        cycle(env, options.workspace,
              persist::RepoTarget::parse(options.db)) {
    if (options.jobs >= 0) {
      cycle.set_parallelism(options.jobs);
    }
    if (options.resume) {
      cycle.set_resume(true);
    }
    if (observability != nullptr) {
      cycle.set_observability(observability);
    }
  }

  static cycle::SimEnvironmentConfig make_env_config(
      const GlobalOptions& options) {
    cycle::SimEnvironmentConfig config;
    config.seed = options.seed;
    return config;
  }

  cycle::SimEnvironment env;
  cycle::KnowledgeCycle cycle;
};

std::string join_from(const std::vector<std::string>& args, std::size_t from) {
  std::vector<std::string> rest(args.begin() + static_cast<std::ptrdiff_t>(from),
                                args.end());
  return util::join(rest, " ");
}

std::int64_t parse_id(const std::string& text) {
  return util::parse_i64(text);
}

std::string read_file_text(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw IoError("cannot read " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int cmd_run(Session& session, const std::vector<std::string>& args,
            std::size_t from, std::ostream& out) {
  const std::string command = join_from(args, from);
  if (command.empty()) {
    throw ConfigError("run: missing benchmark command");
  }
  const std::string name = util::split_ws(command).front();
  session.cycle.generate_command(name, command);
  const extract::ExtractionResult extracted =
      session.cycle.extract_and_persist();
  out << "stored " << extracted.total() << " knowledge object(s)\n";
  for (const std::int64_t id : session.cycle.stored_knowledge_ids()) {
    out << session.cycle.explorer().render_knowledge_view(id) << "\n";
    const analysis::AnomalyReport report = analysis::with_job_context(
        analysis::detect_in_knowledge(
            session.cycle.repository().load_knowledge(id)),
        session.cycle.repository().load_knowledge(id));
    if (!report.empty()) {
      out << "anomalies:\n" << report.render();
    }
  }
  for (const std::int64_t id : session.cycle.stored_io500_ids()) {
    out << session.cycle.explorer().render_io500_view(id) << "\n";
  }
  session.cycle.save();
  return 0;
}

int cmd_sweep(Session& session, const std::string& config_path,
              std::ostream& out) {
  const jube::JubeBenchmarkConfig config =
      jube::JubeBenchmarkConfig::from_xml_text(read_file_text(config_path));
  const jube::JubeRunResult run = session.cycle.generate(config);
  const extract::ExtractionResult extracted =
      session.cycle.extract_and_persist();
  out << "executed " << run.packages.size() << " work package(s), stored "
      << extracted.total() << " knowledge object(s)\n";
  session.cycle.save();
  return 0;
}

int cmd_extract(Session& session, const std::string& path, int jobs,
                std::ostream& out) {
  extract::KnowledgeExtractor extractor;
  extract::ExtractionResult result;
  if (std::filesystem::is_directory(path)) {
    result = extractor.extract_workspace(path, jobs);
  } else {
    result = extractor.extract_file(path);
  }
  session.cycle.repository().store_batch(result.knowledge);
  session.cycle.repository().store_batch(result.io500);
  out << "extracted " << result.total() << " knowledge object(s), skipped "
      << result.skipped.size() << " unrecognized source(s)\n";
  session.cycle.save();
  return 0;
}

int cmd_list(Session& session, std::ostream& out) {
  util::TextTable table;
  table.set_header({"kind", "id", "command"});
  for (const auto& [id, command] :
       session.cycle.repository().list_commands()) {
    table.add_row({"knowledge", std::to_string(id), command});
  }
  for (const std::int64_t id : session.cycle.repository().io500_ids()) {
    table.add_row({"io500", std::to_string(id),
                   session.cycle.repository().load_io500(id).command});
  }
  out << table.render();
  return 0;
}

int cmd_compare(Session& session, const std::vector<std::string>& args,
                std::size_t from, std::ostream& out) {
  if (args.size() < from + 3) {
    throw ConfigError("compare: need <metric> <operation> <id...>");
  }
  const std::string metric = args[from];
  const std::string operation = args[from + 1];
  std::vector<std::int64_t> ids;
  for (std::size_t i = from + 2; i < args.size(); ++i) {
    ids.push_back(parse_id(args[i]));
  }
  const analysis::Chart chart =
      session.cycle.explorer().comparison_chart(ids, metric, {operation});
  out << render_ascii_bar(chart);
  return 0;
}

int cmd_recommend(Session& session, const std::vector<std::string>& args,
                  std::size_t from, std::ostream& out) {
  const gen::IorConfig target =
      gen::parse_ior_command(join_from(args, from));
  out << usage::recommend(session.cycle.repository(), target).render();
  return 0;
}

int cmd_predict(Session& session, const std::vector<std::string>& args,
                std::size_t from, std::ostream& out) {
  const std::string command = join_from(args, from);
  const usage::ConfigFeatures query =
      usage::ConfigFeatures::from_command(command);
  const auto samples =
      usage::build_training_set(session.cycle.repository(), "write");
  if (samples.empty()) {
    throw ConfigError("predict: the knowledge base holds no IOR write runs");
  }
  out << "training samples: " << samples.size() << "\n";
  if (samples.size() >= 8) {
    const usage::BandwidthPredictor predictor =
        usage::BandwidthPredictor::fit(samples);
    out << "linear regression: "
        << util::format_double(predictor.predict(query), 1) << " MiB/s\n";
  } else {
    out << "linear regression: (needs >= 8 samples)\n";
  }
  out << "3-NN estimate:     "
      << util::format_double(usage::knn_predict(samples, query, 3), 1)
      << " MiB/s\n";
  return 0;
}

/// Blocks until `stop_fd` becomes readable (a ShutdownPipe trigger) and
/// drains it — the shutdown wait for cluster modes whose node types
/// svc::wait_for_shutdown (Server-shaped) cannot stop.
void wait_for_stop_fd(int stop_fd) {
  pollfd pfd{};
  pfd.fd = stop_fd;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) {
      break;
    }
    if (rc < 0 && errno != EINTR) {
      break;
    }
  }
  char drain[64];
  while (::read(stop_fd, drain, sizeof drain) ==
         static_cast<ssize_t>(sizeof drain)) {
  }
}

/// Writes the bound port to `path` (the scripts' rendezvous with an
/// ephemeral --port 0).
void write_port_file(const std::string& path, std::uint16_t port) {
  if (path.empty()) {
    return;
  }
  std::ofstream port_out(path, std::ios::trunc);
  if (!port_out) {
    throw IoError("cannot write " + path);
  }
  port_out << port << "\n";
}

/// `iokc serve`: run the knowledge service daemon against the --db target
/// until SIGTERM/SIGINT, then drain, save, and report. Cluster flags select
/// the node shape: --primary/--ack/--repl-port ship the WAL to replicas,
/// --replica-of follows a primary read-only, --router --shards proxies a
/// consistent-hash sharded cluster.
int cmd_serve(const GlobalOptions& options,
              obs::Observability* observability,
              const std::vector<std::string>& args, std::size_t i,
              std::ostream& out) {
  // Route svc.* spans and counters into --trace/--metrics exports.
  std::optional<obs::ScopedObservability> scoped;
  if (observability != nullptr) {
    scoped.emplace(*observability);
  }
  svc::ServerConfig config;
  std::string port_file;
  bool primary = false;
  repl::ShipperConfig ship;
  std::string repl_port_file;
  std::string replica_of;     // the primary's replication listener
  std::string primary_addr;   // the primary's SERVICE address (redirects)
  std::string marker_path;
  bool router = false;
  std::vector<std::string> shard_addresses;
  while (i < args.size()) {
    const std::string& flag = args[i];
    auto need_value = [&]() -> const std::string& {
      if (i + 1 >= args.size()) {
        throw ConfigError("serve: " + flag + " needs a value");
      }
      return args[++i];
    };
    if (flag == "--port") {
      const std::int64_t port = util::parse_i64(need_value());
      if (port < 0 || port > 65535) {
        throw ConfigError("serve: --port needs a value in [0, 65535]");
      }
      config.port = static_cast<std::uint16_t>(port);
    } else if (flag == "--threads") {
      const std::int64_t threads = util::parse_i64(need_value());
      if (threads < 0) {
        throw ConfigError("serve: --threads needs a value >= 0");
      }
      config.threads = static_cast<std::size_t>(threads);
    } else if (flag == "--bind") {
      config.bind_address = need_value();
    } else if (flag == "--port-file") {
      port_file = need_value();
    } else if (flag == "--primary") {
      primary = true;
    } else if (flag == "--repl-port") {
      const std::int64_t port = util::parse_i64(need_value());
      if (port < 0 || port > 65535) {
        throw ConfigError("serve: --repl-port needs a value in [0, 65535]");
      }
      ship.port = static_cast<std::uint16_t>(port);
      primary = true;
    } else if (flag == "--repl-port-file") {
      repl_port_file = need_value();
    } else if (flag == "--ack") {
      ship.ack_policy = repl::parse_ack_policy(need_value());
      primary = true;
    } else if (flag == "--replicas") {
      const std::int64_t count = util::parse_i64(need_value());
      if (count < 0) {
        throw ConfigError("serve: --replicas needs a value >= 0");
      }
      ship.expected_replicas = static_cast<std::size_t>(count);
      primary = true;
    } else if (flag == "--replica-of") {
      replica_of = need_value();
    } else if (flag == "--primary-addr") {
      primary_addr = need_value();
    } else if (flag == "--marker") {
      marker_path = need_value();
    } else if (flag == "--router") {
      router = true;
    } else if (flag == "--shards") {
      for (const std::string& address :
           util::split(need_value(), ',')) {
        if (!address.empty()) {
          shard_addresses.push_back(address);
        }
      }
    } else {
      throw ConfigError("serve: unknown flag " + flag);
    }
    ++i;
  }
  if ((primary ? 1 : 0) + (replica_of.empty() ? 0 : 1) + (router ? 1 : 0) >
      1) {
    throw ConfigError(
        "serve: --primary/--ack, --replica-of, and --router are mutually "
        "exclusive");
  }

  if (router) {
    // The router owns no repository — it proxies to the shard primaries.
    repl::RouterConfig router_config;
    router_config.bind_address = config.bind_address;
    router_config.port = config.port;
    router_config.shards = shard_addresses;
    router_config.upstream.connect_retries = 4;
    repl::Router node(std::move(router_config));
    node.start();
    out << "iokc-router listening on " << config.bind_address << ":"
        << node.port() << " fronting " << shard_addresses.size()
        << " shard(s)\n";
    out.flush();
    write_port_file(port_file, node.port());
    svc::ShutdownPipe::instance().install_signal_handlers();
    wait_for_stop_fd(svc::ShutdownPipe::instance().read_fd());
    node.stop();
    out << "router drained\n";
    return 0;
  }

  persist::KnowledgeRepository repository(
      persist::RepoTarget::parse(options.db));

  if (!replica_of.empty()) {
    const auto [host, port] = repl::parse_host_port(replica_of);
    repl::ReplicaConfig replica_config;
    replica_config.primary_host = host;
    replica_config.primary_port = port;
    if (marker_path.empty()) {
      const persist::RepoTarget target = persist::RepoTarget::parse(options.db);
      if (target.kind == persist::RepoTarget::Kind::kFile) {
        marker_path = target.path + ".synced";
      }
    }
    replica_config.marker_path = marker_path;
    config.primary_address = primary_addr;
    repl::ReplicaNode node(repository, config, replica_config);
    node.start();
    out << "iokc-replica listening on " << config.bind_address << ":"
        << node.server().port() << " (" << options.db << ") following "
        << replica_of << "\n";
    out.flush();
    write_port_file(port_file, node.server().port());
    svc::ShutdownPipe::instance().install_signal_handlers();
    wait_for_stop_fd(svc::ShutdownPipe::instance().read_fd());
    node.stop();
    repository.save();
    const svc::ServerStats stats = node.server().stats();
    out << "drained: " << stats.requests << " request(s) on "
        << stats.connections << " connection(s), " << stats.errors
        << " error(s)\n";
    return 0;
  }

  if (primary) {
    ship.bind_address = config.bind_address;
    repl::PrimaryNode node(repository, config, ship);
    node.start();
    out << "iokc-primary listening on " << config.bind_address << ":"
        << node.server().port() << " (" << options.db << "), shipping WAL on "
        << config.bind_address << ":" << node.shipper().port() << " (ack "
        << repl::to_string(ship.ack_policy) << ")\n";
    out.flush();
    write_port_file(port_file, node.server().port());
    write_port_file(repl_port_file, node.shipper().port());
    svc::ShutdownPipe::instance().install_signal_handlers();
    wait_for_stop_fd(svc::ShutdownPipe::instance().read_fd());
    node.stop();
    repository.save();
    const svc::ServerStats stats = node.server().stats();
    out << "drained: " << stats.requests << " request(s) on "
        << stats.connections << " connection(s), " << stats.errors
        << " error(s)\n";
    return 0;
  }

  svc::Server server(repository, config);
  server.start();
  out << "iokc-serve listening on " << config.bind_address << ":"
      << server.port() << " (" << options.db << ")\n";
  out.flush();
  write_port_file(port_file, server.port());
  svc::ShutdownPipe::instance().install_signal_handlers();
  svc::wait_for_shutdown(server, svc::ShutdownPipe::instance().read_fd());
  repository.save();
  const svc::ServerStats stats = server.stats();
  out << "drained: " << stats.requests << " request(s) on "
      << stats.connections << " connection(s), " << stats.errors
      << " error(s)\n";
  return 0;
}

/// `iokc cluster-status <addr[,addr...]>`: one health probe per node,
/// rendered as a role/position table — the operator's view of replication
/// lag and who is primary.
int cmd_cluster_status(const std::vector<std::string>& args, std::size_t i,
                       std::ostream& out) {
  if (i >= args.size()) {
    throw ConfigError("cluster-status: missing <host:port[,host:port...]>");
  }
  std::vector<std::string> addresses;
  for (const std::string& address : util::split(args[i], ',')) {
    if (!address.empty()) {
      addresses.push_back(address);
    }
  }
  if (addresses.empty()) {
    throw ConfigError("cluster-status: no addresses given");
  }
  util::TextTable table;
  table.set_header({"node", "role", "epoch", "offset", "detail"});
  for (const std::string& address : addresses) {
    const auto [host, port] = repl::parse_host_port(address);
    std::string role = "unreachable";
    std::string epoch = "-";
    std::string offset = "-";
    std::string detail;
    try {
      svc::ClientOptions client_options;
      client_options.connect_retries = 2;
      svc::Client client = svc::Client::connect(host, port, client_options);
      const svc::Response health = client.call("health");
      if (health.ok) {
        if (const util::JsonValue* field = health.result.find("role")) {
          role = field->as_string();
        }
        if (const util::JsonValue* field =
                health.result.find("journal_epoch")) {
          epoch = std::to_string(field->as_int());
        }
        if (const util::JsonValue* field =
                health.result.find("journal_offset")) {
          offset = std::to_string(field->as_int());
        }
        if (const util::JsonValue* replicas =
                health.result.find("replicas")) {
          detail = std::to_string(replicas->as_array().size()) +
                   " replica(s) connected";
        } else if (const util::JsonValue* connected =
                       health.result.find("connected")) {
          detail = connected->as_bool() ? "streaming" : "disconnected";
        } else if (const util::JsonValue* shards =
                       health.result.find("shards")) {
          detail = std::to_string(shards->as_int()) + " shard(s)";
        }
      } else {
        detail = health.error;
      }
    } catch (const IoError& error) {
      detail = error.what();
    }
    table.add_row({address, role, epoch, offset, detail});
  }
  out << table.render();
  return 0;
}

/// `iokc query <host:port> <endpoint> [params-json]`: one service round
/// trip; an error response exits 2 like any other Error.
int cmd_query(const std::vector<std::string>& args, std::size_t i,
              std::ostream& out) {
  if (i >= args.size()) {
    throw ConfigError("query: missing <host:port>");
  }
  const std::string& address = args[i++];
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == address.size()) {
    throw ConfigError("query: address must be <host>:<port>, got '" +
                      address + "'");
  }
  const std::string host = address.substr(0, colon);
  const std::int64_t port = util::parse_i64(address.substr(colon + 1));
  if (port <= 0 || port > 65535) {
    throw ConfigError("query: port must be in [1, 65535]");
  }
  if (i >= args.size()) {
    throw ConfigError("query: missing <endpoint>");
  }
  const std::string& endpoint = args[i++];
  util::JsonValue params{util::JsonObject{}};
  if (i < args.size()) {
    params = util::parse_json(args[i]);
    if (!params.is_object()) {
      throw ConfigError("query: params must be a JSON object");
    }
  }
  svc::ClientOptions client_options;
  client_options.connect_retries = 4;
  svc::Client client = svc::Client::connect(
      host, static_cast<std::uint16_t>(port), client_options);
  const svc::Response response = client.call(endpoint, std::move(params));
  if (!response.ok) {
    throw IoError("service error: " + response.error);
  }
  out << response.result.dump(2) << "\n";
  return 0;
}

int dispatch_command(const GlobalOptions& options,
                     obs::Observability* observability,
                     const std::string& command,
                     const std::vector<std::string>& args, std::size_t i,
                     std::ostream& out) {
  auto need_arg = [&](const char* what) -> const std::string& {
    if (i >= args.size()) {
      throw ConfigError(command + ": missing " + what);
    }
    return args[i];
  };

  // Service verbs run before Session construction: serve needs only the
  // repository (no simulator environment, no workspace), and query does not
  // even open a database.
  if (command == "serve") {
    return cmd_serve(options, observability, args, i, out);
  }
  if (command == "query") {
    return cmd_query(args, i, out);
  }
  if (command == "cluster-status") {
    return cmd_cluster_status(args, i, out);
  }

  Session session(options, observability);
  if (command == "run") {
    return cmd_run(session, args, i, out);
  }
  if (command == "sweep") {
    return cmd_sweep(session, need_arg("config path"), out);
  }
  if (command == "extract") {
    return cmd_extract(session, need_arg("path"),
                       options.jobs < 0 ? 1 : options.jobs, out);
  }
  if (command == "list") {
    return cmd_list(session, out);
  }
  if (command == "view") {
    out << session.cycle.explorer().render_knowledge_view(
               parse_id(need_arg("id")))
        << "\n";
    return 0;
  }
  if (command == "iters") {
    out << session.cycle.explorer().render_iteration_details(
        parse_id(need_arg("id")));
    return 0;
  }
  if (command == "io500") {
    out << session.cycle.explorer().render_io500_view(
               parse_id(need_arg("id")))
        << "\n";
    return 0;
  }
  if (command == "compare") {
    return cmd_compare(session, args, i, out);
  }
  if (command == "sql") {
    bool allow_write = false;
    if (i < args.size() && args[i] == "--write") {
      allow_write = true;
      ++i;
    }
    const std::string statement = join_from(args, i);
    if (util::trim(statement).empty()) {
      throw ConfigError("sql: missing statement");
    }
    // Same classifier the service's read-only `sql` endpoint uses, so the
    // CLI and the daemon can never disagree about what counts as a write.
    if (!allow_write && !db::sql_is_read_only(statement)) {
      throw ConfigError(
          "sql: statement would modify the database; rerun as "
          "`iokc sql --write " + statement + "` to allow it");
    }
    const db::ResultSet rows =
        session.cycle.repository().database().execute(statement);
    if (!rows.columns.empty()) {
      out << rows.render_table();
    }
    session.cycle.save();
    return 0;
  }
  if (command == "export-csv") {
    out << session.cycle.repository().export_csv(need_arg("table"));
    return 0;
  }
  if (command == "export-json") {
    const std::int64_t id = parse_id(need_arg("id"));
    ++i;
    session.cycle.repository().export_knowledge_json(id, need_arg("file"));
    out << "exported knowledge #" << id << "\n";
    return 0;
  }
  if (command == "import-json") {
    const std::int64_t id =
        session.cycle.repository().import_json_file(need_arg("file"));
    out << "imported as #" << id << "\n";
    session.cycle.save();
    return 0;
  }
  if (command == "recommend") {
    return cmd_recommend(session, args, i, out);
  }
  if (command == "predict") {
    return cmd_predict(session, args, i, out);
  }
  throw ConfigError("unknown command '" + command + "'");
}

}  // namespace

std::string usage_text() {
  return
      "usage: iokc [--db <url>] [--workspace <dir>] [--seed <n>] "
      "[--jobs <n>]\n"
      "            [--resume] [--trace <file>] [--metrics <file>] <command>\n"
      "\n"
      "commands:\n"
      "  run <benchmark command...>    run + extract + persist + view\n"
      "  sweep <config.xml>            run a JUBE configuration file\n"
      "  extract <path>                extract a workspace or output file\n"
      "  list                          stored knowledge objects\n"
      "  view <id>                     knowledge viewer\n"
      "  iters <id>                    per-iteration details\n"
      "  io500 <id>                    IO500 viewer\n"
      "  compare <metric> <op> <id..>  comparison chart\n"
      "  sql [--write] <statement...>  query the knowledge database\n"
      "                                (mutations require --write)\n"
      "  serve [--port <n>] [--threads <n>] [--bind <addr>]\n"
      "        [--port-file <file>]    serve the --db knowledge base over\n"
      "                                TCP until SIGTERM/SIGINT\n"
      "        cluster shapes (DESIGN.md 5h):\n"
      "        --primary [--repl-port <n>] [--repl-port-file <file>]\n"
      "          [--ack none|one|quorum] [--replicas <n>]\n"
      "                                ship the WAL to subscribed replicas;\n"
      "                                the ack policy gates write acks\n"
      "        --replica-of <host:replport> [--primary-addr <host:port>]\n"
      "          [--marker <file>]     follow a primary read-only; writes\n"
      "                                redirect to --primary-addr\n"
      "        --router --shards <addr,addr,...>\n"
      "                                consistent-hash router over shard\n"
      "                                primaries (no --db needed)\n"
      "  cluster-status <addr[,addr...]>\n"
      "                                role/epoch/offset table, one health\n"
      "                                probe per node\n"
      "  query <host:port> <endpoint> [params-json]\n"
      "                                one knowledge-service request\n"
      "                                (health, stats, list, sql,\n"
      "                                knowledge/get, knowledge/store,\n"
      "                                predict, recommend, anomaly)\n"
      "  export-csv <table>            CSV of one table to stdout\n"
      "  export-json <id> <file>       knowledge object -> JSON file\n"
      "  import-json <file>            JSON file -> knowledge database\n"
      "  recommend <ior command...>    tuning advice from the database\n"
      "  predict <ior command...>      bandwidth prediction\n"
      "  help                          this text\n"
      "\n"
      "database urls: mem: | file:<path> | <path> | remote://<share>/<db>\n"
      "\n"
      "--jobs <n> runs sweep work packages on <n> threads (0 = all hardware\n"
      "threads), each in an isolated environment seeded from the scenario\n"
      "seed and the work-package id; results are identical for any <n>.\n"
      "\n"
      "--resume continues an interrupted run/sweep: completed work packages\n"
      "(valid done markers) are skipped and already-persisted outputs are\n"
      "not stored twice; the database recovers committed transactions from\n"
      "its write-ahead journal. The restarted run converges to the same\n"
      "database an uninterrupted run would have produced.\n"
      "\n"
      "--trace <file> records one span per cycle phase and work package and\n"
      "writes Chrome-trace JSON (load in Perfetto or chrome://tracing).\n"
      "--metrics <file> writes a flat CSV of counters, gauges, and\n"
      "histograms keyed by metric, phase, and work package.\n";
}

int run_cli(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  GlobalOptions options;
  std::size_t i = 0;
  try {
    // Global flags.
    while (i < args.size() && util::starts_with(args[i], "--")) {
      const std::string& flag = args[i];
      auto need_value = [&]() -> const std::string& {
        if (i + 1 >= args.size()) {
          throw ConfigError(flag + " needs a value");
        }
        return args[++i];
      };
      if (flag == "--db") {
        options.db = need_value();
      } else if (flag == "--workspace") {
        options.workspace = need_value();
      } else if (flag == "--seed") {
        options.seed = static_cast<std::uint64_t>(
            util::parse_i64(need_value()));
      } else if (flag == "--jobs") {
        const std::int64_t jobs = util::parse_i64(need_value());
        if (jobs < 0) {
          throw ConfigError("--jobs needs a value >= 0");
        }
        options.jobs = static_cast<int>(jobs);
      } else if (flag == "--resume") {
        options.resume = true;
      } else if (flag == "--trace") {
        options.trace = need_value();
      } else if (flag == "--metrics") {
        options.metrics = need_value();
      } else {
        throw ConfigError("unknown flag " + flag);
      }
      ++i;
    }
    if (i >= args.size() || args[i] == "help") {
      out << usage_text();
      return i >= args.size() ? 1 : 0;
    }
    const std::string command = args[i++];

    // Observability is created only when an export was requested, so every
    // other invocation keeps the zero-overhead disabled path. Exports are
    // written after the command returns, once all spans have closed.
    std::optional<obs::Observability> observability;
    if (!options.trace.empty() || !options.metrics.empty()) {
      observability.emplace();
    }
    const int status = dispatch_command(
        options, observability.has_value() ? &*observability : nullptr,
        command, args, i, out);
    if (observability.has_value()) {
      if (!options.trace.empty()) {
        observability->write_chrome_trace(options.trace);
      }
      if (!options.metrics.empty()) {
        observability->write_metrics_csv(options.metrics);
      }
    }
    return status;
  } catch (const ConfigError& error) {
    err << "error: " << error.what() << "\n\n" << usage_text();
    return 1;
  } catch (const Error& error) {
    err << "error: " << error.what() << "\n";
    return 2;
  }
}

}  // namespace iokc::cli
