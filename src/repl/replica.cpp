#include "src/repl/replica.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <utility>

#include "src/obs/observability.hpp"
#include "src/repl/wire.hpp"
#include "src/svc/protocol.hpp"
#include "src/svc/socket.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/fsio.hpp"

namespace iokc::repl {

ReplicationClient::ReplicationClient(persist::KnowledgeRepository& repository,
                                     ReplicaConfig config, ApplyFn apply)
    : repository_(repository),
      config_(std::move(config)),
      apply_(std::move(apply)) {}

ReplicationClient::~ReplicationClient() { stop(); }

void ReplicationClient::start() {
  if (running_.exchange(true)) {
    throw ConfigError("replication client already started");
  }
  stopping_.store(false);
  thread_ = std::thread([this] { run(); });
}

void ReplicationClient::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);
  // The replication thread blocks in read_frame with no timeout; shutting
  // the socket down unblocks it immediately.
  const int fd = live_fd_.load();
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  connected_.store(false);
}

void ReplicationClient::run() {
  bool first_attempt = true;
  while (!stopping_.load()) {
    if (!first_attempt) {
      {
        const util::LockGuard lock(mutex_);
        ++reconnects_;
      }
      obs::count("repl.replica_reconnects");
      // Sleep in slices so stop() stays responsive.
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::milliseconds(config_.reconnect_delay_ms);
      while (!stopping_.load() &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      if (stopping_.load()) {
        break;
      }
    }
    first_attempt = false;
    try {
      session();
    } catch (const std::exception&) {
      // Connection refused, primary death mid-stream, out-of-order record,
      // fence — every path reconnects and renegotiates from local state.
    }
    connected_.store(false);
    live_fd_.store(-1);
  }
}

void ReplicationClient::session() {
  svc::Socket socket = svc::connect_to(
      config_.primary_host, config_.primary_port, config_.io_timeout_ms);
  live_fd_.store(socket.fd());
  if (stopping_.load()) {
    return;
  }

  SubscribeMsg sub;
  sub.last_seq = repository_.applied_seq();
  sub.synced = marker_present();
  svc::write_frame(socket, encode_subscribe(sub), config_.max_frame_bytes);
  const std::optional<std::string> hello =
      svc::read_frame(socket, config_.max_frame_bytes, config_.io_timeout_ms);
  if (!hello) {
    throw IoError("primary closed during replication handshake");
  }
  const HandshakeReply reply = parse_handshake_reply(*hello);
  switch (reply.kind) {
    case HandshakeReply::Kind::kFence: {
      // This database has records the primary never acknowledged — a stale
      // ex-primary's unreplicated tail. Drop the synced marker so the next
      // attempt requests a full snapshot of the NEW timeline.
      clear_marker();
      {
        const util::LockGuard lock(mutex_);
        ++fences_;
      }
      obs::count("repl.replica_fenced");
      throw IoError("fenced by primary; re-bootstrapping");
    }
    case HandshakeReply::Kind::kSnapshot: {
      apply_through([&](persist::KnowledgeRepository& repository) {
        repository.install_dump(reply.dump, reply.seq);
      });
      util::fault_point("repl.bootstrap.installed");
      write_marker();
      {
        const util::LockGuard lock(mutex_);
        applied_seq_ = reply.seq;
        ++bootstraps_;
      }
      applied_cv_.notify_all();
      obs::count("repl.bootstraps");
      svc::write_frame(socket, encode_ack(reply.seq), config_.max_frame_bytes);
      break;
    }
    case HandshakeReply::Kind::kUpToDate: {
      write_marker();
      const util::LockGuard lock(mutex_);
      applied_seq_ = reply.seq;
      applied_cv_.notify_all();
      break;
    }
  }
  connected_.store(true);

  while (!stopping_.load()) {
    // Block until the primary ships a batch; stop() shuts the socket down.
    const std::optional<std::string> frame =
        svc::read_frame(socket, config_.max_frame_bytes, /*timeout_ms=*/-1);
    if (!frame) {
      throw IoError("primary closed the replication stream");
    }
    const BatchMsg batch = parse_batch(*frame);
    if (batch.records.empty()) {
      continue;
    }
    util::fault_point("repl.apply.batch");
    apply_through([&](persist::KnowledgeRepository& repository) {
      std::uint64_t last_ticket = 0;
      for (const db::JournalRecord& record : batch.records) {
        last_ticket = repository.apply_replicated(record);
      }
      // One fsync per shipped batch — the replica-side mirror of the
      // primary's group commit.
      repository.wait_journal_durable(last_ticket);
    });
    const std::uint64_t last_seq = batch.records.back().seq;
    {
      const util::LockGuard lock(mutex_);
      applied_seq_ = last_seq;
      applied_records_ += batch.records.size();
      ++applied_batches_;
    }
    applied_cv_.notify_all();
    obs::count("repl.batches_applied");
    obs::count("repl.records_applied", batch.records.size());
    util::fault_point("repl.ack.send");
    svc::write_frame(socket, encode_ack(last_seq), config_.max_frame_bytes);
  }
}

void ReplicationClient::apply_through(
    const std::function<void(persist::KnowledgeRepository&)>& write) {
  if (apply_) {
    apply_(write);
  } else {
    write(repository_);
  }
}

bool ReplicationClient::marker_present() const {
  if (config_.marker_path.empty()) {
    return false;
  }
  return ::access(config_.marker_path.c_str(), F_OK) == 0;
}

void ReplicationClient::write_marker() {
  if (config_.marker_path.empty()) {
    return;
  }
  util::atomic_replace_file(config_.marker_path, "synced\n");
}

void ReplicationClient::clear_marker() {
  if (config_.marker_path.empty()) {
    return;
  }
  ::unlink(config_.marker_path.c_str());
}

bool ReplicationClient::wait_applied(std::uint64_t seq, int timeout_ms) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(timeout_ms);
  util::UniqueLock lock(mutex_);
  while (applied_seq_ < seq) {
    if (applied_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      return applied_seq_ >= seq;
    }
  }
  return true;
}

std::uint64_t ReplicationClient::applied_seq() const {
  const util::LockGuard lock(mutex_);
  return applied_seq_;
}

void ReplicationClient::extend_stats(util::JsonObject& result) const {
  result.emplace_back(
      "journal_epoch",
      util::JsonValue(static_cast<std::int64_t>(repository_.journal_epoch())));
  result.emplace_back("connected", util::JsonValue(connected_.load()));
  const util::LockGuard lock(mutex_);
  result.emplace_back(
      "journal_offset",
      util::JsonValue(static_cast<std::int64_t>(applied_seq_)));
  result.emplace_back(
      "applied_records",
      util::JsonValue(static_cast<std::int64_t>(applied_records_)));
  result.emplace_back(
      "applied_batches",
      util::JsonValue(static_cast<std::int64_t>(applied_batches_)));
  result.emplace_back(
      "bootstraps", util::JsonValue(static_cast<std::int64_t>(bootstraps_)));
  result.emplace_back("fences",
                      util::JsonValue(static_cast<std::int64_t>(fences_)));
  result.emplace_back(
      "reconnects", util::JsonValue(static_cast<std::int64_t>(reconnects_)));
}

}  // namespace iokc::repl
