#include "src/repl/ring.hpp"

#include <algorithm>

#include "src/db/journal.hpp"  // fnv1a64
#include "src/util/error.hpp"

namespace iokc::repl {

namespace {

/// FNV-1a avalanches poorly in the high bits for short inputs (vnode labels
/// are 3-5 bytes), which skews ring arc lengths badly — one shard can own
/// most of the keyspace. A splitmix64-style finalizer fixes the spread
/// without changing determinism.
std::uint64_t ring_hash(std::string_view text) {
  std::uint64_t z = db::fnv1a64(text);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

HashRing::HashRing(std::size_t shards, std::size_t vnodes) : shards_(shards) {
  points_.reserve(shards * vnodes);
  for (std::size_t shard = 0; shard < shards; ++shard) {
    for (std::size_t vnode = 0; vnode < vnodes; ++vnode) {
      const std::string label =
          std::to_string(shard) + ":" + std::to_string(vnode);
      points_.push_back(Point{ring_hash(label),
                              static_cast<std::uint32_t>(shard)});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              // Shard index breaks hash ties so the ring order is total and
              // independent of construction order.
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

std::size_t HashRing::shard_for(std::string_view key) const {
  if (points_.empty()) {
    throw ConfigError("hash ring has no shards");
  }
  const std::uint64_t hash = ring_hash(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), hash,
      [](const Point& point, std::uint64_t h) { return point.hash < h; });
  // Wrap around: a key past the last point lands on the first one.
  return it != points_.end() ? it->shard : points_.front().shard;
}

std::string HashRing::knowledge_key(std::string_view benchmark,
                                    std::string_view system) {
  std::string key;
  key.reserve(benchmark.size() + 1 + system.size());
  key += benchmark;
  key += '\x1f';  // unit separator: cannot appear in either field
  key += system;
  return key;
}

}  // namespace iokc::repl
