#include "src/repl/wire.hpp"

#include <utility>

#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::repl {

namespace {

/// The "type" field of a replication message; throws when absent.
std::string message_type(const util::JsonValue& doc) {
  const util::JsonValue* type = doc.find("type");
  if (type == nullptr) {
    throw ParseError("replication message without a type field");
  }
  return type->as_string();
}

std::uint64_t u64_field(const util::JsonValue& doc, std::string_view key) {
  return static_cast<std::uint64_t>(doc.at(key).as_int());
}

}  // namespace

std::string encode_subscribe(const SubscribeMsg& msg) {
  util::JsonObject obj;
  obj.emplace_back("type", util::JsonValue("subscribe"));
  obj.emplace_back("last_seq",
                   util::JsonValue(static_cast<std::int64_t>(msg.last_seq)));
  obj.emplace_back("synced", util::JsonValue(msg.synced));
  return util::JsonValue(std::move(obj)).dump();
}

std::string encode_snapshot(std::uint64_t epoch, const std::string& dump) {
  util::JsonObject obj;
  obj.emplace_back("type", util::JsonValue("snapshot"));
  obj.emplace_back("epoch", util::JsonValue(static_cast<std::int64_t>(epoch)));
  obj.emplace_back("dump", util::JsonValue(dump));
  return util::JsonValue(std::move(obj)).dump();
}

std::string encode_uptodate(std::uint64_t seq) {
  util::JsonObject obj;
  obj.emplace_back("type", util::JsonValue("uptodate"));
  obj.emplace_back("seq", util::JsonValue(static_cast<std::int64_t>(seq)));
  return util::JsonValue(std::move(obj)).dump();
}

std::string encode_fence() {
  util::JsonObject obj;
  obj.emplace_back("type", util::JsonValue("fence"));
  return util::JsonValue(std::move(obj)).dump();
}

std::string encode_batch(const std::vector<db::JournalRecord>& records) {
  // Encoded with the streaming writer: batches are the replication hot path
  // and the statements are already strings — no intermediate tree.
  util::JsonWriter writer;
  writer.raw(std::string_view(R"({"type":"batch","records":[)"));
  bool first_record = true;
  for (const db::JournalRecord& record : records) {
    if (!first_record) {
      writer.raw(',');
    }
    first_record = false;
    writer.raw(std::string_view(R"({"seq":)"));
    writer.number(static_cast<std::int64_t>(record.seq));
    writer.raw(std::string_view(R"(,"statements":[)"));
    bool first_statement = true;
    for (const std::string& statement : record.statements) {
      if (!first_statement) {
        writer.raw(',');
      }
      first_statement = false;
      writer.string(statement);
    }
    writer.raw(std::string_view("]}"));
  }
  writer.raw(std::string_view("]}"));
  return writer.take();
}

std::string encode_ack(std::uint64_t seq) {
  util::JsonObject obj;
  obj.emplace_back("type", util::JsonValue("ack"));
  obj.emplace_back("seq", util::JsonValue(static_cast<std::int64_t>(seq)));
  return util::JsonValue(std::move(obj)).dump();
}

SubscribeMsg parse_subscribe(const std::string& payload) {
  const util::JsonValue doc = util::parse_json(payload);
  if (message_type(doc) != "subscribe") {
    throw ParseError("expected a subscribe message");
  }
  SubscribeMsg msg;
  msg.last_seq = u64_field(doc, "last_seq");
  if (const util::JsonValue* synced = doc.find("synced")) {
    msg.synced = synced->as_bool();
  }
  return msg;
}

HandshakeReply parse_handshake_reply(const std::string& payload) {
  const util::JsonValue doc = util::parse_json(payload);
  const std::string type = message_type(doc);
  HandshakeReply reply;
  if (type == "snapshot") {
    reply.kind = HandshakeReply::Kind::kSnapshot;
    reply.seq = u64_field(doc, "epoch");
    reply.dump = doc.at("dump").as_string();
  } else if (type == "uptodate") {
    reply.kind = HandshakeReply::Kind::kUpToDate;
    reply.seq = u64_field(doc, "seq");
  } else if (type == "fence") {
    reply.kind = HandshakeReply::Kind::kFence;
  } else {
    throw ParseError("unexpected replication handshake reply '" + type + "'");
  }
  return reply;
}

BatchMsg parse_batch(const std::string& payload) {
  const util::JsonValue doc = util::parse_json(payload);
  if (message_type(doc) != "batch") {
    throw ParseError("expected a batch message");
  }
  BatchMsg msg;
  for (const util::JsonValue& entry : doc.at("records").as_array()) {
    db::JournalRecord record;
    record.seq = u64_field(entry, "seq");
    const util::JsonArray& statements = entry.at("statements").as_array();
    record.statements.reserve(statements.size());
    for (const util::JsonValue& statement : statements) {
      record.statements.push_back(statement.as_string());
    }
    msg.records.push_back(std::move(record));
  }
  return msg;
}

AckMsg parse_ack(const std::string& payload) {
  const util::JsonValue doc = util::parse_json(payload);
  if (message_type(doc) != "ack") {
    throw ParseError("expected an ack message");
  }
  AckMsg msg;
  msg.seq = u64_field(doc, "seq");
  return msg;
}

std::optional<std::string> parse_primary_redirect(const std::string& error) {
  constexpr std::string_view kMarker = "write to primary at ";
  const std::size_t at = error.find(kMarker);
  if (at == std::string::npos) {
    return std::nullopt;
  }
  std::string address = error.substr(at + kMarker.size());
  // Trim trailing punctuation/whitespace a wrapping layer may have added.
  while (!address.empty() &&
         (address.back() == ' ' || address.back() == '.' ||
          address.back() == '\n')) {
    address.pop_back();
  }
  if (address.empty() || address == "unknown") {
    return std::nullopt;
  }
  return address;
}

std::pair<std::string, std::uint16_t> parse_host_port(
    const std::string& address) {
  const std::size_t colon = address.rfind(':');
  if (colon == std::string::npos || colon == 0) {
    throw ConfigError("expected host:port, got '" + address + "'");
  }
  const std::string host = address.substr(0, colon);
  const std::string port_text = address.substr(colon + 1);
  if (port_text.empty() || port_text.size() > 5) {
    throw ConfigError("invalid port in '" + address + "'");
  }
  unsigned long port = 0;
  for (const char c : port_text) {
    if (c < '0' || c > '9') {
      throw ConfigError("invalid port in '" + address + "'");
    }
    port = port * 10 + static_cast<unsigned long>(c - '0');
  }
  if (port == 0 || port > 65535) {
    throw ConfigError("port out of range in '" + address + "'");
  }
  return {host, static_cast<std::uint16_t>(port)};
}

}  // namespace iokc::repl
