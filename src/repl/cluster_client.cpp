#include "src/repl/cluster_client.hpp"

#include <utility>

#include "src/repl/wire.hpp"
#include "src/util/error.hpp"

namespace iokc::repl {

ClusterClient::ClusterClient(std::vector<std::string> targets,
                             ClusterClientOptions options)
    : options_(std::move(options)) {
  if (targets.empty()) {
    throw ConfigError("cluster client needs at least one target");
  }
  for (std::string& address : targets) {
    Target target;
    const auto [host, port] = parse_host_port(address);
    target.address = std::move(address);
    target.host = host;
    target.port = port;
    targets_.push_back(std::move(target));
  }
  reads_per_target_.assign(targets_.size(), 0);
}

svc::Client& ClusterClient::connected(Target& target) {
  if (!target.client) {
    target.client = std::make_unique<svc::Client>(
        svc::Client::connect(target.host, target.port, options_.client));
  }
  return *target.client;
}

svc::Response ClusterClient::call_target(Target& target,
                                         const std::string& endpoint,
                                         const util::JsonValue& params) {
  try {
    return connected(target).call(endpoint, params);
  } catch (const IoError&) {
    // One redial covers a restarted server behind a stale connection; a
    // second failure propagates to the caller's rotation logic.
    target.client.reset();
    return connected(target).call(endpoint, params);
  }
}

bool ClusterClient::fresh_enough(Target& target) {
  if (options_.max_epoch_lag == 0) {
    return true;
  }
  const auto now = std::chrono::steady_clock::now();
  if (!target.offset_known ||
      now - target.last_probe >
          std::chrono::milliseconds(options_.probe_interval_ms)) {
    target.last_probe = now;
    try {
      const svc::Response health = call_target(
          target, "health", util::JsonValue(util::JsonObject{}));
      if (health.ok) {
        if (const util::JsonValue* offset =
                health.result.find("journal_offset")) {
          target.journal_offset =
              static_cast<std::uint64_t>(offset->as_int());
          target.offset_known = true;
        } else {
          // No replication stats (standalone node): never stale.
          target.journal_offset = 0;
          target.offset_known = false;
          return true;
        }
      }
    } catch (const IoError&) {
      return false;  // unreachable counts as stale; the caller rotates on
    }
  }
  if (!target.offset_known) {
    return true;
  }
  // The primary's own offset is the freshness reference; its cache refreshes
  // on the same cadence through its own fresh_enough/probe calls.
  Target& primary = targets_[0];
  if (!primary.offset_known) {
    return true;
  }
  const std::uint64_t primary_offset = primary.journal_offset;
  const std::uint64_t lag = primary_offset > target.journal_offset
                                ? primary_offset - target.journal_offset
                                : 0;
  return lag <= options_.max_epoch_lag;
}

svc::Response ClusterClient::call_primary(const std::string& endpoint,
                                          util::JsonValue params) {
  svc::Response response = call_target(targets_[0], endpoint, params);
  if (!response.ok) {
    // A refused write names the real primary when this target is (now) a
    // replica — follow once and remember the promotion.
    if (const std::optional<std::string> redirect =
            parse_primary_redirect(response.error)) {
      const auto [host, port] = parse_host_port(*redirect);
      Target moved;
      moved.address = *redirect;
      moved.host = host;
      moved.port = port;
      response = call_target(moved, endpoint, params);
      if (response.ok) {
        targets_[0] = std::move(moved);
      }
    }
  }
  return response;
}

svc::Response ClusterClient::call_read(const std::string& endpoint,
                                       util::JsonValue params) {
  // Probe the primary's position first when a staleness bound is active, so
  // replica lag compares against a current reference.
  if (options_.max_epoch_lag > 0) {
    fresh_enough(targets_[0]);
  }
  IoError last_error("no targets");
  for (std::size_t tried = 0; tried < targets_.size(); ++tried) {
    const std::size_t index = next_read_ % targets_.size();
    next_read_ = (next_read_ + 1) % targets_.size();
    Target& target = targets_[index];
    if (index != 0 && !fresh_enough(target)) {
      continue;
    }
    try {
      svc::Response response = call_target(target, endpoint, params);
      ++reads_per_target_[index];
      return response;
    } catch (const IoError& error) {
      last_error = error;
    }
  }
  // Every candidate was stale or unreachable; the primary is the fallback
  // of last resort (it is never stale by definition).
  try {
    svc::Response response = call_target(targets_[0], endpoint, params);
    ++reads_per_target_[0];
    return response;
  } catch (const IoError&) {
    throw last_error;
  }
}

svc::Response ClusterClient::call(const std::string& endpoint,
                                  util::JsonValue params) {
  if (endpoint == "knowledge/store") {
    return call_primary(endpoint, std::move(params));
  }
  return call_read(endpoint, std::move(params));
}

}  // namespace iokc::repl
