// The primary side of WAL shipping (DESIGN.md §5h): a Shipper owns the
// replication listener, one session per connected replica, and the journal
// ship sink. Committed group-commit batches fan out to every subscribed
// replica; replicas acknowledge by journal sequence once the batch is
// durable on THEIR disk, and the configured ack policy turns those acks
// into the commit gate the serving layer blocks on.
//
// Threading: the journal flush leader calls the ship sink (holding no
// locks — see Journal::set_ship_sink); it only enqueues under the shipper
// mutex and returns. Each replica session runs its own sender thread:
// dequeue, send one batch frame, block for the ack, repeat. Service workers
// block in wait_for_acks() on the same mutex's condition variable. The
// shipper mutex ranks kRepl, above every lock the code it calls into can
// take — sessions call down into persist (dump) holding nothing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/db/journal.hpp"
#include "src/persist/repository.hpp"
#include "src/svc/socket.hpp"
#include "src/util/json.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::repl {

/// How many replica acks gate a write's durability acknowledgment.
///   kNone:   local durability only (async replication).
///   kOne:    at least one replica has the write on disk.
///   kQuorum: a majority of the cluster has it — (expected_replicas + 1) / 2
///            replica acks, because the primary's own copy counts toward the
///            majority of expected_replicas + 1 nodes. This is the promotion
///            safety bound: the most-caught-up replica is then always a
///            superset of every quorum-acked write (streams are contiguous
///            prefixes of one WAL order).
enum class AckPolicy { kNone, kOne, kQuorum };

/// Parses "none" | "one" | "quorum"; throws ConfigError otherwise.
AckPolicy parse_ack_policy(std::string_view text);
std::string_view to_string(AckPolicy policy);

struct ShipperConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // replication listener; 0 picks ephemeral
  AckPolicy ack_policy = AckPolicy::kNone;
  /// Cluster sizing for the quorum computation — how many replicas are
  /// *supposed* to exist, not how many are currently connected (a quorum
  /// against a shrunken live set would defeat the point).
  std::size_t expected_replicas = 0;
  int ack_timeout_ms = 5000;  // wait_for_acks bound
  int io_timeout_ms = 10000;  // per-frame send/recv bound per session
  /// Frame cap for replication traffic. Bootstrap snapshots carry a whole
  /// database dump, so this is far above the service protocol default.
  std::size_t max_frame_bytes = 256u << 20;
};

class Shipper {
 public:
  /// Ships `repository`'s WAL. The repository must be file-backed (it needs
  /// a journal) and outlive the shipper.
  Shipper(persist::KnowledgeRepository& repository, ShipperConfig config);
  ~Shipper();

  Shipper(const Shipper&) = delete;
  Shipper& operator=(const Shipper&) = delete;

  /// Binds the replication listener, installs the journal ship sink, and
  /// starts accepting replicas. Throws IoError when the address is taken.
  void start();
  /// Disconnects every replica and joins all threads. Idempotent.
  void stop();

  std::uint16_t port() const { return port_; }

  /// Blocks until the ack policy is satisfied for `seq` or ack_timeout_ms
  /// elapsed; returns whether it was satisfied. Policy kNone returns true
  /// immediately. The svc::Server commit gate binds here.
  bool wait_for_acks(std::uint64_t seq);  // iokc-lint: blocking

  /// Replica acks at or beyond `seq` among live sessions (test/monitoring).
  std::size_t acked_replicas(std::uint64_t seq) const;
  std::size_t connected_replicas() const;

  /// Merges replication state into a health/stats response object: role
  /// details, journal epoch+offset, shipped-batch counters, per-replica ack
  /// lag. The svc::Server stats extension binds here.
  void extend_stats(util::JsonObject& result) const;

 private:
  /// One connected replica. The session thread owns the socket; everything
  /// else is under the shipper mutex.
  struct Session {
    svc::Socket socket;
    std::string peer;
    std::vector<db::JournalRecord> queue;  // pending, seq-ordered
    std::uint64_t epoch = 0;      // records <= epoch came via the dump
    std::uint64_t acked_seq = 0;  // durable on the replica
    bool streaming = false;       // handshake done; queue is live
    bool dead = false;
    std::condition_variable_any cv;  // queue became non-empty / stopping
  };

  void accept_loop();
  void serve_replica(std::shared_ptr<Session> session);
  /// The journal ship sink: enqueue the batch for every streaming session.
  void on_batch(const std::vector<db::JournalRecord>& records);
  std::size_t replica_acks_needed() const;

  persist::KnowledgeRepository& repository_;
  ShipperConfig config_;
  svc::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::vector<std::thread> session_threads_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable util::Mutex mutex_{util::LockRank::kRepl, "repl.shipper"};
  std::condition_variable_any ack_cv_;
  std::vector<std::shared_ptr<Session>> sessions_ IOKC_GUARDED_BY(mutex_);
  std::uint64_t shipped_batches_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t shipped_records_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t last_shipped_seq_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t snapshots_sent_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t fences_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t ack_timeouts_ IOKC_GUARDED_BY(mutex_) = 0;
};

}  // namespace iokc::repl
