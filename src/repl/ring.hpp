// Consistent hashing for the sharded knowledge service (DESIGN.md §5h): the
// router maps a knowledge key (benchmark + system) onto one of N shard
// primaries through a ring of virtual nodes, so adding or removing a shard
// remaps only ~1/N of the keyspace instead of reshuffling everything the way
// `hash % N` would.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iokc::repl {

/// A ring of `vnodes` virtual points per shard, each placed by FNV-1a of
/// "shard:replica"; a key lands on the first point clockwise of its own
/// hash. Immutable after construction — lookups are lock-free and safe from
/// any thread.
class HashRing {
 public:
  explicit HashRing(std::size_t shards, std::size_t vnodes = 64);

  std::size_t shards() const { return shards_; }

  /// The shard index `key` maps to. Throws ConfigError on an empty ring.
  std::size_t shard_for(std::string_view key) const;

  /// The routing key for a knowledge object: benchmark and system hostname
  /// joined with a separator neither field can contain. The same
  /// (benchmark, system) pair always lands on the same shard, so all runs
  /// of one workload on one machine stay queryable together.
  static std::string knowledge_key(std::string_view benchmark,
                                   std::string_view system);

 private:
  struct Point {
    std::uint64_t hash = 0;
    std::uint32_t shard = 0;
  };

  std::size_t shards_ = 0;
  std::vector<Point> points_;  // sorted by hash
};

}  // namespace iokc::repl
