// The replica side of WAL shipping (DESIGN.md §5h): a ReplicationClient
// connects to the primary's replication port, bootstraps from a snapshot
// when needed, then applies shipped journal batches through the normal
// repository write path and acks each batch once it is durable locally.
//
// Position tracking: a replica accepts NO client writes, so its journal
// sequence advances in lockstep with the primary's — one shipped record is
// one local transaction. After a restart the replica announces its own
// last_seq; the primary replies uptodate (stream from there), snapshot
// (re-bootstrap), or fence (the replica has a diverged tail — a stale
// ex-primary — and must discard its state).
//
// The "synced" marker: a sidecar file recording that this database was
// bootstrapped from (or caught up with) the primary's timeline. A fresh
// database has a journal of its own creation, not of the primary's history,
// so without the marker the replica always requests a snapshot. Fencing
// removes the marker before re-bootstrapping.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

#include "src/db/journal.hpp"
#include "src/persist/repository.hpp"
#include "src/util/json.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::repl {

struct ReplicaConfig {
  std::string primary_host = "127.0.0.1";
  std::uint16_t primary_port = 0;  // the primary's REPLICATION port
  int reconnect_delay_ms = 500;    // pause between connection attempts
  int io_timeout_ms = 10000;       // handshake/ack frame bound
  std::size_t max_frame_bytes = 256u << 20;
  /// Where the synced marker lives. Empty disables persistence of the
  /// marker (in-memory replicas always re-bootstrap — correct, if slower).
  std::string marker_path;
};

class ReplicationClient {
 public:
  /// Replicates into `repository`, which must outlive the client and must
  /// not receive writes from anyone else (they would diverge the timeline).
  /// Every repository mutation goes through `apply`, so the owner can wrap
  /// it (the replica node routes through SnapshotStore::with_write to keep
  /// read snapshots fresh). `apply` runs on the replication thread.
  using ApplyFn =
      std::function<void(const std::function<void(persist::KnowledgeRepository&)>&)>;
  ReplicationClient(persist::KnowledgeRepository& repository,
                    ReplicaConfig config, ApplyFn apply = nullptr);
  ~ReplicationClient();

  ReplicationClient(const ReplicationClient&) = delete;
  ReplicationClient& operator=(const ReplicationClient&) = delete;

  /// Starts the replication loop: connect, handshake, apply, ack; reconnect
  /// with a fixed delay on any error. Idempotent stop() disconnects/joins.
  void start();
  void stop();

  /// Blocks until the replica has applied at least `seq` or `timeout_ms`
  /// elapsed; returns whether it got there. Test/promotion helper.
  bool wait_applied(std::uint64_t seq, int timeout_ms);  // iokc-lint: blocking

  std::uint64_t applied_seq() const;
  bool connected() const { return connected_.load(); }

  /// Merges replication state into a health/stats response object:
  /// applied position, bootstrap/fence/reconnect counters, link state.
  void extend_stats(util::JsonObject& result) const;

 private:
  void run();
  /// One connect-handshake-stream cycle; throws on any error.
  void session();
  void apply_through(const std::function<void(persist::KnowledgeRepository&)>& write);
  bool marker_present() const;
  void write_marker();
  void clear_marker();

  persist::KnowledgeRepository& repository_;
  ReplicaConfig config_;
  ApplyFn apply_;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<bool> connected_{false};
  std::atomic<int> live_fd_{-1};  // socket of the active session, for stop()

  mutable util::Mutex mutex_{util::LockRank::kRepl, "repl.replica"};
  std::condition_variable_any applied_cv_;
  std::uint64_t applied_seq_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t applied_records_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t applied_batches_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t bootstraps_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t fences_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t reconnects_ IOKC_GUARDED_BY(mutex_) = 0;
};

}  // namespace iokc::repl
