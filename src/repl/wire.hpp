// Replication wire messages (DESIGN.md §5h), carried as JSON documents over
// the same length-prefixed framing as the service protocol (svc/protocol.hpp).
//
// Handshake (replica -> primary):
//   {"type":"subscribe", "last_seq":N, "synced":bool}
// Primary reply, one of:
//   {"type":"snapshot", "epoch":N, "dump":"<sql script>"}   bootstrap
//   {"type":"uptodate", "seq":N}                            stream directly
//   {"type":"fence"}                                        diverged: discard
// Stream (primary -> replica, repeated):
//   {"type":"batch", "records":[{"seq":N, "statements":[...]}, ...]}
// Ack (replica -> primary, after the batch is locally durable):
//   {"type":"ack", "seq":N}
//
// Epoch semantics: `epoch` is the journal sequence the bootstrap dump
// covers; the stream then carries exactly seq epoch+1, epoch+2, ... A
// replica's position IS its own journal sequence — applies are the only
// writes a replica accepts, so the counters advance in lockstep. A
// subscriber announcing last_seq greater than the primary's current
// sequence has writes the primary never acknowledged (a stale ex-primary
// rejoining after failover) and is fenced: it must discard its state and
// re-bootstrap from a snapshot.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "src/db/journal.hpp"
#include "src/util/json.hpp"

namespace iokc::repl {

struct SubscribeMsg {
  std::uint64_t last_seq = 0;
  /// False until the replica's first successful bootstrap: a fresh database
  /// has a journal history of its own creation, not of the primary's
  /// timeline, so an unsynced subscriber always receives a snapshot.
  bool synced = false;
};

struct SnapshotMsg {
  std::uint64_t epoch = 0;
  std::string dump;
};

struct BatchMsg {
  std::vector<db::JournalRecord> records;
};

struct AckMsg {
  std::uint64_t seq = 0;
};

/// Primary handshake replies, discriminated by "type".
struct HandshakeReply {
  enum class Kind { kSnapshot, kUpToDate, kFence };
  Kind kind = Kind::kFence;
  std::uint64_t seq = 0;  // epoch (snapshot) or current seq (uptodate)
  std::string dump;       // snapshot only
};

std::string encode_subscribe(const SubscribeMsg& msg);
std::string encode_snapshot(std::uint64_t epoch, const std::string& dump);
std::string encode_uptodate(std::uint64_t seq);
std::string encode_fence();
std::string encode_batch(const std::vector<db::JournalRecord>& records);
std::string encode_ack(std::uint64_t seq);

/// Each parse throws ParseError on a malformed or differently-typed message.
SubscribeMsg parse_subscribe(const std::string& payload);
HandshakeReply parse_handshake_reply(const std::string& payload);
/// Parses either a batch (returned) or tolerated keep-alive noise; throws
/// ParseError on anything else.
BatchMsg parse_batch(const std::string& payload);
AckMsg parse_ack(const std::string& payload);

/// The primary address out of a replica's write-refusal message
/// ("... write to primary at <host:port>"), or nullopt when the message is
/// not a redirect. The client side of read/write splitting uses this to
/// follow a misdirected write.
std::optional<std::string> parse_primary_redirect(const std::string& error);

/// Splits "host:port" on the last colon. Throws ConfigError on a missing
/// colon, empty host, or non-numeric/out-of-range port.
std::pair<std::string, std::uint16_t> parse_host_port(const std::string& address);

}  // namespace iokc::repl
