#include "src/repl/node.hpp"

#include <utility>

#include "src/util/json.hpp"

namespace iokc::repl {

PrimaryNode::PrimaryNode(persist::KnowledgeRepository& repository,
                         svc::ServerConfig server_config,
                         ShipperConfig ship_config)
    : shipper_(repository, std::move(ship_config)),
      server_(repository,
              [&server_config] {
                server_config.role = svc::ServerConfig::Role::kPrimary;
                return std::move(server_config);
              }()) {
  server_.set_commit_gate(
      [this](std::uint64_t seq) { return shipper_.wait_for_acks(seq); });
  server_.set_stats_extension(
      [this](util::JsonObject& result) { shipper_.extend_stats(result); });
}

void PrimaryNode::start() {
  shipper_.start();
  server_.start();
}

void PrimaryNode::stop() {
  server_.stop();
  shipper_.stop();
}

ReplicaNode::ReplicaNode(persist::KnowledgeRepository& repository,
                         svc::ServerConfig server_config,
                         ReplicaConfig replica_config)
    : server_(repository,
              [&server_config] {
                server_config.role = svc::ServerConfig::Role::kReplica;
                return std::move(server_config);
              }()),
      replication_(repository, std::move(replica_config),
                   [this](const std::function<void(
                              persist::KnowledgeRepository&)>& write) {
                     server_.with_repository_write(write);
                   }) {
  server_.set_stats_extension([this](util::JsonObject& result) {
    replication_.extend_stats(result);
  });
}

void ReplicaNode::start() {
  server_.start();
  replication_.start();
}

void ReplicaNode::stop() {
  replication_.stop();
  server_.stop();
}

}  // namespace iokc::repl
