// Cluster node composition (DESIGN.md §5h): glues a svc::Server to the
// replication substrate so `iokc serve` can run one of three shapes.
//
//   PrimaryNode  = Server(role=primary) + Shipper. The shipper's ack policy
//                  becomes the server's commit gate: knowledge/store blocks
//                  until enough replicas hold the write durably.
//   ReplicaNode  = Server(role=replica) + ReplicationClient. Shipped batches
//                  apply through the server's snapshot-store write path so
//                  read snapshots advance; client writes are refused with a
//                  redirect to the primary's service address.
//
// (The third shape, the router, lives in router.hpp — it owns no repository.)
#pragma once

#include <memory>

#include "src/persist/repository.hpp"
#include "src/repl/replica.hpp"
#include "src/repl/ship.hpp"
#include "src/svc/server.hpp"

namespace iokc::repl {

/// A primary: serves reads and writes, ships its WAL to replicas.
class PrimaryNode {
 public:
  PrimaryNode(persist::KnowledgeRepository& repository,
              svc::ServerConfig server_config, ShipperConfig ship_config);

  /// Starts the replication listener first (so replicas can subscribe the
  /// moment the service port answers), then the service itself.
  void start();
  void stop();

  svc::Server& server() { return server_; }
  Shipper& shipper() { return shipper_; }

 private:
  Shipper shipper_;
  svc::Server server_;
};

/// A replica: serves reads from its own WAL-fed copy, refuses writes.
class ReplicaNode {
 public:
  ReplicaNode(persist::KnowledgeRepository& repository,
              svc::ServerConfig server_config, ReplicaConfig replica_config);

  /// Starts the service first (the apply path routes through its snapshot
  /// store), then the replication client.
  void start();
  void stop();

  svc::Server& server() { return server_; }
  ReplicationClient& replication() { return replication_; }

 private:
  svc::Server server_;
  ReplicationClient replication_;
};

}  // namespace iokc::repl
