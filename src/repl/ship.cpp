#include "src/repl/ship.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/obs/observability.hpp"
#include "src/repl/wire.hpp"
#include "src/svc/protocol.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"

namespace iokc::repl {

AckPolicy parse_ack_policy(std::string_view text) {
  if (text == "none") {
    return AckPolicy::kNone;
  }
  if (text == "one") {
    return AckPolicy::kOne;
  }
  if (text == "quorum") {
    return AckPolicy::kQuorum;
  }
  throw ConfigError("unknown ack policy '" + std::string(text) +
                    "' (expected none, one, or quorum)");
}

std::string_view to_string(AckPolicy policy) {
  switch (policy) {
    case AckPolicy::kNone:
      return "none";
    case AckPolicy::kOne:
      return "one";
    case AckPolicy::kQuorum:
      return "quorum";
  }
  return "none";
}

Shipper::Shipper(persist::KnowledgeRepository& repository, ShipperConfig config)
    : repository_(repository), config_(std::move(config)) {}

Shipper::~Shipper() { stop(); }

void Shipper::start() {
  if (running_.exchange(true)) {
    throw ConfigError("replication shipper already started");
  }
  stopping_.store(false);
  listener_ = svc::listen_on(config_.bind_address, config_.port);
  port_ = svc::local_port(listener_);
  // The sink must be live before any replica registers: on_batch buffers for
  // every streaming session, and serve_replica registers the session before
  // taking the bootstrap dump so nothing falls between dump and stream.
  repository_.set_journal_ship_sink(
      [this](const std::vector<db::JournalRecord>& records) {
        on_batch(records);
      });
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Shipper::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);
  repository_.set_journal_ship_sink(nullptr);
  listener_.shutdown_both();
  {
    const util::LockGuard lock(mutex_);
    for (const std::shared_ptr<Session>& session : sessions_) {
      session->dead = true;
      session->socket.shutdown_both();
      session->cv.notify_all();
    }
  }
  ack_cv_.notify_all();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    const util::LockGuard lock(mutex_);
    threads.swap(session_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  {
    const util::LockGuard lock(mutex_);
    sessions_.clear();
  }
  listener_ = svc::Socket();
}

void Shipper::accept_loop() {
  while (!stopping_.load()) {
    svc::Socket accepted = svc::accept_connection(listener_, 200);
    if (!accepted.valid()) {
      continue;  // poll timeout, or the listener was shut down
    }
    if (stopping_.load()) {
      break;
    }
    auto session = std::make_shared<Session>();
    session->socket = std::move(accepted);
    {
      const util::LockGuard lock(mutex_);
      session->peer = "replica-" + std::to_string(sessions_.size() + 1) +
                      "/fd" + std::to_string(session->socket.fd());
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session] { serve_replica(session); });
    }
  }
}

void Shipper::serve_replica(std::shared_ptr<Session> session) {
  try {
    const std::optional<std::string> hello = svc::read_frame(
        session->socket, config_.max_frame_bytes, config_.io_timeout_ms);
    if (!hello) {
      throw IoError("replica disconnected during handshake");
    }
    const SubscribeMsg sub = parse_subscribe(*hello);

    // Register BEFORE dumping: every record staged after the dump's gate
    // acquisition has seq > the dump's epoch and lands in this queue, so
    // nothing between "dump taken" and "stream live" can be missed. Records
    // the dump already covers may race in; the epoch prune below drops them.
    {
      const util::LockGuard lock(mutex_);
      session->streaming = true;
      session->queue.clear();
    }
    const persist::KnowledgeRepository::EpochDump dump =
        repository_.dump_with_epoch();
    {
      const util::LockGuard lock(mutex_);
      session->epoch = dump.seq;
      session->queue.erase(
          std::remove_if(session->queue.begin(), session->queue.end(),
                         [&](const db::JournalRecord& record) {
                           return record.seq <= dump.seq;
                         }),
          session->queue.end());
    }

    if (sub.synced && sub.last_seq == dump.seq) {
      svc::write_frame(session->socket, encode_uptodate(dump.seq),
                       config_.max_frame_bytes);
      const util::LockGuard lock(mutex_);
      session->acked_seq = dump.seq;  // it already holds everything durably
      ack_cv_.notify_all();
    } else if (sub.synced && sub.last_seq > dump.seq) {
      // The subscriber holds records this primary never had: a stale
      // ex-primary rejoining after failover. Fence it — it must discard its
      // diverged tail and re-bootstrap as an unsynced replica. Only synced
      // subscribers are fenced: an unsynced one already knows its history
      // is not this timeline (whatever its own journal seq says) and falls
      // through to the snapshot, which is what lets a fenced replica's
      // reconnect converge instead of being fenced forever.
      {
        const util::LockGuard lock(mutex_);
        ++fences_;
      }
      obs::count("repl.fences");
      svc::write_frame(session->socket, encode_fence(),
                       config_.max_frame_bytes);
      throw IoError("fenced diverged subscriber at seq " +
                         std::to_string(sub.last_seq) + " (primary at " +
                         std::to_string(dump.seq) + ")");
    } else {
      {
        const util::LockGuard lock(mutex_);
        ++snapshots_sent_;
      }
      obs::count("repl.snapshots_sent");
      util::fault_point("repl.snapshot.send");
      svc::write_frame(session->socket, encode_snapshot(dump.seq, dump.dump),
                       config_.max_frame_bytes);
      // The replica acks the epoch once the installed dump is durable; read
      // it here so the stream loop below stays strictly one-ack-per-batch.
      const std::optional<std::string> frame = svc::read_frame(
          session->socket, config_.max_frame_bytes, config_.io_timeout_ms);
      if (!frame) {
        throw IoError("replica disconnected during bootstrap");
      }
      const AckMsg ack = parse_ack(*frame);
      const util::LockGuard lock(mutex_);
      session->acked_seq = std::max(session->acked_seq, ack.seq);
      ack_cv_.notify_all();
    }

    while (true) {
      std::vector<db::JournalRecord> batch;
      {
        util::UniqueLock lock(mutex_);
        while (session->queue.empty() && !session->dead && !stopping_.load()) {
          session->cv.wait(lock);
        }
        if (session->dead || stopping_.load()) {
          break;
        }
        batch.swap(session->queue);
      }
      util::fault_point("repl.ship.batch");
      svc::write_frame(session->socket, encode_batch(batch),
                       config_.max_frame_bytes);
      // Synchronous per-frame ack: group commit already coalesces writes
      // into batches, so the round trip amortizes across the whole batch,
      // and the 1:1 pairing keeps session state trivial.
      const std::optional<std::string> frame = svc::read_frame(
          session->socket, config_.max_frame_bytes, config_.io_timeout_ms);
      if (!frame) {
        throw IoError("replica disconnected before ack");
      }
      const AckMsg ack = parse_ack(*frame);
      obs::count("repl.batches_acked");
      const util::LockGuard lock(mutex_);
      session->acked_seq = std::max(session->acked_seq, ack.seq);
      ack_cv_.notify_all();
    }
  } catch (const std::exception&) {
    // Session teardown below; a failed replica simply stops acking.
  }
  {
    const util::LockGuard lock(mutex_);
    session->dead = true;
    sessions_.erase(std::remove(sessions_.begin(), sessions_.end(), session),
                    sessions_.end());
  }
  ack_cv_.notify_all();
}

void Shipper::on_batch(const std::vector<db::JournalRecord>& records) {
  if (records.empty()) {
    return;
  }
  util::fault_point("repl.ship.enqueue");
  const util::LockGuard lock(mutex_);
  ++shipped_batches_;
  shipped_records_ += records.size();
  last_shipped_seq_ = std::max(last_shipped_seq_, records.back().seq);
  for (const std::shared_ptr<Session>& session : sessions_) {
    if (!session->streaming || session->dead) {
      continue;
    }
    for (const db::JournalRecord& record : records) {
      // Records at or below the session epoch are inside its bootstrap dump
      // (a commit staged before the dump can flush — and therefore ship —
      // after it); epoch is 0 until the dump returns, and the prune in
      // serve_replica handles anything queued in that window.
      if (record.seq > session->epoch) {
        session->queue.push_back(record);
      }
    }
    session->cv.notify_all();
  }
  obs::count("repl.batches_shipped");
  obs::count("repl.records_shipped", records.size());
}

std::size_t Shipper::replica_acks_needed() const {
  switch (config_.ack_policy) {
    case AckPolicy::kNone:
      return 0;
    case AckPolicy::kOne:
      return 1;
    case AckPolicy::kQuorum:
      // The primary's own durable copy counts toward the majority of the
      // expected_replicas + 1 node cluster.
      return (config_.expected_replicas + 1) / 2;
  }
  return 0;
}

bool Shipper::wait_for_acks(std::uint64_t seq) {
  const std::size_t needed = replica_acks_needed();
  if (needed == 0) {
    return true;
  }
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.ack_timeout_ms);
  util::UniqueLock lock(mutex_);
  while (true) {
    std::size_t acked = 0;
    for (const std::shared_ptr<Session>& session : sessions_) {
      if (!session->dead && session->acked_seq >= seq) {
        ++acked;
      }
    }
    if (acked >= needed) {
      return true;
    }
    if (stopping_.load()) {
      return false;
    }
    if (ack_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      ++ack_timeouts_;
      obs::count("repl.ack_timeouts");
      return false;
    }
  }
}

std::size_t Shipper::acked_replicas(std::uint64_t seq) const {
  const util::LockGuard lock(mutex_);
  std::size_t acked = 0;
  for (const std::shared_ptr<Session>& session : sessions_) {
    if (!session->dead && session->acked_seq >= seq) {
      ++acked;
    }
  }
  return acked;
}

std::size_t Shipper::connected_replicas() const {
  const util::LockGuard lock(mutex_);
  std::size_t live = 0;
  for (const std::shared_ptr<Session>& session : sessions_) {
    if (!session->dead) {
      ++live;
    }
  }
  return live;
}

void Shipper::extend_stats(util::JsonObject& result) const {
  // Repository positions first: sequential lock use, never nested with the
  // shipper mutex (persist ranks below kRepl anyway).
  result.emplace_back(
      "journal_epoch",
      util::JsonValue(static_cast<std::int64_t>(repository_.journal_epoch())));
  result.emplace_back(
      "journal_offset",
      util::JsonValue(static_cast<std::int64_t>(repository_.applied_seq())));
  result.emplace_back("ack_policy",
                      util::JsonValue(std::string(to_string(config_.ack_policy))));
  result.emplace_back(
      "expected_replicas",
      util::JsonValue(static_cast<std::int64_t>(config_.expected_replicas)));
  const util::LockGuard lock(mutex_);
  result.emplace_back(
      "shipped_batches",
      util::JsonValue(static_cast<std::int64_t>(shipped_batches_)));
  result.emplace_back(
      "shipped_records",
      util::JsonValue(static_cast<std::int64_t>(shipped_records_)));
  result.emplace_back(
      "last_shipped_seq",
      util::JsonValue(static_cast<std::int64_t>(last_shipped_seq_)));
  result.emplace_back(
      "snapshots_sent",
      util::JsonValue(static_cast<std::int64_t>(snapshots_sent_)));
  result.emplace_back("fences",
                      util::JsonValue(static_cast<std::int64_t>(fences_)));
  result.emplace_back(
      "ack_timeouts",
      util::JsonValue(static_cast<std::int64_t>(ack_timeouts_)));
  util::JsonArray replicas;
  for (const std::shared_ptr<Session>& session : sessions_) {
    if (session->dead) {
      continue;
    }
    util::JsonObject entry;
    entry.emplace_back("peer", util::JsonValue(session->peer));
    entry.emplace_back(
        "acked_seq",
        util::JsonValue(static_cast<std::int64_t>(session->acked_seq)));
    const std::uint64_t lag = last_shipped_seq_ > session->acked_seq
                                  ? last_shipped_seq_ - session->acked_seq
                                  : 0;
    entry.emplace_back("ack_lag",
                       util::JsonValue(static_cast<std::int64_t>(lag)));
    replicas.push_back(util::JsonValue(std::move(entry)));
  }
  result.emplace_back("replicas", util::JsonValue(std::move(replicas)));
}

}  // namespace iokc::repl
