#include "src/repl/router.hpp"

#include <utility>

#include "src/obs/observability.hpp"
#include "src/repl/wire.hpp"
#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::repl {

Router::Router(RouterConfig config)
    : config_(std::move(config)),
      ring_(config_.shards.size(), config_.vnodes) {
  if (config_.shards.empty()) {
    throw ConfigError("router needs at least one shard address");
  }
  for (const std::string& address : config_.shards) {
    parse_host_port(address);  // validate eagerly, before serving
    shards_.push_back(std::make_unique<Shard>(address));
  }
}

Router::~Router() { stop(); }

void Router::start() {
  if (running_.exchange(true)) {
    throw ConfigError("router already started");
  }
  stopping_.store(false);
  listener_ = svc::listen_on(config_.bind_address, config_.port);
  port_ = svc::local_port(listener_);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Router::stop() {
  if (!running_.exchange(false)) {
    return;
  }
  stopping_.store(true);
  listener_.shutdown_both();
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  std::vector<std::thread> threads;
  {
    const util::LockGuard lock(mutex_);
    threads.swap(connection_threads_);
  }
  for (std::thread& thread : threads) {
    if (thread.joinable()) {
      thread.join();
    }
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const util::LockGuard lock(shard->mutex);
    shard->client.reset();
  }
  listener_ = svc::Socket();
}

void Router::accept_loop() {
  while (!stopping_.load()) {
    svc::Socket accepted = svc::accept_connection(listener_, 200);
    if (!accepted.valid()) {
      continue;
    }
    if (stopping_.load()) {
      break;
    }
    const util::LockGuard lock(mutex_);
    connection_threads_.emplace_back(
        [this, socket = std::move(accepted)]() mutable {
          serve_connection(std::move(socket));
        });
  }
}

void Router::serve_connection(svc::Socket socket) {
  try {
    while (!stopping_.load()) {
      const std::optional<std::string> frame = svc::read_frame(
          socket, config_.max_frame_bytes, config_.request_timeout_ms);
      if (!frame) {
        break;  // clean close between requests
      }
      svc::Response response;
      try {
        const svc::Request request =
            svc::Request::from_json(util::parse_json(*frame));
        response = dispatch(request);
      } catch (const Error& error) {
        response = svc::Response::failure(error.what());
      }
      util::JsonWriter writer;
      response.dump_to(writer);
      svc::write_frame(socket, writer.take(), config_.max_frame_bytes);
    }
  } catch (const std::exception&) {
    // Drop the connection; the client sees the transport error.
  }
}

svc::Response Router::call_shard(std::size_t index,
                                 const std::string& endpoint,
                                 const util::JsonValue& params) {
  Shard& shard = *shards_[index];
  const auto [host, port] = parse_host_port(shard.address);
  const util::LockGuard lock(shard.mutex);
  for (int attempt = 0; attempt < 2; ++attempt) {
    try {
      if (!shard.client) {
        // iokc-lint: allow(blocking-under-lock): the per-shard mutex exists
        // to serialize use of this one upstream connection; dialing it is
        // part of that serialized use, and no other lock is held here.
        auto dialed = svc::Client::connect(host, port, config_.upstream);
        shard.client = std::make_unique<svc::Client>(std::move(dialed));
      }
      return shard.client->call(endpoint, params);
    } catch (const IoError& error) {
      // Stale connection (shard restarted) or shard down: redial once,
      // then report the failure as a response, never a throw — one dead
      // shard must not poison a fan-out.
      shard.client.reset();
      if (attempt == 1) {
        upstream_errors_.fetch_add(1);
        obs::count("repl.router_upstream_errors");
        return svc::Response::failure("shard " + std::to_string(index) + " (" +
                                      shard.address +
                                      ") unreachable: " + error.what());
      }
    }
  }
  return svc::Response::failure("unreachable");
}

std::size_t Router::shard_for_object(const util::JsonValue& object) const {
  const bool is_io500 = object.find("testcases") != nullptr;
  std::string benchmark = is_io500 ? "io500" : "ior";
  if (const util::JsonValue* field = object.find("benchmark")) {
    benchmark = field->as_string();
  }
  std::string hostname;
  if (const util::JsonValue* system = object.find("system")) {
    if (const util::JsonValue* field = system->find("hostname")) {
      hostname = field->as_string();
    }
  }
  return ring_.shard_for(HashRing::knowledge_key(benchmark, hostname));
}

svc::Response Router::route_store(const util::JsonValue& params) {
  const util::JsonValue* object = params.find("object");
  if (object == nullptr) {
    return svc::Response::failure("knowledge/store: missing 'object'");
  }
  const std::size_t index = shard_for_object(*object);
  store_routed_.fetch_add(1);
  obs::count("repl.router_stores");
  svc::Response response = call_shard(index, "knowledge/store", params);
  if (response.ok && response.result.find("shard") == nullptr) {
    util::JsonObject result;
    for (auto& [key, value] : response.result.as_object()) {
      result.emplace_back(key, std::move(value));
    }
    result.emplace_back("shard",
                        util::JsonValue(static_cast<std::int64_t>(index)));
    response.result = util::JsonValue(std::move(result));
  }
  return response;
}

svc::Response Router::scan_shards(const svc::Request& request) {
  scans_.fetch_add(1);
  // An explicit shard param skips the scan — clients that remembered the
  // "shard" a store response reported go straight to the owner.
  if (const util::JsonValue* directed = request.params.find("shard")) {
    const auto index = static_cast<std::size_t>(directed->as_int());
    if (index >= shards_.size()) {
      return svc::Response::failure("shard index out of range");
    }
    return call_shard(index, request.endpoint, request.params);
  }
  svc::Response last = svc::Response::failure("no shards");
  for (std::size_t index = 0; index < shards_.size(); ++index) {
    last = call_shard(index, request.endpoint, request.params);
    if (last.ok) {
      return last;
    }
  }
  return last;
}

svc::Response Router::fan_out_merge(const svc::Request& request) {
  fan_outs_.fetch_add(1);
  obs::count("repl.router_fanouts");
  std::vector<svc::Response> responses;
  responses.reserve(shards_.size());
  for (std::size_t index = 0; index < shards_.size(); ++index) {
    responses.push_back(call_shard(index, request.endpoint, request.params));
  }

  if (request.endpoint == "list") {
    // Concatenate, tagging every entry with its shard: ids are shard-local,
    // so (shard, id) is the cluster-wide identity.
    util::JsonArray knowledge;
    util::JsonArray io500;
    for (std::size_t index = 0; index < responses.size(); ++index) {
      if (!responses[index].ok) {
        continue;
      }
      const auto shard_tag = static_cast<std::int64_t>(index);
      if (const util::JsonValue* entries =
              responses[index].result.find("knowledge")) {
        for (const util::JsonValue& entry : entries->as_array()) {
          util::JsonObject tagged;
          for (const auto& [key, value] : entry.as_object()) {
            tagged.emplace_back(key, value);
          }
          tagged.emplace_back("shard", util::JsonValue(shard_tag));
          knowledge.emplace_back(std::move(tagged));
        }
      }
      if (const util::JsonValue* entries =
              responses[index].result.find("io500")) {
        for (const util::JsonValue& entry : entries->as_array()) {
          util::JsonObject tagged;
          tagged.emplace_back("id", util::JsonValue(entry.as_int()));
          tagged.emplace_back("shard", util::JsonValue(shard_tag));
          io500.emplace_back(std::move(tagged));
        }
      }
    }
    util::JsonObject result;
    result.emplace_back("knowledge", util::JsonValue(std::move(knowledge)));
    result.emplace_back("io500", util::JsonValue(std::move(io500)));
    result.emplace_back(
        "shards", util::JsonValue(static_cast<std::int64_t>(shards_.size())));
    return svc::Response::success(util::JsonValue(std::move(result)));
  }

  if (request.endpoint == "sql") {
    // Scatter-gather append: per-shard row sets concatenate. Aggregates
    // (COUNT, AVG...) come back one row per shard — the caller combines.
    util::JsonArray columns;
    util::JsonArray rows;
    bool have_columns = false;
    std::string first_error;
    for (const svc::Response& response : responses) {
      if (!response.ok) {
        if (first_error.empty()) {
          first_error = response.error;
        }
        continue;
      }
      if (!have_columns) {
        columns = response.result.at("columns").as_array();
        have_columns = true;
      }
      for (const util::JsonValue& row : response.result.at("rows").as_array()) {
        rows.emplace_back(row);
      }
    }
    if (!have_columns) {
      return svc::Response::failure(
          first_error.empty() ? "sql: no shard answered" : first_error);
    }
    util::JsonObject result;
    result.emplace_back("columns", util::JsonValue(std::move(columns)));
    result.emplace_back("rows", util::JsonValue(std::move(rows)));
    return svc::Response::success(util::JsonValue(std::move(result)));
  }

  // health / stats: the router's own identity plus per-shard results.
  util::JsonObject result;
  if (request.endpoint == "health") {
    result.emplace_back("status", util::JsonValue("ok"));
  }
  result.emplace_back("role", util::JsonValue("router"));
  result.emplace_back(
      "shards", util::JsonValue(static_cast<std::int64_t>(shards_.size())));
  if (request.endpoint == "stats") {
    result.emplace_back(
        "requests",
        util::JsonValue(static_cast<std::int64_t>(requests_.load())));
    result.emplace_back(
        "stores_routed",
        util::JsonValue(static_cast<std::int64_t>(store_routed_.load())));
    result.emplace_back(
        "fan_outs",
        util::JsonValue(static_cast<std::int64_t>(fan_outs_.load())));
    result.emplace_back(
        "id_scans",
        util::JsonValue(static_cast<std::int64_t>(scans_.load())));
    result.emplace_back(
        "upstream_errors",
        util::JsonValue(static_cast<std::int64_t>(upstream_errors_.load())));
  }
  util::JsonArray shard_results;
  for (std::size_t index = 0; index < responses.size(); ++index) {
    util::JsonObject entry;
    entry.emplace_back("shard",
                       util::JsonValue(static_cast<std::int64_t>(index)));
    entry.emplace_back("address", util::JsonValue(shards_[index]->address));
    entry.emplace_back("ok", util::JsonValue(responses[index].ok));
    if (responses[index].ok) {
      entry.emplace_back("result", responses[index].result);
    } else {
      entry.emplace_back("error", util::JsonValue(responses[index].error));
    }
    shard_results.emplace_back(std::move(entry));
  }
  result.emplace_back("shard_results",
                      util::JsonValue(std::move(shard_results)));
  return svc::Response::success(util::JsonValue(std::move(result)));
}

svc::Response Router::best_evidence(const svc::Request& request,
                                    std::string_view evidence_key) {
  fan_outs_.fetch_add(1);
  // Per-shard models never mix samples across shards; answer from the shard
  // with the most evidence for this query — the one whose model the full
  // dataset would weight most heavily anyway.
  svc::Response best = svc::Response::failure("no shard answered");
  std::int64_t best_evidence_count = -1;
  for (std::size_t index = 0; index < shards_.size(); ++index) {
    svc::Response response =
        call_shard(index, request.endpoint, request.params);
    if (!response.ok) {
      if (best_evidence_count < 0) {
        best = std::move(response);
      }
      continue;
    }
    std::int64_t evidence = 0;
    if (const util::JsonValue* field = response.result.find(evidence_key)) {
      evidence = field->as_int();
    }
    if (evidence > best_evidence_count) {
      best_evidence_count = evidence;
      best = std::move(response);
    }
  }
  return best;
}

svc::Response Router::dispatch(const svc::Request& request) {
  requests_.fetch_add(1);
  obs::count("repl.router_requests");
  try {
    const std::string& endpoint = request.endpoint;
    if (endpoint == "knowledge/store") {
      return route_store(request.params);
    }
    if (endpoint == "knowledge/get" || endpoint == "anomaly") {
      return scan_shards(request);
    }
    if (endpoint == "predict") {
      return best_evidence(request, "samples");
    }
    if (endpoint == "recommend") {
      return best_evidence(request, "evidence_runs");
    }
    if (endpoint == "health" || endpoint == "stats" || endpoint == "list" ||
        endpoint == "sql") {
      return fan_out_merge(request);
    }
    return svc::Response::failure("unknown endpoint '" + endpoint + "'");
  } catch (const Error& error) {
    return svc::Response::failure(error.what());
  }
}

}  // namespace iokc::repl
