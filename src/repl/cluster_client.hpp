// Multi-endpoint client with read/write splitting (DESIGN.md §5h): writes
// go to the primary (the first target), reads round-robin across every
// target — primary plus replicas — so read throughput scales with the
// replica count.
//
// Staleness bound: with max_epoch_lag > 0 the client periodically probes
// each replica's health for its journal offset and skips replicas lagging
// the primary by more than the bound. 0 means reads accept any staleness
// (the replicas are typically one group-commit flush behind).
//
// Redirects: a write that lands on a replica (e.g. after a failover moved
// the primary) comes back as a "write to primary at <addr>" refusal; the
// client follows the redirect once and adopts the new primary address.
//
// NOT thread-safe: one ClusterClient per thread (same contract as
// svc::Client; the load generator gives each worker its own).
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/svc/client.hpp"
#include "src/svc/protocol.hpp"
#include "src/util/json.hpp"

namespace iokc::repl {

struct ClusterClientOptions {
  svc::ClientOptions client;
  /// Maximum journal-sequence lag a replica may show (vs. the primary)
  /// before reads skip it; 0 disables the bound and the probes.
  std::uint64_t max_epoch_lag = 0;
  /// How often the lag probe refreshes per target.
  int probe_interval_ms = 500;
};

class ClusterClient {
 public:
  /// `targets` are "host:port" service addresses; targets[0] is the
  /// primary. Throws ConfigError on an empty list or a malformed address.
  ClusterClient(std::vector<std::string> targets,
                ClusterClientOptions options = {});

  /// Routed call: knowledge/store goes to the primary (following one
  /// redirect if the primary moved); everything else round-robins across
  /// fresh-enough, reachable targets. Transport failures rotate to the next
  /// target; IoError only escapes when every candidate failed.
  svc::Response call(const std::string& endpoint,
                     util::JsonValue params = util::JsonValue(util::JsonObject{}));

  /// Direct routes (exposed for tests and the load generator's split
  /// accounting).
  svc::Response call_primary(const std::string& endpoint,
                             util::JsonValue params);
  svc::Response call_read(const std::string& endpoint, util::JsonValue params);

  std::size_t targets() const { return targets_.size(); }
  const std::string& primary_address() const { return targets_[0].address; }

  /// Reads served per target index since construction — how the read
  /// fan-out actually distributed (exposed for tests/loadgen).
  const std::vector<std::uint64_t>& reads_per_target() const {
    return reads_per_target_;
  }

 private:
  struct Target {
    std::string address;
    std::string host;
    std::uint16_t port = 0;
    std::unique_ptr<svc::Client> client;  // lazily dialed, redialed on error
    std::uint64_t journal_offset = 0;
    bool offset_known = false;
    std::chrono::steady_clock::time_point last_probe{};
  };

  svc::Client& connected(Target& target);
  svc::Response call_target(Target& target, const std::string& endpoint,
                            const util::JsonValue& params);
  /// Whether reads may use `target` under the staleness bound, probing
  /// health when the cached offset is older than probe_interval_ms.
  bool fresh_enough(Target& target);

  ClusterClientOptions options_;
  std::vector<Target> targets_;
  std::size_t next_read_ = 0;  // round-robin cursor
  std::vector<std::uint64_t> reads_per_target_;
};

}  // namespace iokc::repl
