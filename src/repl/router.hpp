// The shard router (DESIGN.md §5h): a thin proxy speaking the service
// protocol on the front and fanning out to N shard primaries on the back.
// It owns no repository — every byte of knowledge lives on exactly one
// shard, placed by consistent-hashing the knowledge key (benchmark + system
// hostname, ring.hpp).
//
// Routing plans per endpoint:
//   knowledge/store    -> the owning shard (hash of the stored object's key)
//   knowledge/get,     -> first-success scan: ids are shard-local, so the
//   anomaly               router tries shards in order until one has the id
//                         (an explicit "shard" param skips the scan)
//   list, sql, stats   -> fan out to all shards, merge (list/sql concatenate
//                         with a "shard" tag; stats nests per-shard results)
//   predict, recommend -> fan out, answer from the shard with the most
//                         evidence (per-shard models never mix samples)
//   health             -> router's own role plus each shard's health
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/repl/ring.hpp"
#include "src/svc/client.hpp"
#include "src/svc/protocol.hpp"
#include "src/svc/socket.hpp"
#include "src/util/json.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::repl {

struct RouterConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  // 0 picks ephemeral
  /// Shard primaries as "host:port" service addresses; index order IS the
  /// ring's shard numbering and must be identical across routers.
  std::vector<std::string> shards;
  std::size_t vnodes = 64;
  svc::ClientOptions upstream;  // per-shard connection options
  std::size_t max_frame_bytes = svc::kDefaultMaxFrameBytes;
  int request_timeout_ms = 10000;  // per client connection read bound
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  void start();
  void stop();
  std::uint16_t port() const { return port_; }

  /// One request -> one routed/merged response, exactly as the network path
  /// dispatches it (exposed so tests can exercise routing without a second
  /// socket hop).
  svc::Response dispatch(const svc::Request& request);

  /// The shard index a stored object routes to (exposed for tests).
  std::size_t shard_for_object(const util::JsonValue& object) const;

 private:
  /// One upstream shard: a lazily connected, serially used client. The
  /// per-shard mutex serializes calls; a transport error drops the
  /// connection and the next call redials.
  struct Shard {
    explicit Shard(std::string address_in)
        : address(std::move(address_in)) {}
    std::string address;
    util::Mutex mutex{util::LockRank::kRepl, "repl.router.shard"};
    std::unique_ptr<svc::Client> client IOKC_GUARDED_BY(mutex);
  };

  void accept_loop();
  void serve_connection(svc::Socket socket);
  /// One proxied call to shard `index`; redials once on transport failure.
  /// Transport failures come back as Response{ok=false}, never throw.
  svc::Response call_shard(std::size_t index, const std::string& endpoint,
                           const util::JsonValue& params);
  svc::Response route_store(const util::JsonValue& params);
  svc::Response scan_shards(const svc::Request& request);
  svc::Response fan_out_merge(const svc::Request& request);
  svc::Response best_evidence(const svc::Request& request,
                              std::string_view evidence_key);

  RouterConfig config_;
  HashRing ring_;
  std::vector<std::unique_ptr<Shard>> shards_;
  svc::Socket listener_;
  std::uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  mutable util::Mutex mutex_{util::LockRank::kRepl, "repl.router"};
  std::vector<std::thread> connection_threads_ IOKC_GUARDED_BY(mutex_);
  // Counters are atomics, not guarded: call_shard bumps upstream_errors_
  // while holding a shard mutex of the same rank (equal ranks never nest).
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> store_routed_{0};
  std::atomic<std::uint64_t> fan_outs_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> upstream_errors_{0};
};

}  // namespace iokc::repl
