// The simulated execution environment a knowledge cycle runs against: one
// event queue, one cluster, one parallel file system, and an interference
// schedule for anomaly scenarios. This bundle substitutes the paper's
// FUCHS-CSC + BeeGFS testbed.
#pragma once

#include <cstdint>
#include <memory>

#include "src/fs/pfs.hpp"
#include "src/iostack/client.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/interference.hpp"
#include "src/sim/slurm.hpp"
#include "src/sim/sysinfo.hpp"

namespace iokc::cycle {

/// Environment configuration.
struct SimEnvironmentConfig {
  sim::ClusterSpec cluster = sim::ClusterSpec::fuchs_csc();
  fs::PfsSpec pfs = fs::PfsSpec::fuchs_beegfs();
  std::uint64_t seed = 0x10C5EED;
  /// Nodes a job allocation requests by default (the paper's runs use 2-4).
  std::size_t job_nodes = 4;
};

/// The live environment.
class SimEnvironment {
 public:
  explicit SimEnvironment(SimEnvironmentConfig config = {});

  SimEnvironment(const SimEnvironment&) = delete;
  SimEnvironment& operator=(const SimEnvironment&) = delete;

  sim::EventQueue& queue() { return queue_; }
  sim::Cluster& cluster() { return *cluster_; }
  fs::ParallelFileSystem& pfs() { return *pfs_; }
  sim::InterferenceSchedule& interference() { return interference_; }
  sim::SlurmContext& slurm() { return slurm_; }
  const SimEnvironmentConfig& config() const { return config_; }

  /// Allocates nodes and block-maps `tasks` ranks onto them. Node count is
  /// ceil(tasks / cores_per_node) capped at config().job_nodes when the job
  /// fits, like a Slurm --ntasks request.
  std::vector<std::size_t> rank_mapping(std::uint32_t tasks);

  /// System snapshot text of the job's first node (for sysinfo.txt).
  std::string sysinfo_text();

  /// BeeGFS-style entry info text prefixed with "fs: <name>" (fsinfo.txt).
  /// Throws SimError when the path does not exist.
  std::string fsinfo_text(const std::string& path);

 private:
  SimEnvironmentConfig config_;
  sim::EventQueue queue_;
  std::unique_ptr<sim::Cluster> cluster_;
  std::unique_ptr<fs::ParallelFileSystem> pfs_;
  sim::InterferenceSchedule interference_;
  sim::SlurmContext slurm_;
};

}  // namespace iokc::cycle
