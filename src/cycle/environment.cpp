#include "src/cycle/environment.hpp"

#include <algorithm>

#include "src/generators/ior.hpp"
#include "src/util/error.hpp"

namespace iokc::cycle {

SimEnvironment::SimEnvironment(SimEnvironmentConfig config)
    : config_(std::move(config)) {
  cluster_ = std::make_unique<sim::Cluster>(queue_, config_.cluster,
                                            config_.seed);
  pfs_ = std::make_unique<fs::ParallelFileSystem>(*cluster_, config_.pfs);
  pfs_->attach_interference(interference_);
}

std::vector<std::size_t> SimEnvironment::rank_mapping(std::uint32_t tasks) {
  if (tasks == 0) {
    throw iokc::ConfigError("rank mapping needs at least one task");
  }
  const auto cores = static_cast<std::uint32_t>(
      std::max(config_.cluster.node.cpu.total_cores(), 1));
  // Slurm-style fill: as many nodes as the core count requires.
  const std::size_t needed = (tasks + cores - 1) / cores;
  const std::vector<std::size_t> nodes =
      cluster_->allocate_nodes(std::max<std::size_t>(needed, 1));
  return gen::block_rank_mapping(nodes, tasks);
}

std::string SimEnvironment::sysinfo_text() {
  const sim::SystemInfo info = sim::collect_system_info(config_.cluster, 0);
  return sim::render_sysinfo_summary(info);
}

std::string SimEnvironment::fsinfo_text(const std::string& path) {
  return "fs: " + config_.pfs.name + "\n" + pfs_->render_entry_info(path);
}

}  // namespace iokc::cycle
