// Synthetic-trace replay: drives a generated workload (phase 5's "synthetic
// workload for simulation") through the simulated I/O stack, closing the
// knowledge cycle — knowledge begets workloads begets knowledge.
#pragma once

#include <cstdint>

#include "src/cycle/environment.hpp"
#include "src/usage/workload_generator.hpp"

namespace iokc::cycle {

/// Replay measurements.
struct ReplayResult {
  double duration_sec = 0.0;
  double write_bw_mib = 0.0;
  double read_bw_mib = 0.0;
  std::uint64_t ops_executed = 0;
};

/// Replays the trace (per-rank op order preserved, ranks concurrent) against
/// the environment. Files are created on first open and removed afterwards.
ReplayResult replay_trace(SimEnvironment& env,
                          const usage::SyntheticTrace& trace);

}  // namespace iokc::cycle
