#include "src/cycle/cycle.hpp"

#include <algorithm>
#include <utility>

#include "src/obs/observability.hpp"
#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::cycle {

KnowledgeCycle::KnowledgeCycle(SimEnvironment& env,
                               std::filesystem::path workspace,
                               const persist::RepoTarget& target,
                               ExecutorOptions executor_options)
    : env_(env),
      workspace_(std::move(workspace)),
      executor_options_(executor_options),
      runner_(workspace_, make_executor_registry(env, executor_options)),
      repository_(target),
      explorer_(repository_) {
  // A file-backed repository may carry sources persisted by an earlier
  // (possibly killed) process; seed the skip list from it so extraction is
  // exactly-once across process lifetimes, not just within one.
  // Sources are recorded relative to the workspace root, so the database
  // contents do not depend on where the workspace happens to live.
  for (const std::string& source : repository_.extracted_sources()) {
    extracted_outputs_.push_back(workspace_ / source);
  }
}

void KnowledgeCycle::set_observability(obs::Observability* observability) {
  observability_ = observability;
  obs::set_global(observability);
}

void KnowledgeCycle::set_parallelism(int jobs) {
  if (jobs < 0) {
    throw ConfigError("parallelism must be >= 0");
  }
  jobs_ = jobs == 0
              ? static_cast<int>(util::ThreadPool::hardware_threads())
              : jobs;
}

jube::JubeRunResult KnowledgeCycle::generate(
    const jube::JubeBenchmarkConfig& config) {
  obs::Span span("phase:generation",
                 {.category = "cycle", .phase = "generation"});
  jube::RunOptions options;
  options.resume = resume_;
  if (jobs_ == 0) {
    return runner_.run(config, options);
  }
  jube::JubeRunner isolated_runner(
      workspace_,
      make_isolated_registry_factory(env_.config(), executor_options_));
  options.jobs = jobs_;
  return isolated_runner.run(config, options);
}

jube::JubeRunResult KnowledgeCycle::generate_command(
    const std::string& benchmark_name, const std::string& command) {
  jube::JubeBenchmarkConfig config;
  config.name = benchmark_name;
  config.outpath = benchmark_name;
  config.steps.push_back(jube::JubeStep{"run", command});
  return generate(config);
}

extract::ExtractionResult KnowledgeCycle::extract_and_persist() {
  extract::KnowledgeExtractor extractor;
  std::vector<std::filesystem::path> fresh;
  for (const std::filesystem::path& output :
       jube::JubeRunner::discover_outputs(workspace_)) {
    if (std::find(extracted_outputs_.begin(), extracted_outputs_.end(),
                  output) != extracted_outputs_.end()) {
      continue;
    }
    extracted_outputs_.push_back(output);
    fresh.push_back(output);
  }

  // Extract in parallel, keep results per source file (discover_outputs is
  // sorted, so batches land in work-package order), then commit each source
  // as one transaction through the repository — ids come out in the same
  // order a serial pass would assign them, and a crash between sources
  // never half-persists one.
  std::vector<extract::ExtractionResult> extracted(fresh.size());
  {
    obs::Span phase_span("phase:extraction",
                         {.category = "cycle", .phase = "extraction"});
    const obs::SpanContext handoff = phase_span.context();
    util::parallel_for(
        fresh.size(), static_cast<std::size_t>(std::max(jobs_, 1)),
        [&](const util::TaskContext& task) {
          const std::size_t i = task.index;
          obs::Span file_span("extract",
                              {.category = "extract",
                               .work_package = static_cast<int>(i),
                               .parent = &handoff});
          obs::count("extract.files");
          extracted[i] = extractor.extract_file(fresh[i]);
          const std::filesystem::path darshan =
              fresh[i].parent_path() / "darshan.log";
          if (std::filesystem::exists(darshan)) {
            extracted[i].merge(extractor.extract_file(darshan));
          }
        });
  }

  obs::Span persist_span("phase:persistence",
                         {.category = "cycle", .phase = "persistence"});
  extract::ExtractionResult result;
  std::vector<persist::SourceBatch> batches;
  batches.reserve(fresh.size());
  for (std::size_t i = 0; i < fresh.size(); ++i) {
    persist::SourceBatch batch;
    batch.source = fresh[i].lexically_relative(workspace_).generic_string();
    batch.knowledge = extracted[i].knowledge;
    batch.io500 = extracted[i].io500;
    batches.push_back(std::move(batch));
    result.merge(std::move(extracted[i]));
  }
  persist::StoreOutcome outcome = repository_.store_sources(batches);
  knowledge_ids_.insert(knowledge_ids_.end(), outcome.knowledge_ids.begin(),
                        outcome.knowledge_ids.end());
  io500_ids_.insert(io500_ids_.end(), outcome.io500_ids.begin(),
                    outcome.io500_ids.end());
  return result;
}

}  // namespace iokc::cycle
