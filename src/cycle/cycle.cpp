#include "src/cycle/cycle.hpp"

#include <algorithm>

namespace iokc::cycle {

KnowledgeCycle::KnowledgeCycle(SimEnvironment& env,
                               std::filesystem::path workspace,
                               const persist::RepoTarget& target,
                               ExecutorOptions executor_options)
    : env_(env),
      workspace_(std::move(workspace)),
      runner_(workspace_, make_executor_registry(env, executor_options)),
      repository_(target),
      explorer_(repository_) {}

jube::JubeRunResult KnowledgeCycle::generate(
    const jube::JubeBenchmarkConfig& config) {
  return runner_.run(config);
}

jube::JubeRunResult KnowledgeCycle::generate_command(
    const std::string& benchmark_name, const std::string& command) {
  jube::JubeBenchmarkConfig config;
  config.name = benchmark_name;
  config.outpath = benchmark_name;
  config.steps.push_back(jube::JubeStep{"run", command});
  return generate(config);
}

extract::ExtractionResult KnowledgeCycle::extract_and_persist() {
  extract::KnowledgeExtractor extractor;
  extract::ExtractionResult result;
  for (const std::filesystem::path& output :
       jube::JubeRunner::discover_outputs(workspace_)) {
    if (std::find(extracted_outputs_.begin(), extracted_outputs_.end(),
                  output) != extracted_outputs_.end()) {
      continue;
    }
    extracted_outputs_.push_back(output);
    result.merge(extractor.extract_file(output));
    const std::filesystem::path darshan = output.parent_path() / "darshan.log";
    if (std::filesystem::exists(darshan)) {
      result.merge(extractor.extract_file(darshan));
    }
  }
  for (const knowledge::Knowledge& k : result.knowledge) {
    knowledge_ids_.push_back(repository_.store(k));
  }
  for (const knowledge::Io500Knowledge& k : result.io500) {
    io500_ids_.push_back(repository_.store(k));
  }
  return result;
}

}  // namespace iokc::cycle
