// Command executors binding the benchmark engines to a SimEnvironment. The
// JUBE runner dispatches "ior ...", "mdtest ...", "io500 ...", and
// "hacc_io ..." commands here; each execution returns the benchmark's text
// report plus sysinfo/fsinfo snapshots (and a Darshan log when profiling is
// enabled) as extra files for the extraction phase.
#pragma once

#include "src/cycle/environment.hpp"
#include "src/jube/runner.hpp"

namespace iokc::cycle {

/// Options for the executor set.
struct ExecutorOptions {
  /// Attach a Darshan-style profiler to IOR runs and emit "darshan.log".
  bool with_darshan = false;
  /// Emit "sysinfo.txt" beside each output.
  bool with_sysinfo = true;
  /// Emit "fsinfo.txt" (BeeGFS entry info of the test file) for IOR runs.
  bool with_fsinfo = true;
  /// Emit "jobinfo.txt" (Slurm-style job context) beside each output.
  bool with_jobinfo = true;
};

/// Runs one IOR command against the environment; returns the report and the
/// configured extra files.
jube::ExecutionOutput run_ior_command(SimEnvironment& env,
                                      const std::string& command,
                                      const ExecutorOptions& options = {});

/// Same for mdtest / io500 / hacc_io.
jube::ExecutionOutput run_mdtest_command(SimEnvironment& env,
                                         const std::string& command,
                                         const ExecutorOptions& options = {});
jube::ExecutionOutput run_io500_command(SimEnvironment& env,
                                        const std::string& command,
                                        const ExecutorOptions& options = {});
jube::ExecutionOutput run_haccio_command(SimEnvironment& env,
                                         const std::string& command,
                                         const ExecutorOptions& options = {});

/// Builds the registry with all four executors bound to `env`. The
/// environment must outlive the registry.
jube::ExecutorRegistry make_executor_registry(SimEnvironment& env,
                                              ExecutorOptions options = {});

/// Registry factory for parallel sweeps: work package `wp_id` gets its own
/// SimEnvironment built from `base` with seed splitmix64(base.seed, wp_id),
/// owned by the returned executors. Packages therefore draw from independent
/// deterministic random streams and the sweep's results depend only on
/// (base, wp_id) — bit-identical for any job count. Environment state
/// mutated after construction (interference windows, node health) is not
/// part of the config and does not carry over; scenarios that need it run in
/// the shared-environment mode.
jube::RegistryFactory make_isolated_registry_factory(
    SimEnvironmentConfig base, ExecutorOptions options = {});

}  // namespace iokc::cycle
