// The KnowledgeCycle facade: one object wiring all five phases of the paper's
// workflow against a simulated environment.
//
//   KnowledgeCycle cycle(env, "workspace", RepoTarget::parse("file:k.db"));
//   cycle.generate_command("fig5", "ior -a mpiio -b 4m -t 2m -s 40 ...");
//   cycle.extract_and_persist();                       // phases 2 + 3
//   cycle.explorer().render_knowledge_view(id);        // phase 4
//   usage::create_configuration(...);                  // phase 5 -> phase 1
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "src/analysis/explorer.hpp"
#include "src/cycle/environment.hpp"
#include "src/cycle/executors.hpp"
#include "src/extract/extractor.hpp"
#include "src/jube/runner.hpp"
#include "src/obs/observability.hpp"
#include "src/persist/repository.hpp"

namespace iokc::cycle {

/// The facade. Owns the workspace runner, the repository, and the explorer;
/// the environment is borrowed and must outlive the cycle.
class KnowledgeCycle {
 public:
  KnowledgeCycle(SimEnvironment& env, std::filesystem::path workspace,
                 const persist::RepoTarget& target,
                 ExecutorOptions executor_options = {});

  // -- Parallelism ----------------------------------------------------------

  /// Switches sweep execution to isolated mode on `jobs` worker threads
  /// (0 = one per hardware thread). In isolated mode every work package runs
  /// against its own SimEnvironment seeded splitmix64(env seed, wp_id), so a
  /// sweep's workspace tree and repository contents are bit-identical for
  /// any job count — including jobs = 1, the serial baseline. The default
  /// (never calling this) is the legacy mode: all packages share the
  /// borrowed environment and run serially, which scenarios that mutate the
  /// environment (interference windows, node health) rely on.
  void set_parallelism(int jobs);

  /// Resolved worker-thread count; 0 while in legacy shared-environment mode.
  int parallelism() const { return jobs_; }

  // -- Resumption -----------------------------------------------------------

  /// Makes generate() resume an interrupted sweep: completed work packages
  /// (valid "done" markers in a matching run directory) are skipped, and
  /// extraction already skips sources the repository recorded — so a killed
  /// run restarted with resume converges to the uninterrupted result.
  void set_resume(bool resume) { resume_ = resume; }
  bool resume() const { return resume_; }

  // -- Observability --------------------------------------------------------

  /// Installs `observability` as the process-global sink every phase reports
  /// spans and metrics into (nullptr disables recording again). The sink is
  /// borrowed: it must outlive the cycle, or be reset before it dies.
  void set_observability(obs::Observability* observability);

  /// The currently installed sink, or nullptr.
  obs::Observability* observability() const { return observability_; }

  // -- Phase 1: generation ------------------------------------------------

  /// Runs a JUBE benchmark configuration in the workspace.
  jube::JubeRunResult generate(const jube::JubeBenchmarkConfig& config);

  /// Convenience: wraps one command into a single-step benchmark.
  jube::JubeRunResult generate_command(const std::string& benchmark_name,
                                       const std::string& command);

  // -- Phases 2 + 3: extraction + persistence -----------------------------

  /// Extracts every completed output in the workspace, stores each object,
  /// and returns the extraction result. Ids of stored objects are appended
  /// to stored_knowledge_ids() / stored_io500_ids(). Already-extracted
  /// outputs are skipped on subsequent calls (tracked per stdout path).
  extract::ExtractionResult extract_and_persist();

  const std::vector<std::int64_t>& stored_knowledge_ids() const {
    return knowledge_ids_;
  }
  const std::vector<std::int64_t>& stored_io500_ids() const {
    return io500_ids_;
  }

  // -- Phase 4: analysis ----------------------------------------------------

  analysis::KnowledgeExplorer& explorer() { return explorer_; }
  persist::KnowledgeRepository& repository() { return repository_; }

  // -- Infrastructure -------------------------------------------------------

  SimEnvironment& environment() { return env_; }
  const std::filesystem::path& workspace() const { return workspace_; }

  /// Persists the repository to its file target (no-op for in-memory).
  void save() { repository_.save(); }

 private:
  SimEnvironment& env_;
  std::filesystem::path workspace_;
  ExecutorOptions executor_options_;
  int jobs_ = 0;  // 0 = legacy serial shared-environment mode
  bool resume_ = false;
  obs::Observability* observability_ = nullptr;
  jube::JubeRunner runner_;
  persist::KnowledgeRepository repository_;
  analysis::KnowledgeExplorer explorer_;
  std::vector<std::filesystem::path> extracted_outputs_;
  std::vector<std::int64_t> knowledge_ids_;
  std::vector<std::int64_t> io500_ids_;
};

}  // namespace iokc::cycle
