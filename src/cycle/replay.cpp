#include "src/cycle/replay.hpp"

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "src/util/units.hpp"

namespace iokc::cycle {

ReplayResult replay_trace(SimEnvironment& env,
                          const usage::SyntheticTrace& trace) {
  using usage::TraceOp;
  auto& pfs = env.pfs();
  auto& queue = env.queue();
  const std::vector<std::size_t> mapping =
      env.rank_mapping(std::max<std::uint32_t>(trace.num_tasks, 1));

  // Split the trace into per-rank sequential programs.
  std::map<std::uint32_t, std::vector<const TraceOp*>> programs;
  for (const TraceOp& op : trace.ops) {
    programs[op.rank].push_back(&op);
  }

  // Pre-create every file at its first open so concurrent opens are safe.
  std::set<std::string> files;
  for (const TraceOp& op : trace.ops) {
    if (op.kind == TraceOp::Kind::kOpen && !pfs.exists(op.file) &&
        files.insert(op.file).second) {
      pfs.create(op.file, mapping[op.rank % mapping.size()],
                 [](sim::SimTime) {});
    }
  }
  queue.run();

  const double start = queue.now();
  ReplayResult result;

  // Per-rank chains live in the deque (stable addresses) until queue.run()
  // drains them; the closures self-reference by reference so no closure owns
  // itself through a shared_ptr cycle.
  std::deque<std::function<void(std::size_t)>> chains;
  for (auto& [rank, ops] : programs) {
    const std::size_t node = mapping[rank % mapping.size()];
    std::function<void(std::size_t)>& issue = chains.emplace_back();
    issue = [&pfs, &result, ops, node, &issue](std::size_t index) {
      if (index == ops.size()) {
        return;
      }
      const TraceOp& op = *ops[index];
      auto next = [&result, &issue, index](sim::SimTime) {
        ++result.ops_executed;
        issue(index + 1);
      };
      switch (op.kind) {
        case TraceOp::Kind::kOpen:
          pfs.open(op.file, node, std::move(next));
          break;
        case TraceOp::Kind::kWrite:
          pfs.write(op.file, op.offset, op.length, node, std::move(next));
          break;
        case TraceOp::Kind::kRead:
          pfs.read(op.file, op.offset, op.length, node, std::move(next));
          break;
        case TraceOp::Kind::kFsync:
          pfs.fsync(op.file, node, std::move(next));
          break;
        case TraceOp::Kind::kClose:
          // Close is a client-side operation; charge a scheduling tick.
          pfs.cluster().queue().schedule_in(1.0e-6, [next] {
            next(0.0);
          });
          break;
      }
    };
    issue(0);
  }
  queue.run();
  result.duration_sec = queue.now() - start;

  if (result.duration_sec > 0.0) {
    result.write_bw_mib = util::to_mib_per_sec(trace.total_bytes_written(),
                                               result.duration_sec);
    result.read_bw_mib =
        util::to_mib_per_sec(trace.total_bytes_read(), result.duration_sec);
  }

  // Clean the namespace for the next experiment.
  for (const std::string& file : files) {
    if (pfs.exists(file)) {
      pfs.unlink(file, 0, [](sim::SimTime) {});
    }
  }
  queue.run();
  return result;
}

}  // namespace iokc::cycle
