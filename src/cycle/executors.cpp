#include "src/cycle/executors.hpp"

#include <cstdio>

#include <memory>

#include "src/generators/darshan.hpp"
#include "src/generators/haccio.hpp"
#include "src/generators/io500.hpp"
#include "src/generators/ior.hpp"
#include "src/generators/mdtest.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"

namespace iokc::cycle {

namespace {

/// Entry info of the IOR test file. When the run removed its files, a probe
/// file is created at the same path (same placement hash, same stripe
/// defaults), inspected, and removed again.
std::string capture_ior_fsinfo(SimEnvironment& env,
                               const gen::IorConfig& config) {
  std::string path = config.test_file;
  if (config.file_per_process) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%08u", 0u);
    path += suffix;
  }
  auto& pfs = env.pfs();
  auto& queue = env.queue();
  const bool probe = !pfs.exists(path);
  if (probe) {
    pfs.create(path, 0, [](sim::SimTime) {});
    queue.run();
  }
  const std::string text = env.fsinfo_text(path);
  if (probe) {
    pfs.unlink(path, 0, [](sim::SimTime) {});
    queue.run();
  }
  return text;
}


/// Registers the run with the Slurm-like context and renders jobinfo.txt.
std::string capture_jobinfo(SimEnvironment& env, const std::string& job_name,
                            const std::vector<std::size_t>& mapping,
                            std::uint32_t num_tasks) {
  const sim::SlurmJobInfo job = env.slurm().register_job(
      job_name, mapping, num_tasks, env.queue().now());
  return job.render_scontrol();
}

}  // namespace

jube::ExecutionOutput run_ior_command(SimEnvironment& env,
                                      const std::string& command,
                                      const ExecutorOptions& options) {
  const gen::IorConfig config = gen::parse_ior_command(command);
  config.validate();
  const std::vector<std::size_t> mapping = env.rank_mapping(config.num_tasks);
  iostack::IoClient client(env.pfs(), config.api, config.hints);
  gen::IorBenchmark bench(client, config, mapping);

  gen::DarshanProfiler profiler(config.api);
  if (options.with_darshan) {
    bench.set_profiler(&profiler);
  }

  const gen::IorRunResult result = bench.run();

  jube::ExecutionOutput output;
  output.stdout_text = result.render_output();
  if (options.with_sysinfo) {
    output.extra_files.emplace_back("sysinfo.txt", env.sysinfo_text());
  }
  if (options.with_jobinfo) {
    output.extra_files.emplace_back(
        "jobinfo.txt", capture_jobinfo(env, "ior", mapping, config.num_tasks));
  }
  if (options.with_fsinfo) {
    output.extra_files.emplace_back("fsinfo.txt",
                                    capture_ior_fsinfo(env, config));
  }
  if (options.with_darshan) {
    output.extra_files.emplace_back("darshan.log", profiler.render_log());
  }
  return output;
}

jube::ExecutionOutput run_mdtest_command(SimEnvironment& env,
                                         const std::string& command,
                                         const ExecutorOptions& options) {
  const gen::MdtestConfig config = gen::parse_mdtest_command(command);
  config.validate();
  const std::vector<std::size_t> mapping = env.rank_mapping(config.num_tasks);
  iostack::IoClient client(env.pfs(), iostack::IoApi::kPosix);
  gen::MdtestBenchmark bench(client, config, mapping);
  const gen::MdtestRunResult result = bench.run();

  jube::ExecutionOutput output;
  output.stdout_text = result.render_output();
  if (options.with_sysinfo) {
    output.extra_files.emplace_back("sysinfo.txt", env.sysinfo_text());
  }
  if (options.with_jobinfo) {
    output.extra_files.emplace_back(
        "jobinfo.txt", capture_jobinfo(env, "mdtest", mapping, config.num_tasks));
  }
  return output;
}

jube::ExecutionOutput run_io500_command(SimEnvironment& env,
                                        const std::string& command,
                                        const ExecutorOptions& options) {
  const gen::Io500Config config = gen::parse_io500_command(command);
  config.validate();
  const std::vector<std::size_t> mapping = env.rank_mapping(config.num_tasks);
  iostack::IoClient client(env.pfs(), iostack::IoApi::kPosix);
  gen::Io500Benchmark bench(client, config, mapping);
  const gen::Io500Result result = bench.run();

  jube::ExecutionOutput output;
  output.stdout_text = result.render_output();
  if (options.with_sysinfo) {
    output.extra_files.emplace_back("sysinfo.txt", env.sysinfo_text());
  }
  if (options.with_jobinfo) {
    output.extra_files.emplace_back(
        "jobinfo.txt", capture_jobinfo(env, "io500", mapping, config.num_tasks));
  }
  return output;
}

jube::ExecutionOutput run_haccio_command(SimEnvironment& env,
                                         const std::string& command,
                                         const ExecutorOptions& options) {
  const gen::HaccIoConfig config = gen::parse_haccio_command(command);
  config.validate();
  const std::vector<std::size_t> mapping = env.rank_mapping(config.num_tasks);
  iostack::IoClient client(env.pfs(), config.api);
  gen::HaccIoBenchmark bench(client, config, mapping);
  const gen::HaccIoRunResult result = bench.run();

  jube::ExecutionOutput output;
  output.stdout_text = result.render_output();
  if (options.with_sysinfo) {
    output.extra_files.emplace_back("sysinfo.txt", env.sysinfo_text());
  }
  if (options.with_jobinfo) {
    output.extra_files.emplace_back(
        "jobinfo.txt", capture_jobinfo(env, "hacc_io", mapping, config.num_tasks));
  }
  return output;
}

jube::ExecutorRegistry make_executor_registry(SimEnvironment& env,
                                              ExecutorOptions options) {
  jube::ExecutorRegistry registry;
  registry.register_executor("ior", [&env, options](const std::string& cmd) {
    return run_ior_command(env, cmd, options);
  });
  registry.register_executor("mdtest", [&env, options](const std::string& cmd) {
    return run_mdtest_command(env, cmd, options);
  });
  registry.register_executor("io500", [&env, options](const std::string& cmd) {
    return run_io500_command(env, cmd, options);
  });
  registry.register_executor("hacc_io", [&env, options](const std::string& cmd) {
    return run_haccio_command(env, cmd, options);
  });
  return registry;
}

jube::RegistryFactory make_isolated_registry_factory(SimEnvironmentConfig base,
                                                     ExecutorOptions options) {
  return [base, options](int wp_id) {
    SimEnvironmentConfig config = base;
    config.seed =
        util::splitmix64(base.seed, static_cast<std::uint64_t>(wp_id));
    auto env = std::make_shared<SimEnvironment>(config);
    jube::ExecutorRegistry registry;
    registry.register_executor("ior", [env, options](const std::string& cmd) {
      return run_ior_command(*env, cmd, options);
    });
    registry.register_executor("mdtest",
                               [env, options](const std::string& cmd) {
                                 return run_mdtest_command(*env, cmd, options);
                               });
    registry.register_executor("io500",
                               [env, options](const std::string& cmd) {
                                 return run_io500_command(*env, cmd, options);
                               });
    registry.register_executor("hacc_io",
                               [env, options](const std::string& cmd) {
                                 return run_haccio_command(*env, cmd, options);
                               });
    return registry;
  };
}

}  // namespace iokc::cycle
