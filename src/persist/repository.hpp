// The persistence phase (phase 3): maps knowledge objects onto the paper's
// relational schema and stores them in the embedded database.
//
// Tables (exactly the paper's Section V-C):
//   performances, summaries (FK performance_id), results (FK summary_id),
//   filesystems (FK performance_id) — the IOR-style knowledge object;
//   IOFHsRuns, IOFHsScores, IOFHsTestcases, IOFHsOptions, IOFHsResults —
//   the separated IO500 knowledge object (FK IOFH_id / testcase_id);
//   systeminfos — system statistics attached to either kind of object.
//
// The database target is either in-memory, a local file, or a "remote" URL.
// The paper's remote target is a SQL connection URL; this build substitutes a
// shared-directory root (e.g. a parallel file system mount), which preserves
// the local/global split the architecture calls for.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/db/database.hpp"
#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::persist {

/// Where a repository lives.
struct RepoTarget {
  enum class Kind { kMemory, kFile };
  Kind kind = Kind::kMemory;
  std::string path;  // meaningful for kFile

  /// Parses "mem:", "file:<path>", "remote://<share>/<name>" (resolved
  /// against `remote_root`), or a bare filesystem path.
  static RepoTarget parse(const std::string& url,
                          const std::string& remote_root = {});
};

/// DDL creating the full knowledge schema (idempotent: IF NOT EXISTS).
std::string knowledge_schema_sql();

/// DDL creating the secondary indexes the repository's read paths lean on
/// (idempotent: IF NOT EXISTS). Kept separate from the schema DDL so dumps —
/// which already carry their own CREATE INDEX lines — bootstrap without
/// redundant index rebuilds.
std::string knowledge_index_sql();

/// All knowledge objects extracted from one source (a benchmark output file).
/// Stored atomically together with a provenance row, so after a crash a
/// source is either fully persisted or not at all — the unit of resumption.
struct SourceBatch {
  std::string source;  // the path recorded in the sources table
  std::vector<knowledge::Knowledge> knowledge;
  std::vector<knowledge::Io500Knowledge> io500;
};

/// What store_sources did: ids for newly stored objects (input order) and
/// the sources that were skipped because they were already recorded.
struct StoreOutcome {
  std::vector<std::int64_t> knowledge_ids;
  std::vector<std::int64_t> io500_ids;
  std::vector<std::string> skipped_sources;
};

/// The knowledge repository.
class KnowledgeRepository {
 public:
  /// Opens (creating if needed) a repository at the target.
  explicit KnowledgeRepository(const RepoTarget& target);
  /// In-memory repository.
  KnowledgeRepository();

  /// In-memory repository rebuilt from a Database::dump() script — the
  /// knowledge service's copy-on-read snapshots. Row ids are preserved, so
  /// loads against the clone return exactly what the dumped database held.
  /// The caller must ensure the dump was taken while no writer was active.
  static std::unique_ptr<KnowledgeRepository> from_dump(  // iokc-lint: blocking
      const std::string& dump_script);

  /// In-memory repository deep-copied from another repository's tables —
  /// the cheap path the delta snapshots start from (no dump serialization,
  /// no SQL re-parse). `base` must be quiescent (a frozen snapshot clone,
  /// not a repository with live writers).
  static std::unique_ptr<KnowledgeRepository> clone_of(
      const KnowledgeRepository& base);

  /// Replays captured commit statements (see drain_captured_commits) onto
  /// this repository in order. Used on snapshot clones: replaying a
  /// delta-captured statement stream is deterministic against the primary —
  /// the same property WAL recovery relies on.
  void replay_delta(const std::vector<std::string>& statements);

  /// Atomic pair for full snapshot rebuilds: drains the commit-capture
  /// buffer and dumps the database under ONE single-writer-gate
  /// acquisition. Without the atomicity, a commit that landed between the
  /// two steps would be inside the dump AND inside a later drained delta —
  /// and be applied twice.
  struct ConsistentDump {
    db::Database::CapturedCommits captured;
    std::string dump;
  };
  ConsistentDump drain_and_dump();

  /// Commit-capture passthroughs, serialized on the single-writer gate
  /// (the underlying Database is externally synchronized).
  void set_commit_capture(bool enabled);
  db::Database::CapturedCommits drain_captured_commits();

  // -- Replication hooks (the src/repl WAL-shipping substrate) --------------

  /// Installs the journal ship sink under the single-writer gate. File-backed
  /// repositories only (an in-memory primary has no WAL to ship).
  void set_journal_ship_sink(db::Journal::ShipSink sink);

  /// The replication position this repository has applied/committed up to:
  /// the journal sequence number for file-backed repositories, a local
  /// counter maintained by install_dump/apply_replicated for in-memory ones.
  std::uint64_t applied_seq();

  /// The journal checkpoint epoch (db::Database::journal_epoch) — what
  /// health/stats report alongside applied_seq() as the WAL position.
  std::uint64_t journal_epoch();

  /// A point-in-time dump paired with the journal sequence it covers — what
  /// a primary sends to bootstrap a replica. A shipper registering the
  /// subscriber BEFORE calling this cannot miss a record: staging requires
  /// the single-writer gate, so every record with seq > the returned epoch
  /// is staged — and therefore shipped — after registration.
  struct EpochDump {
    std::string dump;
    std::uint64_t seq = 0;
  };
  EpochDump dump_with_epoch();

  /// Replaces the whole repository from a primary's bootstrap dump at
  /// `epoch` (see db::Database::reset_from_script). The idempotent schema/
  /// index bootstrap re-runs afterwards; IF NOT EXISTS no-ops are not
  /// journaled, so the local sequence counter stays exactly at `epoch`.
  void install_dump(const std::string& dump,  // iokc-lint: blocking
                    std::uint64_t epoch);

  /// Applies one shipped journal record as a single local transaction and
  /// returns its durability ticket (pass to wait_journal_durable before
  /// acking; 0 when nothing was journaled). Throws DbError when
  /// record.seq is not exactly applied_seq()+1 — the caller must resync
  /// instead of applying out of order — and rolls back on any statement
  /// failure.
  std::uint64_t apply_replicated(const db::JournalRecord& record);

  /// Database::wait_journal_durable passthrough, callable OUTSIDE the gate
  /// so replica batch applies amortize one fsync like primary commits do.
  void wait_journal_durable(std::uint64_t ticket);  // iokc-lint: blocking

  /// Stores a knowledge object; returns the new performances.id.
  std::int64_t store(const knowledge::Knowledge& knowledge);
  /// Stores an IO500 knowledge object; returns the new IOFHsRuns.id.
  std::int64_t store(const knowledge::Io500Knowledge& knowledge);

  /// Ordered batch commit: stores the objects front to back under one
  /// writer-lock acquisition, so a parallel producer (the cycle's extraction
  /// fan-out) persists results in work-package order with ids assigned
  /// contiguously. Returns one id per object, in input order.
  std::vector<std::int64_t> store_batch(
      const std::vector<knowledge::Knowledge>& objects);
  std::vector<std::int64_t> store_batch(
      const std::vector<knowledge::Io500Knowledge>& objects);

  /// Transactional, idempotent persistence keyed by source path: each batch
  /// whose source is not yet in the sources table is stored as ONE
  /// transaction (all its objects plus the provenance row), so a crash can
  /// never half-persist a source and a --resume re-run skips it entirely.
  StoreOutcome store_sources(const std::vector<SourceBatch>& batches);

  /// Source paths already persisted, in first-stored order.
  std::vector<std::string> extracted_sources();

  /// Reassembles a knowledge object from its rows. Throws DbError when the
  /// id is unknown.
  knowledge::Knowledge load_knowledge(std::int64_t performance_id);
  knowledge::Io500Knowledge load_io500(std::int64_t iofh_id);

  std::vector<std::int64_t> knowledge_ids();
  std::vector<std::int64_t> io500_ids();
  /// (id, command) pairs — what the knowledge viewer's command selector shows.
  std::vector<std::pair<std::int64_t, std::string>> list_commands();

  /// Deletes a knowledge object and its children.
  void remove_knowledge(std::int64_t performance_id);

  /// Persists the repository to its file target (no-op path override allowed).
  void save();
  void save_as(const std::string& path);

  /// CSV export of one table (the paper's "saved e.g. as a CSV file").
  std::string export_csv(const std::string& table);

  /// Manual knowledge exchange (the explorer's "local data" mode and the
  /// outlook's "add knowledge manually"): JSON files holding one knowledge
  /// object. import sniffs the kind (IOR-style vs IO500) from the fields and
  /// returns the new id; export writes the object as pretty-printed JSON.
  std::int64_t import_json_file(const std::string& path);
  void export_knowledge_json(std::int64_t performance_id,
                             const std::string& path);
  void export_io500_json(std::int64_t iofh_id, const std::string& path);

  db::Database& database() { return db_; }

 private:
  /// Tag constructor for from_dump: the dump script carries its own CREATE
  /// TABLE statements, so the schema bootstrap must not run first.
  struct FromDumpTag {};
  KnowledgeRepository(FromDumpTag, const std::string& dump_script);
  /// Tag constructor for clone_of.
  struct CloneTag {};
  KnowledgeRepository(CloneTag, const KnowledgeRepository& base);

  std::int64_t store_unlocked(const knowledge::Knowledge& knowledge)
      IOKC_REQUIRES(write_mutex_);
  std::int64_t store_unlocked(const knowledge::Io500Knowledge& knowledge)
      IOKC_REQUIRES(write_mutex_);

  /// Runs a read-only statement through the prepared-statement cache with
  /// positional `?` parameters bound — the repository's hot load paths skip
  /// reparsing their (fixed) query texts on every call.
  db::ResultSet query(const std::string& sql, std::vector<db::Value> params);

  db::Database db_;
  RepoTarget target_;
  /// Replication position for repositories without a journal (in-memory
  /// replicas in tests); file-backed ones read the journal counter instead.
  std::uint64_t replicated_seq_ IOKC_GUARDED_BY(write_mutex_) = 0;
  /// Shared across snapshot clones (clone_of): the clones run the same fixed
  /// query texts as the base, so one cache serves them all. The cache hands
  /// out immutable ASTs and locks itself, making the sharing safe.
  std::shared_ptr<db::StatementCache> statements_;
  /// Single-writer gate: the embedded database is not thread-safe, so every
  /// mutating path (store, remove, save) serializes here. Readers are not
  /// synchronized — load while storing is still a caller-side race (the
  /// service layer reads through immutable snapshots instead).
  util::Mutex write_mutex_{util::LockRank::kPersist, "persist.write"};
};

}  // namespace iokc::persist
