#include "src/persist/repository.hpp"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <unordered_set>

#include "src/obs/observability.hpp"
#include "src/util/check.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/json.hpp"
#include "src/util/json_writer.hpp"
#include "src/util/padded_string.hpp"
#include "src/util/strings.hpp"

namespace iokc::persist {

namespace {

std::string quote(const std::string& text) {
  return db::Value(text).render();
}

std::string real(double value) {
  // A non-finite value would render as "nan"/"inf" and fail later with an
  // opaque SQL parse error; fail here with the actual problem instead. (The
  // database's Value::coerce guards the same invariant at the storage layer.)
  if (!std::isfinite(value)) {
    throw DbError("cannot persist non-finite metric value");
  }
  return db::Value(value).render_raw().empty()
             ? "0"
             : db::Value(value).render_raw();
}

}  // namespace

RepoTarget RepoTarget::parse(const std::string& url,
                             const std::string& remote_root) {
  RepoTarget target;
  if (url == "mem:" || url == "mem" || url.empty()) {
    target.kind = Kind::kMemory;
    return target;
  }
  if (util::starts_with(url, "file:")) {
    target.kind = Kind::kFile;
    target.path = url.substr(5);
    return target;
  }
  if (util::starts_with(url, "remote://")) {
    if (remote_root.empty()) {
      throw ConfigError("remote:// URL needs a remote root directory");
    }
    target.kind = Kind::kFile;
    target.path = remote_root + "/" + url.substr(9);
    return target;
  }
  if (util::contains(url, "://")) {
    throw ConfigError("unsupported repository URL scheme in '" + url + "'");
  }
  target.kind = Kind::kFile;
  target.path = url;
  return target;
}

std::string knowledge_schema_sql() {
  return R"sql(
CREATE TABLE IF NOT EXISTS performances (
  id INTEGER PRIMARY KEY,
  command TEXT NOT NULL,
  benchmark TEXT,
  api TEXT,
  test_file TEXT,
  file_per_proc INTEGER,
  num_tasks INTEGER,
  num_nodes INTEGER,
  start_time REAL,
  end_time REAL
);
CREATE TABLE IF NOT EXISTS summaries (
  id INTEGER PRIMARY KEY,
  performance_id INTEGER NOT NULL REFERENCES performances(id),
  operation TEXT NOT NULL,
  api TEXT,
  max_bw_mib REAL,
  min_bw_mib REAL,
  mean_bw_mib REAL,
  stddev_bw_mib REAL,
  max_ops REAL,
  min_ops REAL,
  mean_ops REAL,
  stddev_ops REAL,
  mean_time_sec REAL
);
CREATE TABLE IF NOT EXISTS results (
  id INTEGER PRIMARY KEY,
  summary_id INTEGER NOT NULL REFERENCES summaries(id),
  iteration INTEGER,
  bw_mib REAL,
  iops REAL,
  latency_sec REAL,
  open_sec REAL,
  wrrd_sec REAL,
  close_sec REAL,
  total_sec REAL
);
CREATE TABLE IF NOT EXISTS filesystems (
  id INTEGER PRIMARY KEY,
  performance_id INTEGER NOT NULL REFERENCES performances(id),
  fs_name TEXT,
  entry_type TEXT,
  entry_id TEXT,
  metadata_node INTEGER,
  stripe_pattern TEXT,
  chunk_size INTEGER,
  num_targets INTEGER,
  storage_pool INTEGER
);
CREATE TABLE IF NOT EXISTS IOFHsRuns (
  id INTEGER PRIMARY KEY,
  command TEXT,
  num_tasks INTEGER,
  num_nodes INTEGER
);
CREATE TABLE IF NOT EXISTS IOFHsScores (
  id INTEGER PRIMARY KEY,
  IOFH_id INTEGER NOT NULL REFERENCES IOFHsRuns(id),
  score_bw REAL,
  score_md REAL,
  score_total REAL
);
CREATE TABLE IF NOT EXISTS IOFHsTestcases (
  id INTEGER PRIMARY KEY,
  IOFH_id INTEGER NOT NULL REFERENCES IOFHsRuns(id),
  name TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS IOFHsOptions (
  id INTEGER PRIMARY KEY,
  testcase_id INTEGER NOT NULL REFERENCES IOFHsTestcases(id),
  options TEXT
);
CREATE TABLE IF NOT EXISTS IOFHsResults (
  id INTEGER PRIMARY KEY,
  testcase_id INTEGER NOT NULL REFERENCES IOFHsTestcases(id),
  value REAL,
  unit TEXT,
  time_sec REAL
);
CREATE TABLE IF NOT EXISTS jobinfos (
  id INTEGER PRIMARY KEY,
  performance_id INTEGER NOT NULL REFERENCES performances(id),
  job_id INTEGER,
  job_name TEXT,
  partition TEXT,
  user TEXT,
  num_nodes INTEGER,
  num_tasks INTEGER,
  node_list TEXT,
  submit_time REAL,
  start_time REAL
);
CREATE TABLE IF NOT EXISTS sources (
  id INTEGER PRIMARY KEY,
  path TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS systeminfos (
  id INTEGER PRIMARY KEY,
  performance_id INTEGER REFERENCES performances(id),
  IOFH_id INTEGER REFERENCES IOFHsRuns(id),
  hostname TEXT,
  os_release TEXT,
  cpu_model TEXT,
  sockets INTEGER,
  cores_per_socket INTEGER,
  total_cores INTEGER,
  frequency_mhz REAL,
  l1d_kib INTEGER,
  l2_kib INTEGER,
  l3_kib INTEGER,
  memory_bytes INTEGER,
  interconnect TEXT
);
)sql";
}

std::string knowledge_index_sql() {
  // The read paths these serve: the explorer's point/range queries over
  // performances(benchmark, num_nodes) use the ordered composite; exact
  // command lookups (the viewer's selector) use the hash index. Child-table
  // foreign-key probes (summaries by performance_id, ...) already hit the
  // implicit per-column hash indexes every table builds for its FK columns.
  return R"sql(
CREATE INDEX IF NOT EXISTS idx_performances_benchmark_nodes
  ON performances (benchmark, num_nodes);
CREATE INDEX IF NOT EXISTS idx_performances_command
  ON performances (command) USING HASH;
)sql";
}

KnowledgeRepository::KnowledgeRepository() : KnowledgeRepository(RepoTarget{}) {}

KnowledgeRepository::KnowledgeRepository(const RepoTarget& target)
    : target_(target), statements_(std::make_shared<db::StatementCache>()) {
  if (target_.kind == RepoTarget::Kind::kFile) {
    db_ = db::Database::open(target_.path);
  }
  db_.execute_script(knowledge_schema_sql());
  db_.execute_script(knowledge_index_sql());
}

KnowledgeRepository::KnowledgeRepository(FromDumpTag,
                                         const std::string& dump_script)
    : statements_(std::make_shared<db::StatementCache>()) {
  // Strip the dump's `--` header/comment lines (same as Database::load).
  std::string cleaned;
  for (const std::string& line : util::split_lines(dump_script)) {
    if (!util::starts_with(util::trim(line), "--")) {
      cleaned += line;
      cleaned += '\n';
    }
  }
  // The dump's own CREATE TABLE statements run first (they carry the row
  // data); the idempotent schema bootstrap then fills in any table the dump
  // predates (an empty database dumps to nothing, for instance). The dump
  // also carries its CREATE INDEX lines, so the index bootstrap only builds
  // what a pre-index dump lacks.
  db_.execute_script(cleaned);
  db_.execute_script(knowledge_schema_sql());
  db_.execute_script(knowledge_index_sql());
}

std::unique_ptr<KnowledgeRepository> KnowledgeRepository::from_dump(
    const std::string& dump_script) {
  return std::unique_ptr<KnowledgeRepository>(
      new KnowledgeRepository(FromDumpTag{}, dump_script));
}

KnowledgeRepository::KnowledgeRepository(CloneTag,
                                         const KnowledgeRepository& base)
    : statements_(base.statements_) {
  // Deep table copy; no journal, file target, or capture state carries
  // over. The clone then patches forward via replay_delta. The prepared-
  // statement cache IS shared — clones answer the same fixed query texts.
  db_ = base.db_.clone_snapshot();
}

std::unique_ptr<KnowledgeRepository> KnowledgeRepository::clone_of(
    const KnowledgeRepository& base) {
  return std::unique_ptr<KnowledgeRepository>(
      new KnowledgeRepository(CloneTag{}, base));
}

void KnowledgeRepository::replay_delta(
    const std::vector<std::string>& statements) {
  const util::LockGuard lock(write_mutex_);
  for (const std::string& statement : statements) {
    db_.execute(statement);
  }
}

KnowledgeRepository::ConsistentDump KnowledgeRepository::drain_and_dump() {
  const util::LockGuard lock(write_mutex_);
  ConsistentDump consistent;
  consistent.captured = db_.drain_captured_commits();
  db_.dump_to(consistent.dump);
  return consistent;
}

void KnowledgeRepository::set_commit_capture(bool enabled) {
  const util::LockGuard lock(write_mutex_);
  db_.set_commit_capture(enabled);
}

db::Database::CapturedCommits KnowledgeRepository::drain_captured_commits() {
  const util::LockGuard lock(write_mutex_);
  return db_.drain_captured_commits();
}

void KnowledgeRepository::set_journal_ship_sink(db::Journal::ShipSink sink) {
  const util::LockGuard lock(write_mutex_);
  db_.set_journal_ship_sink(std::move(sink));
}

std::uint64_t KnowledgeRepository::applied_seq() {
  const util::LockGuard lock(write_mutex_);
  return db_.journaling() ? db_.last_journal_seq() : replicated_seq_;
}

std::uint64_t KnowledgeRepository::journal_epoch() {
  const util::LockGuard lock(write_mutex_);
  return db_.journal_epoch();
}

KnowledgeRepository::EpochDump KnowledgeRepository::dump_with_epoch() {
  const util::LockGuard lock(write_mutex_);
  EpochDump out;
  out.seq = db_.journaling() ? db_.last_journal_seq() : replicated_seq_;
  db_.dump_to(out.dump);
  return out;
}

void KnowledgeRepository::install_dump(const std::string& dump,
                                       std::uint64_t epoch) {
  const util::LockGuard lock(write_mutex_);
  // iokc-lint: allow(blocking-under-lock): cold path — a bootstrap replaces
  // the whole database and must exclude writers end to end (like save()).
  db_.reset_from_script(dump, epoch);
  // Fill in whatever the dump predates, exactly like the from_dump
  // bootstrap. A repository-written dump always carries the full schema, so
  // these are IF NOT EXISTS no-ops and journal nothing: the local sequence
  // counter stays at `epoch`, aligned with the primary's stream.
  db_.execute_script(knowledge_schema_sql());
  db_.execute_script(knowledge_index_sql());
  replicated_seq_ = epoch;
}

std::uint64_t KnowledgeRepository::apply_replicated(
    const db::JournalRecord& record) {
  const util::LockGuard lock(write_mutex_);
  const std::uint64_t applied =
      db_.journaling() ? db_.last_journal_seq() : replicated_seq_;
  if (record.seq != applied + 1) {
    throw DbError("replicated record out of order: got seq " +
                      std::to_string(record.seq) + ", expected " +
                      std::to_string(applied + 1));
  }
  db_.begin();
  std::uint64_t ticket = 0;
  try {
    for (const std::string& statement : record.statements) {
      db_.execute(statement);
    }
    ticket = db_.commit_buffered();
  } catch (...) {
    db_.rollback();
    throw;
  }
  replicated_seq_ = record.seq;
  return ticket;
}

void KnowledgeRepository::wait_journal_durable(std::uint64_t ticket) {
  db_.wait_journal_durable(ticket);
}

namespace {

std::string insert_systeminfo_sql(const knowledge::SystemInfoRecord& s,
                                  const std::string& fk_column,
                                  std::int64_t fk_value) {
  std::string sql =
      "INSERT INTO systeminfos (" + fk_column +
      ", hostname, os_release, cpu_model, sockets, cores_per_socket, "
      "total_cores, frequency_mhz, l1d_kib, l2_kib, l3_kib, memory_bytes, "
      "interconnect) VALUES (";
  sql += std::to_string(fk_value);
  sql += ", " + quote(s.hostname);
  sql += ", " + quote(s.os_release);
  sql += ", " + quote(s.cpu_model);
  sql += ", " + std::to_string(s.sockets);
  sql += ", " + std::to_string(s.cores_per_socket);
  sql += ", " + std::to_string(s.total_cores);
  sql += ", " + real(s.frequency_mhz);
  sql += ", " + std::to_string(s.l1d_kib);
  sql += ", " + std::to_string(s.l2_kib);
  sql += ", " + std::to_string(s.l3_kib);
  sql += ", " + std::to_string(s.memory_bytes);
  sql += ", " + quote(s.interconnect) + ")";
  return sql;
}

}  // namespace

std::int64_t KnowledgeRepository::store(const knowledge::Knowledge& k) {
  std::uint64_t ticket = 0;
  std::int64_t id = 0;
  {
    const util::LockGuard lock(write_mutex_);
    db_.begin();
    try {
      id = store_unlocked(k);
      ticket = db_.commit_buffered();
    } catch (...) {
      db_.rollback();
      throw;
    }
  }
  // Durability wait OUTSIDE the single-writer gate: concurrent committers
  // overlap here, so the journal's group commit amortizes one fsync across
  // all of them instead of serializing fsyncs behind the gate.
  db_.wait_journal_durable(ticket);
  return id;
}

std::int64_t KnowledgeRepository::store(const knowledge::Io500Knowledge& k) {
  std::uint64_t ticket = 0;
  std::int64_t id = 0;
  {
    const util::LockGuard lock(write_mutex_);
    db_.begin();
    try {
      id = store_unlocked(k);
      ticket = db_.commit_buffered();
    } catch (...) {
      db_.rollback();
      throw;
    }
  }
  db_.wait_journal_durable(ticket);
  return id;
}

std::vector<std::int64_t> KnowledgeRepository::store_batch(
    const std::vector<knowledge::Knowledge>& objects) {
  obs::Span span("repo:store_batch", {.category = "persist"});
  obs::count("repo.batches");
  obs::count("repo.batch_objects", objects.size());
  obs::gauge_max("repo.batch_size", static_cast<double>(objects.size()));
  std::uint64_t ticket = 0;
  std::vector<std::int64_t> ids;
  ids.reserve(objects.size());
  {
    const util::LockGuard lock(write_mutex_);
    // The whole batch is one transaction: a failure mid-batch (e.g. a
    // non-finite metric in object 3 of 5) must not leave objects 1-2 behind.
    db_.begin();
    try {
      for (const knowledge::Knowledge& k : objects) {
        ids.push_back(store_unlocked(k));
      }
      ticket = db_.commit_buffered();
    } catch (...) {
      db_.rollback();
      throw;
    }
  }
  db_.wait_journal_durable(ticket);
  return ids;
}

std::vector<std::int64_t> KnowledgeRepository::store_batch(
    const std::vector<knowledge::Io500Knowledge>& objects) {
  obs::Span span("repo:store_batch", {.category = "persist"});
  obs::count("repo.batches");
  obs::count("repo.batch_objects", objects.size());
  obs::gauge_max("repo.batch_size", static_cast<double>(objects.size()));
  std::uint64_t ticket = 0;
  std::vector<std::int64_t> ids;
  ids.reserve(objects.size());
  {
    const util::LockGuard lock(write_mutex_);
    db_.begin();
    try {
      for (const knowledge::Io500Knowledge& k : objects) {
        ids.push_back(store_unlocked(k));
      }
      ticket = db_.commit_buffered();
    } catch (...) {
      db_.rollback();
      throw;
    }
  }
  db_.wait_journal_durable(ticket);
  return ids;
}

StoreOutcome KnowledgeRepository::store_sources(
    const std::vector<SourceBatch>& batches) {
  obs::Span span("repo:store_sources", {.category = "persist"});
  std::size_t objects = 0;
  for (const SourceBatch& batch : batches) {
    objects += batch.knowledge.size() + batch.io500.size();
  }
  obs::count("repo.batches");
  obs::count("repo.batch_objects", objects);
  obs::gauge_max("repo.batch_size", static_cast<double>(objects));
  const util::LockGuard lock(write_mutex_);
  std::unordered_set<std::string> recorded;
  {
    const db::ResultSet rows = db_.execute("SELECT path FROM sources");
    for (std::size_t r = 0; r < rows.size(); ++r) {
      recorded.insert(rows.at(r, "path").as_text());
    }
  }
  StoreOutcome outcome;
  for (const SourceBatch& batch : batches) {
    if (recorded.contains(batch.source)) {
      outcome.skipped_sources.push_back(batch.source);
      continue;
    }
    // One transaction per source: the objects and the provenance row land
    // together or not at all, so a crash cannot produce a source that is
    // recorded-but-unstored (lost data) or stored-but-unrecorded
    // (duplicated on resume).
    db_.begin();
    const std::size_t k_before = outcome.knowledge_ids.size();
    const std::size_t io_before = outcome.io500_ids.size();
    try {
      for (const knowledge::Knowledge& k : batch.knowledge) {
        outcome.knowledge_ids.push_back(store_unlocked(k));
      }
      for (const knowledge::Io500Knowledge& k : batch.io500) {
        outcome.io500_ids.push_back(store_unlocked(k));
      }
      db_.execute("INSERT INTO sources (path) VALUES (" + quote(batch.source) +
                  ")");
      // iokc-lint: allow(blocking-under-lock): commit waits for WAL
      // durability under the single-writer gate on purpose — the
      // fault-point contract below ("repo.source_committed" fires only for
      // durable sources) is the crashtest's unit of resumption, so each
      // source must be on disk before the next begins. This is the
      // bulk-ingest path, not the service hot path; service writes use
      // commit_buffered + wait_journal_durable outside the gate instead.
      db_.commit();
    } catch (...) {
      db_.rollback();
      outcome.knowledge_ids.resize(k_before);
      outcome.io500_ids.resize(io_before);
      throw;
    }
    recorded.insert(batch.source);
    util::fault_point("repo.source_committed");
  }
  return outcome;
}

std::vector<std::string> KnowledgeRepository::extracted_sources() {
  const db::ResultSet rows =
      db_.execute("SELECT path FROM sources ORDER BY id");
  std::vector<std::string> paths;
  paths.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    paths.push_back(rows.at(r, "path").as_text());
  }
  return paths;
}

std::int64_t KnowledgeRepository::store_unlocked(const knowledge::Knowledge& k) {
  std::string sql =
      "INSERT INTO performances (command, benchmark, api, test_file, "
      "file_per_proc, num_tasks, num_nodes, start_time, end_time) VALUES (";
  sql += quote(k.command);
  sql += ", " + quote(k.benchmark);
  sql += ", " + quote(k.api);
  sql += ", " + quote(k.test_file);
  sql += ", " + std::string(k.file_per_process ? "1" : "0");
  sql += ", " + std::to_string(k.num_tasks);
  sql += ", " + std::to_string(k.num_nodes);
  sql += ", " + real(k.start_time);
  sql += ", " + real(k.end_time) + ")";
  db_.execute(sql);
  const std::int64_t performance_id = db_.last_insert_rowid();
  IOKC_CHECK(performance_id > 0, "INSERT must yield a positive rowid");

  for (const knowledge::OpSummary& summary : k.summaries) {
    std::string summary_sql =
        "INSERT INTO summaries (performance_id, operation, api, max_bw_mib, "
        "min_bw_mib, mean_bw_mib, stddev_bw_mib, max_ops, min_ops, mean_ops, "
        "stddev_ops, mean_time_sec) VALUES (";
    summary_sql += std::to_string(performance_id);
    summary_sql += ", " + quote(summary.operation);
    summary_sql += ", " + quote(summary.api);
    summary_sql += ", " + real(summary.max_bw_mib);
    summary_sql += ", " + real(summary.min_bw_mib);
    summary_sql += ", " + real(summary.mean_bw_mib);
    summary_sql += ", " + real(summary.stddev_bw_mib);
    summary_sql += ", " + real(summary.max_ops);
    summary_sql += ", " + real(summary.min_ops);
    summary_sql += ", " + real(summary.mean_ops);
    summary_sql += ", " + real(summary.stddev_ops);
    summary_sql += ", " + real(summary.mean_time_sec) + ")";
    db_.execute(summary_sql);
    const std::int64_t summary_id = db_.last_insert_rowid();

    for (const knowledge::OpResult& result : summary.results) {
      std::string result_sql =
          "INSERT INTO results (summary_id, iteration, bw_mib, iops, "
          "latency_sec, open_sec, wrrd_sec, close_sec, total_sec) VALUES (";
      result_sql += std::to_string(summary_id);
      result_sql += ", " + std::to_string(result.iteration);
      result_sql += ", " + real(result.bw_mib);
      result_sql += ", " + real(result.iops);
      result_sql += ", " + real(result.latency_sec);
      result_sql += ", " + real(result.open_sec);
      result_sql += ", " + real(result.wrrd_sec);
      result_sql += ", " + real(result.close_sec);
      result_sql += ", " + real(result.total_sec) + ")";
      db_.execute(result_sql);
    }
  }

  if (k.filesystem.has_value()) {
    const knowledge::FileSystemInfo& f = *k.filesystem;
    std::string fs_sql =
        "INSERT INTO filesystems (performance_id, fs_name, entry_type, "
        "entry_id, metadata_node, stripe_pattern, chunk_size, num_targets, "
        "storage_pool) VALUES (";
    fs_sql += std::to_string(performance_id);
    fs_sql += ", " + quote(f.fs_name);
    fs_sql += ", " + quote(f.entry_type);
    fs_sql += ", " + quote(f.entry_id);
    fs_sql += ", " + std::to_string(f.metadata_node);
    fs_sql += ", " + quote(f.stripe_pattern);
    fs_sql += ", " + std::to_string(f.chunk_size);
    fs_sql += ", " + std::to_string(f.num_targets);
    fs_sql += ", " + std::to_string(f.storage_pool) + ")";
    db_.execute(fs_sql);
  }

  if (k.system.has_value()) {
    db_.execute(
        insert_systeminfo_sql(*k.system, "performance_id", performance_id));
  }

  if (k.job.has_value()) {
    const knowledge::JobInfoRecord& j = *k.job;
    std::string job_sql =
        "INSERT INTO jobinfos (performance_id, job_id, job_name, partition, "
        "user, num_nodes, num_tasks, node_list, submit_time, start_time) "
        "VALUES (";
    job_sql += std::to_string(performance_id);
    job_sql += ", " + std::to_string(j.job_id);
    job_sql += ", " + quote(j.job_name);
    job_sql += ", " + quote(j.partition);
    job_sql += ", " + quote(j.user);
    job_sql += ", " + std::to_string(j.num_nodes);
    job_sql += ", " + std::to_string(j.num_tasks);
    job_sql += ", " + quote(j.node_list);
    job_sql += ", " + real(j.submit_time);
    job_sql += ", " + real(j.start_time) + ")";
    db_.execute(job_sql);
  }
  return performance_id;
}

std::int64_t KnowledgeRepository::store_unlocked(
    const knowledge::Io500Knowledge& k) {
  std::string sql = "INSERT INTO IOFHsRuns (command, num_tasks, num_nodes) VALUES (";
  sql += quote(k.command);
  sql += ", " + std::to_string(k.num_tasks);
  sql += ", " + std::to_string(k.num_nodes) + ")";
  db_.execute(sql);
  const std::int64_t iofh_id = db_.last_insert_rowid();
  IOKC_CHECK(iofh_id > 0, "INSERT must yield a positive rowid");

  db_.execute("INSERT INTO IOFHsScores (IOFH_id, score_bw, score_md, "
              "score_total) VALUES (" +
              std::to_string(iofh_id) + ", " + real(k.score_bw_gib) + ", " +
              real(k.score_md_kiops) + ", " + real(k.score_total) + ")");

  for (const knowledge::Io500Testcase& testcase : k.testcases) {
    db_.execute("INSERT INTO IOFHsTestcases (IOFH_id, name) VALUES (" +
                std::to_string(iofh_id) + ", " + quote(testcase.name) + ")");
    const std::int64_t testcase_id = db_.last_insert_rowid();
    db_.execute("INSERT INTO IOFHsOptions (testcase_id, options) VALUES (" +
                std::to_string(testcase_id) + ", " + quote(testcase.options) +
                ")");
    db_.execute("INSERT INTO IOFHsResults (testcase_id, value, unit, "
                "time_sec) VALUES (" +
                std::to_string(testcase_id) + ", " + real(testcase.value) +
                ", " + quote(testcase.unit) + ", " + real(testcase.time_sec) +
                ")");
  }

  if (k.system.has_value()) {
    db_.execute(insert_systeminfo_sql(*k.system, "IOFH_id", iofh_id));
  }
  return iofh_id;
}

namespace {

knowledge::SystemInfoRecord system_from_row(const db::ResultSet& rows,
                                            std::size_t r) {
  knowledge::SystemInfoRecord s;
  s.hostname = rows.at(r, "hostname").as_text();
  s.os_release = rows.at(r, "os_release").as_text();
  s.cpu_model = rows.at(r, "cpu_model").as_text();
  s.sockets = static_cast<int>(rows.at(r, "sockets").as_integer());
  s.cores_per_socket =
      static_cast<int>(rows.at(r, "cores_per_socket").as_integer());
  s.total_cores = static_cast<int>(rows.at(r, "total_cores").as_integer());
  s.frequency_mhz = rows.at(r, "frequency_mhz").as_real();
  s.l1d_kib = static_cast<std::uint64_t>(rows.at(r, "l1d_kib").as_integer());
  s.l2_kib = static_cast<std::uint64_t>(rows.at(r, "l2_kib").as_integer());
  s.l3_kib = static_cast<std::uint64_t>(rows.at(r, "l3_kib").as_integer());
  s.memory_bytes =
      static_cast<std::uint64_t>(rows.at(r, "memory_bytes").as_integer());
  s.interconnect = rows.at(r, "interconnect").as_text();
  return s;
}

}  // namespace

db::ResultSet KnowledgeRepository::query(const std::string& sql,
                                         std::vector<db::Value> params) {
  return db_.execute_prepared(*statements_->get(sql), params);
}

knowledge::Knowledge KnowledgeRepository::load_knowledge(
    std::int64_t performance_id) {
  const db::ResultSet perf =
      query("SELECT * FROM performances WHERE id = ?", {performance_id});
  if (perf.empty()) {
    throw DbError("no knowledge object with id " +
                  std::to_string(performance_id));
  }
  knowledge::Knowledge k;
  k.command = perf.at(0, "command").as_text();
  k.benchmark = perf.at(0, "benchmark").as_text();
  k.api = perf.at(0, "api").as_text();
  k.test_file = perf.at(0, "test_file").as_text();
  k.file_per_process = perf.at(0, "file_per_proc").as_integer() != 0;
  k.num_tasks =
      static_cast<std::uint32_t>(perf.at(0, "num_tasks").as_integer());
  k.num_nodes =
      static_cast<std::uint32_t>(perf.at(0, "num_nodes").as_integer());
  k.start_time = perf.at(0, "start_time").as_real();
  k.end_time = perf.at(0, "end_time").as_real();

  const db::ResultSet summaries =
      query("SELECT * FROM summaries WHERE performance_id = ? ORDER BY id",
            {performance_id});
  for (std::size_t s = 0; s < summaries.size(); ++s) {
    knowledge::OpSummary summary;
    const std::int64_t summary_id = summaries.at(s, "id").as_integer();
    summary.operation = summaries.at(s, "operation").as_text();
    summary.api = summaries.at(s, "api").as_text();
    summary.max_bw_mib = summaries.at(s, "max_bw_mib").as_real();
    summary.min_bw_mib = summaries.at(s, "min_bw_mib").as_real();
    summary.mean_bw_mib = summaries.at(s, "mean_bw_mib").as_real();
    summary.stddev_bw_mib = summaries.at(s, "stddev_bw_mib").as_real();
    summary.max_ops = summaries.at(s, "max_ops").as_real();
    summary.min_ops = summaries.at(s, "min_ops").as_real();
    summary.mean_ops = summaries.at(s, "mean_ops").as_real();
    summary.stddev_ops = summaries.at(s, "stddev_ops").as_real();
    summary.mean_time_sec = summaries.at(s, "mean_time_sec").as_real();

    const db::ResultSet results =
        query("SELECT * FROM results WHERE summary_id = ? ORDER BY iteration",
              {summary_id});
    for (std::size_t r = 0; r < results.size(); ++r) {
      knowledge::OpResult result;
      result.iteration =
          static_cast<int>(results.at(r, "iteration").as_integer());
      result.bw_mib = results.at(r, "bw_mib").as_real();
      result.iops = results.at(r, "iops").as_real();
      result.latency_sec = results.at(r, "latency_sec").as_real();
      result.open_sec = results.at(r, "open_sec").as_real();
      result.wrrd_sec = results.at(r, "wrrd_sec").as_real();
      result.close_sec = results.at(r, "close_sec").as_real();
      result.total_sec = results.at(r, "total_sec").as_real();
      summary.results.push_back(result);
    }
    k.summaries.push_back(std::move(summary));
  }

  const db::ResultSet fs = query(
      "SELECT * FROM filesystems WHERE performance_id = ?", {performance_id});
  if (!fs.empty()) {
    knowledge::FileSystemInfo info;
    info.fs_name = fs.at(0, "fs_name").as_text();
    info.entry_type = fs.at(0, "entry_type").as_text();
    info.entry_id = fs.at(0, "entry_id").as_text();
    info.metadata_node =
        static_cast<std::uint32_t>(fs.at(0, "metadata_node").as_integer());
    info.stripe_pattern = fs.at(0, "stripe_pattern").as_text();
    info.chunk_size =
        static_cast<std::uint64_t>(fs.at(0, "chunk_size").as_integer());
    info.num_targets =
        static_cast<std::uint32_t>(fs.at(0, "num_targets").as_integer());
    info.storage_pool =
        static_cast<std::uint32_t>(fs.at(0, "storage_pool").as_integer());
    k.filesystem = info;
  }

  const db::ResultSet sys = query(
      "SELECT * FROM systeminfos WHERE performance_id = ?", {performance_id});
  if (!sys.empty()) {
    k.system = system_from_row(sys, 0);
  }

  const db::ResultSet job = query(
      "SELECT * FROM jobinfos WHERE performance_id = ?", {performance_id});
  if (!job.empty()) {
    knowledge::JobInfoRecord j;
    j.job_id = static_cast<std::uint64_t>(job.at(0, "job_id").as_integer());
    j.job_name = job.at(0, "job_name").as_text();
    j.partition = job.at(0, "partition").as_text();
    j.user = job.at(0, "user").as_text();
    j.num_nodes = static_cast<std::uint32_t>(job.at(0, "num_nodes").as_integer());
    j.num_tasks = static_cast<std::uint32_t>(job.at(0, "num_tasks").as_integer());
    j.node_list = job.at(0, "node_list").as_text();
    j.submit_time = job.at(0, "submit_time").as_real();
    j.start_time = job.at(0, "start_time").as_real();
    k.job = j;
  }
  return k;
}

knowledge::Io500Knowledge KnowledgeRepository::load_io500(
    std::int64_t iofh_id) {
  const db::ResultSet run =
      query("SELECT * FROM IOFHsRuns WHERE id = ?", {iofh_id});
  if (run.empty()) {
    throw DbError("no IO500 knowledge object with id " +
                  std::to_string(iofh_id));
  }
  knowledge::Io500Knowledge k;
  k.command = run.at(0, "command").as_text();
  k.num_tasks = static_cast<std::uint32_t>(run.at(0, "num_tasks").as_integer());
  k.num_nodes = static_cast<std::uint32_t>(run.at(0, "num_nodes").as_integer());

  const db::ResultSet scores =
      query("SELECT * FROM IOFHsScores WHERE IOFH_id = ?", {iofh_id});
  if (!scores.empty()) {
    k.score_bw_gib = scores.at(0, "score_bw").as_real();
    k.score_md_kiops = scores.at(0, "score_md").as_real();
    k.score_total = scores.at(0, "score_total").as_real();
  }

  const db::ResultSet cases = query(
      "SELECT * FROM IOFHsTestcases WHERE IOFH_id = ? ORDER BY id", {iofh_id});
  for (std::size_t c = 0; c < cases.size(); ++c) {
    knowledge::Io500Testcase testcase;
    const std::int64_t testcase_id = cases.at(c, "id").as_integer();
    testcase.name = cases.at(c, "name").as_text();
    const db::ResultSet options = query(
        "SELECT * FROM IOFHsOptions WHERE testcase_id = ?", {testcase_id});
    if (!options.empty()) {
      testcase.options = options.at(0, "options").as_text();
    }
    const db::ResultSet results = query(
        "SELECT * FROM IOFHsResults WHERE testcase_id = ?", {testcase_id});
    if (!results.empty()) {
      testcase.value = results.at(0, "value").as_real();
      testcase.unit = results.at(0, "unit").as_text();
      testcase.time_sec = results.at(0, "time_sec").as_real();
    }
    k.testcases.push_back(std::move(testcase));
  }

  const db::ResultSet sys =
      query("SELECT * FROM systeminfos WHERE IOFH_id = ?", {iofh_id});
  if (!sys.empty()) {
    k.system = system_from_row(sys, 0);
  }
  return k;
}

std::vector<std::int64_t> KnowledgeRepository::knowledge_ids() {
  const db::ResultSet rows = query("SELECT id FROM performances ORDER BY id", {});
  std::vector<std::int64_t> ids;
  ids.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ids.push_back(rows.at(r, "id").as_integer());
  }
  return ids;
}

std::vector<std::int64_t> KnowledgeRepository::io500_ids() {
  const db::ResultSet rows = query("SELECT id FROM IOFHsRuns ORDER BY id", {});
  std::vector<std::int64_t> ids;
  ids.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    ids.push_back(rows.at(r, "id").as_integer());
  }
  return ids;
}

std::vector<std::pair<std::int64_t, std::string>>
KnowledgeRepository::list_commands() {
  const db::ResultSet rows =
      query("SELECT id, command FROM performances ORDER BY id", {});
  std::vector<std::pair<std::int64_t, std::string>> commands;
  commands.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    commands.emplace_back(rows.at(r, "id").as_integer(),
                          rows.at(r, "command").as_text());
  }
  return commands;
}

void KnowledgeRepository::remove_knowledge(std::int64_t performance_id) {
  std::uint64_t ticket = 0;
  {
    // Missing-lock path surfaced by the thread-safety migration: deletes
    // used to run unserialized against concurrent stores.
    const util::LockGuard lock(write_mutex_);
    const std::string id = std::to_string(performance_id);
    // One transaction for the whole cascade (it used to be six auto-commit
    // deletes): a failure partway can no longer leave a half-deleted
    // object, and the journal/delta stream carries the removal as a unit.
    db_.begin();
    try {
      const db::ResultSet summaries = db_.execute(
          "SELECT id FROM summaries WHERE performance_id = " + id);
      for (std::size_t s = 0; s < summaries.size(); ++s) {
        db_.execute("DELETE FROM results WHERE summary_id = " +
                    std::to_string(summaries.at(s, "id").as_integer()));
      }
      db_.execute("DELETE FROM summaries WHERE performance_id = " + id);
      db_.execute("DELETE FROM filesystems WHERE performance_id = " + id);
      db_.execute("DELETE FROM systeminfos WHERE performance_id = " + id);
      db_.execute("DELETE FROM jobinfos WHERE performance_id = " + id);
      db_.execute("DELETE FROM performances WHERE id = " + id);
      ticket = db_.commit_buffered();
    } catch (...) {
      db_.rollback();
      throw;
    }
  }
  db_.wait_journal_durable(ticket);
}

void KnowledgeRepository::save() {
  if (target_.kind != RepoTarget::Kind::kFile) {
    return;
  }
  save_as(target_.path);
}

void KnowledgeRepository::save_as(const std::string& path) {
  // Missing-lock path surfaced by the thread-safety migration: dumping while
  // a store is mid-transaction wrote torn dumps.
  const util::LockGuard lock(write_mutex_);
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::filesystem::create_directories(parent);
  }
  // iokc-lint: allow(blocking-under-lock): cold path, by design — the dump
  // must be a consistent point-in-time image and the journal checkpoint
  // must fold in exactly the committed transactions the dump contains, so
  // writers stay excluded for the whole save. Per-commit durability no
  // longer blocks under this gate (see store()); save() is the one
  // remaining whole-database flush.
  db_.save(path);
}

std::string KnowledgeRepository::export_csv(const std::string& table) {
  return db_.execute("SELECT * FROM " + table).render_csv();
}

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write " + path);
  }
  out << text;
  if (!out) {
    throw IoError("failed writing " + path);
  }
}

}  // namespace

std::int64_t KnowledgeRepository::import_json_file(const std::string& path) {
  // A padded load keeps even the parser's final block a full-width read.
  const util::PaddedString text = util::PaddedString::load(path);
  const util::JsonValue json = util::parse_json(text);
  // IO500 objects carry "testcases"; IOR-style objects carry "summaries".
  if (json.find("testcases") != nullptr) {
    return store(knowledge::Io500Knowledge::from_json(json));
  }
  return store(knowledge::Knowledge::from_json(json));
}

void KnowledgeRepository::export_knowledge_json(std::int64_t performance_id,
                                                const std::string& path) {
  util::JsonWriter writer;
  load_knowledge(performance_id).to_json().dump_to(writer, 2);
  writer.raw('\n');
  write_text_file(path, writer.str());
}

void KnowledgeRepository::export_io500_json(std::int64_t iofh_id,
                                            const std::string& path) {
  util::JsonWriter writer;
  load_io500(iofh_id).to_json().dump_to(writer, 2);
  writer.raw('\n');
  write_text_file(path, writer.str());
}

}  // namespace iokc::persist
