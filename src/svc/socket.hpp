// Thin RAII layer over POSIX TCP sockets: listen/accept/connect plus
// deadline-aware send/recv loops. Everything here throws IoError on failure
// so callers never see raw errno handling; higher layers (protocol framing,
// server, client) stay free of system-call details.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace iokc::svc {

/// An owned socket file descriptor. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }

  void close();
  /// shutdown(SHUT_RDWR): wakes any thread blocked in poll/recv on this
  /// socket (the server's drain path uses this to interrupt idle readers).
  void shutdown_both();

 private:
  int fd_ = -1;
};

/// Binds and listens on `address:port` (port 0 picks an ephemeral port).
/// Returns the listening socket; throws IoError on failure.
Socket listen_on(const std::string& address, std::uint16_t port,
                 int backlog = 64);

/// The locally bound port (what an ephemeral bind actually got).
std::uint16_t local_port(const Socket& socket);

/// Accepts one connection. Returns an invalid Socket when the listener was
/// closed/shut down (the drain path); throws IoError on other failures.
/// `timeout_ms` >= 0 bounds the wait and returns invalid on expiry.
Socket accept_connection(const Socket& listener, int timeout_ms = -1);

/// Connects to `address:port` with a bounded wait. Throws IoError on
/// failure (including timeout).
Socket connect_to(const std::string& address, std::uint16_t port,
                  int timeout_ms);

/// Sends the whole buffer. Throws IoError on failure or peer reset.
void send_all(const Socket& socket, std::string_view data);

/// Sends `first` then `second` as one gathered write (sendmsg with two
/// iovecs): a frame header and its payload leave in a single syscall and a
/// single TCP segment without being concatenated into a scratch buffer
/// first. Throws IoError on failure or peer reset.
void send_all_v(const Socket& socket, std::string_view first,
                std::string_view second);

/// Reads exactly `size` bytes within the deadline. Returns false when the
/// peer cleanly closed before the first byte; throws IoError on timeout,
/// mid-read EOF, or failure. `timeout_ms` < 0 waits forever.
bool recv_exact(const Socket& socket, char* buffer, std::size_t size,
                int timeout_ms);

/// Reads whatever is available — 1..`size` bytes, one recv — within the
/// deadline. Returns the byte count, 0 on a clean EOF. Throws IoError on
/// timeout or failure. This is the pipelining read: the caller buffers
/// whatever arrived and extracts as many complete frames as it holds.
std::size_t recv_some(const Socket& socket, char* buffer, std::size_t size,
                      int timeout_ms);

/// Best-effort: reads and discards up to `size` bytes within the deadline,
/// returning the count actually discarded. Never throws — EOF, reset, or
/// timeout just end the drain early. Used before answering a protocol
/// violation, so closing the socket with unread data doesn't turn the error
/// response into a TCP reset.
std::size_t discard_up_to(const Socket& socket, std::size_t size,
                          int timeout_ms);

}  // namespace iokc::svc
