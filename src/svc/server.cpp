#include "src/svc/server.hpp"

#include <cerrno>
#include <csignal>
#include <cstring>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <utility>

#include "src/analysis/anomaly.hpp"
#include "src/db/sql.hpp"
#include "src/generators/ior.hpp"
#include "src/knowledge/io500_knowledge.hpp"
#include "src/knowledge/knowledge.hpp"
#include "src/obs/observability.hpp"
#include "src/obs/span.hpp"
#include "src/usage/prediction.hpp"
#include "src/usage/recommendation.hpp"
#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::svc {

namespace {

util::JsonValue value_to_json(const db::Value& value) {
  if (value.is_null()) {
    return util::JsonValue(nullptr);
  }
  if (value.is_integer()) {
    return util::JsonValue(value.as_integer());
  }
  if (value.is_real()) {
    return util::JsonValue(value.as_real());
  }
  return util::JsonValue(value.as_text());
}

util::JsonValue result_set_to_json(const db::ResultSet& rows) {
  util::JsonArray columns;
  for (const std::string& column : rows.columns) {
    columns.emplace_back(column);
  }
  util::JsonArray data;
  for (const db::Row& row : rows.rows) {
    util::JsonArray cells;
    for (const db::Value& cell : row) {
      cells.push_back(value_to_json(cell));
    }
    data.emplace_back(std::move(cells));
  }
  util::JsonObject object;
  object.emplace_back("columns", util::JsonValue(std::move(columns)));
  object.emplace_back("rows", util::JsonValue(std::move(data)));
  return util::JsonValue(std::move(object));
}

util::JsonValue anomaly_report_to_json(const analysis::AnomalyReport& report) {
  util::JsonArray anomalies;
  for (const analysis::Anomaly& anomaly : report.anomalies) {
    util::JsonObject entry;
    entry.emplace_back("metric", util::JsonValue(anomaly.metric));
    entry.emplace_back("location", util::JsonValue(anomaly.location));
    entry.emplace_back("value", util::JsonValue(anomaly.value));
    entry.emplace_back("reference", util::JsonValue(anomaly.reference));
    entry.emplace_back("deviation", util::JsonValue(anomaly.deviation));
    entry.emplace_back("severity",
                       util::JsonValue(analysis::to_string(anomaly.severity)));
    entry.emplace_back("description", util::JsonValue(anomaly.description));
    anomalies.emplace_back(std::move(entry));
  }
  util::JsonObject object;
  object.emplace_back("anomalies", util::JsonValue(std::move(anomalies)));
  return util::JsonValue(std::move(object));
}

std::string param_string(const util::JsonValue& params, std::string_view key,
                         const std::string& fallback) {
  const util::JsonValue* value = params.find(key);
  return value != nullptr ? value->as_string() : fallback;
}

}  // namespace

std::string_view to_string(ServerConfig::Role role) {
  switch (role) {
    case ServerConfig::Role::kPrimary:
      return "primary";
    case ServerConfig::Role::kReplica:
      return "replica";
    case ServerConfig::Role::kStandalone:
      break;
  }
  return "standalone";
}

Server::Server(persist::KnowledgeRepository& repository, ServerConfig config)
    : repository_(repository),
      config_(std::move(config)),
      store_(repository_) {}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw ConfigError("server already started");
  }
  listener_ = listen_on(config_.bind_address, config_.port);
  port_ = local_port(listener_);
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror only formats the message
    throw IoError(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_ = Socket(pipe_fds[0]);
  wake_write_ = Socket(pipe_fds[1]);
  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<util::ThreadPool>(config_.threads);
  running_.store(true, std::memory_order_release);
  supervisor_ = std::thread([this] { supervise(); });
}

void Server::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  wake_supervisor();
  listener_.shutdown_both();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
  // Let in-flight request tasks run to completion, then join the workers.
  pool_->wait_idle();
  pool_.reset();
  // Connections handed back after the supervisor exited just get closed.
  {
    const util::LockGuard lock(returning_mutex_);
    returning_.clear();
  }
  listener_.close();
  wake_read_.close();
  wake_write_.close();
}

ServerStats Server::stats() const {
  ServerStats stats;
  {
    // One acquisition snapshots every request counter from the same
    // instant — a stats response can no longer pair `requests` from one
    // moment with `bytes_out` from another.
    const util::LockGuard lock(stats_mutex_);
    stats.connections = connections_;
    stats.requests = requests_;
    stats.errors = errors_;
    stats.bytes_in = bytes_in_;
    stats.bytes_out = bytes_out_;
  }
  // svc.stats and svc.snapshot share rank kSvc: equal ranks never nest, so
  // the store's counters are read after the stats lock is released. The two
  // counter groups may therefore be an instant apart — each group is
  // internally coherent.
  const SnapshotStore::Counters counters = store_.counters();
  stats.snapshot_full_rebuilds = counters.full_rebuilds;
  stats.snapshot_delta_applies = counters.delta_applies;
  stats.snapshot_rebuilds = counters.full_rebuilds + counters.delta_applies;
  const db::StatementCache::Stats cache = sql_statements_.stats();
  stats.sql_cache_hits = cache.hits;
  stats.sql_cache_misses = cache.misses;
  return stats;
}

void Server::wake_supervisor() {
  if (wake_write_.valid()) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_write_.fd(), &byte, 1);
  }
}

void Server::return_connection(const std::shared_ptr<Connection>& connection) {
  {
    const util::LockGuard lock(returning_mutex_);
    returning_.push_back(connection);
  }
  wake_supervisor();
}

void Server::supervise() {
  // fd -> idle connection. Only this thread touches the map.
  std::unordered_map<int, std::shared_ptr<Connection>> idle;
  std::vector<pollfd> pfds;
  std::vector<int> pfd_fds;  // parallel to pfds[2..]: the idle map keys
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_fds.clear();
    pfds.push_back({listener_.fd(), POLLIN, 0});
    pfds.push_back({wake_read_.fd(), POLLIN, 0});
    for (const auto& [fd, connection] : idle) {
      pfds.push_back({fd, POLLIN, 0});
      pfd_fds.push_back(fd);
    }
    const int rc = ::poll(pfds.data(), pfds.size(), 100);
    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }
    if (rc < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // poll failure: give up serving rather than spin
    }
    if ((pfds[1].revents & POLLIN) != 0) {
      char drain[64];
      while (::read(wake_read_.fd(), drain, sizeof drain) ==
             static_cast<ssize_t>(sizeof drain)) {
      }
    }
    // Re-adopt connections whose serve pass finished on a worker.
    {
      const util::LockGuard lock(returning_mutex_);
      for (std::shared_ptr<Connection>& connection : returning_) {
        const int fd = connection->socket.fd();
        idle.emplace(fd, std::move(connection));
      }
      returning_.clear();
    }
    if ((pfds[0].revents & POLLIN) != 0) {
      Socket accepted = accept_connection(listener_, 0);
      if (accepted.valid()) {
        {
          const util::LockGuard lock(stats_mutex_);
          ++connections_;
        }
        auto connection = std::make_shared<Connection>();
        connection->socket = std::move(accepted);
        const int fd = connection->socket.fd();
        idle.emplace(fd, std::move(connection));
      }
    }
    // Readable idle connections move to the worker pool, one request each.
    for (std::size_t i = 2; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
        continue;
      }
      const auto it = idle.find(pfd_fds[i - 2]);
      if (it == idle.end()) {
        continue;
      }
      std::shared_ptr<Connection> connection = it->second;
      idle.erase(it);
      pool_->submit([this, connection] {
        try {
          serve_one(connection);
        } catch (...) {
          // Pool tasks must not throw; a broken connection just drops.
        }
      });
    }
  }
  // Drain: close idle connections (no request in flight on them).
  idle.clear();
}

void Server::serve_one(const std::shared_ptr<Connection>& connection) {
  // One serve pass: read whatever arrived, dispatch every complete frame in
  // arrival order, flush every response with one send. The deadline bounds
  // the whole pass, so a sender stalling mid-frame cannot pin a worker past
  // the request timeout.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(config_.request_timeout_ms);
  const auto remaining = [&deadline] {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  };
  std::string& inbuf = connection->inbuf;
  std::string outbuf;
  PassTally tally;
  bool keep = true;
  try {
    char scratch[16 * 1024];
    std::size_t served = 0;
    while (true) {
      // Dispatch every complete frame buffered so far — a later request
      // never waits on an earlier response's flush. Responses append to one
      // buffer in dispatch order, which preserves per-connection ordering.
      // Frames are parsed in place from inbuf (peek_frame views, no substr
      // copies) and the consumed prefix is erased once per batch.
      std::size_t consumed = 0;
      try {
        while (const std::optional<FrameView> frame = peek_frame(
                   std::string_view(inbuf).substr(consumed),
                   config_.max_frame_bytes)) {
          handle_payload(frame->payload, outbuf, tally);
          consumed += frame->frame_bytes;
          ++served;
        }
        inbuf.erase(0, consumed);
      } catch (...) {
        // Keep the offending frame at the front: the over-cap handler below
        // reads its declared length from inbuf to bound the drain.
        inbuf.erase(0, consumed);
        throw;
      }
      if (served > 0) {
        // A partial trailing frame (if any) stays in inbuf; the supervisor
        // polls the connection and the next pass completes it.
        break;
      }
      // No complete frame yet: read within the deadline. The supervisor saw
      // POLLIN, so the first read returns promptly on a healthy peer.
      const std::size_t n =
          recv_some(connection->socket, scratch, sizeof scratch, remaining());
      if (n == 0) {  // peer closed
        keep = false;
        if (!inbuf.empty()) {
          throw IoError("recv: peer closed mid-frame");
        }
        break;
      }
      inbuf.append(scratch, n);
    }
    if (!outbuf.empty()) {
      send_all(connection->socket, outbuf);
    }
  } catch (const Error& error) {
    // Framing violation (oversized frame, timeout, torn frame): flush the
    // responses already produced, answer with an error when the socket
    // still works, then drop the connection — the stream position is
    // unrecoverable.
    keep = false;
    try {
      if (const std::optional<std::uint32_t> declared =
              buffered_frame_length(inbuf);
          declared.has_value() && *declared > config_.max_frame_bytes) {
        // Over-cap frame: drain what the peer declared beyond what is
        // already buffered (bounded) before answering. Closing with unread
        // bytes in the receive buffer would RST the connection and destroy
        // the error response below.
        const std::size_t buffered = inbuf.size() - kFrameHeaderBytes;
        if (*declared > buffered) {
          discard_up_to(connection->socket,
                        std::min<std::size_t>(*declared - buffered,
                                              kDefaultMaxFrameBytes),
                        remaining());
        }
      }
      {
        const std::size_t header_at = begin_frame(outbuf);
        util::JsonWriter writer(outbuf);
        Response::failure(error.what()).dump_to(writer);
        end_frame(outbuf, header_at, config_.max_frame_bytes);
      }
      send_all(connection->socket, outbuf);
      ++tally.errors;
    } catch (const Error&) {
    }
  }
  if (tally.requests != 0 || tally.errors != 0 || tally.bytes_in != 0) {
    // Fold the pass totals in under one acquisition: readers of stats()
    // see all of this pass's counters or none of them.
    const util::LockGuard lock(stats_mutex_);
    requests_ += tally.requests;
    errors_ += tally.errors;
    bytes_in_ += tally.bytes_in;
    bytes_out_ += tally.bytes_out;
  }
  if (keep && !stopping_.load(std::memory_order_acquire)) {
    return_connection(connection);
  }
}

void Server::handle_payload(std::string_view payload, std::string& outbuf,
                            PassTally& tally) {
  const auto started = std::chrono::steady_clock::now();
  tally.bytes_in += payload.size() + kFrameHeaderBytes;
  Response response;
  try {
    // `payload` views the connection's receive buffer; the parser builds
    // the tree directly from it — no per-request payload copy.
    const Request request = Request::from_json(util::parse_json(payload));
    obs::Span span("svc:" + request.endpoint,
                   {.category = "svc", .phase = "svc"});
    response = dispatch(request);
  } catch (const Error& error) {
    response = Response::failure(error.what());
  }
  // Encode the response exactly once, in place behind its frame header:
  // open the frame in outbuf, dump the document straight into it, patch the
  // header. end_frame rolls the frame back out before throwing over-cap, so
  // outbuf stays a clean frame sequence for the violation path.
  const std::size_t header_at = begin_frame(outbuf);
  util::JsonWriter writer(outbuf);
  response.dump_to(writer);
  const std::size_t out_bytes =
      end_frame(outbuf, header_at, config_.max_frame_bytes);
  ++tally.requests;
  if (!response.ok) {
    ++tally.errors;
  }
  tally.bytes_out += out_bytes + kFrameHeaderBytes;
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - started);
  obs::count("svc.requests");
  obs::count("svc.bytes_out", out_bytes + kFrameHeaderBytes);
  obs::observe("svc.latency_us", static_cast<double>(elapsed.count()));
}

Response Server::dispatch(const Request& request) {
  const util::JsonValue& params = request.params;
  const std::string& endpoint = request.endpoint;
  try {
    if (endpoint == "health") {
      util::JsonObject result;
      result.emplace_back("status", util::JsonValue("ok"));
      result.emplace_back("role",
                          util::JsonValue(std::string(to_string(config_.role))));
      if (!config_.primary_address.empty()) {
        result.emplace_back("primary", util::JsonValue(config_.primary_address));
      }
      if (stats_extension_) {
        stats_extension_(result);
      }
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "stats") {
      const ServerStats stats = this->stats();
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      util::JsonObject result;
      result.emplace_back("connections", util::JsonValue(stats.connections));
      result.emplace_back("requests", util::JsonValue(stats.requests));
      result.emplace_back("errors", util::JsonValue(stats.errors));
      result.emplace_back("bytes_in", util::JsonValue(stats.bytes_in));
      result.emplace_back("bytes_out", util::JsonValue(stats.bytes_out));
      result.emplace_back("snapshot_rebuilds",
                          util::JsonValue(stats.snapshot_rebuilds));
      result.emplace_back("snapshot_full_rebuilds",
                          util::JsonValue(stats.snapshot_full_rebuilds));
      result.emplace_back("snapshot_delta_applies",
                          util::JsonValue(stats.snapshot_delta_applies));
      result.emplace_back("sql_cache_hits",
                          util::JsonValue(stats.sql_cache_hits));
      result.emplace_back("sql_cache_misses",
                          util::JsonValue(stats.sql_cache_misses));
      result.emplace_back(
          "knowledge_objects",
          util::JsonValue(static_cast<std::int64_t>(
              snap->knowledge_ids().size())));
      result.emplace_back("io500_runs",
                          util::JsonValue(static_cast<std::int64_t>(
                              snap->io500_ids().size())));
      util::JsonArray tables;
      for (const std::string& table : snap->database().table_names()) {
        tables.emplace_back(table);
      }
      result.emplace_back("tables", util::JsonValue(std::move(tables)));
      result.emplace_back("role",
                          util::JsonValue(std::string(to_string(config_.role))));
      if (stats_extension_) {
        stats_extension_(result);
      }
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "list") {
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      util::JsonArray knowledge;
      for (const auto& [id, command] : snap->list_commands()) {
        util::JsonObject entry;
        entry.emplace_back("id", util::JsonValue(id));
        entry.emplace_back("command", util::JsonValue(command));
        knowledge.emplace_back(std::move(entry));
      }
      util::JsonArray io500;
      for (const std::int64_t id : snap->io500_ids()) {
        io500.emplace_back(id);
      }
      util::JsonObject result;
      result.emplace_back("knowledge", util::JsonValue(std::move(knowledge)));
      result.emplace_back("io500", util::JsonValue(std::move(io500)));
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "sql") {
      const std::string statement = params.at("statement").as_string();
      // Parse through the prepared-statement cache: a repeated query text
      // (pipelining clients, dashboards polling the same SELECT) reuses the
      // cached AST. ParseError propagates to the catch below unchanged.
      const std::shared_ptr<const db::Statement> parsed =
          sql_statements_.get(statement);
      if (!db::statement_is_read_only(*parsed)) {
        return Response::failure(
            "sql endpoint is read-only; store knowledge through "
            "knowledge/store, or run `iokc sql --write` against the "
            "database file directly");
      }
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      return Response::success(
          result_set_to_json(snap->database().execute_prepared(*parsed)));
    }
    if (endpoint == "knowledge/get") {
      const std::int64_t id = params.at("id").as_int();
      const std::string kind = param_string(params, "kind", "knowledge");
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      util::JsonObject result;
      result.emplace_back("kind", util::JsonValue(kind));
      if (kind == "io500") {
        result.emplace_back("object", snap->load_io500(id).to_json());
      } else if (kind == "knowledge") {
        result.emplace_back("object", snap->load_knowledge(id).to_json());
      } else {
        return Response::failure("knowledge/get: unknown kind '" + kind +
                                 "' (use 'knowledge' or 'io500')");
      }
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "knowledge/store") {
      if (config_.role == ServerConfig::Role::kReplica) {
        // The message shape is part of the protocol: clients parse the
        // primary address out of the "write to primary at <addr>" suffix
        // (see repl::parse_primary_redirect).
        return Response::failure(
            "read-only replica; write to primary at " +
            (config_.primary_address.empty() ? std::string("unknown")
                                             : config_.primary_address));
      }
      const util::JsonValue& object = params.at("object");
      // Sniff the kind the same way import_json_file does, and parse
      // *before* taking the writer lock.
      const bool is_io500 = object.find("testcases") != nullptr;
      std::int64_t id = 0;
      if (is_io500) {
        const knowledge::Io500Knowledge parsed =
            knowledge::Io500Knowledge::from_json(object);
        store_.with_write([&](persist::KnowledgeRepository& repository) {
          id = repository.store(parsed);
        });
      } else {
        const knowledge::Knowledge parsed =
            knowledge::Knowledge::from_json(object);
        store_.with_write([&](persist::KnowledgeRepository& repository) {
          id = repository.store(parsed);
        });
      }
      util::JsonObject result;
      result.emplace_back("id", util::JsonValue(id));
      result.emplace_back("kind",
                          util::JsonValue(is_io500 ? "io500" : "knowledge"));
      if (commit_gate_) {
        // The store is locally durable; now wait out the replication ack
        // policy. Any sequence >= this write's covers it (the stream is
        // contiguous), so the post-store position is a safe gate target.
        const bool acked = commit_gate_(repository_.applied_seq());
        result.emplace_back("replication",
                            util::JsonValue(acked ? "acked" : "ack-timeout"));
      }
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "predict") {
      const std::string command = params.at("command").as_string();
      const std::string operation = param_string(params, "operation", "write");
      const usage::ConfigFeatures query =
          usage::ConfigFeatures::from_command(command);
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      const std::vector<usage::TrainingSample> samples =
          usage::build_training_set(*snap, operation);
      if (samples.empty()) {
        return Response::failure("predict: the knowledge base holds no IOR " +
                                 operation + " runs");
      }
      util::JsonObject result;
      result.emplace_back(
          "samples",
          util::JsonValue(static_cast<std::int64_t>(samples.size())));
      if (samples.size() >= 8) {
        const usage::BandwidthPredictor predictor =
            usage::BandwidthPredictor::fit(samples);
        result.emplace_back("regression_mib",
                            util::JsonValue(predictor.predict(query)));
      } else {
        result.emplace_back("regression_mib", util::JsonValue(nullptr));
      }
      result.emplace_back("knn_mib",
                          util::JsonValue(usage::knn_predict(samples, query)));
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "recommend") {
      const std::string command = params.at("command").as_string();
      const std::string operation = param_string(params, "operation", "write");
      const gen::IorConfig target = gen::parse_ior_command(command);
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      const usage::RecommendationReport report =
          usage::recommend(*snap, target, operation);
      util::JsonArray recommendations;
      for (const usage::Recommendation& entry : report.recommendations) {
        util::JsonObject item;
        item.emplace_back("tunable", util::JsonValue(entry.tunable));
        item.emplace_back("current", util::JsonValue(entry.current));
        item.emplace_back("suggested", util::JsonValue(entry.suggested));
        item.emplace_back("expected_gain",
                          util::JsonValue(entry.expected_gain));
        item.emplace_back("rationale", util::JsonValue(entry.rationale));
        recommendations.emplace_back(std::move(item));
      }
      util::JsonObject result;
      result.emplace_back(
          "evidence_runs",
          util::JsonValue(static_cast<std::int64_t>(report.evidence_runs)));
      result.emplace_back("recommendations",
                          util::JsonValue(std::move(recommendations)));
      return Response::success(util::JsonValue(std::move(result)));
    }
    if (endpoint == "anomaly") {
      const std::int64_t id = params.at("id").as_int();
      const std::shared_ptr<persist::KnowledgeRepository> snap =
          store_.snapshot();
      const knowledge::Knowledge object = snap->load_knowledge(id);
      const analysis::AnomalyReport report = analysis::with_job_context(
          analysis::detect_in_knowledge(object), object);
      return Response::success(anomaly_report_to_json(report));
    }
    return Response::failure("unknown endpoint '" + endpoint + "'");
  } catch (const Error& error) {
    return Response::failure(error.what());
  }
}

// -- ShutdownPipe -----------------------------------------------------------

namespace {
/// The write end the signal handler uses; mirrors ShutdownPipe::instance().
std::atomic<int> g_shutdown_write_fd{-1};

extern "C" void shutdown_signal_handler(int) {
  const int fd = g_shutdown_write_fd.load(std::memory_order_relaxed);
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}
}  // namespace

ShutdownPipe::ShutdownPipe() {
  int fds[2];
  if (::pipe(fds) != 0) {
    // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror only formats the message
    throw IoError(std::string("pipe: ") + std::strerror(errno));
  }
  read_fd_ = fds[0];
  write_fd_ = fds[1];
  g_shutdown_write_fd.store(write_fd_, std::memory_order_relaxed);
}

ShutdownPipe& ShutdownPipe::instance() {
  static ShutdownPipe pipe;
  return pipe;
}

void ShutdownPipe::trigger() {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(write_fd_, &byte, 1);
}

void ShutdownPipe::install_signal_handlers() {
  struct sigaction action {};
  action.sa_handler = shutdown_signal_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

void wait_for_shutdown(Server& server, int stop_fd) {
  pollfd pfd{};
  pfd.fd = stop_fd;
  pfd.events = POLLIN;
  while (true) {
    const int rc = ::poll(&pfd, 1, -1);
    if (rc > 0) {
      break;
    }
    if (rc < 0 && errno != EINTR) {
      break;  // cannot wait; fall through to a clean stop
    }
  }
  // Drain every pending trigger byte so a later wait starts fresh.
  char drain[64];
  while (::read(stop_fd, drain, sizeof drain) ==
         static_cast<ssize_t>(sizeof drain)) {
  }
  server.stop();
}

}  // namespace iokc::svc
