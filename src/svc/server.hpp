// The knowledge service daemon (DESIGN.md §5e): a TCP server exposing the
// knowledge base over the length-prefixed JSON protocol of protocol.hpp.
//
// Concurrency model — listener + workers on the shared util::ThreadPool:
//   - One supervisor thread owns the listening socket and every *idle*
//     connection, multiplexing them through poll(2).
//   - When a connection becomes readable, the supervisor hands it to the
//     worker pool as one serve *pass*: read whatever bytes arrived, dispatch
//     every complete frame in the buffer (a pipelining client gets all its
//     buffered requests handled back-to-back, none waiting for the previous
//     response to flush), write all responses with a single send, and hand
//     the connection back to the supervisor. Responses are appended in
//     dispatch order, so per-connection response ordering always matches
//     request ordering. A connection occupies a worker only while requests
//     are in flight, so many idle connections share few workers.
//   - A partial trailing frame survives between passes in the connection's
//     receive buffer; the supervisor polls for the rest of it.
//   - Reads run against SnapshotStore clones (copy-on-read snapshot
//     isolation); the only write endpoint (knowledge/store) serializes on
//     the store's writer lock against the primary repository.
//
// Limits: per-pass read timeout (bounds a sender stalling mid-frame), frame
// byte cap both directions. Drain: stop() closes the listener, lets
// in-flight requests finish (bounded by the request timeout), then closes
// every connection — no request is ever abandoned mid-response.
//
// Endpoints (request/response schemas in DESIGN.md §5e):
//   health, stats, list, sql (read-only), knowledge/get, knowledge/store,
//   predict, recommend, anomaly
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/persist/repository.hpp"
#include "src/svc/protocol.hpp"
#include "src/svc/snapshot.hpp"
#include "src/svc/socket.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::svc {

struct ServerConfig {
  /// Cluster role, for reporting and write gating. A replica serves every
  /// read endpoint from its snapshots but refuses knowledge/store with a
  /// redirect to `primary_address` — replicas apply writes only through the
  /// WAL stream (src/repl), never from clients, or their journal sequence
  /// would diverge from the primary's.
  enum class Role { kStandalone, kPrimary, kReplica };

  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;      // 0 picks an ephemeral port
  std::size_t threads = 4;     // worker pool size (0 = hardware threads)
  int request_timeout_ms = 5000;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
  Role role = Role::kStandalone;
  std::string primary_address;  // "host:port" writes redirect to (replica)
};

/// The role as health/stats report it.
std::string_view to_string(ServerConfig::Role role);

/// Monotonic counters since start(). stats() snapshots the request counters
/// under one lock acquisition, so the values in one ServerStats are from the
/// same instant (requests/errors/bytes never mix epochs).
struct ServerStats {
  std::uint64_t connections = 0;  // accepted
  std::uint64_t requests = 0;     // responses written (ok or error)
  std::uint64_t errors = 0;       // error responses among them
  std::uint64_t bytes_in = 0;     // request frames, headers included
  std::uint64_t bytes_out = 0;    // response frames, headers included
  /// Snapshot clones built since start(), split by path (snapshot.hpp):
  /// full dump rebuilds vs. cheap delta applies. snapshot_rebuilds is their
  /// sum, kept for compatibility with pre-split consumers.
  std::uint64_t snapshot_rebuilds = 0;
  std::uint64_t snapshot_full_rebuilds = 0;
  std::uint64_t snapshot_delta_applies = 0;
  /// Prepared-statement cache traffic on the sql endpoint: hits are requests
  /// that skipped reparsing their statement text.
  std::uint64_t sql_cache_hits = 0;
  std::uint64_t sql_cache_misses = 0;
};

class Server {
 public:
  /// Serves `repository`; the caller keeps ownership and must not mutate it
  /// behind the server's back while the server runs.
  Server(persist::KnowledgeRepository& repository, ServerConfig config = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and starts the supervisor + worker pool. Throws
  /// IoError when the address is unavailable.
  void start();

  /// The bound port (after start()).
  std::uint16_t port() const { return port_; }

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Graceful drain: stop accepting, finish in-flight requests, close every
  /// connection, join supervisor and workers. Idempotent; safe from any
  /// thread (the SIGTERM path calls it via wait_for_shutdown).
  void stop();

  ServerStats stats() const;

  /// One request document -> one response document, exactly as the network
  /// path dispatches it (exposed so tests can exercise endpoint logic
  /// without sockets).
  Response dispatch(const Request& request);

  // -- Replication hooks (install before start(); read lock-free by
  // -- workers, so they must not change while the server runs) --------------

  /// Runs after a locally durable knowledge/store with the repository's
  /// post-store journal sequence; a primary's shipper blocks here until its
  /// ack policy is met. Returns false on ack timeout — the store response
  /// then reports "replication": "ack-timeout" instead of "acked".
  using CommitGate = std::function<bool(std::uint64_t)>;
  void set_commit_gate(CommitGate gate) { commit_gate_ = std::move(gate); }

  /// Extra key/values merged into the health and stats response objects
  /// (role details, journal epoch/offset, per-replica ack lag).
  using StatsExtension = std::function<void(util::JsonObject&)>;
  void set_stats_extension(StatsExtension extension) {
    stats_extension_ = std::move(extension);
  }

  /// Mutates the served repository through the snapshot store's write path,
  /// so snapshot versions advance and readers see the change — the replica
  /// WAL-apply and bootstrap-install entry point.
  void with_repository_write(
      const std::function<void(persist::KnowledgeRepository&)>& write) {
    store_.with_write(write);
  }

  const ServerConfig& config() const { return config_; }

 private:
  /// One client connection: the socket plus bytes received ahead of the
  /// frames already dispatched. A partial trailing frame waits here between
  /// serve passes — no worker blocks on it; the supervisor polls for the
  /// rest. Only one thread touches a Connection at a time (the supervisor
  /// hands it to exactly one worker and re-adopts it afterwards).
  struct Connection {
    Socket socket;
    std::string inbuf;
  };

  /// Counters one serve pass accumulates locally, folded into the server
  /// totals under stats_mutex_ once per pass — one lock acquisition per
  /// batch of pipelined requests, not one per request.
  struct PassTally {
    std::uint64_t requests = 0;
    std::uint64_t errors = 0;
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;
  };

  void supervise();
  void serve_one(const std::shared_ptr<Connection>& connection);
  /// Parses and dispatches one buffered request payload (a view into the
  /// connection's receive buffer — parsed in place, never copied), encoding
  /// the response frame directly into `outbuf`. Never throws for
  /// request-level failures (those become error responses); propagates
  /// ConfigError when the response itself exceeds the frame cap (with the
  /// partial frame rolled back out of `outbuf`).
  void handle_payload(std::string_view payload, std::string& outbuf,
                      PassTally& tally);
  void return_connection(const std::shared_ptr<Connection>& connection);
  void wake_supervisor();

  persist::KnowledgeRepository& repository_;
  ServerConfig config_;
  SnapshotStore store_;
  CommitGate commit_gate_;          // set before start(); see above
  StatsExtension stats_extension_;  // set before start(); see above
  /// Parsed-statement cache for the sql endpoint: pipelining clients and
  /// dashboards repeat the same query texts, so repeated requests execute
  /// the cached AST against the current snapshot instead of reparsing. The
  /// cache locks itself (rank db.statement_cache, below every svc lock).
  db::StatementCache sql_statements_;

  Socket listener_;
  Socket wake_read_;
  Socket wake_write_;  // self-pipe (as sockets for uniform RAII)
  std::uint16_t port_ = 0;
  std::unique_ptr<util::ThreadPool> pool_;
  std::thread supervisor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Connections handed back by finished worker tasks, waiting for the
  /// supervisor to resume polling them.
  util::Mutex returning_mutex_{util::LockRank::kSvc, "svc.returning"};
  std::vector<std::shared_ptr<Connection>> returning_
      IOKC_GUARDED_BY(returning_mutex_);

  /// Guards the request counters as one unit so stats() reads a coherent
  /// snapshot (the old per-counter relaxed atomics could pair `requests`
  /// from one instant with `bytes_out` from another). Same rank (kSvc) as
  /// svc.returning and svc.snapshot: equal ranks never nest, and no path
  /// here holds two of them together.
  mutable util::Mutex stats_mutex_{util::LockRank::kSvc, "svc.stats"};
  std::uint64_t connections_ IOKC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t requests_ IOKC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t errors_ IOKC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t bytes_in_ IOKC_GUARDED_BY(stats_mutex_) = 0;
  std::uint64_t bytes_out_ IOKC_GUARDED_BY(stats_mutex_) = 0;
};

// -- Process shutdown plumbing for `iokc serve` -----------------------------

/// The self-pipe SIGTERM/SIGINT write into. wait_for_shutdown() blocks on
/// the read end, so signal delivery turns into a normal poll wakeup —
/// everything after the handler runs on a regular thread.
class ShutdownPipe {
 public:
  static ShutdownPipe& instance();

  int read_fd() const { return read_fd_; }
  /// Requests shutdown; async-signal-safe (one write(2)). Also callable
  /// from tests to emulate SIGTERM without killing the test runner.
  void trigger();
  /// Routes SIGTERM and SIGINT to trigger().
  void install_signal_handlers();

  ShutdownPipe(const ShutdownPipe&) = delete;
  ShutdownPipe& operator=(const ShutdownPipe&) = delete;

 private:
  ShutdownPipe();
  int read_fd_ = -1;
  int write_fd_ = -1;
};

/// Blocks until `stop_fd` becomes readable (a ShutdownPipe trigger), drains
/// the pipe, and gracefully stops the server.
void wait_for_shutdown(Server& server, int stop_fd);

}  // namespace iokc::svc
