// Blocking client for the knowledge service: one TCP connection, one
// request/response exchange per call(), retrying the initial connect so
// scripts can race `iokc serve` startup.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/svc/protocol.hpp"
#include "src/svc/socket.hpp"
#include "src/util/json.hpp"

namespace iokc::svc {

struct ClientOptions {
  int connect_timeout_ms = 2000;  // per connect attempt
  int request_timeout_ms = 10000;
  int connect_retries = 0;        // extra attempts after the first
  /// Base retry pacing. "Connection refused" failures retry at exactly this
  /// fixed pace — the listener is simply not up yet (a restart window) and a
  /// fast retry is what wins the race. Timeout-class failures back off
  /// exponentially from this base instead: the peer is saturated or
  /// unreachable, and a fleet of fixed-interval retriers would hammer a
  /// recovering primary in lockstep.
  int retry_delay_ms = 100;
  /// Cap on the exponential backoff for timeout-class failures.
  int max_retry_delay_ms = 2000;
  /// Seed for the deterministic backoff jitter (splitmix64); jitter spreads
  /// retriers that failed at the same instant, determinism keeps tests and
  /// crash campaigns reproducible.
  std::uint64_t backoff_seed = 0x9E3779B97F4A7C15ull;
  std::size_t max_frame_bytes = kDefaultMaxFrameBytes;
};

/// The delay before retry number `attempt` (1-based) given the failure
/// message of the attempt that just failed. Refusals pace at the fixed
/// retry_delay_ms; timeouts grow retry_delay_ms * 2^(attempt-1) (capped at
/// max_retry_delay_ms) plus jitter in [0, delay/2] drawn deterministically
/// from `jitter_state`. Exposed so the policy is unit-testable without
/// sleeping.
int connect_retry_delay_ms(const ClientOptions& options, int attempt,
                           const std::string& error,
                           std::uint64_t& jitter_state);

class Client {
 public:
  /// Connects (with retries per `options`); throws IoError when every
  /// attempt fails.
  static Client connect(const std::string& host, std::uint16_t port,
                        ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// One request/response round trip. Error *responses* come back as
  /// Response{ok=false}; transport failures (timeout, server gone) throw
  /// IoError and leave the connection unusable.
  Response call(const std::string& endpoint,
                util::JsonValue params = util::JsonValue(util::JsonObject{}));

  /// Pipelined batch: encodes every request into one buffer, flushes it
  /// with a single send, then reads the responses back in order — the
  /// server dispatches request k+1 without waiting for response k to
  /// flush. Returns one Response per Request, in request order. Keep
  /// batches bounded: the whole batch is encoded in memory and both sides
  /// cap individual frames at max_frame_bytes. Transport failures throw
  /// IoError and leave the connection unusable.
  std::vector<Response> call_pipelined(const std::vector<Request>& requests);

  bool connected() const { return socket_.valid(); }
  void close() { socket_.close(); }

 private:
  Client(Socket socket, ClientOptions options);

  Socket socket_;
  ClientOptions options_;
  /// Request-encoding buffer reused across call()s; capacity survives.
  std::string dump_buf_;
};

}  // namespace iokc::svc
