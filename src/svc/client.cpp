#include "src/svc/client.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::svc {

Client::Client(Socket socket, ClientOptions options)
    : socket_(std::move(socket)), options_(options) {}

namespace {

/// Refusal: the listener is not up (a restart window a fast retry wins).
bool refused_connect_error(const std::string& message) {
  return message.find("connection refused") != std::string::npos;
}

/// Connect failures worth retrying: refusal (the server's listener is not up
/// yet — the startup window a slow sanitized build can stretch past a
/// second) and timeouts. Anything else (bad address, resolution failure) is
/// permanent and retrying would just multiply the latency of the error.
bool transient_connect_error(const std::string& message) {
  return refused_connect_error(message) ||
         message.find("timed out") != std::string::npos;
}

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

int connect_retry_delay_ms(const ClientOptions& options, int attempt,
                           const std::string& error,
                           std::uint64_t& jitter_state) {
  if (refused_connect_error(error)) {
    return options.retry_delay_ms;
  }
  // Timeout class: exponential backoff from the base, capped, plus jitter
  // in [0, delay/2] so synchronized retriers spread out.
  std::int64_t delay = options.retry_delay_ms;
  for (int i = 1; i < attempt && delay < options.max_retry_delay_ms; ++i) {
    delay *= 2;
  }
  delay = std::min<std::int64_t>(delay, options.max_retry_delay_ms);
  const std::int64_t jitter_span = delay / 2 + 1;
  delay += static_cast<std::int64_t>(splitmix64(jitter_state) %
                                     static_cast<std::uint64_t>(jitter_span));
  return static_cast<int>(
      std::min<std::int64_t>(delay, options.max_retry_delay_ms));
}

Client Client::connect(const std::string& host, std::uint16_t port,
                       ClientOptions options) {
  std::string last_error;
  std::uint64_t jitter_state = options.backoff_seed ^ port;
  for (int attempt = 0; attempt <= options.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(
          connect_retry_delay_ms(options, attempt, last_error, jitter_state)));
    }
    try {
      return Client(connect_to(host, port, options.connect_timeout_ms),
                    options);
    } catch (const IoError& error) {
      last_error = error.what();
      if (!transient_connect_error(last_error)) {
        throw;
      }
    }
  }
  throw IoError("connect to " + host + ":" + std::to_string(port) +
                " failed after " + std::to_string(options.connect_retries + 1) +
                " attempt(s): " + last_error);
}

Response Client::call(const std::string& endpoint, util::JsonValue params) {
  if (!socket_.valid()) {
    throw IoError("client connection is closed");
  }
  Request request;
  request.endpoint = endpoint;
  request.params = std::move(params);
  // Encode into the connection's reusable buffer (stops allocating after
  // warm-up) and gather header + payload into one send.
  dump_buf_.clear();
  util::JsonWriter writer(dump_buf_);
  request.dump_to(writer);
  send_frame_v(socket_, writer.view(), options_.max_frame_bytes);
  const std::optional<std::string> frame =
      read_frame(socket_, options_.max_frame_bytes, options_.request_timeout_ms);
  if (!frame.has_value()) {
    throw IoError("server closed the connection before responding");
  }
  return Response::from_json(util::parse_json(*frame));
}

std::vector<Response> Client::call_pipelined(
    const std::vector<Request>& requests) {
  if (!socket_.valid()) {
    throw IoError("client connection is closed");
  }
  if (requests.empty()) {
    return {};
  }
  // Each request dumps straight into the wire buffer behind its header
  // placeholder — one encode per request, no per-frame payload strings.
  std::string wire;
  util::JsonWriter writer(wire);
  for (const Request& request : requests) {
    const std::size_t header_at = begin_frame(wire);
    request.dump_to(writer);
    end_frame(wire, header_at, options_.max_frame_bytes);
  }
  send_all(socket_, wire);
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::optional<std::string> frame = read_frame(
        socket_, options_.max_frame_bytes, options_.request_timeout_ms);
    if (!frame.has_value()) {
      throw IoError("server closed the connection after " +
                    std::to_string(i) + " of " +
                    std::to_string(requests.size()) + " pipelined responses");
    }
    responses.push_back(Response::from_json(util::parse_json(*frame)));
  }
  return responses;
}

}  // namespace iokc::svc
