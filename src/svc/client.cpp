#include "src/svc/client.hpp"

#include <chrono>
#include <thread>
#include <utility>

#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::svc {

Client::Client(Socket socket, ClientOptions options)
    : socket_(std::move(socket)), options_(options) {}

namespace {

/// Connect failures worth retrying: refusal (the server's listener is not up
/// yet — the startup window a slow sanitized build can stretch past a
/// second) and timeouts. Anything else (bad address, resolution failure) is
/// permanent and retrying would just multiply the latency of the error.
bool transient_connect_error(const std::string& message) {
  return message.find("connection refused") != std::string::npos ||
         message.find("timed out") != std::string::npos;
}

}  // namespace

Client Client::connect(const std::string& host, std::uint16_t port,
                       ClientOptions options) {
  std::string last_error;
  for (int attempt = 0; attempt <= options.connect_retries; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.retry_delay_ms));
    }
    try {
      return Client(connect_to(host, port, options.connect_timeout_ms),
                    options);
    } catch (const IoError& error) {
      last_error = error.what();
      if (!transient_connect_error(last_error)) {
        throw;
      }
    }
  }
  throw IoError("connect to " + host + ":" + std::to_string(port) +
                " failed after " + std::to_string(options.connect_retries + 1) +
                " attempt(s): " + last_error);
}

Response Client::call(const std::string& endpoint, util::JsonValue params) {
  if (!socket_.valid()) {
    throw IoError("client connection is closed");
  }
  Request request;
  request.endpoint = endpoint;
  request.params = std::move(params);
  // Encode into the connection's reusable buffer (stops allocating after
  // warm-up) and gather header + payload into one send.
  dump_buf_.clear();
  util::JsonWriter writer(dump_buf_);
  request.dump_to(writer);
  send_frame_v(socket_, writer.view(), options_.max_frame_bytes);
  const std::optional<std::string> frame =
      read_frame(socket_, options_.max_frame_bytes, options_.request_timeout_ms);
  if (!frame.has_value()) {
    throw IoError("server closed the connection before responding");
  }
  return Response::from_json(util::parse_json(*frame));
}

std::vector<Response> Client::call_pipelined(
    const std::vector<Request>& requests) {
  if (!socket_.valid()) {
    throw IoError("client connection is closed");
  }
  if (requests.empty()) {
    return {};
  }
  // Each request dumps straight into the wire buffer behind its header
  // placeholder — one encode per request, no per-frame payload strings.
  std::string wire;
  util::JsonWriter writer(wire);
  for (const Request& request : requests) {
    const std::size_t header_at = begin_frame(wire);
    request.dump_to(writer);
    end_frame(wire, header_at, options_.max_frame_bytes);
  }
  send_all(socket_, wire);
  std::vector<Response> responses;
  responses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const std::optional<std::string> frame = read_frame(
        socket_, options_.max_frame_bytes, options_.request_timeout_ms);
    if (!frame.has_value()) {
      throw IoError("server closed the connection after " +
                    std::to_string(i) + " of " +
                    std::to_string(requests.size()) + " pipelined responses");
    }
    responses.push_back(Response::from_json(util::parse_json(*frame)));
  }
  return responses;
}

}  // namespace iokc::svc
