#include "src/svc/protocol.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "src/svc/socket.hpp"
#include "src/util/error.hpp"

namespace iokc::svc {

std::array<char, kFrameHeaderBytes> encode_frame_header(
    std::size_t payload_bytes) {
  if (payload_bytes > 0xFFFFFFFFu) {
    throw ConfigError("frame payload too large: " +
                      std::to_string(payload_bytes) + " bytes");
  }
  const auto value = static_cast<std::uint32_t>(payload_bytes);
  return {static_cast<char>((value >> 24) & 0xFF),
          static_cast<char>((value >> 16) & 0xFF),
          static_cast<char>((value >> 8) & 0xFF),
          static_cast<char>(value & 0xFF)};
}

std::size_t decode_frame_header(
    const std::array<char, kFrameHeaderBytes>& header, std::size_t max_bytes) {
  std::uint32_t value = 0;
  for (const char byte : header) {
    value = (value << 8) | static_cast<unsigned char>(byte);
  }
  if (value > max_bytes) {
    throw ParseError("frame of " + std::to_string(value) +
                     " bytes exceeds the " + std::to_string(max_bytes) +
                     "-byte cap");
  }
  return value;
}

util::JsonValue Request::to_json() const {
  util::JsonObject object;
  object.emplace_back("endpoint", util::JsonValue(endpoint));
  object.emplace_back("params", params);
  return util::JsonValue(std::move(object));
}

Request Request::from_json(const util::JsonValue& json) {
  Request request;
  request.endpoint = json.at("endpoint").as_string();
  if (const util::JsonValue* params = json.find("params")) {
    if (!params->is_object()) {
      throw ParseError("request 'params' must be a JSON object");
    }
    request.params = *params;
  } else {
    request.params = util::JsonValue(util::JsonObject{});
  }
  return request;
}

Response Response::success(util::JsonValue result) {
  Response response;
  response.ok = true;
  response.result = std::move(result);
  return response;
}

Response Response::failure(std::string error) {
  Response response;
  response.ok = false;
  response.error = std::move(error);
  return response;
}

util::JsonValue Response::to_json() const {
  util::JsonObject object;
  object.emplace_back("ok", util::JsonValue(ok));
  if (ok) {
    object.emplace_back("result", result);
  } else {
    object.emplace_back("error", util::JsonValue(error));
  }
  return util::JsonValue(std::move(object));
}

Response Response::from_json(const util::JsonValue& json) {
  Response response;
  response.ok = json.at("ok").as_bool();
  if (response.ok) {
    response.result = json.at("result");
  } else {
    response.error = json.at("error").as_string();
  }
  return response;
}

void append_frame_to(std::string& wire, const std::string& payload,
                     std::size_t max_bytes) {
  if (payload.size() > max_bytes) {
    throw ConfigError("frame of " + std::to_string(payload.size()) +
                      " bytes exceeds the " + std::to_string(max_bytes) +
                      "-byte cap");
  }
  const std::array<char, kFrameHeaderBytes> header =
      encode_frame_header(payload.size());
  wire += std::string_view(header.data(), header.size());
  wire += payload;
}

void write_frame(Socket& socket, const std::string& payload,
                 std::size_t max_bytes) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  append_frame_to(wire, payload, max_bytes);
  // One send for header + payload: a frame is never visible half-written to
  // the kernel, and small requests stay in one TCP segment.
  send_all(socket, wire);
}

std::optional<std::string> extract_frame(std::string& buffer,
                                         std::size_t max_bytes) {
  if (buffer.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  std::array<char, kFrameHeaderBytes> header{};
  std::copy_n(buffer.data(), kFrameHeaderBytes, header.data());
  // Over-cap throws ParseError with the buffer intact — the caller reads
  // the declared length via buffered_frame_length to bound its drain.
  const std::size_t length = decode_frame_header(header, max_bytes);
  if (buffer.size() < kFrameHeaderBytes + length) {
    return std::nullopt;
  }
  std::string payload = buffer.substr(kFrameHeaderBytes, length);
  buffer.erase(0, kFrameHeaderBytes + length);
  return payload;
}

std::optional<std::uint32_t> buffered_frame_length(std::string_view buffer) {
  if (buffer.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    value = (value << 8) | static_cast<unsigned char>(buffer[i]);
  }
  return value;
}

std::optional<std::string> read_frame(Socket& socket, std::size_t max_bytes,
                                      int timeout_ms) {
  std::array<char, kFrameHeaderBytes> header{};
  if (!recv_exact(socket, header.data(), header.size(), timeout_ms)) {
    return std::nullopt;  // clean EOF at a frame boundary
  }
  std::size_t length = 0;
  try {
    length = decode_frame_header(header, max_bytes);
  } catch (const ParseError&) {
    // Over-cap frame: drain what the peer declared (bounded) before
    // surfacing the violation. Closing with unread bytes in the receive
    // buffer would RST the connection and destroy the error response the
    // server is about to send.
    std::uint32_t declared = 0;
    for (const char byte : header) {
      declared = (declared << 8) | static_cast<unsigned char>(byte);
    }
    discard_up_to(socket,
                  std::min<std::size_t>(declared, kDefaultMaxFrameBytes),
                  timeout_ms);
    throw;
  }
  std::string payload(length, '\0');
  if (length > 0 &&
      !recv_exact(socket, payload.data(), length, timeout_ms)) {
    throw IoError("recv: peer closed mid-frame");
  }
  return payload;
}

}  // namespace iokc::svc
