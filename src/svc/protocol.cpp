#include "src/svc/protocol.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "src/svc/socket.hpp"
#include "src/util/error.hpp"
#include "src/util/json_writer.hpp"

namespace iokc::svc {

std::array<char, kFrameHeaderBytes> encode_frame_header(
    std::size_t payload_bytes) {
  if (payload_bytes > 0xFFFFFFFFu) {
    throw ConfigError("frame payload too large: " +
                      std::to_string(payload_bytes) + " bytes");
  }
  const auto value = static_cast<std::uint32_t>(payload_bytes);
  return {static_cast<char>((value >> 24) & 0xFF),
          static_cast<char>((value >> 16) & 0xFF),
          static_cast<char>((value >> 8) & 0xFF),
          static_cast<char>(value & 0xFF)};
}

std::size_t decode_frame_header(
    const std::array<char, kFrameHeaderBytes>& header, std::size_t max_bytes) {
  std::uint32_t value = 0;
  for (const char byte : header) {
    value = (value << 8) | static_cast<unsigned char>(byte);
  }
  if (value > max_bytes) {
    throw ParseError("frame of " + std::to_string(value) +
                     " bytes exceeds the " + std::to_string(max_bytes) +
                     "-byte cap");
  }
  return value;
}

util::JsonValue Request::to_json() const {
  util::JsonObject object;
  object.emplace_back("endpoint", util::JsonValue(endpoint));
  object.emplace_back("params", params);
  return util::JsonValue(std::move(object));
}

void Request::dump_to(util::JsonWriter& writer) const {
  writer.raw(std::string_view("{\"endpoint\":"));
  writer.string(endpoint);
  writer.raw(std::string_view(",\"params\":"));
  params.dump_to(writer);
  writer.raw('}');
}

Request Request::from_json(const util::JsonValue& json) {
  Request request;
  request.endpoint = json.at("endpoint").as_string();
  if (const util::JsonValue* params = json.find("params")) {
    if (!params->is_object()) {
      throw ParseError("request 'params' must be a JSON object");
    }
    request.params = *params;
  } else {
    request.params = util::JsonValue(util::JsonObject{});
  }
  return request;
}

Response Response::success(util::JsonValue result) {
  Response response;
  response.ok = true;
  response.result = std::move(result);
  return response;
}

Response Response::failure(std::string error) {
  Response response;
  response.ok = false;
  response.error = std::move(error);
  return response;
}

util::JsonValue Response::to_json() const {
  util::JsonObject object;
  object.emplace_back("ok", util::JsonValue(ok));
  if (ok) {
    object.emplace_back("result", result);
  } else {
    object.emplace_back("error", util::JsonValue(error));
  }
  return util::JsonValue(std::move(object));
}

void Response::dump_to(util::JsonWriter& writer) const {
  writer.raw(std::string_view("{\"ok\":"));
  writer.boolean(ok);
  if (ok) {
    writer.raw(std::string_view(",\"result\":"));
    result.dump_to(writer);
  } else {
    writer.raw(std::string_view(",\"error\":"));
    writer.string(error);
  }
  writer.raw('}');
}

Response Response::from_json(const util::JsonValue& json) {
  Response response;
  response.ok = json.at("ok").as_bool();
  if (response.ok) {
    response.result = json.at("result");
  } else {
    response.error = json.at("error").as_string();
  }
  return response;
}

namespace {

[[noreturn]] void fail_over_cap(std::size_t payload_bytes,
                                std::size_t max_bytes) {
  throw ConfigError("frame of " + std::to_string(payload_bytes) +
                    " bytes exceeds the " + std::to_string(max_bytes) +
                    "-byte cap");
}

}  // namespace

void append_frame_to(std::string& wire, std::string_view payload,
                     std::size_t max_bytes) {
  if (payload.size() > max_bytes) {
    fail_over_cap(payload.size(), max_bytes);
  }
  const std::array<char, kFrameHeaderBytes> header =
      encode_frame_header(payload.size());
  wire += std::string_view(header.data(), header.size());
  wire += payload;
}

std::size_t begin_frame(std::string& wire) {
  const std::size_t header_offset = wire.size();
  wire.append(kFrameHeaderBytes, '\0');
  return header_offset;
}

std::size_t end_frame(std::string& wire, std::size_t header_offset,
                      std::size_t max_bytes) {
  const std::size_t payload_bytes =
      wire.size() - header_offset - kFrameHeaderBytes;
  if (payload_bytes > max_bytes) {
    // Roll the half-built frame back out so the buffer stays a clean frame
    // sequence the caller can still flush or extend.
    wire.resize(header_offset);
    fail_over_cap(payload_bytes, max_bytes);
  }
  const std::array<char, kFrameHeaderBytes> header =
      encode_frame_header(payload_bytes);
  std::copy_n(header.data(), header.size(), wire.data() + header_offset);
  return payload_bytes;
}

void send_frame_v(Socket& socket, std::string_view payload,
                  std::size_t max_bytes) {
  if (payload.size() > max_bytes) {
    fail_over_cap(payload.size(), max_bytes);
  }
  const std::array<char, kFrameHeaderBytes> header =
      encode_frame_header(payload.size());
  // One gathered send for header + payload: a frame is never visible
  // half-written to the kernel, small requests stay in one TCP segment, and
  // the payload is not copied into a scratch buffer on the way out.
  send_all_v(socket, std::string_view(header.data(), header.size()), payload);
}

void write_frame(Socket& socket, const std::string& payload,
                 std::size_t max_bytes) {
  send_frame_v(socket, payload, max_bytes);
}

std::optional<FrameView> peek_frame(std::string_view buffer,
                                    std::size_t max_bytes) {
  if (buffer.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  std::array<char, kFrameHeaderBytes> header{};
  std::copy_n(buffer.data(), kFrameHeaderBytes, header.data());
  // Over-cap throws ParseError — the caller reads the declared length via
  // buffered_frame_length to bound its drain.
  const std::size_t length = decode_frame_header(header, max_bytes);
  if (buffer.size() < kFrameHeaderBytes + length) {
    return std::nullopt;
  }
  FrameView view;
  view.payload = buffer.substr(kFrameHeaderBytes, length);
  view.frame_bytes = kFrameHeaderBytes + length;
  return view;
}

std::optional<std::string> extract_frame(std::string& buffer,
                                         std::size_t max_bytes) {
  const std::optional<FrameView> frame = peek_frame(buffer, max_bytes);
  if (!frame.has_value()) {
    return std::nullopt;
  }
  std::string payload(frame->payload);
  buffer.erase(0, frame->frame_bytes);
  return payload;
}

std::optional<std::uint32_t> buffered_frame_length(std::string_view buffer) {
  if (buffer.size() < kFrameHeaderBytes) {
    return std::nullopt;
  }
  std::uint32_t value = 0;
  for (std::size_t i = 0; i < kFrameHeaderBytes; ++i) {
    value = (value << 8) | static_cast<unsigned char>(buffer[i]);
  }
  return value;
}

std::optional<std::string> read_frame(Socket& socket, std::size_t max_bytes,
                                      int timeout_ms) {
  std::array<char, kFrameHeaderBytes> header{};
  if (!recv_exact(socket, header.data(), header.size(), timeout_ms)) {
    return std::nullopt;  // clean EOF at a frame boundary
  }
  std::size_t length = 0;
  try {
    length = decode_frame_header(header, max_bytes);
  } catch (const ParseError&) {
    // Over-cap frame: drain what the peer declared (bounded) before
    // surfacing the violation. Closing with unread bytes in the receive
    // buffer would RST the connection and destroy the error response the
    // server is about to send.
    std::uint32_t declared = 0;
    for (const char byte : header) {
      declared = (declared << 8) | static_cast<unsigned char>(byte);
    }
    discard_up_to(socket,
                  std::min<std::size_t>(declared, kDefaultMaxFrameBytes),
                  timeout_ms);
    throw;
  }
  std::string payload(length, '\0');
  if (length > 0 &&
      !recv_exact(socket, payload.data(), length, timeout_ms)) {
    throw IoError("recv: peer closed mid-frame");
  }
  return payload;
}

}  // namespace iokc::svc
