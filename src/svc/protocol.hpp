// Wire protocol of the knowledge service (DESIGN.md §5e): length-prefixed
// JSON frames over TCP. One frame is a 4-byte big-endian payload length
// followed by exactly that many bytes of UTF-8 JSON. A request names an
// endpoint and carries a params object; a response is either a result or an
// error message. Both directions enforce a frame-size cap, so a malicious
// or corrupt length prefix can never make a peer allocate unbounded memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "src/util/json.hpp"

namespace iokc::svc {

class Socket;

/// Bytes of the frame header (big-endian payload length).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default cap on one frame's payload, both directions.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

/// Encodes a payload length as the 4-byte big-endian frame header.
/// Throws ConfigError when the payload exceeds what the header can carry.
std::array<char, kFrameHeaderBytes> encode_frame_header(
    std::size_t payload_bytes);

/// Decodes a frame header. Throws ParseError when the announced length
/// exceeds `max_bytes` — the reader must drop the connection rather than
/// allocate.
std::size_t decode_frame_header(
    const std::array<char, kFrameHeaderBytes>& header, std::size_t max_bytes);

/// One request: which endpoint, with what parameters.
struct Request {
  std::string endpoint;
  util::JsonValue params;  // always a JSON object (possibly empty)

  util::JsonValue to_json() const;
  /// Throws ParseError when `json` is not {"endpoint": string, "params"?: obj}.
  static Request from_json(const util::JsonValue& json);
};

/// One response: a result on success, an error message on failure.
struct Response {
  bool ok = false;
  std::string error;       // set when !ok
  util::JsonValue result;  // set when ok

  static Response success(util::JsonValue result);
  static Response failure(std::string error);

  util::JsonValue to_json() const;
  /// Throws ParseError on a malformed response document.
  static Response from_json(const util::JsonValue& json);
};

// -- Framed I/O over a Socket -----------------------------------------------

/// Writes one frame (header + payload). Throws IoError on transport failure,
/// ConfigError when the payload exceeds `max_bytes`.
void write_frame(Socket& socket, const std::string& payload,
                 std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Appends one encoded frame (header + payload) to `wire` without sending —
/// the batching primitive behind pipelining: both sides encode several
/// frames into one buffer and flush with a single send. Throws ConfigError
/// when the payload exceeds `max_bytes`.
void append_frame_to(std::string& wire, const std::string& payload,
                     std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Extracts one complete frame from the front of `buffer`, consuming its
/// bytes. Returns nullopt when the buffer does not yet hold a complete
/// frame (header or payload still in flight). Throws ParseError — with
/// `buffer` left untouched, so the caller can size a bounded drain — when
/// the buffered header declares more than `max_bytes`.
std::optional<std::string> extract_frame(
    std::string& buffer, std::size_t max_bytes = kDefaultMaxFrameBytes);

/// The payload length the buffered (possibly incomplete) frame at the front
/// of `buffer` declares — no cap check. nullopt until all header bytes are
/// buffered. Pairs with extract_frame's over-cap ParseError: the violation
/// handler drains min(declared, cap) bytes before answering.
std::optional<std::uint32_t> buffered_frame_length(std::string_view buffer);

/// Reads one complete frame. Returns nullopt on a clean EOF at a frame
/// boundary (the peer closed between requests). Throws ParseError when the
/// announced length exceeds `max_bytes`, IoError on timeout, mid-frame EOF,
/// or transport failure. `timeout_ms` < 0 waits forever.
std::optional<std::string> read_frame(
    Socket& socket, std::size_t max_bytes = kDefaultMaxFrameBytes,
    int timeout_ms = -1);

}  // namespace iokc::svc
