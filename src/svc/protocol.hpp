// Wire protocol of the knowledge service (DESIGN.md §5e): length-prefixed
// JSON frames over TCP. One frame is a 4-byte big-endian payload length
// followed by exactly that many bytes of UTF-8 JSON. A request names an
// endpoint and carries a params object; a response is either a result or an
// error message. Both directions enforce a frame-size cap, so a malicious
// or corrupt length prefix can never make a peer allocate unbounded memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "src/util/json.hpp"

namespace iokc::svc {

class Socket;

/// Bytes of the frame header (big-endian payload length).
inline constexpr std::size_t kFrameHeaderBytes = 4;

/// Default cap on one frame's payload, both directions.
inline constexpr std::size_t kDefaultMaxFrameBytes = 4u << 20;  // 4 MiB

/// Encodes a payload length as the 4-byte big-endian frame header.
/// Throws ConfigError when the payload exceeds what the header can carry.
std::array<char, kFrameHeaderBytes> encode_frame_header(
    std::size_t payload_bytes);

/// Decodes a frame header. Throws ParseError when the announced length
/// exceeds `max_bytes` — the reader must drop the connection rather than
/// allocate.
std::size_t decode_frame_header(
    const std::array<char, kFrameHeaderBytes>& header, std::size_t max_bytes);

/// One request: which endpoint, with what parameters.
struct Request {
  std::string endpoint;
  util::JsonValue params;  // always a JSON object (possibly empty)

  util::JsonValue to_json() const;
  /// Serializes compactly into `writer` without building the intermediate
  /// document tree to_json() would copy `params` into. Byte-identical to
  /// to_json().dump().
  void dump_to(util::JsonWriter& writer) const;
  /// Throws ParseError when `json` is not {"endpoint": string, "params"?: obj}.
  static Request from_json(const util::JsonValue& json);
};

/// One response: a result on success, an error message on failure.
struct Response {
  bool ok = false;
  std::string error;       // set when !ok
  util::JsonValue result;  // set when ok

  static Response success(util::JsonValue result);
  static Response failure(std::string error);

  util::JsonValue to_json() const;
  /// Serializes compactly into `writer` without copying `result` into an
  /// intermediate tree. Byte-identical to to_json().dump().
  void dump_to(util::JsonWriter& writer) const;
  /// Throws ParseError on a malformed response document.
  static Response from_json(const util::JsonValue& json);
};

// -- Framed I/O over a Socket -----------------------------------------------

/// Writes one frame (header + payload) as a single gathered send — the
/// payload is never copied into a header-prefixed scratch buffer. Throws
/// IoError on transport failure, ConfigError when the payload exceeds
/// `max_bytes`.
void send_frame_v(Socket& socket, std::string_view payload,
                  std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Writes one frame (header + payload). Equivalent to send_frame_v; kept
/// for call sites holding an owned payload string.
void write_frame(Socket& socket, const std::string& payload,
                 std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Appends one encoded frame (header + payload) to `wire` without sending —
/// the batching primitive behind pipelining: both sides encode several
/// frames into one buffer and flush with a single send. Throws ConfigError
/// when the payload exceeds `max_bytes` (with `wire` unchanged).
void append_frame_to(std::string& wire, std::string_view payload,
                     std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Opens a frame directly in `wire`: appends a header placeholder and
/// returns its offset. The caller then appends the payload bytes (e.g. by
/// dumping JSON straight into `wire`) and closes with end_frame — the
/// payload is encoded exactly once, in place, behind its header.
std::size_t begin_frame(std::string& wire);

/// Closes the frame begin_frame opened at `header_offset`: patches the
/// placeholder with the big-endian length of everything appended since.
/// Returns the payload length. Throws ConfigError when the payload exceeds
/// `max_bytes` — with `wire` rolled back to `header_offset`, so the buffer
/// never holds a half-built frame.
std::size_t end_frame(std::string& wire, std::size_t header_offset,
                      std::size_t max_bytes = kDefaultMaxFrameBytes);

/// One complete frame seen in place at the front of a receive buffer: the
/// payload view aliases the buffer (valid until the buffer mutates) and
/// `frame_bytes` is what the caller must consume (header + payload).
struct FrameView {
  std::string_view payload;
  std::size_t frame_bytes = 0;
};

/// Views one complete frame at the front of `buffer` without copying or
/// consuming — the zero-copy read path: parse the payload in place, then
/// advance past `frame_bytes`. Returns nullopt when the buffer does not yet
/// hold a complete frame (header or payload still in flight). Throws
/// ParseError when the buffered header declares more than `max_bytes`.
std::optional<FrameView> peek_frame(
    std::string_view buffer, std::size_t max_bytes = kDefaultMaxFrameBytes);

/// Extracts one complete frame from the front of `buffer`, consuming its
/// bytes (a copying convenience over peek_frame). Returns nullopt when the
/// buffer does not yet hold a complete frame. Throws ParseError — with
/// `buffer` left untouched, so the caller can size a bounded drain — when
/// the buffered header declares more than `max_bytes`.
std::optional<std::string> extract_frame(
    std::string& buffer, std::size_t max_bytes = kDefaultMaxFrameBytes);

/// The payload length the buffered (possibly incomplete) frame at the front
/// of `buffer` declares — no cap check. nullopt until all header bytes are
/// buffered. Pairs with extract_frame's over-cap ParseError: the violation
/// handler drains min(declared, cap) bytes before answering.
std::optional<std::uint32_t> buffered_frame_length(std::string_view buffer);

/// Reads one complete frame. Returns nullopt on a clean EOF at a frame
/// boundary (the peer closed between requests). Throws ParseError when the
/// announced length exceeds `max_bytes`, IoError on timeout, mid-frame EOF,
/// or transport failure. `timeout_ms` < 0 waits forever.
std::optional<std::string> read_frame(
    Socket& socket, std::size_t max_bytes = kDefaultMaxFrameBytes,
    int timeout_ms = -1);

}  // namespace iokc::svc
