// Snapshot isolation for the knowledge service: concurrent readers get a
// frozen copy-on-read clone of the knowledge repository while writers keep
// mutating the primary.
//
// Model: writes serialize on the store's mutex and bump a version counter.
// The first read after a write rebuilds the cached clone (dump + reload of
// the embedded database — O(database size), amortized across all readers
// until the next write); every later read shares the same clone via
// shared_ptr. Readers therefore
//   - never block writers: long analytical queries run against the clone
//     with no lock held, and
//   - never observe a partially-applied transaction: the dump is taken
//     under the writer lock, strictly between committed transactions.
// Concurrent reads of one clone are safe because the SELECT path of
// db::Database mutates nothing (verified by the tsan suite in
// tests/svc/test_snapshot.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "src/persist/repository.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::svc {

class SnapshotStore {
 public:
  /// Wraps `primary`; the caller keeps ownership and must route every write
  /// through with_write() — out-of-band mutation leaves stale snapshots
  /// visible until the next with_write().
  explicit SnapshotStore(persist::KnowledgeRepository& primary);

  /// The current snapshot (rebuilt lazily after a write). The returned clone
  /// is immutable by contract: callers may run any read — SQL SELECTs,
  /// load_knowledge, training-set extraction — concurrently with writers
  /// and with other readers.
  std::shared_ptr<persist::KnowledgeRepository> snapshot() IOKC_EXCLUDES(mutex_);

  /// Runs `write` against the primary under the writer lock and marks the
  /// snapshot stale. Exceptions propagate; the snapshot is marked stale
  /// regardless (the write may have partially executed at the repository
  /// level before throwing, and a fresh dump is always safe).
  void with_write(
      const std::function<void(persist::KnowledgeRepository&)>& write)
      IOKC_EXCLUDES(mutex_);

  /// Snapshot clones built so far (observability for tests and stats).
  std::uint64_t rebuilds() const IOKC_EXCLUDES(mutex_);

 private:
  persist::KnowledgeRepository& primary_;
  /// Guards primary_ writes + the cache fields. Reader-writer: the common
  /// fresh-cache read takes it shared, so concurrent readers only contend
  /// when a rebuild is actually due.
  mutable util::SharedMutex mutex_{util::LockRank::kSvc, "svc.snapshot"};
  std::shared_ptr<persist::KnowledgeRepository> cached_ IOKC_GUARDED_BY(mutex_);
  // bumped by every write
  std::uint64_t version_ IOKC_GUARDED_BY(mutex_) = 1;
  // version cached_ was built from
  std::uint64_t snapshot_version_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t rebuilds_ IOKC_GUARDED_BY(mutex_) = 0;
};

}  // namespace iokc::svc
