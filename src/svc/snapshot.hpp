// Snapshot isolation for the knowledge service: concurrent readers get a
// frozen copy-on-read clone of the knowledge repository while writers keep
// mutating the primary.
//
// Model: every write bumps a version counter and appends the statements it
// committed (drained from the primary's commit capture) to an in-memory
// delta log, one entry per version. The first read after a write builds a
// fresh clone:
//   - Delta path (the common case): deep-copy the *previous* snapshot's
//     tables and replay only the pending delta entries — O(changed rows),
//     not O(database).
//   - Full path (fallback): when there is no previous snapshot or the delta
//     log is lost/too large, rebuild from a dump. The dump and the capture
//     drain happen atomically under the single-writer gate, so a commit can
//     never be both inside the dump and inside a later delta (double
//     apply). Commits drained here before their writer's version bump exist
//     only inside this dump, so the drain also marks the delta log lost
//     until the dump is installed — otherwise a racing delta reader could
//     install a newer snapshot built without them and lose them for good.
// Both builds run OUTSIDE the store's lock — only the decision (which path,
// which target version) and the install are under it — so readers on the
// fast path and writers are no longer excluded for the O(database) rebuild
// the baseline served under this lock.
//
// Ordering: delta entries are appended under the store's lock in drain
// order, and each drain empties the primary's capture buffer, so entry
// order equals global commit order; replay preserves it. A snapshot built
// for version V is installed only if it is newer than the current cache, so
// racing readers can never roll the cache backwards.
//
// Readers therefore
//   - never block writers: long analytical queries run against the clone
//     with no lock held, and
//   - never observe a partially-applied transaction: deltas are whole
//     committed transactions, and the fallback dump is taken under the
//     writer gate, strictly between committed transactions.
// Concurrent reads of one clone are safe because the SELECT path of
// db::Database mutates nothing (verified by the tsan suite in
// tests/svc/test_snapshot.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "src/persist/repository.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::svc {

class SnapshotStore {
 public:
  /// Wraps `primary` and enables its commit capture; the caller keeps
  /// ownership and must route every write through with_write() —
  /// out-of-band mutation leaves stale snapshots visible until the next
  /// with_write(). At most one SnapshotStore may wrap a repository (the
  /// capture buffer has one consumer).
  explicit SnapshotStore(persist::KnowledgeRepository& primary);

  /// The current snapshot (rebuilt lazily after a write). The returned clone
  /// is immutable by contract: callers may run any read — SQL SELECTs,
  /// load_knowledge, training-set extraction — concurrently with writers
  /// and with other readers.
  std::shared_ptr<persist::KnowledgeRepository> snapshot() IOKC_EXCLUDES(mutex_);

  /// Runs `write` against the primary (the repository's single-writer gate
  /// serializes concurrent writers; this store's lock is NOT held, so
  /// readers keep reading) and then marks the snapshot stale, recording the
  /// committed statements as a delta. Exceptions propagate; the snapshot is
  /// marked stale regardless (the write may have partially committed at the
  /// repository level before throwing, and staleness is always safe).
  void with_write(
      const std::function<void(persist::KnowledgeRepository&)>& write)
      IOKC_EXCLUDES(mutex_);

  /// Snapshot clones built so far, by either path (observability for tests
  /// and stats).
  std::uint64_t rebuilds() const IOKC_EXCLUDES(mutex_);

  /// The rebuild split: `full_rebuilds` counts O(database) dump rebuilds,
  /// `delta_applies` counts clone-and-replay builds. Their sum is
  /// rebuilds().
  struct Counters {
    std::uint64_t full_rebuilds = 0;
    std::uint64_t delta_applies = 0;
  };
  Counters counters() const IOKC_EXCLUDES(mutex_);

 private:
  /// One write's committed statements, keyed by the version it produced.
  struct DeltaEntry {
    std::uint64_t version = 0;
    std::vector<std::string> statements;
    std::size_t bytes = 0;
  };

  /// Bumps the version and absorbs the primary's captured commits into the
  /// delta log (with_write's post-step, also run when the write throws).
  void note_write() IOKC_EXCLUDES(mutex_);
  /// True when the delta log covers every version in
  /// (snapshot_version_, version_] — one entry per version, in order.
  bool delta_covers_locked() const IOKC_REQUIRES(mutex_);
  /// Drops entries already folded into the installed snapshot.
  void prune_deltas_locked(std::uint64_t up_to) IOKC_REQUIRES(mutex_);

  /// Past these caps a full rebuild is cheaper than replaying the backlog,
  /// so the log is dropped and the next reader takes the full path.
  static constexpr std::size_t kDeltaCapBytes = 1u << 20;
  static constexpr std::size_t kDeltaCapEntries = 512;

  persist::KnowledgeRepository& primary_;
  /// Guards the cache fields and the delta log. Reader-writer: the common
  /// fresh-cache read takes it shared, so concurrent readers only contend
  /// when a rebuild is actually due. Primary writes serialize on the
  /// repository's own gate, not here.
  mutable util::SharedMutex mutex_{util::LockRank::kSvc, "svc.snapshot"};
  std::shared_ptr<persist::KnowledgeRepository> cached_ IOKC_GUARDED_BY(mutex_);
  // bumped by every write
  std::uint64_t version_ IOKC_GUARDED_BY(mutex_) = 1;
  // version cached_ was built from
  std::uint64_t snapshot_version_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t full_rebuilds_ IOKC_GUARDED_BY(mutex_) = 0;
  std::uint64_t delta_applies_ IOKC_GUARDED_BY(mutex_) = 0;
  /// Pending per-version deltas (commit order) and their payload size.
  std::vector<DeltaEntry> deltas_ IOKC_GUARDED_BY(mutex_);
  std::size_t delta_bytes_ IOKC_GUARDED_BY(mutex_) = 0;
  /// Set when delta statements were discarded (capture overflow, log cap,
  /// or a full-path drain that swallowed not-yet-noted commits): the log no
  /// longer covers the pending range, so readers must take the full path
  /// until a full rebuild re-anchors it.
  bool deltas_lost_ IOKC_GUARDED_BY(mutex_) = false;
  /// Bumped by every full-path drain. A full rebuild re-anchors the log
  /// (clears deltas_lost_) only when no other drain happened since its own
  /// — a later drain's discarded statements live only in that later dump.
  std::uint64_t drain_epoch_ IOKC_GUARDED_BY(mutex_) = 0;
};

}  // namespace iokc::svc
