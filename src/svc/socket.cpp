#include "src/svc/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/util/error.hpp"

namespace iokc::svc {

namespace {

[[noreturn]] void fail_errno(const std::string& what) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): strerror's static buffer is only
  // formatted into this exception message; nothing in-process calls
  // setlocale concurrently, and glibc's strerror is thread-safe anyway.
  throw IoError(what + ": " + std::strerror(errno));
}

sockaddr_in make_address(const std::string& address, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, address.c_str(), &addr.sin_addr) != 1) {
    throw IoError("invalid IPv4 address '" + address + "'");
  }
  return addr;
}

/// Milliseconds left until `deadline`, floored at 0; -1 for "no deadline".
int remaining_ms(std::chrono::steady_clock::time_point deadline, bool bounded) {
  if (!bounded) {
    return -1;
  }
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

/// Polls `fd` for `events`; returns true when ready, false on timeout.
/// Throws IoError on poll failure.
bool poll_fd(int fd, short events, int timeout_ms) {
  pollfd pfd{};
  pfd.fd = fd;
  pfd.events = events;
  while (true) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) {
      return true;  // readable/writable or error condition to surface below
    }
    if (rc == 0) {
      return false;
    }
    if (errno == EINTR) {
      continue;
    }
    fail_errno("poll");
  }
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
  }
}

Socket listen_on(const std::string& address, std::uint16_t port, int backlog) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    fail_errno("socket");
  }
  const int one = 1;
  ::setsockopt(socket.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  const sockaddr_in addr = make_address(address, port);
  if (::bind(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    fail_errno("bind " + address + ":" + std::to_string(port));
  }
  if (::listen(socket.fd(), backlog) != 0) {
    fail_errno("listen");
  }
  return socket;
}

std::uint16_t local_port(const Socket& socket) {
  sockaddr_in addr{};
  socklen_t len = sizeof addr;
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    fail_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Socket accept_connection(const Socket& listener, int timeout_ms) {
  if (!listener.valid()) {
    return Socket();
  }
  if (!poll_fd(listener.fd(), POLLIN, timeout_ms)) {
    return Socket();  // timed out
  }
  const int fd = ::accept(listener.fd(), nullptr, nullptr);
  if (fd < 0) {
    // EINVAL/EBADF: the listener was shut down or closed under us — the
    // drain path. ECONNABORTED: the peer gave up; not fatal for the server.
    if (errno == EINVAL || errno == EBADF || errno == ECONNABORTED) {
      return Socket();
    }
    fail_errno("accept");
  }
  return Socket(fd);
}

Socket connect_to(const std::string& address, std::uint16_t port,
                  int timeout_ms) {
  Socket socket(::socket(AF_INET, SOCK_STREAM, 0));
  if (!socket.valid()) {
    fail_errno("socket");
  }
  // Non-blocking connect so the wait can be bounded.
  const int flags = ::fcntl(socket.fd(), F_GETFL, 0);
  ::fcntl(socket.fd(), F_SETFL, flags | O_NONBLOCK);
  const sockaddr_in addr = make_address(address, port);
  if (::connect(socket.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) != 0) {
    if (errno != EINPROGRESS) {
      fail_errno("connect " + address + ":" + std::to_string(port));
    }
    if (!poll_fd(socket.fd(), POLLOUT, timeout_ms)) {
      throw IoError("connect " + address + ":" + std::to_string(port) +
                    ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof err;
    if (::getsockopt(socket.fd(), SOL_SOCKET, SO_ERROR, &err, &len) != 0 ||
        err != 0) {
      // Refusal gets a stable, locale-independent message: Client::connect
      // keys its retry-during-startup-window behavior on it.
      if (err == ECONNREFUSED) {
        throw IoError("connect " + address + ":" + std::to_string(port) +
                      ": connection refused");
      }
      throw IoError("connect " + address + ":" + std::to_string(port) + ": " +
                    // NOLINTNEXTLINE(concurrency-mt-unsafe): see fail_errno
                    std::strerror(err != 0 ? err : errno));
    }
  }
  ::fcntl(socket.fd(), F_SETFL, flags);  // back to blocking
  const int one = 1;
  ::setsockopt(socket.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return socket;
}

void send_all(const Socket& socket, std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(socket.fd(), data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void send_all_v(const Socket& socket, std::string_view first,
                std::string_view second) {
  iovec iov[2];
  iov[0].iov_base = const_cast<char*>(first.data());
  iov[0].iov_len = first.size();
  iov[1].iov_base = const_cast<char*>(second.data());
  iov[1].iov_len = second.size();
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = 2;
  std::size_t total = first.size() + second.size();
  while (total > 0) {
    const ssize_t n = ::sendmsg(socket.fd(), &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("sendmsg");
    }
    std::size_t sent = static_cast<std::size_t>(n);
    total -= sent;
    // Advance past fully-sent iovecs, then within the partial one.
    while (sent > 0 && sent >= msg.msg_iov[0].iov_len) {
      sent -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (sent > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<char*>(msg.msg_iov[0].iov_base) + sent;
      msg.msg_iov[0].iov_len -= sent;
    }
  }
}

std::size_t discard_up_to(const Socket& socket, std::size_t size,
                          int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  char scratch[4096];
  std::size_t discarded = 0;
  try {
    while (discarded < size) {
      if (!poll_fd(socket.fd(), POLLIN, remaining_ms(deadline, bounded))) {
        break;  // timed out: give up draining
      }
      const ssize_t n = ::recv(socket.fd(), scratch,
                               std::min(size - discarded, sizeof scratch), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) {
          continue;
        }
        break;  // EOF or error: nothing more to drain
      }
      discarded += static_cast<std::size_t>(n);
    }
  } catch (const IoError&) {
    // poll failure: best effort only.
  }
  return discarded;
}

std::size_t recv_some(const Socket& socket, char* buffer, std::size_t size,
                      int timeout_ms) {
  while (true) {
    if (!poll_fd(socket.fd(), POLLIN, timeout_ms)) {
      throw IoError("recv: timed out after " + std::to_string(timeout_ms) +
                    " ms");
    }
    const ssize_t n = ::recv(socket.fd(), buffer, size, 0);
    if (n == 0) {
      return 0;  // clean EOF
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("recv");
    }
    return static_cast<std::size_t>(n);
  }
}

bool recv_exact(const Socket& socket, char* buffer, std::size_t size,
                int timeout_ms) {
  const bool bounded = timeout_ms >= 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(bounded ? timeout_ms : 0);
  std::size_t received = 0;
  while (received < size) {
    if (!poll_fd(socket.fd(), POLLIN, remaining_ms(deadline, bounded))) {
      throw IoError("recv: timed out after " + std::to_string(timeout_ms) +
                    " ms");
    }
    const ssize_t n =
        ::recv(socket.fd(), buffer + received, size - received, 0);
    if (n == 0) {
      if (received == 0) {
        return false;  // clean EOF before the first byte
      }
      throw IoError("recv: peer closed mid-message");
    }
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      fail_errno("recv");
    }
    received += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace iokc::svc
