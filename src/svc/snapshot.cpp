#include "src/svc/snapshot.hpp"

#include "src/obs/observability.hpp"

namespace iokc::svc {

SnapshotStore::SnapshotStore(persist::KnowledgeRepository& primary)
    : primary_(primary) {}

std::shared_ptr<persist::KnowledgeRepository> SnapshotStore::snapshot() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (snapshot_version_ != version_) {
    // Copy-on-read: the dump is taken under the writer lock, so it sits
    // exactly on a transaction boundary of the primary database.
    cached_ = persist::KnowledgeRepository::from_dump(
        primary_.database().dump());
    snapshot_version_ = version_;
    ++rebuilds_;
    obs::count("svc.snapshot_rebuilds");
  }
  return cached_;
}

void SnapshotStore::with_write(
    const std::function<void(persist::KnowledgeRepository&)>& write) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++version_;  // stale even if the write throws after partial effect
  write(primary_);
}

std::uint64_t SnapshotStore::rebuilds() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rebuilds_;
}

}  // namespace iokc::svc
