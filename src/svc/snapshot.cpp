#include "src/svc/snapshot.hpp"

#include <utility>

#include "src/obs/observability.hpp"

namespace iokc::svc {

SnapshotStore::SnapshotStore(persist::KnowledgeRepository& primary)
    : primary_(primary) {
  // Capture every commit's statements so note_write() can record them as
  // deltas. Single-threaded here: the store is constructed before the
  // server starts taking traffic.
  primary_.set_commit_capture(true);
}

std::shared_ptr<persist::KnowledgeRepository> SnapshotStore::snapshot() {
  {
    // Fast path: the cache is fresh for everyone until the next write, so
    // readers share the lock and copy out the clone pointer.
    const util::SharedLockGuard lock(mutex_);
    if (snapshot_version_ == version_ && cached_ != nullptr) {
      return cached_;
    }
  }

  // Decision phase: pick the build inputs under the exclusive lock, then
  // run the expensive build outside it so fast-path readers and writers
  // are not excluded for the duration.
  std::shared_ptr<persist::KnowledgeRepository> base;
  std::vector<std::string> replay;
  std::string dump;
  std::uint64_t target = 0;
  std::uint64_t my_drain = 0;
  bool use_delta = false;
  {
    const util::LockGuard lock(mutex_);
    if (snapshot_version_ == version_ && cached_ != nullptr) {
      return cached_;  // a racing reader already installed it
    }
    target = version_;
    use_delta = cached_ != nullptr && !deltas_lost_ && delta_covers_locked();
    if (use_delta) {
      base = cached_;
      for (const DeltaEntry& entry : deltas_) {
        if (entry.version > snapshot_version_) {
          replay.insert(replay.end(), entry.statements.begin(),
                        entry.statements.end());
        }
      }
    } else {
      // Full rebuild. The capture drain and the dump are one atomic step
      // under the single-writer gate (see ConsistentDump): statements that
      // already committed are inside this dump, so the drained capture is
      // discarded — a pending writer's note_write() will record an empty
      // delta for its version bump, which replays as a no-op.
      persist::KnowledgeRepository::ConsistentDump consistent =
          primary_.drain_and_dump();
      dump = std::move(consistent.dump);
      if (!consistent.captured.statements.empty() ||
          consistent.captured.overflowed) {
        // The discarded statements now exist ONLY in this dump. Until this
        // dump is installed, the delta log must not count as covering the
        // pending range: the pending writers' note_write() entries will be
        // empty, and a delta reader racing ahead of this install would
        // build a newer snapshot without those statements — which then
        // wins the install race and loses the writes for good. Mark the
        // log lost now; only this reader's own install may re-anchor it,
        // and only if no later full-path drain discarded more in between.
        deltas_.clear();
        delta_bytes_ = 0;
        deltas_lost_ = true;
      }
      my_drain = ++drain_epoch_;
    }
  }

  // Build phase, no locks held.
  std::shared_ptr<persist::KnowledgeRepository> fresh;
  if (use_delta) {
    std::shared_ptr<persist::KnowledgeRepository> built =
        persist::KnowledgeRepository::clone_of(*base);
    built->replay_delta(replay);
    fresh = std::move(built);
  } else {
    fresh = persist::KnowledgeRepository::from_dump(dump);
  }

  // Install phase: publish only if still newer than the cache — racing
  // readers must never roll the snapshot backwards.
  std::shared_ptr<persist::KnowledgeRepository> result;
  bool installed = false;
  {
    const util::LockGuard lock(mutex_);
    if (target > snapshot_version_) {
      cached_ = std::move(fresh);
      snapshot_version_ = target;
      prune_deltas_locked(target);
      if (use_delta) {
        ++delta_applies_;
      } else {
        ++full_rebuilds_;
        // The full rebuild re-anchors the delta log: everything pending at
        // drain time was folded into the dump (entries <= target are pruned
        // above), so coverage restarts from this version — unless another
        // full-path reader drained (and discarded) later commits since;
        // its dump, not ours, carries those, so the log stays lost until
        // that reader (or a successor) installs.
        if (drain_epoch_ == my_drain) {
          deltas_lost_ = false;
        }
      }
      installed = true;
    }
    result = cached_;
  }
  if (installed) {
    // Outside the lock: metric recording has no business extending the
    // exclusion window.
    obs::count("svc.snapshot_rebuilds");
    obs::count(use_delta ? "svc.snapshot_delta_applies"
                         : "svc.snapshot_full_rebuilds");
  }
  return result;
}

void SnapshotStore::with_write(
    const std::function<void(persist::KnowledgeRepository&)>& write) {
  try {
    write(primary_);
  } catch (...) {
    // Stale even if the write throws after partial effect: whatever DID
    // commit is in the capture buffer and becomes this version's delta.
    note_write();
    throw;
  }
  note_write();
}

void SnapshotStore::note_write() {
  // Drain outside this store's lock is racy (the capture buffer belongs to
  // the primary's single-writer gate), but draining *inside* is safe: lock
  // order svc.snapshot (60) -> persist.write (30) is descending, and the
  // gate is never held while taking this lock.
  const util::LockGuard lock(mutex_);
  ++version_;
  db::Database::CapturedCommits captured = primary_.drain_captured_commits();
  if (captured.overflowed) {
    // The capture buffer was discarded before we drained: this version's
    // statements are unrecoverable, so the log cannot cover the pending
    // range any more.
    deltas_.clear();
    delta_bytes_ = 0;
    deltas_lost_ = true;
    return;
  }
  if (deltas_lost_) {
    return;  // pointless to accumulate until a full rebuild re-anchors
  }
  DeltaEntry entry;
  entry.version = version_;
  for (const std::string& statement : captured.statements) {
    entry.bytes += statement.size();
  }
  entry.statements = std::move(captured.statements);
  delta_bytes_ += entry.bytes;
  deltas_.push_back(std::move(entry));
  if (delta_bytes_ > kDeltaCapBytes || deltas_.size() > kDeltaCapEntries) {
    // Replaying this backlog would cost more than a dump rebuild; drop it.
    deltas_.clear();
    delta_bytes_ = 0;
    deltas_lost_ = true;
  }
}

bool SnapshotStore::delta_covers_locked() const {
  if (version_ <= snapshot_version_) {
    return false;
  }
  // note_write appends exactly one entry per version bump (in order), and
  // prune keeps only entries newer than the installed snapshot — so the log
  // covers (snapshot_version_, version_] iff the count matches and the ends
  // line up. A gap (entries skipped while the log was lost) fails here.
  if (deltas_.size() != version_ - snapshot_version_) {
    return false;
  }
  return deltas_.front().version == snapshot_version_ + 1 &&
         deltas_.back().version == version_;
}

void SnapshotStore::prune_deltas_locked(std::uint64_t up_to) {
  std::size_t keep_from = 0;
  while (keep_from < deltas_.size() && deltas_[keep_from].version <= up_to) {
    delta_bytes_ -= deltas_[keep_from].bytes;
    ++keep_from;
  }
  deltas_.erase(deltas_.begin(),
                deltas_.begin() + static_cast<std::ptrdiff_t>(keep_from));
}

std::uint64_t SnapshotStore::rebuilds() const {
  const util::SharedLockGuard lock(mutex_);
  return full_rebuilds_ + delta_applies_;
}

SnapshotStore::Counters SnapshotStore::counters() const {
  const util::SharedLockGuard lock(mutex_);
  Counters counters;
  counters.full_rebuilds = full_rebuilds_;
  counters.delta_applies = delta_applies_;
  return counters;
}

}  // namespace iokc::svc
