#include "src/svc/snapshot.hpp"

#include "src/obs/observability.hpp"

namespace iokc::svc {

SnapshotStore::SnapshotStore(persist::KnowledgeRepository& primary)
    : primary_(primary) {}

std::shared_ptr<persist::KnowledgeRepository> SnapshotStore::snapshot() {
  {
    // Fast path: the cache is fresh for everyone until the next write, so
    // readers share the lock and copy out the clone pointer.
    const util::SharedLockGuard lock(mutex_);
    if (snapshot_version_ == version_) {
      return cached_;
    }
  }
  std::shared_ptr<persist::KnowledgeRepository> fresh;
  bool rebuilt = false;
  {
    const util::LockGuard lock(mutex_);
    if (snapshot_version_ != version_) {
      // Copy-on-read: the dump is taken under the writer lock, so it sits
      // exactly on a transaction boundary of the primary database.
      // iokc-lint: allow(blocking-under-lock): the O(database) rebuild must
      // exclude writers to dump a transaction-consistent image; epoch-based
      // snapshots (ROADMAP item 1) will move it off this lock.
      cached_ = persist::KnowledgeRepository::from_dump(
          primary_.database().dump());
      snapshot_version_ = version_;
      ++rebuilds_;
      rebuilt = true;
    }
    fresh = cached_;
  }
  if (rebuilt) {
    // Outside the lock: metric recording has no business extending the
    // writer-exclusion window.
    obs::count("svc.snapshot_rebuilds");
  }
  return fresh;
}

void SnapshotStore::with_write(
    const std::function<void(persist::KnowledgeRepository&)>& write) {
  const util::LockGuard lock(mutex_);
  ++version_;  // stale even if the write throws after partial effect
  write(primary_);
}

std::uint64_t SnapshotStore::rebuilds() const {
  const util::SharedLockGuard lock(mutex_);
  return rebuilds_;
}

}  // namespace iokc::svc
