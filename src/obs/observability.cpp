#include "src/obs/observability.hpp"

#include <cstdio>
#include <fstream>
#include <utility>

#include "src/util/error.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::obs {

namespace detail {
std::atomic<Observability*> g_session{nullptr};
}  // namespace detail

namespace {

/// Process-wide thread ordinal: stable per thread, never reused. Each
/// Observability maps ordinals to dense tids on first event, so a serial
/// run always exports tid 0.
std::uint64_t thread_ordinal() {
  static std::atomic<std::uint64_t> next{0};
  thread_local const std::uint64_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

/// Receives aggregate stats from every drained util::ThreadPool and turns
/// them into metrics on the installed session (ambient attribution applies:
/// the pool is destroyed on the thread that ran parallel_for, inside
/// whatever span that caller holds).
void pool_stats_to_metrics(const util::PoolRunStats& stats) {
  Observability* obs = global();
  if (obs == nullptr) {
    return;
  }
  const SpanContext ambient = current_context();
  const MetricKey base{"", ambient.phase, ambient.work_package};
  MetricKey key = base;
  key.name = "pool.tasks";
  obs->metrics().add_counter(key, stats.tasks);
  key.name = "pool.steals";
  obs->metrics().add_counter(key, stats.steals);
  key.name = "pool.max_queue_depth";
  obs->metrics().record_gauge_max(key,
                                  static_cast<double>(stats.max_queue_depth));
}

void write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write " + path);
  }
  out << text;
  if (!out) {
    throw IoError("failed writing " + path);
  }
}

void append_json_escaped(std::string& out, const std::string& text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
}

/// Microseconds with nanosecond precision, the unit Chrome trace expects.
std::string format_us(std::uint64_t ns) {
  char buffer[40];
  std::snprintf(buffer, sizeof buffer, "%llu.%03u",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned>(ns % 1000));
  return buffer;
}

}  // namespace

Observability::Observability() : Observability(Config{}) {}

Observability::Observability(Config config)
    : clock_(config.clock ? std::move(config.clock) : steady_clock_fn()) {
  epoch_ns_ = clock_();
}

Observability::~Observability() {
  // Uninstall defensively so a forgotten set_global(nullptr) cannot leave a
  // dangling session installed.
  Observability* self = this;
  if (detail::g_session.compare_exchange_strong(self, nullptr,
                                                std::memory_order_acq_rel)) {
    util::set_pool_observer(nullptr);
  }
}

std::uint64_t Observability::now_ns() const {
  const std::uint64_t now = clock_();
  return now >= epoch_ns_ ? now - epoch_ns_ : 0;
}

std::uint64_t Observability::next_span_id() {
  return next_span_id_.fetch_add(1, std::memory_order_relaxed);
}

int Observability::tid_for_current_thread_locked() {
  const std::uint64_t ordinal = thread_ordinal();
  const auto it = tids_.find(ordinal);
  if (it != tids_.end()) {
    return it->second;
  }
  const int tid = static_cast<int>(tids_.size());
  tids_.emplace(ordinal, tid);
  return tid;
}

void Observability::record_span(SpanEvent event) {
  const util::LockGuard lock(trace_mutex_);
  event.tid = tid_for_current_thread_locked();
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> Observability::trace_events() const {
  const util::LockGuard lock(trace_mutex_);
  return events_;
}

std::string Observability::render_chrome_trace() const {
  const std::vector<SpanEvent> events = trace_events();
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const SpanEvent& event : events) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += "{\"name\":\"";
    append_json_escaped(out, event.name);
    out += "\",\"cat\":\"";
    append_json_escaped(out, event.category.empty() ? std::string("span")
                                                    : event.category);
    out += "\",\"ph\":\"X\",\"ts\":" + format_us(event.start_ns);
    out += ",\"dur\":" + format_us(event.duration_ns);
    out += ",\"pid\":1,\"tid\":" + std::to_string(event.tid);
    out += ",\"args\":{\"span_id\":" + std::to_string(event.id);
    if (event.parent_id != 0) {
      out += ",\"parent_id\":" + std::to_string(event.parent_id);
    }
    if (!event.phase.empty()) {
      out += ",\"phase\":\"";
      append_json_escaped(out, event.phase);
      out += "\"";
    }
    if (event.work_package != kNoWorkPackage) {
      out += ",\"work_package\":" + std::to_string(event.work_package);
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

void Observability::write_chrome_trace(const std::string& path) const {
  write_text_file(path, render_chrome_trace());
}

std::string Observability::render_metrics_csv() const {
  return metrics_.render_csv();
}

void Observability::write_metrics_csv(const std::string& path) const {
  write_text_file(path, render_metrics_csv());
}

void set_global(Observability* observability) {
  detail::g_session.store(observability, std::memory_order_release);
  util::set_pool_observer(observability != nullptr ? &pool_stats_to_metrics
                                                   : nullptr);
}

namespace detail {

void count_slow(Observability* obs, std::string_view name,
                std::uint64_t delta) {
  const SpanContext ambient = current_context();
  obs->metrics().add_counter(
      MetricKey{std::string(name), ambient.phase, ambient.work_package},
      delta);
}

void gauge_max_slow(Observability* obs, std::string_view name, double value) {
  const SpanContext ambient = current_context();
  obs->metrics().record_gauge_max(
      MetricKey{std::string(name), ambient.phase, ambient.work_package},
      value);
}

void observe_slow(Observability* obs, std::string_view name, double value) {
  const SpanContext ambient = current_context();
  obs->metrics().record_histogram(
      MetricKey{std::string(name), ambient.phase, ambient.work_package},
      value);
}

}  // namespace detail

}  // namespace iokc::obs
