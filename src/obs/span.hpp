// RAII tracing spans with thread-local ambient context and explicit parent
// handoff across thread-pool tasks.
//
// A span marks one timed region of the knowledge cycle (a phase, a work
// package, a batch commit). Construction pushes the span onto the calling
// thread's ambient context, so nested spans parent automatically and every
// metric recorded inside inherits the span's phase / work-package
// attribution; destruction records the complete event and restores the
// previous ambient. When no Observability is installed (the default), a
// span is a null-pointer check and nothing else.
//
// Handoff rule: the ambient context is thread-local, so a task running on a
// util::ThreadPool worker starts with an empty ambient. The code that fans
// out captures its span's context() *before* submitting and passes it as
// SpanOptions::parent inside the task — that re-establishes both the trace
// tree and the attribution on the worker thread.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/obs/metrics.hpp"  // kNoWorkPackage

namespace iokc::obs {

class Observability;

/// What a span hands to tasks it fans out: the parent link plus the
/// attribution the task's own spans and metrics should inherit.
struct SpanContext {
  std::uint64_t span_id = 0;
  std::string phase;
  int work_package = kNoWorkPackage;
};

/// The calling thread's ambient context (innermost live span), or a default
/// context when no span is live or observability is disabled.
SpanContext current_context();

/// One finished span, as recorded and exported.
struct SpanEvent {
  std::string name;
  std::string category;
  std::string phase;
  int work_package = kNoWorkPackage;
  std::uint64_t id = 0;
  std::uint64_t parent_id = 0;
  int tid = 0;
  std::uint64_t start_ns = 0;     // relative to the Observability's epoch
  std::uint64_t duration_ns = 0;
};

struct SpanOptions {
  std::string_view category = {};
  /// Phase attribution; empty inherits the parent/ambient phase.
  std::string_view phase = {};
  /// Work-package attribution; kNoWorkPackage inherits.
  int work_package = kNoWorkPackage;
  /// Explicit parent for cross-thread handoff; nullptr uses the calling
  /// thread's ambient context.
  const SpanContext* parent = nullptr;
};

/// The RAII span. Scoped strictly (LIFO per thread); not copyable or
/// movable, so the ambient save/restore cannot be reordered.
class Span {
 public:
  /// Records against the process-global Observability (inert when unset).
  explicit Span(std::string_view name, SpanOptions options = {});
  /// Records against an explicit Observability (inert when nullptr).
  Span(Observability* obs, std::string_view name, SpanOptions options = {});
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// True when attached to an Observability.
  bool recording() const { return obs_ != nullptr; }

  /// This span's context, for handoff into fanned-out tasks. Valid to copy
  /// out while the span is alive; a default context when not recording.
  SpanContext context() const;

 private:
  Observability* obs_ = nullptr;
  std::string name_;
  std::string category_;
  std::uint64_t start_ns_ = 0;
  std::uint64_t parent_id_ = 0;
  SpanContext self_;      // the ambient installed for this span's extent
  SpanContext previous_;  // ambient restored on destruction
};

}  // namespace iokc::obs
