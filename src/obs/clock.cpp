#include "src/obs/clock.hpp"

#include <chrono>

namespace iokc::obs {

ClockFn steady_clock_fn() {
  return [] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  };
}

ManualClock::ManualClock(std::uint64_t step_ns)
    : state_(std::make_shared<State>()) {
  state_->step = step_ns;
}

std::uint64_t ManualClock::read() {
  return state_->now.fetch_add(state_->step, std::memory_order_relaxed);
}

void ManualClock::advance(std::uint64_t ns) {
  state_->now.fetch_add(ns, std::memory_order_relaxed);
}

ClockFn ManualClock::fn() {
  return [state = state_] {
    return state->now.fetch_add(state->step, std::memory_order_relaxed);
  };
}

}  // namespace iokc::obs
