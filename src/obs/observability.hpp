// The observability session: one object owning the trace recorder, the
// metrics registry, and the clock, plus the process-global installation
// point the instrumentation hooks read.
//
// Off by default: global() starts as nullptr and every instrumentation site
// — Span construction, count(), gauge_max(), observe() — reduces to one
// relaxed atomic load and a branch. Installing an Observability (CLI
// --trace/--metrics, KnowledgeCycle::set_observability, or a
// ScopedObservability in tests) turns the same sites into real recording.
//
// Exported formats (schemas documented in DESIGN.md §5c):
//   - Chrome trace JSON (chrome://tracing, Perfetto, about:tracing)
//   - flat metrics CSV keyed by (metric, phase, work package)
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/obs/clock.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/span.hpp"
#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::obs {

class Observability {
 public:
  struct Config {
    /// Timestamp source; empty defaults to the steady clock. Inject a
    /// ManualClock for reproducible traces.
    ClockFn clock;
  };

  Observability();
  explicit Observability(Config config);
  ~Observability();

  Observability(const Observability&) = delete;
  Observability& operator=(const Observability&) = delete;

  /// Nanoseconds since this session's epoch (the construction instant).
  std::uint64_t now_ns() const;

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Span machinery (called by obs::Span; rarely needed directly).
  std::uint64_t next_span_id();
  void record_span(SpanEvent event);

  /// Copy of every recorded span event, in recording order.
  std::vector<SpanEvent> trace_events() const;

  /// Chrome-trace-format JSON of the recorded spans.
  std::string render_chrome_trace() const;
  /// Writes render_chrome_trace() to a file; throws IoError on failure.
  void write_chrome_trace(const std::string& path) const;

  /// Flat metrics CSV (see MetricsRegistry::render_csv).
  std::string render_metrics_csv() const;
  /// Writes render_metrics_csv() to a file; throws IoError on failure.
  void write_metrics_csv(const std::string& path) const;

 private:
  int tid_for_current_thread_locked() IOKC_REQUIRES(trace_mutex_);

  ClockFn clock_;
  std::uint64_t epoch_ns_ = 0;
  std::atomic<std::uint64_t> next_span_id_{1};
  mutable util::Mutex trace_mutex_{util::LockRank::kObs, "obs.trace"};
  std::vector<SpanEvent> events_ IOKC_GUARDED_BY(trace_mutex_);
  // thread ordinal -> dense tid
  std::unordered_map<std::uint64_t, int> tids_ IOKC_GUARDED_BY(trace_mutex_);
  MetricsRegistry metrics_;
};

namespace detail {
/// The installed session. Exposed only so the instrumentation hooks below
/// can inline their disabled-path check; use global()/set_global().
extern std::atomic<Observability*> g_session;
void count_slow(Observability* obs, std::string_view name,
                std::uint64_t delta);
void gauge_max_slow(Observability* obs, std::string_view name, double value);
void observe_slow(Observability* obs, std::string_view name, double value);
}  // namespace detail

/// The installed session, or nullptr (observability off). Thread-safe.
inline Observability* global() {
  return detail::g_session.load(std::memory_order_acquire);
}

/// Installs `observability` as the process-global session (nullptr turns
/// observability off). The caller keeps ownership and must keep the object
/// alive until it is uninstalled. Also wires the util::ThreadPool stats
/// observer, which is how pool steals / queue depth reach the metrics.
void set_global(Observability* observability);

/// RAII installation for tests and scoped enablement: installs in the
/// constructor, restores the previously installed session in the destructor.
class ScopedObservability {
 public:
  explicit ScopedObservability(Observability& observability)
      : previous_(global()) {
    set_global(&observability);
  }
  ~ScopedObservability() { set_global(previous_); }

  ScopedObservability(const ScopedObservability&) = delete;
  ScopedObservability& operator=(const ScopedObservability&) = delete;

 private:
  Observability* previous_;
};

// -- Instrumentation entry points -------------------------------------------
// No-ops when no session is installed: the inline check is one atomic load
// plus a branch, so calling these from hot loops is free until someone
// enables observability. Attribution (phase, work package) comes from the
// calling thread's ambient span context.

/// Increments a counter.
inline void count(std::string_view name, std::uint64_t delta = 1) {
  if (Observability* obs = global()) {
    detail::count_slow(obs, name, delta);
  }
}

/// Records a gauge that keeps the maximum observed value.
inline void gauge_max(std::string_view name, double value) {
  if (Observability* obs = global()) {
    detail::gauge_max_slow(obs, name, value);
  }
}

/// Records one histogram sample.
inline void observe(std::string_view name, double value) {
  if (Observability* obs = global()) {
    detail::observe_slow(obs, name, value);
  }
}

}  // namespace iokc::obs
