#include "src/obs/span.hpp"

#include <utility>

#include "src/obs/observability.hpp"

namespace iokc::obs {

namespace {

/// The innermost live span's context on this thread. Spans save/restore it
/// strictly LIFO, so it always describes the current dynamic extent.
thread_local SpanContext t_ambient;

}  // namespace

SpanContext current_context() {
  return t_ambient;
}

Span::Span(std::string_view name, SpanOptions options)
    : Span(global(), name, options) {}

Span::Span(Observability* obs, std::string_view name, SpanOptions options)
    : obs_(obs) {
  if (obs_ == nullptr) {
    return;
  }
  name_ = std::string(name);
  category_ = std::string(options.category);
  start_ns_ = obs_->now_ns();
  // Explicit parent wins (cross-thread handoff); otherwise the thread's
  // ambient span is the parent. Unset attribution fields inherit from it.
  const SpanContext& base =
      options.parent != nullptr ? *options.parent : t_ambient;
  parent_id_ = base.span_id;
  self_.span_id = obs_->next_span_id();
  self_.phase =
      options.phase.empty() ? base.phase : std::string(options.phase);
  self_.work_package = options.work_package == kNoWorkPackage
                           ? base.work_package
                           : options.work_package;
  previous_ = std::exchange(t_ambient, self_);
}

Span::~Span() {
  if (obs_ == nullptr) {
    return;
  }
  const std::uint64_t end_ns = obs_->now_ns();
  SpanEvent event;
  event.name = std::move(name_);
  event.category = std::move(category_);
  event.phase = self_.phase;
  event.work_package = self_.work_package;
  event.id = self_.span_id;
  event.parent_id = parent_id_;
  event.start_ns = start_ns_;
  event.duration_ns = end_ns >= start_ns_ ? end_ns - start_ns_ : 0;
  obs_->record_span(std::move(event));
  t_ambient = std::move(previous_);
}

SpanContext Span::context() const {
  return obs_ == nullptr ? SpanContext{} : self_;
}

}  // namespace iokc::obs
