// Timestamp sources for the observability layer.
//
// Every span start/end and trace export reads time through an injected
// ClockFn, never through std::chrono directly. Production uses the steady
// clock; tests and deterministic pipelines inject a ManualClock so exported
// traces are byte-reproducible. This mirrors the no-wall-clock rule of the
// simulator: simulated results come from sim time, and pipeline telemetry
// comes from whatever clock the caller chose.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

namespace iokc::obs {

/// Nanosecond timestamp source.
using ClockFn = std::function<std::uint64_t()>;

/// std::chrono::steady_clock since its epoch, in nanoseconds.
ClockFn steady_clock_fn();

/// Deterministic clock: every reading returns the current time and then
/// advances it by a fixed step, so a serial run produces the same sequence
/// of timestamps on every execution. Copies of fn() share this object's
/// state (and keep it alive), so advance() is visible to all readers.
class ManualClock {
 public:
  explicit ManualClock(std::uint64_t step_ns = 1000);

  /// Current time; advances by the step as a side effect.
  std::uint64_t read();

  /// Moves time forward without producing a reading.
  void advance(std::uint64_t ns);

  /// A ClockFn sharing (and keeping alive) this clock's state.
  ClockFn fn();

 private:
  struct State {
    std::atomic<std::uint64_t> now{0};
    std::uint64_t step = 0;
  };
  std::shared_ptr<State> state_;
};

}  // namespace iokc::obs
