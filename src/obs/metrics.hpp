// Counter / gauge / histogram registries for the observability layer.
//
// Recording is designed for the parallel knowledge cycle: each recording
// thread owns a private shard, so the hot path is a hash lookup plus a
// relaxed atomic store — no locks, no contention. Readers (flush/export)
// walk every shard's slot list and merge; slots are published with a
// release store on an intrusive list head, values are relaxed atomics
// written only by the owning thread, so concurrent flush is race-free.
//
// Keys carry the ambient attribution (phase, work package) resolved by the
// span machinery, which is what makes the exported CSV answer "where did
// the DB statements / batch commits / steals happen".
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::obs {

/// Work-package value meaning "not attributed to a package".
inline constexpr int kNoWorkPackage = -1;

/// Identity of one metric series: name plus ambient attribution.
struct MetricKey {
  std::string name;
  std::string phase;
  int work_package = kNoWorkPackage;

  bool operator==(const MetricKey& other) const = default;
  /// Export order: by name, then phase, then work package.
  bool operator<(const MetricKey& other) const;
};

enum class MetricKind {
  kCounter,   // monotonically increasing integer
  kGaugeMax,  // maximum observed value
  kHistogram  // fixed-bucket distribution with sum and count
};

/// One merged metric series, as exported.
struct MetricSnapshot {
  MetricKey key;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;             // counter total / histogram samples
  double max = 0.0;                    // gauge-max value
  double sum = 0.0;                    // histogram sum of samples
  std::vector<std::uint64_t> buckets;  // histogram; size = bounds + overflow
};

/// The registry. Thread-safe for recording from any number of threads
/// concurrently with snapshotting; destruction must not race with recording
/// (keep the owning Observability alive while instrumented code runs).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void add_counter(const MetricKey& key, std::uint64_t delta);
  void record_gauge_max(const MetricKey& key, double value);
  void record_histogram(const MetricKey& key, double value);

  /// Merges every shard and returns one snapshot per key, sorted by key.
  std::vector<MetricSnapshot> snapshot() const;

  /// Flat CSV of snapshot(); the exact schema is documented in DESIGN.md
  /// §5c (header `metric,phase,work_package,kind,value`; histograms expand
  /// to `.count` / `.sum` / `.le_<bound>` / `.le_inf` rows).
  std::string render_csv() const;

  /// Upper bounds of the fixed histogram buckets (powers of four from 1 to
  /// 4^15); every histogram gets one extra overflow bucket on top.
  static const std::vector<double>& histogram_bounds();

 private:
  struct Slot;
  struct Shard;

  Slot& slot(const MetricKey& key, MetricKind kind);
  Shard& shard_for_current_thread();

  const std::uint64_t id_;  // process-unique, keys the thread-local cache
  // Guards only the shard list; slot recording inside a shard is lock-free.
  mutable util::Mutex shards_mutex_{util::LockRank::kObs, "obs.metrics_shards"};
  std::vector<std::unique_ptr<Shard>> shards_ IOKC_GUARDED_BY(shards_mutex_);
};

}  // namespace iokc::obs
