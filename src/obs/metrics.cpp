#include "src/obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/util/csv.hpp"

namespace iokc::obs {

namespace {

struct KeyHash {
  std::size_t operator()(const MetricKey& key) const {
    std::size_t h = std::hash<std::string>{}(key.name);
    h ^= std::hash<std::string>{}(key.phase) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h ^= std::hash<int>{}(key.work_package) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    return h;
  }
};

std::atomic<std::uint64_t> g_next_registry_id{1};

/// Integral values print without a decimal point so counters stay exact;
/// everything else uses %.6g. Deterministic across platforms for the value
/// ranges metrics produce.
std::string format_value(double value) {
  if (std::isfinite(value) && value == std::floor(value) &&
      std::fabs(value) < 9.007199254740992e15) {
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "%lld",
                  static_cast<long long>(value));
    return buffer;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.6g", value);
  return buffer;
}

std::string format_bound(double bound) {
  return format_value(bound);
}

}  // namespace

bool MetricKey::operator<(const MetricKey& other) const {
  if (name != other.name) {
    return name < other.name;
  }
  if (phase != other.phase) {
    return phase < other.phase;
  }
  return work_package < other.work_package;
}

/// One metric series inside one shard. Written only by the shard's owning
/// thread; read concurrently by snapshot() — hence relaxed atomics (plain
/// single-writer stores, no RMW contention).
struct MetricsRegistry::Slot {
  Slot(MetricKey slot_key, MetricKind slot_kind, std::size_t bucket_count)
      : key(std::move(slot_key)), kind(slot_kind), buckets(bucket_count) {}

  MetricKey key;
  MetricKind kind;
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> max_bits{0};  // bit-cast double
  std::atomic<std::uint64_t> sum_bits{0};  // bit-cast double
  std::vector<std::atomic<std::uint64_t>> buckets;
  Slot* next = nullptr;  // intrusive shard list, set before publication
};

/// Per-thread shard. `index` is touched only by the owning thread; `head`
/// is the publication point snapshot() walks.
struct MetricsRegistry::Shard {
  ~Shard() {
    Slot* slot = head.load(std::memory_order_acquire);
    while (slot != nullptr) {
      Slot* next = slot->next;
      delete slot;
      slot = next;
    }
  }

  std::atomic<Slot*> head{nullptr};
  std::unordered_map<MetricKey, Slot*, KeyHash> index;  // owner thread only
};

MetricsRegistry::MetricsRegistry()
    : id_(g_next_registry_id.fetch_add(1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() = default;

const std::vector<double>& MetricsRegistry::histogram_bounds() {
  // Powers of four: 1, 4, 16, ..., 4^15 (~1.07e9). With microsecond-scale
  // recordings this spans 1 us to ~18 minutes before the overflow bucket.
  static const std::vector<double> kBounds = [] {
    std::vector<double> bounds;
    double bound = 1.0;
    for (int i = 0; i <= 15; ++i) {
      bounds.push_back(bound);
      bound *= 4.0;
    }
    return bounds;
  }();
  return kBounds;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_current_thread() {
  // Cache keyed by process-unique registry id, so a registry allocated at a
  // dead registry's address can never inherit its shard.
  thread_local std::unordered_map<std::uint64_t, Shard*> t_shards;
  const auto it = t_shards.find(id_);
  if (it != t_shards.end()) {
    return *it->second;
  }
  const util::LockGuard lock(shards_mutex_);
  shards_.push_back(std::make_unique<Shard>());
  Shard* shard = shards_.back().get();
  t_shards.emplace(id_, shard);
  return *shard;
}

MetricsRegistry::Slot& MetricsRegistry::slot(const MetricKey& key,
                                             MetricKind kind) {
  Shard& shard = shard_for_current_thread();
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    return *it->second;
  }
  const std::size_t bucket_count =
      kind == MetricKind::kHistogram ? histogram_bounds().size() + 1 : 0;
  auto* created = new Slot(key, kind, bucket_count);
  created->next = shard.head.load(std::memory_order_relaxed);
  shard.head.store(created, std::memory_order_release);  // publish to readers
  shard.index.emplace(key, created);
  return *created;
}

void MetricsRegistry::add_counter(const MetricKey& key, std::uint64_t delta) {
  Slot& s = slot(key, MetricKind::kCounter);
  s.count.store(s.count.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

void MetricsRegistry::record_gauge_max(const MetricKey& key, double value) {
  Slot& s = slot(key, MetricKind::kGaugeMax);
  const double seen = std::bit_cast<double>(
      s.max_bits.load(std::memory_order_relaxed));
  if (s.count.load(std::memory_order_relaxed) == 0 || value > seen) {
    s.max_bits.store(std::bit_cast<std::uint64_t>(value),
                     std::memory_order_relaxed);
  }
  s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

void MetricsRegistry::record_histogram(const MetricKey& key, double value) {
  Slot& s = slot(key, MetricKind::kHistogram);
  const std::vector<double>& bounds = histogram_bounds();
  std::size_t bucket = bounds.size();  // overflow
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (value <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  s.buckets[bucket].store(
      s.buckets[bucket].load(std::memory_order_relaxed) + 1,
      std::memory_order_relaxed);
  s.sum_bits.store(
      std::bit_cast<std::uint64_t>(
          std::bit_cast<double>(s.sum_bits.load(std::memory_order_relaxed)) +
          value),
      std::memory_order_relaxed);
  s.count.store(s.count.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
}

std::vector<MetricSnapshot> MetricsRegistry::snapshot() const {
  std::map<MetricKey, MetricSnapshot> merged;
  const util::LockGuard lock(shards_mutex_);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const Slot* s = shard->head.load(std::memory_order_acquire);
         s != nullptr; s = s->next) {
      MetricSnapshot& out = merged[s->key];
      out.key = s->key;
      out.kind = s->kind;
      const std::uint64_t count = s->count.load(std::memory_order_relaxed);
      switch (s->kind) {
        case MetricKind::kCounter:
          out.count += count;
          break;
        case MetricKind::kGaugeMax: {
          const double value = std::bit_cast<double>(
              s->max_bits.load(std::memory_order_relaxed));
          if (out.count == 0 || value > out.max) {
            out.max = value;
          }
          out.count += count;
          break;
        }
        case MetricKind::kHistogram: {
          if (out.buckets.empty()) {
            out.buckets.assign(s->buckets.size(), 0);
          }
          for (std::size_t i = 0; i < s->buckets.size(); ++i) {
            out.buckets[i] += s->buckets[i].load(std::memory_order_relaxed);
          }
          out.sum += std::bit_cast<double>(
              s->sum_bits.load(std::memory_order_relaxed));
          out.count += count;
          break;
        }
      }
    }
  }
  std::vector<MetricSnapshot> result;
  result.reserve(merged.size());
  for (auto& [key, snap] : merged) {
    result.push_back(std::move(snap));
  }
  return result;
}

std::string MetricsRegistry::render_csv() const {
  util::CsvWriter writer;
  writer.add_row({"metric", "phase", "work_package", "kind", "value"});
  for (const MetricSnapshot& snap : snapshot()) {
    const std::string wp = snap.key.work_package == kNoWorkPackage
                               ? std::string()
                               : std::to_string(snap.key.work_package);
    switch (snap.kind) {
      case MetricKind::kCounter:
        writer.add_row({snap.key.name, snap.key.phase, wp, "counter",
                        format_value(static_cast<double>(snap.count))});
        break;
      case MetricKind::kGaugeMax:
        writer.add_row({snap.key.name, snap.key.phase, wp, "gauge_max",
                        format_value(snap.max)});
        break;
      case MetricKind::kHistogram: {
        writer.add_row({snap.key.name + ".count", snap.key.phase, wp,
                        "histogram",
                        format_value(static_cast<double>(snap.count))});
        writer.add_row({snap.key.name + ".sum", snap.key.phase, wp,
                        "histogram", format_value(snap.sum)});
        const std::vector<double>& bounds = histogram_bounds();
        for (std::size_t i = 0; i < snap.buckets.size(); ++i) {
          const std::string suffix =
              i < bounds.size() ? ".le_" + format_bound(bounds[i]) : ".le_inf";
          writer.add_row({snap.key.name + suffix, snap.key.phase, wp,
                          "histogram",
                          format_value(static_cast<double>(snap.buckets[i]))});
        }
        break;
      }
    }
  }
  return writer.text();
}

}  // namespace iokc::obs
