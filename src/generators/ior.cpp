#include "src/generators/ior.hpp"

#include <algorithm>
#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <utility>

#include "src/generators/darshan.hpp"
#include "src/util/error.hpp"
#include "src/util/rng.hpp"
#include "src/util/strings.hpp"
#include "src/util/summary_stats.hpp"
#include "src/util/units.hpp"

namespace iokc::gen {

void IorConfig::validate() const {
  if (transfer_size == 0 || block_size == 0) {
    throw ConfigError("ior: block and transfer size must be positive");
  }
  if (block_size % transfer_size != 0) {
    throw ConfigError("ior: block size must be a multiple of transfer size");
  }
  if (segments == 0) {
    throw ConfigError("ior: segment count must be positive");
  }
  if (iterations <= 0) {
    throw ConfigError("ior: iteration count must be positive");
  }
  if (num_tasks == 0) {
    throw ConfigError("ior: task count must be positive");
  }
  if (test_file.empty()) {
    throw ConfigError("ior: test file path must not be empty");
  }
  if (collective && file_per_process) {
    throw ConfigError("ior: collective I/O requires a shared file (-c without -F)");
  }
  if (deadline_secs < 0) {
    throw ConfigError("ior: stonewalling deadline must be non-negative");
  }
  if (random_offsets && collective) {
    throw ConfigError("ior: -z is not supported with collective I/O (-c)");
  }
}

std::string IorConfig::render_command() const {
  std::string cmd = "ior -a " + iostack::to_string(api);
  cmd += " -b " + util::format_size_token(block_size);
  cmd += " -t " + util::format_size_token(transfer_size);
  cmd += " -s " + std::to_string(segments);
  if (file_per_process) {
    cmd += " -F";
  }
  if (reorder_tasks) {
    cmd += " -C";
  }
  if (fsync) {
    cmd += " -e";
  }
  if (collective) {
    cmd += " -c";
  }
  if (random_offsets) {
    cmd += " -z";
  }
  if (deadline_secs > 0) {
    cmd += " -D " + std::to_string(deadline_secs);
  }
  if (hints_set) {
    cmd += " -O " + iostack::render_hints(hints);
  }
  if (write_file) {
    cmd += " -w";
  }
  if (read_file) {
    cmd += " -r";
  }
  cmd += " -i " + std::to_string(iterations);
  cmd += " -N " + std::to_string(num_tasks);
  cmd += " -o " + test_file;
  if (keep_file) {
    cmd += " -k";
  }
  return cmd;
}

IorConfig parse_ior_command(const std::string& command) {
  const std::vector<std::string> tokens = util::split_ws(command);
  IorConfig config;
  std::size_t i = 0;
  if (i < tokens.size() && (tokens[i] == "ior" || tokens[i].ends_with("/ior"))) {
    ++i;
  }
  auto need_value = [&](const std::string& option) -> const std::string& {
    if (i + 1 >= tokens.size()) {
      throw ParseError("ior option " + option + " needs a value");
    }
    return tokens[++i];
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "-a") {
      config.api = iostack::api_from_string(need_value(token));
    } else if (token == "-b") {
      config.block_size = util::parse_size(need_value(token));
    } else if (token == "-t") {
      config.transfer_size = util::parse_size(need_value(token));
    } else if (token == "-s") {
      config.segments =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-i") {
      config.iterations = static_cast<int>(util::parse_i64(need_value(token)));
    } else if (token == "-N") {
      config.num_tasks =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-o") {
      config.test_file = need_value(token);
    } else if (token == "-F") {
      config.file_per_process = true;
    } else if (token == "-C") {
      config.reorder_tasks = true;
    } else if (token == "-e") {
      config.fsync = true;
    } else if (token == "-k") {
      config.keep_file = true;
    } else if (token == "-w") {
      config.write_file = true;
    } else if (token == "-r") {
      config.read_file = true;
    } else if (token == "-c") {
      config.collective = true;
    } else if (token == "-z") {
      config.random_offsets = true;
    } else if (token == "-D") {
      config.deadline_secs = static_cast<int>(util::parse_i64(need_value(token)));
    } else if (token == "-O") {
      config.hints = iostack::parse_hints(need_value(token));
      config.hints_set = true;
    } else {
      throw ParseError("unknown ior option '" + token + "'");
    }
  }
  return config;
}

std::vector<const IorOpResult*> IorRunResult::ops_for(
    const std::string& access) const {
  std::vector<const IorOpResult*> out;
  for (const auto& op : ops) {
    if (op.access == access) {
      out.push_back(&op);
    }
  }
  return out;
}

namespace {

std::string summary_line(const std::string& access,
                         const std::vector<const IorOpResult*>& ops,
                         const IorConfig& config, std::uint32_t tasks_per_node) {
  std::vector<double> bws;
  std::vector<double> iopses;
  std::vector<double> times;
  for (const IorOpResult* op : ops) {
    bws.push_back(op->bw_mib);
    iopses.push_back(op->iops);
    times.push_back(op->total_sec);
  }
  const auto bw = util::summarize(bws);
  const auto io = util::summarize(iopses);
  const auto tm = util::summarize(times);
  const double agg_mib =
      static_cast<double>(config.bytes_per_rank()) *
      static_cast<double>(config.num_tasks) / static_cast<double>(util::kMiB);
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "%-9s %10.2f %10.2f %10.2f %9.2f %10.2f %10.2f %10.2f %9.2f %9.5f "
      "%d %u %u %d %d %d %u %llu %llu %.1f %s",
      access.c_str(), bw.max, bw.min, bw.mean, bw.stddev, io.max, io.min,
      io.mean, io.stddev, tm.mean, 0, config.num_tasks, tasks_per_node,
      config.iterations, config.file_per_process ? 1 : 0,
      config.reorder_tasks ? 1 : 0, config.segments,
      static_cast<unsigned long long>(config.block_size),
      static_cast<unsigned long long>(config.transfer_size), agg_mib,
      iostack::to_string(config.api).c_str());
  return buf;
}

}  // namespace

std::string IorRunResult::render_output() const {
  const IorConfig& c = config;
  const std::uint32_t tasks_per_node =
      num_nodes == 0 ? c.num_tasks : (c.num_tasks + num_nodes - 1) / num_nodes;
  std::string out;
  out += "IOR-3.3.0+sim: MPI Coordinated Test of Parallel I/O\n";
  out += "Began               : t+" + util::format_seconds(start_time) + "\n";
  out += "Command line        : " + c.render_command() + "\n";
  out += "Machine             : Linux sim-cluster\n";
  out += "\nOptions: \n";
  out += "api                 : " + iostack::to_string(c.api) + "\n";
  out += "test filename       : " + c.test_file + "\n";
  out += std::string("access              : ") +
         (c.file_per_process ? "file-per-process" : "single-shared-file") + "\n";
  out += std::string("type                : ") +
         (c.collective ? "collective" : "independent") + "\n";
  out += "segments            : " + std::to_string(c.segments) + "\n";
  out += std::string("ordering in a file  : ") +
         (c.random_offsets ? "random offsets" : "sequential") + "\n";
  if (c.deadline_secs > 0) {
    out += "stonewallingTime    : " + std::to_string(c.deadline_secs) + "\n";
  }
  out += std::string("ordering inter file : ") +
         (c.reorder_tasks ? "constant task offset" : "no tasks offsets") + "\n";
  if (c.reorder_tasks) {
    out += "task offset         : " + std::to_string(tasks_per_node) + "\n";
  }
  out += "nodes               : " + std::to_string(num_nodes) + "\n";
  out += "tasks               : " + std::to_string(c.num_tasks) + "\n";
  out += "clients per node    : " + std::to_string(tasks_per_node) + "\n";
  out += "repetitions         : " + std::to_string(c.iterations) + "\n";
  out += "xfersize            : " + util::format_bytes(c.transfer_size) + "\n";
  out += "blocksize           : " + util::format_bytes(c.block_size) + "\n";
  out += "aggregate filesize  : " +
         util::format_bytes(c.bytes_per_rank() * c.num_tasks) + "\n";
  if (c.fsync) {
    out += "fsync               : 1\n";
  }
  if (c.hints_set) {
    out += "hints               : " + iostack::render_hints(c.hints) + "\n";
  }
  out += "\nResults: \n\n";
  out +=
      "access    bw(MiB/s)  IOPS       Latency(s)  block(KiB) xfer(KiB)  "
      "open(s)    wr/rd(s)   close(s)   total(s)   iter\n";
  out +=
      "------    ---------  ----       ----------  ---------- ---------  "
      "--------   --------   --------   --------   ----\n";
  for (const IorOpResult& op : ops) {
    char buf[320];
    std::snprintf(buf, sizeof buf,
                  "%-9s %-10.2f %-10.2f %-11.6f %-10llu %-10llu %-10.6f "
                  "%-10.6f %-10.6f %-10.6f %d\n",
                  op.access.c_str(), op.bw_mib, op.iops, op.latency_sec,
                  static_cast<unsigned long long>(op.block_kib),
                  static_cast<unsigned long long>(op.xfer_kib), op.open_sec,
                  op.wrrd_sec, op.close_sec, op.total_sec, op.iteration);
    out += buf;
  }
  out += "\nSummary of all tests:\n";
  out +=
      "Operation  Max(MiB)   Min(MiB)  Mean(MiB)    StdDev   Max(OPs)   "
      "Min(OPs)  Mean(OPs)    StdDev   Mean(s) Test# #Tasks tPN reps fPP "
      "reord segcnt blksiz xsize aggs(MiB) API\n";
  const auto writes = ops_for("write");
  const auto reads = ops_for("read");
  if (!writes.empty()) {
    out += summary_line("write", writes, c, tasks_per_node) + "\n";
  }
  if (!reads.empty()) {
    out += summary_line("read", reads, c, tasks_per_node) + "\n";
  }
  out += "\nFinished            : t+" + util::format_seconds(end_time) + "\n";
  return out;
}

IorBenchmark::IorBenchmark(iostack::IoClient& client, IorConfig config,
                           std::vector<std::size_t> rank_nodes)
    : client_(client),
      config_(std::move(config)),
      rank_nodes_(std::move(rank_nodes)) {
  config_.validate();
  if (rank_nodes_.size() != config_.num_tasks) {
    throw ConfigError("ior: rank-to-node map size (" +
                      std::to_string(rank_nodes_.size()) +
                      ") != task count (" + std::to_string(config_.num_tasks) +
                      ")");
  }
}

std::string IorBenchmark::file_for_rank(std::uint32_t rank) const {
  if (!config_.file_per_process) {
    return config_.test_file;
  }
  char suffix[32];
  std::snprintf(suffix, sizeof suffix, ".%08u", rank);
  return config_.test_file + suffix;
}

std::uint64_t IorBenchmark::offset_for(std::uint32_t rank,
                                       std::uint32_t segment,
                                       std::uint64_t transfer_index) const {
  const std::uint64_t in_block = transfer_index * config_.transfer_size;
  if (config_.file_per_process) {
    return static_cast<std::uint64_t>(segment) * config_.block_size + in_block;
  }
  // Shared file, segmented layout: |seg0: rank0 block, rank1 block, ...|seg1:...
  const std::uint64_t segment_span =
      static_cast<std::uint64_t>(config_.num_tasks) * config_.block_size;
  return static_cast<std::uint64_t>(segment) * segment_span +
         static_cast<std::uint64_t>(rank) * config_.block_size + in_block;
}

std::vector<std::uint64_t> IorBenchmark::transfer_order(
    std::uint32_t rank) const {
  std::vector<std::uint64_t> order(config_.transfers_per_rank());
  for (std::uint64_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  if (config_.random_offsets) {
    // Deterministic per rank and test file, independent of the sim RNG.
    std::uint64_t seed = 0xcbf29ce484222325ull ^ (rank * 0x100000001b3ull);
    for (const char c : config_.test_file) {
      seed = (seed ^ static_cast<unsigned char>(c)) * 0x100000001b3ull;
    }
    util::Rng rng(seed);
    rng.shuffle(order);
  }
  return order;
}

std::uint32_t IorBenchmark::read_source_rank(std::uint32_t rank) const {
  if (!config_.reorder_tasks) {
    return rank;
  }
  // IOR -C: read the data written by the rank `tasksPerNode` away, so the
  // read cannot be served from the local page cache.
  std::uint32_t tasks_on_first_node = 0;
  for (const std::size_t node : rank_nodes_) {
    if (node == rank_nodes_.front()) {
      ++tasks_on_first_node;
    }
  }
  return (rank + std::max(tasks_on_first_node, 1u)) % config_.num_tasks;
}

double IorBenchmark::run_open_phase(bool create) {
  auto& queue = client_.pfs().cluster().queue();
  const double phase_start = queue.now();
  if (config_.file_per_process) {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      const std::string path = file_for_rank(rank);
      const bool do_create = create && !client_.pfs().exists(path);
      client_.open(path, rank_nodes_[rank], do_create, [](sim::SimTime) {});
      if (profiler_ != nullptr) {
        profiler_->record_open(rank, path);
      }
    }
    queue.run();
    return queue.now() - phase_start;
  }
  // Shared file: rank 0 creates, everyone else opens afterwards.
  const std::string path = config_.test_file;
  const bool do_create = create && !client_.pfs().exists(path);
  client_.open(path, rank_nodes_[0], do_create, [](sim::SimTime) {});
  if (profiler_ != nullptr) {
    profiler_->record_open(0, path);
  }
  queue.run();
  for (std::uint32_t rank = 1; rank < config_.num_tasks; ++rank) {
    client_.open(path, rank_nodes_[rank], false, [](sim::SimTime) {});
    if (profiler_ != nullptr) {
      profiler_->record_open(rank, path);
    }
  }
  queue.run();
  return queue.now() - phase_start;
}

IorBenchmark::PhaseStats IorBenchmark::run_transfer_phase(bool is_write) {
  auto& queue = client_.pfs().cluster().queue();
  const double phase_start = queue.now();
  const double deadline =
      config_.deadline_secs > 0
          ? phase_start + static_cast<double>(config_.deadline_secs)
          : 0.0;
  PhaseStats stats;
  const std::uint64_t transfers = config_.transfers_per_rank();
  const std::uint64_t per_block = config_.block_size / config_.transfer_size;

  if (is_write) {
    transfers_written_.assign(config_.num_tasks, 0);
  }

  if (config_.collective && !config_.file_per_process) {
    // Collective rounds: one MPI_File_{write,read}_all per transfer step.
    // Rounds are issued back-to-back; each round is one "op" latency-wise.
    // A stonewalling deadline stops new rounds (all ranks stop together).
    const std::uint64_t round_limit =
        is_write || transfers_written_.empty()
            ? transfers
            : std::min<std::uint64_t>(transfers, transfers_written_[0]);
    // The chain closure refers to itself through a reference, not an owning
    // shared_ptr: `issue_round` outlives the synchronous queue.run() below,
    // and a self-owning capture would be an unreclaimable reference cycle.
    std::function<void(std::uint64_t)> issue_round;
    issue_round = [this, round_limit, per_block, &issue_round, &stats,
                   is_write, deadline](std::uint64_t step) {
      auto& q = client_.pfs().cluster().queue();
      if (step == round_limit || (deadline > 0.0 && q.now() >= deadline)) {
        if (is_write) {
          transfers_written_.assign(config_.num_tasks, step);
        }
        return;
      }
      const auto segment = static_cast<std::uint32_t>(step / per_block);
      const std::uint64_t in_block = step % per_block;
      std::vector<iostack::CollectiveRequest> requests;
      requests.reserve(config_.num_tasks);
      for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
        const std::uint32_t source =
            is_write ? rank : read_source_rank(rank);
        requests.push_back(iostack::CollectiveRequest{
            offset_for(source, segment, in_block), config_.transfer_size,
            rank_nodes_[rank]});
        if (profiler_ != nullptr) {
          profiler_->record_transfer(rank, config_.test_file,
                                     config_.transfer_size, is_write);
        }
      }
      const double round_start = q.now();
      auto continuation = [this, &issue_round, step, &stats,
                           round_start](sim::SimTime t) {
        stats.latency_sum += t - round_start;
        ++stats.op_count;
        stats.bytes_moved +=
            static_cast<std::uint64_t>(config_.num_tasks) *
            config_.transfer_size;
        issue_round(step + 1);
      };
      if (is_write) {
        client_.write_collective(config_.test_file, requests, continuation);
      } else {
        client_.read_collective(config_.test_file, requests, continuation);
      }
    };
    issue_round(0);
    queue.run();
    stats.wall_sec = queue.now() - phase_start;
    return stats;
  }

  // Independent transfers: one sequential chain per rank, visiting transfer
  // steps in the (possibly shuffled) per-source order. A read phase after a
  // stonewalled write reads back only what its source rank wrote. The chains
  // live here (deque: stable addresses) until queue.run() drains them; their
  // closures self-reference by reference, never by owning shared_ptr.
  std::deque<std::function<void(std::uint64_t)>> chains;
  for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
    const std::uint32_t source = is_write ? rank : read_source_rank(rank);
    const std::string path = file_for_rank(source);
    const std::size_t node = rank_nodes_[rank];
    auto order = std::make_shared<std::vector<std::uint64_t>>(
        transfer_order(source));
    std::uint64_t limit = order->size();
    if (!is_write && source < transfers_written_.size() &&
        config_.do_write()) {
      limit = std::min<std::uint64_t>(limit, transfers_written_[source]);
    }
    std::function<void(std::uint64_t)>& issue = chains.emplace_back();
    issue = [this, path, node, source, limit, per_block, order, &issue,
             &stats, is_write, deadline](std::uint64_t index) {
      auto& q = client_.pfs().cluster().queue();
      if (index == limit || (deadline > 0.0 && q.now() >= deadline)) {
        if (is_write) {
          transfers_written_[source] = index;
        }
        return;
      }
      const std::uint64_t step = (*order)[index];
      const auto segment = static_cast<std::uint32_t>(step / per_block);
      const std::uint64_t in_block = step % per_block;
      const std::uint64_t offset = offset_for(source, segment, in_block);
      const double op_start = q.now();
      auto continuation = [this, &issue, index, &stats,
                           op_start](sim::SimTime t) {
        stats.latency_sum += t - op_start;
        ++stats.op_count;
        stats.bytes_moved += config_.transfer_size;
        issue(index + 1);
      };
      if (profiler_ != nullptr) {
        profiler_->record_transfer(source, path, config_.transfer_size,
                                   is_write);
      }
      if (is_write) {
        client_.write(path, offset, config_.transfer_size, node, continuation);
      } else {
        client_.read(path, offset, config_.transfer_size, node, continuation);
      }
    };
    issue(0);
  }
  queue.run();
  stats.wall_sec = queue.now() - phase_start;
  return stats;
}

double IorBenchmark::run_fsync_phase() {
  auto& queue = client_.pfs().cluster().queue();
  const double phase_start = queue.now();
  if (config_.file_per_process) {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      client_.fsync(file_for_rank(rank), rank_nodes_[rank], [](sim::SimTime) {});
    }
  } else {
    client_.fsync(config_.test_file, rank_nodes_[0], [](sim::SimTime) {});
  }
  queue.run();
  return queue.now() - phase_start;
}

double IorBenchmark::run_close_phase() {
  auto& queue = client_.pfs().cluster().queue();
  const double phase_start = queue.now();
  if (config_.file_per_process) {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      const std::string path = file_for_rank(rank);
      client_.close(path, rank_nodes_[rank], [](sim::SimTime) {});
      if (profiler_ != nullptr) {
        profiler_->record_close(rank, path);
      }
    }
  } else {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      client_.close(config_.test_file, rank_nodes_[rank], [](sim::SimTime) {});
      if (profiler_ != nullptr) {
        profiler_->record_close(rank, config_.test_file);
      }
    }
  }
  queue.run();
  return queue.now() - phase_start;
}

void IorBenchmark::run_remove_phase() {
  auto& queue = client_.pfs().cluster().queue();
  if (config_.file_per_process) {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      const std::string path = file_for_rank(rank);
      if (client_.pfs().exists(path)) {
        client_.pfs().unlink(path, rank_nodes_[rank], [](sim::SimTime) {});
      }
    }
  } else if (client_.pfs().exists(config_.test_file)) {
    client_.pfs().unlink(config_.test_file, rank_nodes_[0], [](sim::SimTime) {});
  }
  queue.run();
}

IorRunResult IorBenchmark::run() {
  auto& queue = client_.pfs().cluster().queue();
  IorRunResult result;
  result.config = config_;
  result.start_time = queue.now();
  result.num_nodes = static_cast<std::uint32_t>(
      std::set<std::size_t>(rank_nodes_.begin(), rank_nodes_.end()).size());

  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    if (config_.do_write()) {
      const double open_sec = run_open_phase(/*create=*/true);
      PhaseStats stats = run_transfer_phase(/*is_write=*/true);
      if (config_.fsync) {
        stats.wall_sec += run_fsync_phase();  // IOR folds fsync into write time
      }
      const double close_sec = run_close_phase();

      IorOpResult op;
      op.access = "write";
      op.open_sec = open_sec;
      op.wrrd_sec = stats.wall_sec;
      op.close_sec = close_sec;
      op.total_sec = open_sec + stats.wall_sec + close_sec;
      op.bw_mib = util::to_mib_per_sec(stats.bytes_moved, op.total_sec);
      op.iops = stats.wall_sec > 0.0
                    ? static_cast<double>(stats.op_count) / stats.wall_sec
                    : 0.0;
      op.latency_sec = stats.op_count > 0
                           ? stats.latency_sum /
                                 static_cast<double>(stats.op_count)
                           : 0.0;
      op.block_kib = config_.block_size / util::kKiB;
      op.xfer_kib = config_.transfer_size / util::kKiB;
      op.iteration = iteration;
      result.ops.push_back(op);
    }

    if (config_.do_read()) {
      const double open_sec = run_open_phase(/*create=*/!config_.do_write());
      const PhaseStats stats = run_transfer_phase(/*is_write=*/false);
      const double close_sec = run_close_phase();

      IorOpResult op;
      op.access = "read";
      op.open_sec = open_sec;
      op.wrrd_sec = stats.wall_sec;
      op.close_sec = close_sec;
      op.total_sec = open_sec + stats.wall_sec + close_sec;
      op.bw_mib = util::to_mib_per_sec(stats.bytes_moved, op.total_sec);
      op.iops = stats.wall_sec > 0.0
                    ? static_cast<double>(stats.op_count) / stats.wall_sec
                    : 0.0;
      op.latency_sec = stats.op_count > 0
                           ? stats.latency_sum /
                                 static_cast<double>(stats.op_count)
                           : 0.0;
      op.block_kib = config_.block_size / util::kKiB;
      op.xfer_kib = config_.transfer_size / util::kKiB;
      op.iteration = iteration;
      result.ops.push_back(op);
    }

    if (!config_.keep_file) {
      run_remove_phase();
    }
  }

  result.end_time = queue.now();
  if (profiler_ != nullptr) {
    profiler_->set_job_metadata(config_.render_command(), config_.num_tasks);
  }
  return result;
}

std::vector<std::size_t> block_rank_mapping(
    const std::vector<std::size_t>& nodes, std::uint32_t num_tasks) {
  if (nodes.empty()) {
    throw ConfigError("rank mapping needs at least one node");
  }
  std::vector<std::size_t> mapping;
  mapping.reserve(num_tasks);
  const std::uint32_t per_node =
      (num_tasks + static_cast<std::uint32_t>(nodes.size()) - 1) /
      static_cast<std::uint32_t>(nodes.size());
  for (std::uint32_t rank = 0; rank < num_tasks; ++rank) {
    mapping.push_back(nodes[std::min<std::size_t>(
        rank / std::max(per_node, 1u), nodes.size() - 1)]);
  }
  return mapping;
}

}  // namespace iokc::gen
