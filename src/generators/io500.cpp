#include "src/generators/io500.hpp"

#include <cmath>
#include <cstdio>
#include <set>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/summary_stats.hpp"
#include "src/util/units.hpp"

namespace iokc::gen {

void Io500Config::validate() const {
  if (num_tasks == 0) {
    throw ConfigError("io500: task count must be positive");
  }
  if (base_dir.empty()) {
    throw ConfigError("io500: base dir must not be empty");
  }
  if (ior_easy_bytes_per_rank == 0 || ior_hard_bytes_per_rank == 0) {
    throw ConfigError("io500: ior workload sizes must be positive");
  }
  if (mdtest_easy_files_per_rank == 0 || mdtest_hard_files_per_rank == 0) {
    throw ConfigError("io500: mdtest file counts must be positive");
  }
}

std::string Io500Config::render_command() const {
  std::string cmd = "io500 -N " + std::to_string(num_tasks);
  cmd += " -o " + base_dir;
  cmd += " --easy-bytes " + util::format_size_token(ior_easy_bytes_per_rank);
  cmd += " --hard-bytes " + util::format_size_token(ior_hard_bytes_per_rank);
  cmd += " --easy-files " + std::to_string(mdtest_easy_files_per_rank);
  cmd += " --hard-files " + std::to_string(mdtest_hard_files_per_rank);
  return cmd;
}

Io500Config parse_io500_command(const std::string& command) {
  const std::vector<std::string> tokens = util::split_ws(command);
  Io500Config config;
  std::size_t i = 0;
  if (i < tokens.size() && tokens[i] == "io500") {
    ++i;
  }
  auto need_value = [&](const std::string& option) -> const std::string& {
    if (i + 1 >= tokens.size()) {
      throw ParseError("io500 option " + option + " needs a value");
    }
    return tokens[++i];
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "-N") {
      config.num_tasks =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-o") {
      config.base_dir = need_value(token);
    } else if (token == "--easy-bytes") {
      config.ior_easy_bytes_per_rank = util::parse_size(need_value(token));
    } else if (token == "--hard-bytes") {
      config.ior_hard_bytes_per_rank = util::parse_size(need_value(token));
    } else if (token == "--easy-files") {
      config.mdtest_easy_files_per_rank =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "--hard-files") {
      config.mdtest_hard_files_per_rank =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else {
      throw ParseError("unknown io500 option '" + token + "'");
    }
  }
  return config;
}

const Io500PhaseResult* Io500Result::find_phase(const std::string& name) const {
  for (const auto& phase : phases) {
    if (phase.name == name) {
      return &phase;
    }
  }
  return nullptr;
}

std::string Io500Result::render_output() const {
  std::string out = "IO500 version io500-sim-1.0\n";
  out += "[CONFIG] command " + config.render_command() + "\n";
  out += "[CONFIG] tasks " + std::to_string(config.num_tasks) + "\n";
  out += "[CONFIG] nodes " + std::to_string(num_nodes) + "\n";
  for (const auto& phase : phases) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "[RESULT] %20s %15.6f %s : time %.3f seconds\n",
                  phase.name.c_str(), phase.value, phase.unit.c_str(),
                  phase.time_sec);
    out += buf;
  }
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "[SCORE ] Bandwidth %.6f GiB/s : IOPS %.6f kiops : TOTAL %.6f\n",
                score_bw_gib, score_md_kiops, score_total);
  out += buf;
  return out;
}

Io500Benchmark::Io500Benchmark(iostack::IoClient& client, Io500Config config,
                               std::vector<std::size_t> rank_nodes)
    : client_(client),
      config_(std::move(config)),
      rank_nodes_(std::move(rank_nodes)) {
  config_.validate();
  if (rank_nodes_.size() != config_.num_tasks) {
    throw ConfigError("io500: rank-to-node map size != task count");
  }
}

IorConfig Io500Benchmark::ior_easy_config(bool write) const {
  IorConfig config;
  config.api = iostack::IoApi::kPosix;
  config.file_per_process = true;
  config.transfer_size = config_.ior_easy_transfer;
  config.block_size = config_.ior_easy_bytes_per_rank;
  config.segments = 1;
  config.iterations = 1;
  config.num_tasks = config_.num_tasks;
  config.test_file = config_.base_dir + "/ior_easy/ior_file_easy";
  config.keep_file = true;
  // The real IO500 defeats the page cache with data volumes far beyond node
  // memory; the scaled simulation uses IOR's -C rank reordering instead.
  config.reorder_tasks = true;
  config.write_file = write;
  config.read_file = !write;
  config.fsync = write;
  return config;
}

IorConfig Io500Benchmark::ior_hard_config(bool write) const {
  IorConfig config;
  config.api = iostack::IoApi::kMpiio;
  config.file_per_process = false;
  config.transfer_size = config_.ior_hard_transfer;
  config.block_size = config_.ior_hard_transfer;
  config.segments = static_cast<std::uint32_t>(
      config_.ior_hard_bytes_per_rank / config_.ior_hard_transfer);
  config.iterations = 1;
  config.num_tasks = config_.num_tasks;
  config.test_file = config_.base_dir + "/ior_hard/IOR_file";
  config.keep_file = true;
  config.reorder_tasks = true;
  config.write_file = write;
  config.read_file = !write;
  config.fsync = write;
  return config;
}

MdtestConfig Io500Benchmark::mdtest_config(bool easy, const char* phase) const {
  MdtestConfig config;
  config.num_tasks = config_.num_tasks;
  config.iterations = 1;
  config.files_per_rank = easy ? config_.mdtest_easy_files_per_rank
                               : config_.mdtest_hard_files_per_rank;
  config.unique_dir_per_task = easy;
  config.base_dir = config_.base_dir + (easy ? "/mdt_easy" : "/mdt_hard");
  config.write_bytes = easy ? 0 : config_.mdtest_hard_write_bytes;
  const std::string p = phase;
  config.do_create = p == "write";
  config.do_stat = p == "stat";
  config.do_read = p == "read";
  config.do_remove = p == "delete";
  return config;
}

Io500PhaseResult Io500Benchmark::run_ior(const std::string& name,
                                         const IorConfig& config) {
  IorBenchmark bench(client_, config, rank_nodes_);
  const IorRunResult run = bench.run();
  if (run.ops.empty()) {
    throw iokc::SimError("io500: ior phase '" + name + "' produced no result");
  }
  const IorOpResult& op = run.ops.front();
  Io500PhaseResult phase;
  phase.name = name;
  phase.value = op.bw_mib / 1024.0;
  phase.unit = "GiB/s";
  phase.time_sec = op.total_sec;
  return phase;
}

Io500PhaseResult Io500Benchmark::run_mdtest(const std::string& name, bool easy,
                                            const char* phase_name) {
  MdtestBenchmark bench(client_, mdtest_config(easy, phase_name), rank_nodes_);
  const MdtestRunResult run = bench.run();
  const MdtestIterationResult& rates = run.iterations.front();
  double rate = 0.0;
  const std::string p = phase_name;
  if (p == "write") {
    rate = rates.creation_rate;
  } else if (p == "stat") {
    rate = rates.stat_rate;
  } else if (p == "read") {
    rate = rates.read_rate;
  } else {
    rate = rates.removal_rate;
  }
  const double total_files =
      static_cast<double>(run.config.files_per_rank) *
      static_cast<double>(run.config.num_tasks);
  Io500PhaseResult phase;
  phase.name = name;
  phase.value = rate / 1000.0;
  phase.unit = "kIOPS";
  phase.time_sec = rate > 0.0 ? total_files / rate : 0.0;
  return phase;
}

Io500PhaseResult Io500Benchmark::run_find() {
  // The find phase walks the namespace created so far; the model charges one
  // metadata operation per directory-block of 64 entries, issued across the
  // participating ranks.
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  const double start = queue.now();
  // ~16 entries per directory-block read keeps the simulated find rate in
  // the realistic 50-150 kIOPS band for a small cluster.
  const std::uint64_t scan_ops = std::max<std::uint64_t>(
      1, (namespace_entries_ + 15) / 16);
  for (std::uint64_t op = 0; op < scan_ops; ++op) {
    const std::size_t node = rank_nodes_[op % rank_nodes_.size()];
    pfs.stat(config_.base_dir, node, [](sim::SimTime) {});
  }
  queue.run();
  const double wall = queue.now() - start;
  Io500PhaseResult phase;
  phase.name = "find";
  phase.value = wall > 0.0
                    ? static_cast<double>(namespace_entries_) / wall / 1000.0
                    : 0.0;
  phase.unit = "kIOPS";
  phase.time_sec = wall;
  return phase;
}

void Io500Benchmark::cleanup() {
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  const IorConfig easy = ior_easy_config(true);
  for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%08u", rank);
    const std::string path = easy.test_file + suffix;
    if (pfs.exists(path)) {
      pfs.unlink(path, rank_nodes_[rank], [](sim::SimTime) {});
    }
  }
  const std::string hard_file = ior_hard_config(true).test_file;
  if (pfs.exists(hard_file)) {
    pfs.unlink(hard_file, rank_nodes_[0], [](sim::SimTime) {});
  }
  queue.run();
}

Io500Result Io500Benchmark::run() {
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  // Benchmark directory tree.
  for (const char* dir : {"", "/ior_easy", "/ior_hard"}) {
    const std::string path = config_.base_dir + dir;
    if (!pfs.exists(path)) {
      pfs.mkdir(path, rank_nodes_[0], [](sim::SimTime) {});
    }
  }
  queue.run();

  Io500Result result;
  result.config = config_;
  result.num_nodes = static_cast<std::uint32_t>(
      std::set<std::size_t>(rank_nodes_.begin(), rank_nodes_.end()).size());

  result.phases.push_back(run_ior("ior-easy-write", ior_easy_config(true)));
  result.phases.push_back(run_mdtest("mdtest-easy-write", true, "write"));
  result.phases.push_back(run_ior("ior-hard-write", ior_hard_config(true)));
  result.phases.push_back(run_mdtest("mdtest-hard-write", false, "write"));

  namespace_entries_ =
      static_cast<std::uint64_t>(config_.num_tasks) *
          (config_.mdtest_easy_files_per_rank +
           config_.mdtest_hard_files_per_rank) +
      config_.num_tasks /* ior-easy files */ + 1 /* ior-hard file */;
  result.phases.push_back(run_find());

  result.phases.push_back(run_ior("ior-easy-read", ior_easy_config(false)));
  result.phases.push_back(run_mdtest("mdtest-easy-stat", true, "stat"));
  result.phases.push_back(run_ior("ior-hard-read", ior_hard_config(false)));
  result.phases.push_back(run_mdtest("mdtest-hard-stat", false, "stat"));
  result.phases.push_back(run_mdtest("mdtest-easy-delete", true, "delete"));
  result.phases.push_back(run_mdtest("mdtest-hard-read", false, "read"));
  result.phases.push_back(run_mdtest("mdtest-hard-delete", false, "delete"));

  std::vector<double> bw_values;
  std::vector<double> md_values;
  for (const auto& phase : result.phases) {
    if (phase.unit == "GiB/s") {
      bw_values.push_back(phase.value);
    } else {
      md_values.push_back(phase.value);
    }
  }
  result.score_bw_gib = util::geometric_mean(bw_values);
  result.score_md_kiops = util::geometric_mean(md_values);
  result.score_total = std::sqrt(result.score_bw_gib * result.score_md_kiops);

  cleanup();
  return result;
}

}  // namespace iokc::gen
