#include "src/generators/haccio.hpp"

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/units.hpp"

namespace iokc::gen {

void HaccIoConfig::validate() const {
  if (particles_per_rank == 0) {
    throw ConfigError("hacc-io: particle count must be positive");
  }
  if (num_tasks == 0) {
    throw ConfigError("hacc-io: task count must be positive");
  }
  if (api == iostack::IoApi::kHdf5) {
    throw ConfigError("hacc-io supports POSIX and MPIIO only");
  }
  if (file_mode == iostack::FileMode::kFilePerGroup && group_size == 0) {
    throw ConfigError("hacc-io: group size must be positive");
  }
  if (transfer_size == 0) {
    throw ConfigError("hacc-io: transfer size must be positive");
  }
  if (iterations <= 0) {
    throw ConfigError("hacc-io: iteration count must be positive");
  }
}

std::string HaccIoConfig::render_command() const {
  std::string cmd = "hacc_io -p " + std::to_string(particles_per_rank);
  cmd += " -a " + iostack::to_string(api);
  cmd += " -m " + iostack::to_string(file_mode);
  if (file_mode == iostack::FileMode::kFilePerGroup) {
    cmd += " -g " + std::to_string(group_size);
  }
  cmd += " -i " + std::to_string(iterations);
  cmd += " -N " + std::to_string(num_tasks);
  cmd += " -o " + base_path;
  return cmd;
}

HaccIoConfig parse_haccio_command(const std::string& command) {
  const std::vector<std::string> tokens = util::split_ws(command);
  HaccIoConfig config;
  std::size_t i = 0;
  if (i < tokens.size() && tokens[i] == "hacc_io") {
    ++i;
  }
  auto need_value = [&](const std::string& option) -> const std::string& {
    if (i + 1 >= tokens.size()) {
      throw ParseError("hacc_io option " + option + " needs a value");
    }
    return tokens[++i];
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "-p") {
      config.particles_per_rank =
          static_cast<std::uint64_t>(util::parse_i64(need_value(token)));
    } else if (token == "-a") {
      config.api = iostack::api_from_string(need_value(token));
    } else if (token == "-m") {
      config.file_mode = iostack::file_mode_from_string(need_value(token));
    } else if (token == "-g") {
      config.group_size =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-i") {
      config.iterations = static_cast<int>(util::parse_i64(need_value(token)));
    } else if (token == "-N") {
      config.num_tasks =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-o") {
      config.base_path = need_value(token);
    } else {
      throw ParseError("unknown hacc_io option '" + token + "'");
    }
  }
  return config;
}

std::string HaccIoRunResult::render_output() const {
  std::string out;
  out += "HACC-IO+sim checkpoint/restart kernel\n";
  out += "Command line        : " + config.render_command() + "\n";
  out += "Mode                : " + iostack::to_string(config.file_mode) + "\n";
  out += "API                 : " + iostack::to_string(config.api) + "\n";
  out += "Particles per rank  : " + std::to_string(config.particles_per_rank) +
         "\n";
  out += "Tasks               : " + std::to_string(config.num_tasks) + "\n";
  out += "Nodes               : " + std::to_string(num_nodes) + "\n";
  out += "Bytes per rank      : " + std::to_string(config.bytes_per_rank()) +
         "\n\n";
  out += "iter  write(MiB/s)  read(MiB/s)  write(s)   read(s)\n";
  for (std::size_t i = 0; i < iterations.size(); ++i) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "%-5zu %-13.2f %-12.2f %-10.4f %-10.4f\n",
                  i, iterations[i].write_bw_mib, iterations[i].read_bw_mib,
                  iterations[i].write_sec, iterations[i].read_sec);
    out += buf;
  }
  return out;
}

HaccIoBenchmark::HaccIoBenchmark(iostack::IoClient& client,
                                 HaccIoConfig config,
                                 std::vector<std::size_t> rank_nodes)
    : client_(client),
      config_(std::move(config)),
      rank_nodes_(std::move(rank_nodes)) {
  config_.validate();
  if (rank_nodes_.size() != config_.num_tasks) {
    throw ConfigError("hacc-io: rank-to-node map size != task count");
  }
}

std::string HaccIoBenchmark::file_for_rank(std::uint32_t rank) const {
  switch (config_.file_mode) {
    case iostack::FileMode::kSharedFile:
      return config_.base_path;
    case iostack::FileMode::kFilePerProcess:
      return config_.base_path + "." + std::to_string(rank);
    case iostack::FileMode::kFilePerGroup:
      return config_.base_path + ".g" +
             std::to_string(rank / config_.group_size);
  }
  return config_.base_path;
}

std::uint64_t HaccIoBenchmark::offset_for_rank(std::uint32_t rank) const {
  switch (config_.file_mode) {
    case iostack::FileMode::kSharedFile:
      return config_.bytes_per_rank() * rank;
    case iostack::FileMode::kFilePerProcess:
      return 0;
    case iostack::FileMode::kFilePerGroup:
      return config_.bytes_per_rank() * (rank % config_.group_size);
  }
  return 0;
}

double HaccIoBenchmark::run_transfer_phase(bool is_write) {
  auto& queue = client_.pfs().cluster().queue();
  const double start = queue.now();
  const std::uint64_t bytes = config_.bytes_per_rank();
  // Per-rank chains live in the deque (stable addresses) until queue.run()
  // drains them; the closures self-reference by reference so no closure owns
  // itself through a shared_ptr cycle.
  std::deque<std::function<void(std::uint64_t)>> chains;
  for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
    const std::string path = file_for_rank(rank);
    const std::uint64_t base = offset_for_rank(rank);
    const std::size_t node = rank_nodes_[rank];
    std::function<void(std::uint64_t)>& issue = chains.emplace_back();
    issue = [this, path, base, bytes, node, &issue,
             is_write](std::uint64_t done_bytes) {
      if (done_bytes == bytes) {
        return;
      }
      const std::uint64_t len =
          std::min(config_.transfer_size, bytes - done_bytes);
      auto next = [&issue, done_bytes, len](sim::SimTime) {
        issue(done_bytes + len);
      };
      if (is_write) {
        client_.write(path, base + done_bytes, len, node, next);
      } else {
        client_.read(path, base + done_bytes, len, node, next);
      }
    };
    issue(0);
  }
  queue.run();
  return queue.now() - start;
}

HaccIoRunResult HaccIoBenchmark::run() {
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  HaccIoRunResult result;
  result.config = config_;
  result.num_nodes = static_cast<std::uint32_t>(
      std::set<std::size_t>(rank_nodes_.begin(), rank_nodes_.end()).size());

  // Create the checkpoint files (one per rank/group, or the shared file).
  std::set<std::string> files;
  for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
    files.insert(file_for_rank(rank));
  }
  for (const std::string& path : files) {
    if (!pfs.exists(path)) {
      client_.open(path, rank_nodes_[0], /*create=*/true, [](sim::SimTime) {});
    }
  }
  queue.run();

  const double total_mib =
      static_cast<double>(config_.bytes_per_rank()) *
      static_cast<double>(config_.num_tasks) / static_cast<double>(util::kMiB);
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    HaccIoIterationResult it;
    it.write_sec = run_transfer_phase(/*is_write=*/true);
    it.write_bw_mib = it.write_sec > 0.0 ? total_mib / it.write_sec : 0.0;
    it.read_sec = run_transfer_phase(/*is_write=*/false);
    it.read_bw_mib = it.read_sec > 0.0 ? total_mib / it.read_sec : 0.0;
    result.iterations.push_back(it);
  }

  for (const std::string& path : files) {
    pfs.unlink(path, rank_nodes_[0], [](sim::SimTime) {});
  }
  queue.run();
  return result;
}

}  // namespace iokc::gen
