#include "src/generators/mdtest.hpp"

#include <cstdio>
#include <deque>
#include <functional>
#include <memory>
#include <set>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/summary_stats.hpp"

namespace iokc::gen {

void MdtestConfig::validate() const {
  if (files_per_rank == 0) {
    throw ConfigError("mdtest: files per rank must be positive");
  }
  if (num_tasks == 0) {
    throw ConfigError("mdtest: task count must be positive");
  }
  if (iterations <= 0) {
    throw ConfigError("mdtest: iteration count must be positive");
  }
  if (base_dir.empty()) {
    throw ConfigError("mdtest: base directory must not be empty");
  }
  if (do_read && write_bytes == 0) {
    throw ConfigError("mdtest: read phase requires write_bytes > 0");
  }
}

std::string MdtestConfig::render_command() const {
  std::string cmd = "mdtest -n " + std::to_string(files_per_rank);
  if (unique_dir_per_task) {
    cmd += " -u";
  }
  if (write_bytes > 0) {
    cmd += " -w " + std::to_string(write_bytes);
  }
  if (do_read) {
    cmd += " -e " + std::to_string(write_bytes);
  }
  cmd += " -i " + std::to_string(iterations);
  cmd += " -N " + std::to_string(num_tasks);
  cmd += " -d " + base_dir;
  return cmd;
}

MdtestConfig parse_mdtest_command(const std::string& command) {
  const std::vector<std::string> tokens = util::split_ws(command);
  MdtestConfig config;
  std::size_t i = 0;
  if (i < tokens.size() && tokens[i] == "mdtest") {
    ++i;
  }
  auto need_value = [&](const std::string& option) -> const std::string& {
    if (i + 1 >= tokens.size()) {
      throw ParseError("mdtest option " + option + " needs a value");
    }
    return tokens[++i];
  };
  for (; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token == "-n") {
      config.files_per_rank =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-u") {
      config.unique_dir_per_task = true;
    } else if (token == "-w") {
      config.write_bytes =
          static_cast<std::uint64_t>(util::parse_i64(need_value(token)));
    } else if (token == "-e") {
      config.write_bytes =
          static_cast<std::uint64_t>(util::parse_i64(need_value(token)));
      config.do_read = true;
    } else if (token == "-i") {
      config.iterations = static_cast<int>(util::parse_i64(need_value(token)));
    } else if (token == "-N") {
      config.num_tasks =
          static_cast<std::uint32_t>(util::parse_i64(need_value(token)));
    } else if (token == "-d") {
      config.base_dir = need_value(token);
    } else {
      throw ParseError("unknown mdtest option '" + token + "'");
    }
  }
  return config;
}

std::string MdtestRunResult::render_output() const {
  auto collect = [this](double MdtestIterationResult::* member) {
    std::vector<double> values;
    for (const auto& iteration : iterations) {
      values.push_back(iteration.*member);
    }
    return util::summarize(values);
  };
  std::string out;
  out += "mdtest-3.4.0+sim was launched with " +
         std::to_string(config.num_tasks) + " total task(s) on " +
         std::to_string(num_nodes) + " node(s)\n";
  out += "Command line used: " + config.render_command() + "\n";
  out += "\nSUMMARY rate: (of " + std::to_string(iterations.size()) +
         " iterations)\n";
  out +=
      "   Operation                     Max            Min           Mean    "
      "    Std Dev\n";
  out +=
      "   ---------                     ---            ---           ----    "
      "    -------\n";
  auto emit = [&out](const char* name, const util::SummaryStats& stats) {
    char buf[160];
    std::snprintf(buf, sizeof buf, "   %-20s :%15.3f%15.3f%15.3f%15.3f\n",
                  name, stats.max, stats.min, stats.mean, stats.stddev);
    out += buf;
  };
  if (config.do_create) {
    emit("File creation", collect(&MdtestIterationResult::creation_rate));
  }
  if (config.do_stat) {
    emit("File stat", collect(&MdtestIterationResult::stat_rate));
  }
  if (config.do_read) {
    emit("File read", collect(&MdtestIterationResult::read_rate));
  }
  if (config.do_remove) {
    emit("File removal", collect(&MdtestIterationResult::removal_rate));
  }
  return out;
}

MdtestBenchmark::MdtestBenchmark(iostack::IoClient& client,
                                 MdtestConfig config,
                                 std::vector<std::size_t> rank_nodes)
    : client_(client),
      config_(std::move(config)),
      rank_nodes_(std::move(rank_nodes)) {
  config_.validate();
  if (rank_nodes_.size() != config_.num_tasks) {
    throw ConfigError("mdtest: rank-to-node map size != task count");
  }
}

std::string MdtestBenchmark::dir_path(std::uint32_t rank) const {
  if (!config_.unique_dir_per_task) {
    return config_.base_dir;
  }
  return config_.base_dir + "/task." + std::to_string(rank);
}

std::string MdtestBenchmark::file_path(std::uint32_t rank,
                                       std::uint32_t index) const {
  return dir_path(rank) + "/file." + std::to_string(rank) + "." +
         std::to_string(index);
}

void MdtestBenchmark::ensure_dirs() {
  if (dirs_created_) {
    return;
  }
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  if (!pfs.exists(config_.base_dir)) {
    pfs.mkdir(config_.base_dir, rank_nodes_[0], [](sim::SimTime) {});
  }
  if (config_.unique_dir_per_task) {
    for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
      if (!pfs.exists(dir_path(rank))) {
        pfs.mkdir(dir_path(rank), rank_nodes_[rank], [](sim::SimTime) {});
      }
    }
  }
  queue.run();
  dirs_created_ = true;
}

double MdtestBenchmark::run_phase(Phase phase) {
  auto& pfs = client_.pfs();
  auto& queue = pfs.cluster().queue();
  const double phase_start = queue.now();

  // Per-rank chains live in the deque (stable addresses) until queue.run()
  // drains them; the closures self-reference by reference so no closure owns
  // itself through a shared_ptr cycle.
  std::deque<std::function<void(std::uint32_t)>> chains;
  for (std::uint32_t rank = 0; rank < config_.num_tasks; ++rank) {
    const std::size_t node = rank_nodes_[rank];
    std::function<void(std::uint32_t)>& issue = chains.emplace_back();
    issue = [this, &pfs, rank, node, phase, &issue](std::uint32_t index) {
      if (index == config_.files_per_rank) {
        return;
      }
      const std::string path = file_path(rank, index);
      auto next = [&issue, index](sim::SimTime) { issue(index + 1); };
      switch (phase) {
        case Phase::kCreate:
          pfs.create(path, node, [this, &pfs, path, node,
                                  next = std::move(next)](sim::SimTime t) {
            if (config_.write_bytes > 0) {
              pfs.write(path, 0, config_.write_bytes, node, next);
            } else {
              next(t);
            }
          });
          break;
        case Phase::kStat:
          pfs.stat(path, node, std::move(next));
          break;
        case Phase::kRead:
          pfs.open(path, node, [this, &pfs, path, node,
                                next = std::move(next)](sim::SimTime) {
            pfs.read(path, 0, config_.write_bytes, node, next);
          });
          break;
        case Phase::kRemove:
          pfs.unlink(path, node, std::move(next));
          break;
      }
    };
    issue(0);
  }
  queue.run();
  return queue.now() - phase_start;
}

MdtestRunResult MdtestBenchmark::run() {
  MdtestRunResult result;
  result.config = config_;
  result.num_nodes = static_cast<std::uint32_t>(
      std::set<std::size_t>(rank_nodes_.begin(), rank_nodes_.end()).size());
  ensure_dirs();

  const double total_files = static_cast<double>(config_.files_per_rank) *
                             static_cast<double>(config_.num_tasks);
  for (int iteration = 0; iteration < config_.iterations; ++iteration) {
    MdtestIterationResult rates;
    if (config_.do_create) {
      const double wall = run_phase(Phase::kCreate);
      rates.creation_rate = wall > 0.0 ? total_files / wall : 0.0;
    }
    if (config_.do_stat) {
      const double wall = run_phase(Phase::kStat);
      rates.stat_rate = wall > 0.0 ? total_files / wall : 0.0;
    }
    if (config_.do_read) {
      const double wall = run_phase(Phase::kRead);
      rates.read_rate = wall > 0.0 ? total_files / wall : 0.0;
    }
    if (config_.do_remove) {
      const double wall = run_phase(Phase::kRemove);
      rates.removal_rate = wall > 0.0 ? total_files / wall : 0.0;
    }
    result.iterations.push_back(rates);
  }
  return result;
}

}  // namespace iokc::gen
