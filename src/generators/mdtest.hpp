// An mdtest-compatible metadata benchmark: file create/stat/read/removal
// phases over per-rank or shared directories. The "easy" IO500 flavour uses a
// unique directory per task (spreading load over metadata servers); the
// "hard" flavour uses one shared directory plus a small write per file, which
// serializes on a single metadata server — the contrast Fig. 6's bounding box
// is built from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/iostack/client.hpp"

namespace iokc::gen {

/// mdtest configuration (mirrors mdtest command-line semantics).
struct MdtestConfig {
  std::uint32_t files_per_rank = 1000;       // -n
  bool unique_dir_per_task = false;          // -u
  std::string base_dir = "/scratch/mdtest";  // -d
  std::uint64_t write_bytes = 0;             // -w (bytes written at create)
  std::uint32_t num_tasks = 1;
  int iterations = 1;                        // -i
  bool do_create = true;
  bool do_stat = true;
  bool do_read = false;                      // -E style read phase
  bool do_remove = true;

  void validate() const;
  std::string render_command() const;
};

/// Parses an "mdtest ..." command line (the render_command dialect).
MdtestConfig parse_mdtest_command(const std::string& command);

/// Rates (ops/sec) of one iteration.
struct MdtestIterationResult {
  double creation_rate = 0.0;
  double stat_rate = 0.0;
  double read_rate = 0.0;
  double removal_rate = 0.0;
};

/// A complete mdtest run.
struct MdtestRunResult {
  MdtestConfig config;
  std::uint32_t num_nodes = 0;
  std::vector<MdtestIterationResult> iterations;

  /// mdtest-style "SUMMARY rate" text report.
  std::string render_output() const;
};

/// The engine; same event-queue contract as IorBenchmark.
class MdtestBenchmark {
 public:
  MdtestBenchmark(iostack::IoClient& client, MdtestConfig config,
                  std::vector<std::size_t> rank_nodes);

  MdtestRunResult run();

  /// Path of file `index` of rank `rank` (used by IO500's find phase).
  std::string file_path(std::uint32_t rank, std::uint32_t index) const;
  /// Directory of one rank (shared base dir unless unique_dir_per_task).
  std::string dir_path(std::uint32_t rank) const;

 private:
  enum class Phase { kCreate, kStat, kRead, kRemove };
  double run_phase(Phase phase);
  void ensure_dirs();

  iostack::IoClient& client_;
  MdtestConfig config_;
  std::vector<std::size_t> rank_nodes_;
  bool dirs_created_ = false;
};

}  // namespace iokc::gen
