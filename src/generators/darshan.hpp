// A Darshan-style I/O characterization profiler. Benchmark engines notify it
// of opens/transfers/closes; it aggregates per-file counters (the POSIX_* /
// MPIIO_* counter names Darshan users know) and renders a darshan-parser-like
// text log that the extraction phase can interpret — the role PyDarshan plays
// in the paper's prototype.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/iostack/pattern.hpp"

namespace iokc::gen {

/// Aggregated counters for one file (Darshan "shared record", rank -1).
struct DarshanFileRecord {
  std::string file;
  std::uint64_t opens = 0;
  std::uint64_t closes = 0;
  std::uint64_t writes = 0;
  std::uint64_t reads = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t max_write_size = 0;
  std::uint64_t max_read_size = 0;
};

/// The profiler. One instance per instrumented job run.
class DarshanProfiler {
 public:
  explicit DarshanProfiler(iostack::IoApi api) : api_(api) {}

  void record_open(std::uint32_t rank, const std::string& file);
  void record_close(std::uint32_t rank, const std::string& file);
  void record_transfer(std::uint32_t rank, const std::string& file,
                       std::uint64_t bytes, bool is_write);
  void set_job_metadata(std::string command, std::uint32_t nprocs);

  const std::map<std::string, DarshanFileRecord>& records() const {
    return records_;
  }
  std::uint32_t nprocs() const { return nprocs_; }

  /// Renders the darshan-parser-shaped log:
  ///   # darshan log version: 3.41-sim
  ///   # exe: ior -a MPIIO ...
  ///   # nprocs: 80
  ///   <MODULE> -1 <file> <COUNTER> <value>
  std::string render_log() const;

 private:
  iostack::IoApi api_;
  std::string command_;
  std::uint32_t nprocs_ = 0;
  std::map<std::string, DarshanFileRecord> records_;
};

}  // namespace iokc::gen
