#include "src/generators/darshan.hpp"

#include <algorithm>

namespace iokc::gen {

void DarshanProfiler::record_open(std::uint32_t rank, const std::string& file) {
  (void)rank;
  auto& record = records_[file];
  record.file = file;
  ++record.opens;
}

void DarshanProfiler::record_close(std::uint32_t rank,
                                   const std::string& file) {
  (void)rank;
  auto& record = records_[file];
  record.file = file;
  ++record.closes;
}

void DarshanProfiler::record_transfer(std::uint32_t rank,
                                      const std::string& file,
                                      std::uint64_t bytes, bool is_write) {
  (void)rank;
  auto& record = records_[file];
  record.file = file;
  if (is_write) {
    ++record.writes;
    record.bytes_written += bytes;
    record.max_write_size = std::max(record.max_write_size, bytes);
  } else {
    ++record.reads;
    record.bytes_read += bytes;
    record.max_read_size = std::max(record.max_read_size, bytes);
  }
}

void DarshanProfiler::set_job_metadata(std::string command,
                                       std::uint32_t nprocs) {
  command_ = std::move(command);
  nprocs_ = nprocs;
}

std::string DarshanProfiler::render_log() const {
  const std::string module =
      api_ == iostack::IoApi::kPosix ? "POSIX" : "MPIIO";
  std::string out;
  out += "# darshan log version: 3.41-sim\n";
  out += "# exe: " + command_ + "\n";
  out += "# nprocs: " + std::to_string(nprocs_) + "\n";
  out += "# module: " + module + "\n";
  out += "#<module>\t<rank>\t<file>\t<counter>\t<value>\n";
  auto emit = [&](const std::string& file, const std::string& counter,
                  std::uint64_t value) {
    out += module + "\t-1\t" + file + "\t" + module + "_" + counter + "\t" +
           std::to_string(value) + "\n";
  };
  for (const auto& [file, record] : records_) {
    emit(file, "OPENS", record.opens);
    emit(file, "CLOSES", record.closes);
    emit(file, "WRITES", record.writes);
    emit(file, "READS", record.reads);
    emit(file, "BYTES_WRITTEN", record.bytes_written);
    emit(file, "BYTES_READ", record.bytes_read);
    emit(file, "MAX_WRITE_SIZE", record.max_write_size);
    emit(file, "MAX_READ_SIZE", record.max_read_size);
  }
  return out;
}

}  // namespace iokc::gen
