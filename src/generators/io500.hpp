// An IO500-style benchmark composed of the IOR and mdtest engines plus a
// namespace-scan ("find") phase, with the official twelve result lines and
// the geometric-mean scoring rule. Workload sizes are scaled down from the
// official stonewalled run so a laptop-scale simulation finishes quickly;
// the relative shape (easy >> hard, write vs read asymmetry) is what matters
// for the paper's bounding-box use case.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/generators/ior.hpp"
#include "src/generators/mdtest.hpp"
#include "src/iostack/client.hpp"

namespace iokc::gen {

/// IO500 configuration.
struct Io500Config {
  std::uint32_t num_tasks = 1;
  std::string base_dir = "/scratch/io500";

  // Scaled workload knobs.
  std::uint64_t ior_easy_bytes_per_rank = 256ull * 1024 * 1024;
  std::uint64_t ior_easy_transfer = 2ull * 1024 * 1024;
  std::uint64_t ior_hard_bytes_per_rank = 8ull * 1024 * 1024;
  std::uint64_t ior_hard_transfer = 47008;  // official ior-hard record size
  std::uint32_t mdtest_easy_files_per_rank = 400;
  std::uint32_t mdtest_hard_files_per_rank = 200;
  std::uint64_t mdtest_hard_write_bytes = 3901;  // official

  void validate() const;
  std::string render_command() const;
};

/// Parses an "io500 ..." command line ("io500 -N <tasks> [-o <basedir>]
/// [--easy-bytes <size>] [--hard-bytes <size>] [--easy-files <n>]
/// [--hard-files <n>]").
Io500Config parse_io500_command(const std::string& command);

/// One [RESULT] line.
struct Io500PhaseResult {
  std::string name;   // e.g. "ior-easy-write"
  double value = 0.0; // GiB/s for ior phases, kIOPS otherwise
  std::string unit;   // "GiB/s" or "kIOPS"
  double time_sec = 0.0;
};

/// A complete IO500 run with its score triple.
struct Io500Result {
  Io500Config config;
  std::uint32_t num_nodes = 0;
  std::vector<Io500PhaseResult> phases;
  double score_bw_gib = 0.0;   // geometric mean of the four ior phases
  double score_md_kiops = 0.0; // geometric mean of the md/find phases
  double score_total = 0.0;    // sqrt(bw * md)

  const Io500PhaseResult* find_phase(const std::string& name) const;

  /// io500-shaped report ("[RESULT] ..." lines plus "[SCORE ] ...").
  std::string render_output() const;
};

/// The engine: runs all twelve phases in the official order.
class Io500Benchmark {
 public:
  Io500Benchmark(iostack::IoClient& client, Io500Config config,
                 std::vector<std::size_t> rank_nodes);

  Io500Result run();

 private:
  IorConfig ior_easy_config(bool write) const;
  IorConfig ior_hard_config(bool write) const;
  MdtestConfig mdtest_config(bool easy, const char* phase) const;
  Io500PhaseResult run_ior(const std::string& name, const IorConfig& config);
  Io500PhaseResult run_mdtest(const std::string& name, bool easy,
                              const char* phase);
  Io500PhaseResult run_find();
  void cleanup();

  iostack::IoClient& client_;
  Io500Config config_;
  std::vector<std::size_t> rank_nodes_;
  std::uint64_t namespace_entries_ = 0;  // entries visible to the find phase
};

}  // namespace iokc::gen
