// A HACC-IO-style checkpoint/restart benchmark: every rank writes its
// particle payload (9 variables x 4 bytes + 2 bytes per particle = 38 bytes,
// as in the HACC I/O kernel) and reads it back, under single-shared-file,
// file-per-process, or file-per-group modes and POSIX or MPI-IO interfaces.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/iostack/client.hpp"
#include "src/iostack/pattern.hpp"

namespace iokc::gen {

/// HACC-IO configuration.
struct HaccIoConfig {
  std::uint64_t particles_per_rank = 1'000'000;
  std::uint32_t num_tasks = 1;
  iostack::IoApi api = iostack::IoApi::kPosix;  // POSIX or MPIIO
  iostack::FileMode file_mode = iostack::FileMode::kFilePerProcess;
  std::uint32_t group_size = 8;  // ranks per file in file-per-group mode
  std::string base_path = "/scratch/hacc/part";
  std::uint64_t transfer_size = 8ull * 1024 * 1024;  // client buffering unit
  int iterations = 1;

  static constexpr std::uint64_t kBytesPerParticle = 38;

  std::uint64_t bytes_per_rank() const {
    return particles_per_rank * kBytesPerParticle;
  }

  void validate() const;
  std::string render_command() const;
};

/// Parses a "hacc_io ..." command line (the render_command dialect).
HaccIoConfig parse_haccio_command(const std::string& command);

/// One iteration's checkpoint (write) and restart (read) measurements.
struct HaccIoIterationResult {
  double write_bw_mib = 0.0;
  double read_bw_mib = 0.0;
  double write_sec = 0.0;
  double read_sec = 0.0;
};

/// A complete HACC-IO run.
struct HaccIoRunResult {
  HaccIoConfig config;
  std::uint32_t num_nodes = 0;
  std::vector<HaccIoIterationResult> iterations;

  /// Text report parsed by the knowledge extractor.
  std::string render_output() const;
};

/// The engine; same event-queue contract as IorBenchmark.
class HaccIoBenchmark {
 public:
  HaccIoBenchmark(iostack::IoClient& client, HaccIoConfig config,
                  std::vector<std::size_t> rank_nodes);

  HaccIoRunResult run();

 private:
  std::string file_for_rank(std::uint32_t rank) const;
  std::uint64_t offset_for_rank(std::uint32_t rank) const;
  double run_transfer_phase(bool is_write);

  iostack::IoClient& client_;
  HaccIoConfig config_;
  std::vector<std::size_t> rank_nodes_;
};

}  // namespace iokc::gen
