// An IOR-compatible benchmark engine running against the simulated I/O stack.
//
// It honours the option subset the paper exercises (-a -b -t -s -F -C -e -i
// -o -k plus -w/-r/-c/-N), reproduces IOR's phase structure (open, write/read,
// fsync, close, with barriers between phases), and renders an IOR-3.x-shaped
// text report that the knowledge extractor parses.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/iostack/client.hpp"
#include "src/iostack/hints.hpp"
#include "src/iostack/pattern.hpp"

namespace iokc::gen {

class DarshanProfiler;

/// The IOR configuration (mirrors IOR command-line semantics).
struct IorConfig {
  iostack::IoApi api = iostack::IoApi::kPosix;  // -a
  std::uint64_t block_size = 1024 * 1024;       // -b
  std::uint64_t transfer_size = 256 * 1024;     // -t
  std::uint32_t segments = 1;                   // -s
  bool file_per_process = false;                // -F
  bool reorder_tasks = false;                   // -C
  bool fsync = false;                           // -e
  int iterations = 1;                           // -i
  std::string test_file = "/scratch/testFile";  // -o
  bool keep_file = false;                       // -k
  bool write_file = false;                      // -w (both default when unset)
  bool read_file = false;                       // -r
  bool collective = false;                      // -c
  std::uint32_t num_tasks = 1;                  // -N (taken from MPI normally)
  int deadline_secs = 0;                        // -D (stonewalling; 0 = off)
  bool random_offsets = false;                  // -z
  /// MPI-IO hints (real IOR takes them via IOR_HINT__MPI__* variables; this
  /// dialect accepts "-O cb_nodes=4;cb_buffer_size=8388608;..." tokens).
  iostack::MpiioHints hints;
  bool hints_set = false;                       // -O given

  bool do_write() const { return write_file || !read_file; }
  bool do_read() const { return read_file || !write_file; }

  /// Bytes moved by one rank in one phase.
  std::uint64_t bytes_per_rank() const {
    return static_cast<std::uint64_t>(segments) * block_size;
  }
  /// Transfers issued by one rank in one phase.
  std::uint64_t transfers_per_rank() const {
    return static_cast<std::uint64_t>(segments) * (block_size / transfer_size);
  }

  /// Validates invariants IOR enforces (block multiple of transfer, ...).
  /// Throws ConfigError on violation.
  void validate() const;

  /// Renders the equivalent command line ("ior -a MPIIO -b 4m ...").
  std::string render_command() const;
};

/// Parses an "ior ..." command line (as stored in the knowledge database or
/// typed by a user). Throws ParseError on unknown options.
IorConfig parse_ior_command(const std::string& command);

/// One result line (one access direction of one iteration).
struct IorOpResult {
  std::string access;  // "write" or "read"
  double bw_mib = 0.0;
  double iops = 0.0;
  double latency_sec = 0.0;
  std::uint64_t block_kib = 0;
  std::uint64_t xfer_kib = 0;
  double open_sec = 0.0;
  double wrrd_sec = 0.0;
  double close_sec = 0.0;
  double total_sec = 0.0;
  int iteration = 0;
};

/// A complete IOR run (all iterations).
struct IorRunResult {
  IorConfig config;
  std::uint32_t num_nodes = 0;
  std::vector<IorOpResult> ops;
  double start_time = 0.0;  // simulated seconds
  double end_time = 0.0;

  std::vector<const IorOpResult*> ops_for(const std::string& access) const;

  /// Renders the IOR-3.x-shaped report (options block, per-iteration result
  /// lines, and the "Summary of all tests" block).
  std::string render_output() const;
};

/// The engine. Drives the event queue itself; the queue must be otherwise
/// idle when run() is called (one benchmark at a time per simulation).
class IorBenchmark {
 public:
  /// `rank_nodes[r]` is the node hosting rank r; its size must equal
  /// config.num_tasks (throws ConfigError otherwise).
  IorBenchmark(iostack::IoClient& client, IorConfig config,
               std::vector<std::size_t> rank_nodes);

  /// Optional Darshan-style profiler notified of every I/O operation.
  void set_profiler(DarshanProfiler* profiler) { profiler_ = profiler; }

  /// Executes all iterations and returns the collected results.
  IorRunResult run();

 private:
  struct PhaseStats {
    double wall_sec = 0.0;
    double latency_sum = 0.0;
    std::uint64_t op_count = 0;
    std::uint64_t bytes_moved = 0;
  };

  std::string file_for_rank(std::uint32_t rank) const;
  std::uint64_t offset_for(std::uint32_t rank, std::uint32_t segment,
                           std::uint64_t transfer_index) const;
  /// Rank whose *file/region* rank `r` reads (identity unless -C).
  std::uint32_t read_source_rank(std::uint32_t rank) const;
  /// The order rank `r` visits its transfer steps (-z shuffles it).
  std::vector<std::uint64_t> transfer_order(std::uint32_t rank) const;

  double run_open_phase(bool create);
  PhaseStats run_transfer_phase(bool is_write);
  double run_fsync_phase();
  double run_close_phase();
  void run_remove_phase();

  iostack::IoClient& client_;
  IorConfig config_;
  std::vector<std::size_t> rank_nodes_;
  DarshanProfiler* profiler_ = nullptr;
  /// Transfers each rank completed in the latest write phase; a stonewalled
  /// (-D) read phase reads back only what its source rank actually wrote.
  std::vector<std::uint64_t> transfers_written_;
};

/// Convenience: block-assigns `num_tasks` ranks onto `nodes` (Slurm default
/// placement: ranks 0..ppn-1 on the first node, and so on).
std::vector<std::size_t> block_rank_mapping(
    const std::vector<std::size_t>& nodes, std::uint32_t num_tasks);

}  // namespace iokc::gen
