// Clang Thread Safety Analysis attribute macros.
//
// These wrap the `capability` attribute family so that locking contracts are
// written once, next to the data they protect, and machine-checked by clang
// (`-Wthread-safety -Wthread-safety-beta`, promoted to errors in the clang
// presets). Under gcc — which has no thread-safety analysis — every macro
// expands to nothing, so annotated code compiles identically as no-ops.
//
// The annotated lock types themselves (`util::Mutex`, `util::LockGuard`, ...)
// live in src/util/mutex.hpp; this header is only the attribute vocabulary.
//
// Cheatsheet (see DESIGN.md "Concurrency contracts"):
//   IOKC_GUARDED_BY(mu)    data member: reads need mu held (shared ok),
//                          writes need mu held exclusively
//   IOKC_PT_GUARDED_BY(mu) pointer member: the pointee is guarded by mu
//   IOKC_REQUIRES(mu)      function: caller must already hold mu
//   IOKC_ACQUIRE(mu)       function: acquires mu, returns with it held
//   IOKC_RELEASE(mu)       function: releases mu
//   IOKC_EXCLUDES(mu)      function: caller must NOT hold mu (anti-deadlock)
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define IOKC_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef IOKC_THREAD_ANNOTATION
#define IOKC_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type annotations: mark a class as a (scoped) lockable capability.
#define IOKC_CAPABILITY(name) IOKC_THREAD_ANNOTATION(capability(name))
#define IOKC_SCOPED_CAPABILITY IOKC_THREAD_ANNOTATION(scoped_lockable)

// Data-member annotations.
#define IOKC_GUARDED_BY(x) IOKC_THREAD_ANNOTATION(guarded_by(x))
#define IOKC_PT_GUARDED_BY(x) IOKC_THREAD_ANNOTATION(pt_guarded_by(x))

// Function annotations.
#define IOKC_REQUIRES(...) \
  IOKC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define IOKC_REQUIRES_SHARED(...) \
  IOKC_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define IOKC_ACQUIRE(...) \
  IOKC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define IOKC_ACQUIRE_SHARED(...) \
  IOKC_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define IOKC_RELEASE(...) \
  IOKC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define IOKC_RELEASE_SHARED(...) \
  IOKC_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define IOKC_RELEASE_GENERIC(...) \
  IOKC_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define IOKC_TRY_ACQUIRE(...) \
  IOKC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define IOKC_EXCLUDES(...) IOKC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define IOKC_ASSERT_CAPABILITY(x) \
  IOKC_THREAD_ANNOTATION(assert_capability(x))
#define IOKC_RETURN_CAPABILITY(x) IOKC_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch: disables the analysis for one function body. Every use must
// carry a comment explaining why the contract cannot be expressed.
#define IOKC_NO_THREAD_SAFETY_ANALYSIS \
  IOKC_THREAD_ANNOTATION(no_thread_safety_analysis)
