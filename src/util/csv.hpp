// RFC-4180-style CSV reading and writing, used for knowledge export and for
// bench artifact series.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iokc::util {

/// Builds CSV text row by row with correct quoting of commas, quotes, and
/// newlines.
class CsvWriter {
 public:
  /// Appends one row; every cell is quoted only when necessary. CSV cannot
  /// represent a record with zero fields, so an empty `cells` writes a blank
  /// record that parse_csv reads back as one empty cell — the row itself
  /// survives the round trip.
  void add_row(const std::vector<std::string>& cells);

  /// The accumulated CSV document.
  const std::string& text() const { return text_; }

  /// Writes the document to a file. Throws IoError on failure.
  void save(const std::string& path) const;

 private:
  std::string text_;
};

/// Parses CSV text into rows of cells, honoring quoted fields with embedded
/// separators, escaped quotes (""), and CRLF line endings. A blank line is a
/// record with a single empty cell. Throws ParseError on unterminated quotes
/// and on stray characters between a closing quote and the next separator.
std::vector<std::vector<std::string>> parse_csv(std::string_view text);

}  // namespace iokc::util
