#include "src/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace iokc::util {

namespace {

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t stream) {
  // Offset the state by (stream + 1) golden-ratio increments, then mix twice
  // so that neighbouring streams land far apart even for small seeds.
  std::uint64_t state = seed + (stream + 1) * 0x9E3779B97F4A7C15ull;
  const std::uint64_t first = splitmix64(state);
  state ^= first;
  return splitmix64(state);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(next_u64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t raw = next_u64();
  while (raw >= limit) {
    raw = next_u64();
  }
  return lo + static_cast<std::int64_t>(raw % range);
}

double Rng::normal() {
  // Box-Muller; draws two uniforms per call and discards the sine branch to
  // keep the stream position deterministic regardless of call pattern.
  double u1 = uniform();
  const double u2 = uniform();
  if (u1 <= 0.0) {
    u1 = 0x1.0p-53;
  }
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  double u = uniform();
  if (u <= 0.0) {
    u = 0x1.0p-53;
  }
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) {
    return false;
  }
  if (p >= 1.0) {
    return true;
  }
  return uniform() < p;
}

Rng Rng::split() {
  return Rng(next_u64());
}

}  // namespace iokc::util
