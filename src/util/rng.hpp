// Deterministic random number generation for the simulation substrate.
//
// All stochastic behaviour in iokc (service-time jitter, interference bursts,
// workload synthesis) draws from Rng so that a scenario seed reproduces a run
// bit-for-bit. The engine is xoshiro256** seeded via SplitMix64, which is fast,
// well distributed, and fully specified here (no reliance on unspecified
// standard-library distribution internals).
#pragma once

#include <cstdint>
#include <vector>

namespace iokc::util {

/// SplitMix64 step; used for seeding and for cheap stateless hashing.
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless stream derivation: mixes `stream` into `seed` and returns the
/// derived seed. Each (seed, stream) pair yields an independent value, so
/// parallel work packages can seed their own Rng from a scenario seed and a
/// work-package id without sharing generator state.
std::uint64_t splitmix64(std::uint64_t seed, std::uint64_t stream);

/// Deterministic xoshiro256** generator with explicit distributions.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double normal();

  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal: exp(normal(mu, sigma)). Used for service-time jitter.
  double lognormal(double mu, double sigma);

  /// Exponential with given rate lambda (> 0).
  double exponential(double lambda);

  /// True with probability p (clamped to [0, 1]).
  bool bernoulli(double p);

  /// Derives an independent child generator (stream splitting).
  Rng split();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
};

}  // namespace iokc::util
