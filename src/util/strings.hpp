// Small string helpers used by parsers, writers, and formatters.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace iokc::util {

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view text);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Splits on runs of ASCII whitespace; drops empty fields.
std::vector<std::string> split_ws(std::string_view text);

/// Splits into lines, treating both "\n" and "\r\n" as terminators.
std::vector<std::string> split_lines(std::string_view text);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lowercase copy.
std::string to_lower(std::string_view text);

/// True if `text` begins with `prefix`.
bool starts_with(std::string_view text, std::string_view prefix);

/// True if `text` contains `needle`.
bool contains(std::string_view text, std::string_view needle);

/// Strict parse of a signed integer; throws ParseError on failure.
std::int64_t parse_i64(std::string_view text);

/// Strict parse of a double; throws ParseError on failure.
double parse_f64(std::string_view text);

/// Left/right padding to a minimum width.
std::string pad_left(std::string_view text, std::size_t width);
std::string pad_right(std::string_view text, std::size_t width);

/// printf-style double formatting with fixed precision.
std::string format_double(double value, int precision);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to);

}  // namespace iokc::util
