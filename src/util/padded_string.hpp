// An owned byte buffer with kPadding zero bytes past the logical end, so
// wide (16/64-byte) loads issued by the structural JSON indexer never read
// unmapped memory (simdjson's padded_string contract). The persistence and
// bench corpus loaders read files straight into one of these, letting
// parse_json run its fast path without re-copying the document.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>

namespace iokc::util {

class PaddedString {
 public:
  /// Bytes of zeroed slack past size(). One full SIMD block, so a 64-byte
  /// load at any offset < size() stays inside the allocation.
  static constexpr std::size_t kPadding = 64;

  PaddedString() = default;
  /// Copies `text` into a fresh padded allocation.
  explicit PaddedString(std::string_view text);

  PaddedString(const PaddedString&) = delete;
  PaddedString& operator=(const PaddedString&) = delete;
  PaddedString(PaddedString&& other) noexcept = default;
  PaddedString& operator=(PaddedString&& other) noexcept = default;

  /// Reads the whole file at `path` into a padded buffer (the corpus-loading
  /// path: one read, no intermediate std::string). Throws IoError.
  static PaddedString load(const std::string& path);

  const char* data() const { return data_ ? data_.get() : ""; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::string_view view() const { return {data(), size_}; }

 private:
  std::unique_ptr<char[]> data_;
  std::size_t size_ = 0;
};

}  // namespace iokc::util
