// Reusable JSON serialization buffer. A JsonWriter either owns its storage
// (default) or appends to a caller-provided std::string — the zero-copy wire
// path points it at the connection's output buffer so a response is encoded
// exactly once, directly behind its frame header. clear() keeps capacity, so
// a writer reused across requests stops allocating after warm-up.
//
// String escaping is a scan-and-memcpy loop: clean runs (printable ASCII and
// well-formed UTF-8) are copied in one append; only escape-needing bytes and
// invalid UTF-8 (replaced by U+FFFD so output is always valid JSON) break
// the run. This is where the dump path's byte-at-a-time cost went.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iokc::util {

class JsonWriter {
 public:
  /// Owns its buffer.
  JsonWriter() : out_(&owned_) {}
  /// Appends to `external` (not owned; must outlive the writer). clear()
  /// clears the external buffer too — point the writer at a sub-range by
  /// appending to the external string directly instead.
  explicit JsonWriter(std::string& external) : out_(&external) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  /// Drops content, keeps capacity.
  void clear() { out_->clear(); }
  void reserve(std::size_t bytes) { out_->reserve(bytes); }
  std::size_t size() const { return out_->size(); }
  std::string_view view() const { return *out_; }
  const std::string& str() const { return *out_; }
  /// Moves the buffer out (owned writers only — asserts otherwise in
  /// spirit; an external writer returns a copy to stay safe).
  std::string take() {
    if (out_ == &owned_) {
      std::string result = std::move(owned_);
      owned_.clear();
      return result;
    }
    return *out_;
  }

  // -- append primitives the dump path is built from --------------------

  void raw(char c) { *out_ += c; }
  void raw(std::string_view text) { out_->append(text); }
  /// Quoted, escaped JSON string (RFC 8259 §7): C0 controls, '"', '\\'
  /// escaped; invalid UTF-8 replaced with U+FFFD; clean runs memcpy'd.
  void string(std::string_view text);
  void number(std::int64_t value);
  /// Finite doubles print in shortest round-trip form (std::to_chars);
  /// non-finite values dump as null — the JSON grammar has no inf/nan.
  void number(double value);
  void boolean(bool value) { raw(value ? std::string_view("true") : std::string_view("false")); }
  void null() { raw(std::string_view("null")); }

 private:
  std::string owned_;
  std::string* out_;
};

}  // namespace iokc::util
