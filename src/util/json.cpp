#include "src/util/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>

#include "src/util/error.hpp"
#include "src/util/json_index.hpp"
#include "src/util/json_writer.hpp"
#include "src/util/padded_string.hpp"

namespace iokc::util {

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  throw ParseError("JSON value is not a bool");
}

std::int64_t JsonValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return *i;
  }
  throw ParseError("JSON value is not an integer");
}

double JsonValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw ParseError("JSON value is not a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  throw ParseError("JSON value is not a string");
}

const JsonArray& JsonValue::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  throw ParseError("JSON value is not an array");
}

JsonArray& JsonValue::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  throw ParseError("JSON value is not an array");
}

const JsonObject& JsonValue::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  throw ParseError("JSON value is not an object");
}

JsonObject& JsonValue::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  throw ParseError("JSON value is not an object");
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) {
    return *v;
  }
  throw ParseError("missing JSON field '" + std::string(key) + "'");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* obj = std::get_if<JsonObject>(&value_);
  if (obj == nullptr) {
    return nullptr;
  }
  for (const auto& [k, v] : *obj) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (is_null()) {
    value_ = JsonObject{};
  }
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

// -- Serialization ----------------------------------------------------------

namespace {

void indent_to(JsonWriter& writer, int indent, int depth) {
  writer.raw('\n');
  for (int k = 0; k < indent * depth; ++k) {
    writer.raw(' ');
  }
}

}  // namespace

void JsonValue::dump_value(JsonWriter& writer, int indent, int depth) const {
  if (is_null()) {
    writer.null();
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    writer.boolean(*b);
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    writer.number(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    writer.number(*d);
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    writer.string(*s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    writer.raw('[');
    for (std::size_t k = 0; k < a->size(); ++k) {
      if (k != 0) {
        writer.raw(',');
      }
      if (indent > 0) {
        indent_to(writer, indent, depth + 1);
      }
      (*a)[k].dump_value(writer, indent, depth + 1);
    }
    if (indent > 0 && !a->empty()) {
      indent_to(writer, indent, depth);
    }
    writer.raw(']');
  } else if (const auto* o = std::get_if<JsonObject>(&value_)) {
    writer.raw('{');
    for (std::size_t k = 0; k < o->size(); ++k) {
      if (k != 0) {
        writer.raw(',');
      }
      if (indent > 0) {
        indent_to(writer, indent, depth + 1);
      }
      writer.string((*o)[k].first);
      writer.raw(indent > 0 ? std::string_view(": ") : std::string_view(":"));
      (*o)[k].second.dump_value(writer, indent, depth + 1);
    }
    if (indent > 0 && !o->empty()) {
      indent_to(writer, indent, depth);
    }
    writer.raw('}');
  }
}

void JsonValue::dump_to(JsonWriter& writer, int indent) const {
  dump_value(writer, indent, 0);
}

std::string JsonValue::dump(int indent) const {
  JsonWriter writer;
  dump_to(writer, indent);
  return writer.take();
}

// -- Shared token decoding (both parsers route through these, so accept /
//    reject behavior and produced bytes are identical by construction) ------

namespace {

[[noreturn]] void fail_at(std::size_t offset, const std::string& message) {
  throw ParseError("JSON at offset " + std::to_string(offset) + ": " +
                   message);
}

inline bool is_json_ws(char c) {
  // RFC 8259 §2: exactly space, tab, line feed, carriage return. Never
  // std::isspace — that is locale-sensitive and admits \v/\f.
  return c == ' ' || c == '\t' || c == '\n' || c == '\r';
}

inline bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// RFC 8259 §6 number grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
/// Rejects what the pre-fix parser accepted: leading '+', leading zeros,
/// bare trailing '.' or exponent.
bool is_valid_json_number(std::string_view token, bool& is_double) {
  is_double = false;
  std::size_t i = 0;
  if (i < token.size() && token[i] == '-') {
    ++i;
  }
  if (i >= token.size()) {
    return false;
  }
  if (token[i] == '0') {
    ++i;  // a leading zero must stand alone before '.'/'e'
  } else if (token[i] >= '1' && token[i] <= '9') {
    do {
      ++i;
    } while (i < token.size() && is_digit(token[i]));
  } else {
    return false;
  }
  if (i < token.size() && token[i] == '.') {
    is_double = true;
    ++i;
    if (i >= token.size() || !is_digit(token[i])) {
      return false;
    }
    while (i < token.size() && is_digit(token[i])) {
      ++i;
    }
  }
  if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
    is_double = true;
    ++i;
    if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
      ++i;
    }
    if (i >= token.size() || !is_digit(token[i])) {
      return false;
    }
    while (i < token.size() && is_digit(token[i])) {
      ++i;
    }
  }
  return i == token.size();
}

/// strtod over a NUL-terminated copy — the conversion the pre-rewrite parser
/// used (and the ScalarParser keeps, so the bench compares real old against
/// real new). Assumes a C-locale decimal point, as the old parser did.
double strtod_token(std::string_view token, std::size_t offset) {
  const std::string buf{token};
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) {
    fail_at(offset, "bad number '" + buf + "'");
  }
  return value;
}

/// Finite-value gate shared by both conversions: the JSON grammar has no
/// inf/nan, so overflow (-> +-inf) is rejected instead of materialising a
/// value dump() cannot round-trip. Gradual underflow toward zero stays
/// finite and is accepted.
JsonValue finite_or_fail(double value, std::string_view token,
                         std::size_t offset) {
  if (!std::isfinite(value)) {
    fail_at(offset, "number out of range '" + std::string(token) + "'");
  }
  return JsonValue(value);
}

/// Shared by both parsers: grammar validation plus the exact-int64 path.
/// Returns empty when the token needs a double conversion (fraction,
/// exponent, or int64 overflow) — the caller picks its converter.
std::optional<JsonValue> parse_int_or_validate(std::string_view token,
                                               std::size_t offset) {
  bool is_double = false;
  if (!is_valid_json_number(token, is_double)) {
    fail_at(offset, "bad number '" + std::string(token) + "'");
  }
  if (!is_double) {
    std::int64_t value = 0;
    const auto [p, ec] =
        std::from_chars(token.data(), token.data() + token.size(), value);
    if (ec == std::errc() && p == token.data() + token.size()) {
      return JsonValue(value);
    }
    // fall through to double on int64 overflow
  }
  return std::nullopt;
}

/// Double conversion for the fast path: from_chars is locale-independent
/// and ~5x faster than strtod — number conversion is a large share of
/// parse time on metric-heavy knowledge corpora. Call only on tokens that
/// already passed the RFC 8259 grammar.
JsonValue convert_double(std::string_view token, std::size_t offset) {
  double value = 0;
  bool out_of_range = false;
#if defined(__cpp_lib_to_chars)
  const auto [p, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (p != token.data() + token.size() ||
      ec == std::errc::invalid_argument) {
    fail_at(offset, "bad number '" + std::string(token) + "'");
  }
  out_of_range = ec == std::errc::result_out_of_range;
#else
  out_of_range = true;  // route everything through the strtod path below
#endif
  if (out_of_range) {
    // Rare path: from_chars leaves `value` untouched out of range, so
    // overflow vs. harmless underflow must be told apart the old way.
    // glibc's strtod and from_chars are both correctly rounded, so the two
    // conversions agree bit-for-bit wherever both succeed.
    value = strtod_token(token, offset);
  }
  return finite_or_fail(value, token, offset);
}

/// Fast-path number parse: one fused pass validates the RFC 8259 grammar
/// AND accumulates the integer magnitude, so the common all-digit token
/// (most of a metrics corpus) converts without a second from_chars walk.
/// The grammar accepted here is exactly is_valid_json_number's, and the
/// int64/double split matches parse_int_or_validate: fractions, exponents,
/// and int64 overflow take the double conversion.
JsonValue parse_number_token(std::string_view token, std::size_t offset) {
  std::size_t i = 0;
  const bool negative = !token.empty() && token[0] == '-';
  if (negative) {
    ++i;
  }
  if (i >= token.size()) {
    fail_at(offset, "bad number '" + std::string(token) + "'");
  }
  std::uint64_t magnitude = 0;
  bool int_overflow = false;
  if (token[i] == '0') {
    ++i;  // a leading zero must stand alone before '.'/'e'
    if (i < token.size() && is_digit(token[i])) {
      fail_at(offset, "bad number '" + std::string(token) + "'");
    }
  } else if (is_digit(token[i])) {
    do {
      if (magnitude > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
        int_overflow = true;
      }
      magnitude = magnitude * 10 +
                  static_cast<std::uint64_t>(token[i] - '0');
      ++i;
    } while (i < token.size() && is_digit(token[i]));
  } else {
    fail_at(offset, "bad number '" + std::string(token) + "'");
  }
  if (i == token.size()) {
    constexpr std::uint64_t kInt64Max =
        static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max());
    if (!int_overflow && magnitude <= kInt64Max + (negative ? 1 : 0)) {
      return JsonValue(negative
                           ? -static_cast<std::int64_t>(magnitude - 1) - 1
                           : static_cast<std::int64_t>(magnitude));
    }
    return convert_double(token, offset);  // int64 overflow -> double
  }
  std::int64_t fraction_digits = 0;
  if (token[i] == '.') {
    ++i;
    if (i >= token.size() || !is_digit(token[i])) {
      fail_at(offset, "bad number '" + std::string(token) + "'");
    }
    while (i < token.size() && is_digit(token[i])) {
      if (magnitude > (std::numeric_limits<std::uint64_t>::max() - 9) / 10) {
        int_overflow = true;
      }
      magnitude =
          magnitude * 10 + static_cast<std::uint64_t>(token[i] - '0');
      ++fraction_digits;
      ++i;
    }
  }
  std::int64_t exponent = 0;
  if (i < token.size() && (token[i] == 'e' || token[i] == 'E')) {
    ++i;
    bool exp_negative = false;
    if (i < token.size() && (token[i] == '+' || token[i] == '-')) {
      exp_negative = token[i] == '-';
      ++i;
    }
    if (i >= token.size() || !is_digit(token[i])) {
      fail_at(offset, "bad number '" + std::string(token) + "'");
    }
    while (i < token.size() && is_digit(token[i])) {
      exponent = exponent * 10 + (token[i] - '0');
      if (exponent > 100000) {
        exponent = 100000;  // clamp: anything this big falls back anyway
      }
      ++i;
    }
    if (exp_negative) {
      exponent = -exponent;
    }
  }
  if (i != token.size()) {
    fail_at(offset, "bad number '" + std::string(token) + "'");
  }
  // Clinger fast path: when the full digit string fits a 53-bit integer
  // exactly and the decimal point moves at most 22 places, one IEEE
  // multiply or divide by an exactly-representable power of ten rounds
  // once from the exact value — bit-identical to strtod/from_chars
  // (Clinger, "How to read floating point numbers accurately", PLDI '90).
  // Metric corpora live entirely in this range; the fallback conversion
  // re-parses the token, which keeps this pass pure validation + digits.
  const std::int64_t q = exponent - fraction_digits;
  if (!int_overflow && magnitude < (std::uint64_t{1} << 53) && q >= -22 &&
      q <= 22) {
    static constexpr double kPow10[23] = {
        1e0,  1e1,  1e2,  1e3,  1e4,  1e5,  1e6,  1e7,
        1e8,  1e9,  1e10, 1e11, 1e12, 1e13, 1e14, 1e15,
        1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22};
    const double scaled = q < 0
                              ? static_cast<double>(magnitude) / kPow10[-q]
                              : static_cast<double>(magnitude) * kPow10[q];
    return JsonValue(negative ? -scaled : scaled);
  }
  return convert_double(token, offset);
}

/// Reference conversion: the strtod path verbatim from the pre-rewrite
/// parser. Verdicts match parse_number_token exactly (shared grammar gate,
/// shared finite gate); values match because both converters round
/// correctly.
JsonValue parse_number_token_reference(std::string_view token,
                                       std::size_t offset) {
  if (std::optional<JsonValue> exact = parse_int_or_validate(token, offset)) {
    return *std::move(exact);
  }
  return finite_or_fail(strtod_token(token, offset), token, offset);
}

void append_utf8(unsigned code, std::string& out) {
  if (code < 0x80) {
    out += static_cast<char>(code);
  } else if (code < 0x800) {
    out += static_cast<char>(0xC0 | (code >> 6));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else if (code < 0x10000) {
    out += static_cast<char>(0xE0 | (code >> 12));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (code >> 18));
    out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (code & 0x3F));
  }
}

unsigned read_hex4(std::string_view body, std::size_t& i,
                   std::size_t doc_offset) {
  if (i + 4 > body.size()) {
    fail_at(doc_offset + i, "truncated \\u escape");
  }
  unsigned code = 0;
  for (int k = 0; k < 4; ++k) {
    const char c = body[i];
    unsigned digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<unsigned>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<unsigned>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<unsigned>(c - 'A') + 10;
    } else {
      fail_at(doc_offset + i, "bad \\u escape");
    }
    code = (code << 4) | digit;
    ++i;
  }
  return code;
}

/// High bit set per byte of `word` that needs attention in a string body:
/// backslash (escape) or a C0 control byte (RFC violation).
inline std::uint64_t special_string_bytes(std::uint64_t word) {
  constexpr std::uint64_t kOnes = 0x0101010101010101ull;
  constexpr std::uint64_t kHighs = 0x8080808080808080ull;
  const std::uint64_t bs = word ^ (kOnes * static_cast<unsigned char>('\\'));
  const std::uint64_t bs_hit = (bs - kOnes) & ~bs & kHighs;
  // A byte is a C0 control iff its top three bits are all clear.
  const std::uint64_t masked = word & (kOnes * 0xE0u);
  const std::uint64_t ctrl_hit = (masked - kOnes) & ~masked & kHighs;
  return bs_hit | ctrl_hit;
}

/// Decodes one escape sequence. `i` indexes the escape character (just past
/// the backslash) and is advanced past the whole sequence — including the
/// paired low surrogate of a \uD800-\uDBFF high surrogate, which combines
/// into one supplementary code point (one 4-byte UTF-8 sequence, not two
/// CESU-8 triples). Unpaired surrogates are rejected either way. Both
/// parsers decode through here, so escape semantics cannot diverge.
void decode_escape(std::string_view body, std::size_t& i,
                   std::size_t doc_offset, std::string& out) {
  if (i >= body.size()) {
    fail_at(doc_offset + i, "truncated escape");
  }
  const char esc = body[i];
  ++i;
  switch (esc) {
    case '"': out += '"'; break;
    case '\\': out += '\\'; break;
    case '/': out += '/'; break;
    case 'b': out += '\b'; break;
    case 'f': out += '\f'; break;
    case 'n': out += '\n'; break;
    case 'r': out += '\r'; break;
    case 't': out += '\t'; break;
    case 'u': {
      const std::size_t escape_offset = doc_offset + i - 2;
      unsigned code = read_hex4(body, i, doc_offset);
      if (code >= 0xDC00 && code <= 0xDFFF) {
        fail_at(escape_offset, "unpaired low surrogate in \\u escape");
      }
      if (code >= 0xD800 && code <= 0xDBFF) {
        if (i + 2 > body.size() || body[i] != '\\' || body[i + 1] != 'u') {
          fail_at(escape_offset, "unpaired high surrogate in \\u escape");
        }
        i += 2;
        const unsigned low = read_hex4(body, i, doc_offset);
        if (low < 0xDC00 || low > 0xDFFF) {
          fail_at(escape_offset, "unpaired high surrogate in \\u escape");
        }
        code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
      }
      append_utf8(code, out);
      break;
    }
    default:
      fail_at(doc_offset + i - 1, "bad escape character");
  }
}

/// Decodes the raw bytes between a string's quotes into `out` (appended) —
/// the fast path's string materialization. Clean runs are detected a word
/// at a time and copied in bulk; escapes route through decode_escape; raw
/// C0 control bytes are rejected (RFC 8259 §7). `doc_offset` is the body's
/// offset in the document, for error positions.
void unescape_string_body(std::string_view body, std::size_t doc_offset,
                          std::string& out) {
  out.reserve(out.size() + body.size());
  std::size_t run_start = 0;
  std::size_t i = 0;
  while (i < body.size()) {
    // Fast-forward over clean bytes a word at a time.
    while (i + 8 <= body.size()) {
      std::uint64_t word;
      std::memcpy(&word, body.data() + i, 8);
      if (special_string_bytes(word) != 0) {
        break;
      }
      i += 8;
    }
    while (i < body.size()) {
      const unsigned char c = static_cast<unsigned char>(body[i]);
      if (c == '\\' || c < 0x20) {
        break;
      }
      ++i;
    }
    if (i >= body.size()) {
      break;
    }
    out.append(body.data() + run_start, i - run_start);
    if (static_cast<unsigned char>(body[i]) < 0x20) {
      fail_at(doc_offset + i,
              "raw control character in string (must be \\u-escaped)");
    }
    ++i;  // past the backslash
    decode_escape(body, i, doc_offset, out);
    run_start = i;
  }
  out.append(body.data() + run_start, body.size() - run_start);
}

// -- Stage 2: tree building over the structural index -----------------------

class FastParser {
 public:
  FastParser(std::string_view text, StructuralScanner& scanner,
             std::size_t max_depth)
      : text_(text), scanner_(scanner), max_depth_(max_depth) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    if (!at_end()) {
      fail_at(scanner_.at(cursor_),
              "trailing characters after JSON document");
    }
    return value;
  }

 private:
  // Scans further input on demand; the scanner streams stage 1 in chunks
  // just ahead of this walk, so the bytes stage 2 touches are still hot.
  bool at_end() { return !scanner_.has(cursor_); }

  JsonValue parse_value(std::size_t depth) {
    if (at_end()) {
      fail_at(text_.size(), "unexpected end of input");
    }
    const std::size_t p = scanner_.at(cursor_);
    switch (text_[p]) {
      case '{':
        if (depth >= max_depth_) {
          fail_at(p, "nesting exceeds the depth limit of " +
                         std::to_string(max_depth_));
        }
        ++cursor_;
        return parse_object(depth + 1);
      case '[':
        if (depth >= max_depth_) {
          fail_at(p, "nesting exceeds the depth limit of " +
                         std::to_string(max_depth_));
        }
        ++cursor_;
        return parse_array(depth + 1);
      case '"':
        return JsonValue(parse_string());
      case '}':
      case ']':
      case ':':
      case ',':
        fail_at(p, std::string("unexpected '") + text_[p] + "'");
      default:
        return parse_scalar_token();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    JsonObject obj;
    if (at_end()) {
      fail_at(text_.size(), "unterminated object");
    }
    if (text_[scanner_.at(cursor_)] == '}') {
      ++cursor_;
      return JsonValue(std::move(obj));
    }
    // Knowledge objects typically carry 4-8 members; one up-front block
    // replaces the 1->2->4->8 realloc ladder (each step moves every
    // key/value pair) that dominated stage-2 cost on metric-heavy corpora.
    obj.reserve(8);
    while (true) {
      if (at_end()) {
        fail_at(text_.size(), "unterminated object");
      }
      const std::size_t key_pos = scanner_.at(cursor_);
      if (text_[key_pos] != '"') {
        fail_at(key_pos, "expected string key in object");
      }
      std::string key = parse_string();
      if (at_end() || text_[scanner_.at(cursor_)] != ':') {
        fail_at(at_end() ? text_.size() : scanner_.at(cursor_),
                "expected ':' after object key");
      }
      ++cursor_;
      obj.emplace_back(std::move(key), parse_value(depth));
      if (at_end()) {
        fail_at(text_.size(), "expected ',' or '}' in object");
      }
      const std::size_t p = scanner_.at(cursor_);
      ++cursor_;
      if (text_[p] == '}') {
        return JsonValue(std::move(obj));
      }
      if (text_[p] != ',') {
        fail_at(p, "expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array(std::size_t depth) {
    JsonArray arr;
    if (at_end()) {
      fail_at(text_.size(), "unterminated array");
    }
    if (text_[scanner_.at(cursor_)] == ']') {
      ++cursor_;
      return JsonValue(std::move(arr));
    }
    arr.reserve(flat_array_reserve());
    while (true) {
      arr.push_back(parse_value(depth));
      if (at_end()) {
        fail_at(text_.size(), "expected ',' or ']' in array");
      }
      const std::size_t p = scanner_.at(cursor_);
      ++cursor_;
      if (text_[p] == ']') {
        return JsonValue(std::move(arr));
      }
      if (text_[p] != ',') {
        fail_at(p, "expected ',' or ']' in array");
      }
    }
  }

  /// Exact element count when the array closes inside the already-scanned
  /// index window with no nested container — the per-iteration sample
  /// arrays of knowledge exports, whose 8→16→32 reserve ladder was a
  /// measurable share of stage-2 allocator traffic. Anything else (nested,
  /// window-crossing, oversized) gets the ladder floor of 8. Peeking reads
  /// bytes stage 2 is about to touch anyway and never advances the scan.
  std::size_t flat_array_reserve() {
    const std::size_t limit =
        std::min(scanner_.scanned_end(), cursor_ + 512);
    std::size_t commas = 0;
    for (std::size_t k = cursor_; k < limit; ++k) {
      const char c = text_[scanner_.at(k)];
      if (c == ']') {
        return commas + 1;
      }
      if (c == ',') {
        ++commas;
      } else if (c == '[' || c == '{') {
        break;
      }
    }
    return 8;
  }

  /// Cursor at an opening-quote entry. Stage 1 records both quotes of every
  /// string and nothing between them, so the very next entry is the closing
  /// quote — the body range is known without scanning.
  std::string parse_string() {
    const std::size_t open = scanner_.at(cursor_);
    if (!scanner_.has(cursor_ + 1)) {
      fail_at(open, "unterminated string");
    }
    const std::size_t close = scanner_.at(cursor_ + 1);
    if (text_[close] != '"') {
      fail_at(open, "unterminated string");
    }
    cursor_ += 2;
    std::string out;
    unescape_string_body(text_.substr(open + 1, close - open - 1), open + 1,
                         out);
    return out;
  }

  /// Cursor at a scalar-start entry: the token runs to the next structural
  /// entry (or end of text) minus trailing whitespace — everything between
  /// a scalar run and the next structural is whitespace by construction.
  JsonValue parse_scalar_token() {
    const std::size_t p = scanner_.at(cursor_);
    std::size_t end =
        scanner_.has(cursor_ + 1) ? scanner_.at(cursor_ + 1) : text_.size();
    ++cursor_;
    while (end > p && is_json_ws(text_[end - 1])) {
      --end;
    }
    const std::string_view token = text_.substr(p, end - p);
    if (token == "true") {
      return JsonValue(true);
    }
    if (token == "false") {
      return JsonValue(false);
    }
    if (token == "null") {
      return JsonValue(nullptr);
    }
    return parse_number_token(token, p);
  }

  std::string_view text_;
  StructuralScanner& scanner_;
  std::size_t cursor_ = 0;
  std::size_t max_depth_;
};

// -- The byte-at-a-time reference parser ------------------------------------

class ScalarParser {
 public:
  ScalarParser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  JsonValue parse_document() {
    JsonValue value = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    fail_at(pos_, message);
  }

  void skip_ws() {
    while (pos_ < text_.size() && is_json_ws(text_[pos_])) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value(std::size_t depth) {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        if (depth >= max_depth_) {
          fail("nesting exceeds the depth limit of " +
               std::to_string(max_depth_));
        }
        return parse_object(depth + 1);
      case '[':
        if (depth >= max_depth_) {
          fail("nesting exceeds the depth limit of " +
               std::to_string(max_depth_));
        }
        return parse_array(depth + 1);
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object(std::size_t depth) {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value(depth));
      skip_ws();
      const char c = take();
      if (c == '}') {
        return JsonValue(std::move(obj));
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array(std::size_t depth) {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value(depth));
      skip_ws();
      const char c = take();
      if (c == ']') {
        return JsonValue(std::move(arr));
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    const std::size_t body_start = pos_;
    // Byte-at-a-time decode — the reference shape this parser exists to
    // preserve. Escape and surrogate semantics are decode_escape's, shared
    // with the fast path, so the two parsers produce identical bytes and
    // identical verdicts.
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) {
        fail_at(body_start - 1, "unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        decode_escape(text_, pos_, 0, out);
        continue;
      }
      if (c < 0x20) {
        fail_at(pos_, "raw control character in string (must be \\u-escaped)");
      }
      out += static_cast<char>(c);
      ++pos_;
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    // The pre-rewrite token scan, kept verbatim (locale isdigit and all):
    // this parser is the old implementation's stand-in, so it keeps the old
    // cost profile. Only the grammar/range verdicts are shared with the
    // fast path (via parse_number_token_reference).
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
          c == '+' || c == '.' || c == 'e' || c == 'E') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("bad number");
    }
    return parse_number_token_reference(text_.substr(start, pos_ - start),
                                        start);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

/// Reused stage-1 scratch: the scanner's live window allocates once per
/// thread and its capacity survives across requests. Streaming keeps the
/// window chunk-sized regardless of document size (worst case one chunk of
/// all-structural bytes, ~1 MiB of offsets), so the scratch never needs to
/// be given back.
thread_local StructuralIndex tl_index;

}  // namespace

JsonValue parse_json(std::string_view text, const JsonParseOptions& options) {
  StructuralScanner scanner(text, tl_index);
  return FastParser(text, scanner, options.max_depth).parse_document();
}

JsonValue parse_json(const PaddedString& text,
                     const JsonParseOptions& options) {
  return parse_json(text.view(), options);
}

JsonValue parse_json_scalar(std::string_view text,
                            const JsonParseOptions& options) {
  return ScalarParser(text, options.max_depth).parse_document();
}

}  // namespace iokc::util
