#include "src/util/json.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.hpp"

namespace iokc::util {

bool JsonValue::as_bool() const {
  if (const auto* b = std::get_if<bool>(&value_)) {
    return *b;
  }
  throw ParseError("JSON value is not a bool");
}

std::int64_t JsonValue::as_int() const {
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return *i;
  }
  throw ParseError("JSON value is not an integer");
}

double JsonValue::as_double() const {
  if (const auto* d = std::get_if<double>(&value_)) {
    return *d;
  }
  if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    return static_cast<double>(*i);
  }
  throw ParseError("JSON value is not a number");
}

const std::string& JsonValue::as_string() const {
  if (const auto* s = std::get_if<std::string>(&value_)) {
    return *s;
  }
  throw ParseError("JSON value is not a string");
}

const JsonArray& JsonValue::as_array() const {
  if (const auto* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  throw ParseError("JSON value is not an array");
}

JsonArray& JsonValue::as_array() {
  if (auto* a = std::get_if<JsonArray>(&value_)) {
    return *a;
  }
  throw ParseError("JSON value is not an array");
}

const JsonObject& JsonValue::as_object() const {
  if (const auto* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  throw ParseError("JSON value is not an object");
}

JsonObject& JsonValue::as_object() {
  if (auto* o = std::get_if<JsonObject>(&value_)) {
    return *o;
  }
  throw ParseError("JSON value is not an object");
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (const JsonValue* v = find(key)) {
    return *v;
  }
  throw ParseError("missing JSON field '" + std::string(key) + "'");
}

const JsonValue* JsonValue::find(std::string_view key) const {
  const auto* obj = std::get_if<JsonObject>(&value_);
  if (obj == nullptr) {
    return nullptr;
  }
  for (const auto& [k, v] : *obj) {
    if (k == key) {
      return &v;
    }
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (is_null()) {
    value_ = JsonObject{};
  }
  auto& obj = as_object();
  for (auto& [k, v] : obj) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj.emplace_back(std::move(key), std::move(value));
}

namespace {

/// Length of the well-formed UTF-8 sequence starting at s[i], or 0 when the
/// bytes there are not valid UTF-8 (truncated sequence, bad continuation,
/// overlong encoding, surrogate code point, or > U+10FFFF).
std::size_t utf8_sequence_length(const std::string& s, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(s[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t length = 0;
  unsigned code = 0;
  if (lead < 0x80) {
    return 1;
  } else if ((lead & 0xE0) == 0xC0) {
    length = 2;
    code = lead & 0x1Fu;
  } else if ((lead & 0xF0) == 0xE0) {
    length = 3;
    code = lead & 0x0Fu;
  } else if ((lead & 0xF8) == 0xF0) {
    length = 4;
    code = lead & 0x07u;
  } else {
    return 0;  // stray continuation byte or invalid lead (0xFE/0xFF)
  }
  if (i + length > s.size()) {
    return 0;  // truncated at end of string
  }
  for (std::size_t k = 1; k < length; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) {
      return 0;  // not a continuation byte
    }
    code = (code << 6) | (byte(i + k) & 0x3Fu);
  }
  static constexpr unsigned kMinCode[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMinCode[length]) {
    return 0;  // overlong encoding
  }
  if (code >= 0xD800 && code <= 0xDFFF) {
    return 0;  // surrogate code point
  }
  if (code > 0x10FFFF) {
    return 0;
  }
  return length;
}

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (std::size_t i = 0; i < s.size();) {
    const char c = s[i];
    switch (c) {
      case '"': out += "\\\""; ++i; continue;
      case '\\': out += "\\\\"; ++i; continue;
      case '\n': out += "\\n"; ++i; continue;
      case '\r': out += "\\r"; ++i; continue;
      case '\t': out += "\\t"; ++i; continue;
      default: break;
    }
    const unsigned char byte = static_cast<unsigned char>(c);
    if (byte < 0x20) {
      // Control characters U+0000–U+001F must be escaped (RFC 8259 §7).
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(byte));
      out += buf;
      ++i;
      continue;
    }
    if (byte < 0x80) {
      out += c;
      ++i;
      continue;
    }
    // Non-ASCII: emit well-formed UTF-8 sequences verbatim; replace each
    // invalid byte with U+FFFD so the output is always valid JSON text
    // (knowledge objects travel over the wire verbatim — a corrupt byte in
    // a benchmark log must not produce an unparseable frame).
    const std::size_t length = utf8_sequence_length(s, i);
    if (length == 0) {
      out += "\\ufffd";
      ++i;
    } else {
      out.append(s, i, length);
      i += length;
    }
  }
  out += '"';
}

void indent_to(std::string& out, int indent, int depth) {
  out += '\n';
  out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(depth),
             ' ');
}

}  // namespace

void JsonValue::dump_to(std::string& out, int indent, int depth) const {
  if (is_null()) {
    out += "null";
  } else if (const auto* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const auto* i = std::get_if<std::int64_t>(&value_)) {
    out += std::to_string(*i);
  } else if (const auto* d = std::get_if<double>(&value_)) {
    if (std::isfinite(*d)) {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.17g", *d);
      out += buf;
    } else {
      out += "null";  // JSON has no representation for inf/nan
    }
  } else if (const auto* s = std::get_if<std::string>(&value_)) {
    dump_string(out, *s);
  } else if (const auto* a = std::get_if<JsonArray>(&value_)) {
    out += '[';
    for (std::size_t k = 0; k < a->size(); ++k) {
      if (k != 0) {
        out += ',';
      }
      if (indent > 0) {
        indent_to(out, indent, depth + 1);
      }
      (*a)[k].dump_to(out, indent, depth + 1);
    }
    if (indent > 0 && !a->empty()) {
      indent_to(out, indent, depth);
    }
    out += ']';
  } else if (const auto* o = std::get_if<JsonObject>(&value_)) {
    out += '{';
    for (std::size_t k = 0; k < o->size(); ++k) {
      if (k != 0) {
        out += ',';
      }
      if (indent > 0) {
        indent_to(out, indent, depth + 1);
      }
      dump_string(out, (*o)[k].first);
      out += indent > 0 ? ": " : ":";
      (*o)[k].second.dump_to(out, indent, depth + 1);
    }
    if (indent > 0 && !o->empty()) {
      indent_to(out, indent, depth);
    }
    out += '}';
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("JSON at offset " + std::to_string(pos_) + ": " + message);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
    }
    return text_[pos_];
  }

  char take() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (take() != c) {
      fail(std::string("expected '") + c + "'");
    }
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue(parse_string());
      case 't':
        if (consume_literal("true")) return JsonValue(true);
        fail("bad literal");
      case 'f':
        if (consume_literal("false")) return JsonValue(false);
        fail("bad literal");
      case 'n':
        if (consume_literal("null")) return JsonValue(nullptr);
        fail("bad literal");
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonObject obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue(std::move(obj));
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = take();
      if (c == '}') {
        return JsonValue(std::move(obj));
      }
      if (c != ',') {
        fail("expected ',' or '}' in object");
      }
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonArray arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue(std::move(arr));
    }
    while (true) {
      arr.push_back(parse_value());
      skip_ws();
      const char c = take();
      if (c == ']') {
        return JsonValue(std::move(arr));
      }
      if (c != ',') {
        fail("expected ',' or ']' in array");
      }
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = take();
      if (c == '"') {
        return out;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = take();
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
          }
          unsigned code = 0;
          const auto [p, ec] = std::from_chars(
              text_.data() + pos_, text_.data() + pos_ + 4, code, 16);
          if (ec != std::errc() || p != text_.data() + pos_ + 4) {
            fail("bad \\u escape");
          }
          pos_ += 4;
          // Encode as UTF-8 (BMP only; surrogate pairs are passed through as
          // two 3-byte sequences, which is enough for our ASCII-heavy data).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default:
          fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      fail("bad number");
    }
    if (!is_double) {
      std::int64_t value = 0;
      const auto [p, ec] =
          std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && p == token.data() + token.size()) {
        return JsonValue(value);
      }
      // fall through to double on overflow
    }
    const std::string buf{token};
    char* end = nullptr;
    errno = 0;
    const double value = std::strtod(buf.c_str(), &end);
    if (end != buf.c_str() + buf.size()) {
      fail("bad number");
    }
    // The JSON grammar has no inf/nan: reject overflow (strtod -> +-HUGE_VAL
    // with ERANGE) instead of materialising a value dump() cannot round-trip.
    // Gradual underflow toward zero also sets ERANGE but stays finite and is
    // accepted.
    if (!std::isfinite(value)) {
      fail("number out of range '" + buf + "'");
    }
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace iokc::util
