// Runtime invariant macros for the iokc library.
//
// Two flavours, both compiled out in Release builds (NDEBUG) so the hot
// paths carry zero overhead in production:
//
//   IOKC_ASSERT(cond)        -- internal invariant; prints `file:line:
//                               assertion failed: cond` to stderr and aborts.
//                               Use for conditions that indicate a bug in
//                               iokc itself, never for input validation.
//   IOKC_CHECK(cond, msg)    -- recoverable invariant; throws
//                               iokc::CheckError carrying `file:line` and
//                               `msg`. Use where a violated invariant should
//                               surface as a catchable error in debug/test
//                               builds (sanitizer presets enable these).
//
// Gating: the `IOKC_CHECKS` CMake option maps to the override macros below.
//   -DIOKC_FORCE_CHECKS    -> always on (sanitizer/hardened presets set this)
//   -DIOKC_DISABLE_CHECKS  -> always off (used by the release-mode test TU)
//   neither                -> on iff NDEBUG is not defined
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/util/error.hpp"

#if defined(IOKC_DISABLE_CHECKS)
#define IOKC_CHECKS_ENABLED 0
#elif defined(IOKC_FORCE_CHECKS)
#define IOKC_CHECKS_ENABLED 1
#elif defined(NDEBUG)
#define IOKC_CHECKS_ENABLED 0
#else
#define IOKC_CHECKS_ENABLED 1
#endif

namespace iokc {

/// Violated IOKC_CHECK invariant. Deliberately distinct from the subsystem
/// error types: catching it means an iokc bug, not bad input.
class CheckError : public Error {
 public:
  explicit CheckError(const std::string& what) : Error("check failed: " + what) {}
};

namespace util::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "%s:%d: assertion failed: %s\n", file, line, expr);
  std::abort();
}

[[noreturn]] inline void check_fail(const char* expr, const char* file,
                                    int line, const std::string& message) {
  throw CheckError(std::string(file) + ":" + std::to_string(line) + ": " +
                   message + " (" + expr + ")");
}

}  // namespace util::detail
}  // namespace iokc

#if IOKC_CHECKS_ENABLED
#define IOKC_ASSERT(cond)                                         \
  do {                                                            \
    if (!(cond)) {                                                \
      ::iokc::util::detail::assert_fail(#cond, __FILE__, __LINE__); \
    }                                                             \
  } while (false)
#define IOKC_CHECK(cond, msg)                                            \
  do {                                                                   \
    if (!(cond)) {                                                       \
      ::iokc::util::detail::check_fail(#cond, __FILE__, __LINE__, (msg)); \
    }                                                                    \
  } while (false)
#else
// sizeof keeps the operands parsed (so they cannot bit-rot) without
// evaluating them or triggering unused-variable warnings.
#define IOKC_ASSERT(cond) \
  do {                    \
    (void)sizeof((cond) ? 1 : 0); \
  } while (false)
#define IOKC_CHECK(cond, msg)     \
  do {                            \
    (void)sizeof((cond) ? 1 : 0); \
    (void)sizeof(msg);            \
  } while (false)
#endif
