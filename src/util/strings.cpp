#include "src/util/strings.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/util/error.hpp"

namespace iokc::util {

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) {
      out.emplace_back(text.substr(start, i - start));
    }
  }
  return out;
}

std::vector<std::string> split_lines(std::string_view text) {
  std::vector<std::string> lines;
  std::size_t start = 0;
  for (std::size_t i = 0; i < text.size(); ++i) {
    if (text[i] == '\n') {
      std::size_t end = i;
      if (end > start && text[end - 1] == '\r') {
        --end;
      }
      lines.emplace_back(text.substr(start, end - start));
      start = i + 1;
    }
  }
  if (start < text.size()) {
    std::size_t end = text.size();
    if (end > start && text[end - 1] == '\r') {
      --end;
    }
    lines.emplace_back(text.substr(start, end - start));
  }
  return lines;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string to_lower(std::string_view text) {
  std::string out(text);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool contains(std::string_view text, std::string_view needle) {
  return text.find(needle) != std::string_view::npos;
}

std::int64_t parse_i64(std::string_view text) {
  const std::string_view t = trim(text);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(t.data(), t.data() + t.size(), value);
  if (ec != std::errc() || ptr != t.data() + t.size() || t.empty()) {
    throw ParseError("bad integer '" + std::string(text) + "'");
  }
  return value;
}

double parse_f64(std::string_view text) {
  // std::from_chars for double is available in libstdc++ 11+, but keep a
  // strtod fallback path for portability with identical strictness.
  const std::string t{trim(text)};
  if (t.empty()) {
    throw ParseError("bad number ''");
  }
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) {
    throw ParseError("bad number '" + std::string(text) + "'");
  }
  if (errno == ERANGE && !std::isfinite(value)) {
    // Overflow to +-inf is a caller error; gradual underflow toward zero is
    // benign and keeps strtod's best-effort denormal result.
    throw ParseError("number out of range '" + std::string(text) + "'");
  }
  return value;
}

std::string pad_left(std::string_view text, std::size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(width - text.size(), ' ') + std::string(text);
}

std::string pad_right(std::string_view text, std::size_t width) {
  if (text.size() >= width) {
    return std::string(text);
  }
  return std::string(text) + std::string(width - text.size(), ' ');
}

std::string format_double(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

std::string replace_all(std::string_view text, std::string_view from,
                        std::string_view to) {
  if (from.empty()) {
    return std::string(text);
  }
  std::string out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(from, start);
    if (pos == std::string_view::npos) {
      out += text.substr(start);
      return out;
    }
    out += text.substr(start, pos - start);
    out += to;
    start = pos + from.size();
  }
}

}  // namespace iokc::util
