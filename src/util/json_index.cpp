#include "src/util/json_index.hpp"

#include <cstring>
#include <limits>

#include "src/util/error.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace iokc::util {

namespace {

/// Per-64-byte-block classification masks; bit i describes byte i.
///
/// `op` uses a collapsed brace test: '{' '}' '[' ']' all satisfy
/// (c | 0x26) == 0x7F, one compare instead of four. The false positives —
/// 'Y' '_' 'y' 0x7F — never occur outside strings in valid JSON (inside
/// strings every op bit is discarded), and in invalid documents they turn
/// into parse errors exactly where the byte-at-a-time parser errors too.
struct BlockMasks {
  std::uint64_t op = 0;         // { } [ ] : , (plus harmless Y _ y DEL)
  std::uint64_t ws = 0;         // space \t \n \r (the four JSON ws bytes)
  std::uint64_t quote = 0;      // " — escapes not yet removed
  std::uint64_t backslash = 0;
};

// -- SWAR classifier (always compiled; the non-SSE2 fallback and the
//    cross-check target for the differential tests) -------------------------

/// High bit of each byte equal to `c` set, other bits clear. Must be exact
/// per lane: the classic `(x - 0x01..) & ~x & 0x80..` zero test borrows
/// across byte lanes, falsely flagging the byte above a match when the two
/// values differ by exactly one — under that test ",-" classified the '-'
/// as a second comma (breaking every negative number on non-SSE2 builds)
/// and "\]" read as two backslashes (flipping escape parity). This form
/// keeps all arithmetic inside each lane: (b&0x7F)+0x7F sets the high bit
/// iff the low seven bits are nonzero, |x folds in the eighth bit, and the
/// final complement leaves 0x80 exactly on matching bytes.
inline std::uint64_t swar_eq(std::uint64_t word, char c) {
  const std::uint64_t pattern =
      0x0101010101010101ull * static_cast<unsigned char>(c);
  const std::uint64_t x = word ^ pattern;
  constexpr std::uint64_t kLow7 = 0x7F7F7F7F7F7F7F7Full;
  return ~(((x & kLow7) + kLow7) | x | kLow7);
}

/// Compresses the per-byte high-bit flags of `r` into 8 consecutive bits
/// (byte k's flag -> bit k): the SWAR movemask.
inline std::uint64_t swar_movemask(std::uint64_t r) {
  return (r * 0x0002040810204081ull) >> 56;
}

BlockMasks classify_block_swar(const char* block) {
  BlockMasks m;
  for (int word_index = 0; word_index < 8; ++word_index) {
    std::uint64_t word;
    std::memcpy(&word, block + word_index * 8, 8);
    const std::uint64_t op_bytes =
        swar_eq(word | 0x2626262626262626ull, '\x7F') | swar_eq(word, ':') |
        swar_eq(word, ',');
    const std::uint64_t ws_bytes = swar_eq(word, ' ') | swar_eq(word, '\t') |
                                   swar_eq(word, '\n') | swar_eq(word, '\r');
    const int shift = word_index * 8;
    m.op |= swar_movemask(op_bytes) << shift;
    m.ws |= swar_movemask(ws_bytes) << shift;
    m.quote |= swar_movemask(swar_eq(word, '"')) << shift;
    m.backslash |= swar_movemask(swar_eq(word, '\\')) << shift;
  }
  return m;
}

#if defined(__SSE2__)

BlockMasks classify_block(const char* block) {
  BlockMasks m;
  for (int chunk = 0; chunk < 4; ++chunk) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(block + chunk * 16));
    const auto eq = [&v](char c) {
      return _mm_cmpeq_epi8(v, _mm_set1_epi8(c));
    };
    const __m128i braces = _mm_cmpeq_epi8(
        _mm_or_si128(v, _mm_set1_epi8(0x26)), _mm_set1_epi8(0x7F));
    const __m128i op =
        _mm_or_si128(braces, _mm_or_si128(eq(':'), eq(',')));
    const __m128i ws = _mm_or_si128(_mm_or_si128(eq(' '), eq('\t')),
                                    _mm_or_si128(eq('\n'), eq('\r')));
    const int shift = chunk * 16;
    m.op |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm_movemask_epi8(op)))
            << shift;
    m.ws |= static_cast<std::uint64_t>(
                static_cast<unsigned>(_mm_movemask_epi8(ws)))
            << shift;
    m.quote |= static_cast<std::uint64_t>(
                   static_cast<unsigned>(_mm_movemask_epi8(eq('"'))))
               << shift;
    m.backslash |= static_cast<std::uint64_t>(
                       static_cast<unsigned>(_mm_movemask_epi8(eq('\\'))))
                   << shift;
  }
  return m;
}

#else

BlockMasks classify_block(const char* block) {
  return classify_block_swar(block);
}

#endif

/// Bits whose byte is preceded by an odd-length backslash run — the
/// "escaped" positions (the simdjson find_odd_backslash_sequences trick).
/// `prev_ends_odd` carries run parity across blocks (0 or 1).
std::uint64_t find_escaped(std::uint64_t bs_bits,
                           std::uint64_t& prev_ends_odd) {
  constexpr std::uint64_t kEvenBits = 0x5555555555555555ull;
  constexpr std::uint64_t kOddBits = ~kEvenBits;
  const std::uint64_t start_edges = bs_bits & ~(bs_bits << 1);
  const std::uint64_t even_start_mask = kEvenBits ^ prev_ends_odd;
  const std::uint64_t even_starts = start_edges & even_start_mask;
  const std::uint64_t odd_starts = start_edges & ~even_start_mask;
  const std::uint64_t even_carries = bs_bits + even_starts;
  std::uint64_t odd_carries = 0;
  const bool ends_odd =
      __builtin_add_overflow(bs_bits, odd_starts, &odd_carries);
  odd_carries |= prev_ends_odd;
  prev_ends_odd = ends_odd ? 1u : 0u;
  const std::uint64_t even_carry_ends = even_carries & ~bs_bits;
  const std::uint64_t odd_carry_ends = odd_carries & ~bs_bits;
  const std::uint64_t even_start_odd_end = even_carry_ends & kOddBits;
  const std::uint64_t odd_start_even_end = odd_carry_ends & kEvenBits;
  return even_start_odd_end | odd_start_even_end;
}

/// Trailing-zero count that is defined (and harmless) for 0: setting the
/// top bit caps the answer at 63 without disturbing any nonzero input's
/// count. Lets the emission loop run unconditionally 8 wide.
inline std::uint32_t ctz64(std::uint64_t x) {
  return static_cast<std::uint32_t>(
      __builtin_ctzll(x | 0x8000000000000000ull));
}

/// Prefix XOR over the 64 bits (bit i of the result is the XOR of bits
/// 0..i): turns quote bits into the in-string mask.
inline std::uint64_t prefix_xor(std::uint64_t x) {
  x ^= x << 1;
  x ^= x << 2;
  x ^= x << 4;
  x ^= x << 8;
  x ^= x << 16;
  x ^= x << 32;
  return x;
}

/// Block-to-block carries of the structural scan, so a document can be
/// scanned range by range (streaming) with results identical to one pass.
struct ScanState {
  std::uint64_t escape_parity = 0;  // odd-backslash-run carry (0/1)
  std::uint64_t in_string = 0;      // ~0 when the next block starts in-string
  std::uint64_t scalar_carry = 0;   // last scalar-candidate bit carried
};

/// Scans text[begin, end) appending entries at positions[count...] and
/// returns the new count. `begin` must be 64-aligned and `end` either
/// 64-aligned or text.size() — interior ranges use full-block loads, only
/// the document's final partial block takes the zero-padded stack copy.
/// Entries are written through a raw cursor — 8 unconditional slots per dip
/// below — so `positions` is grown ahead of writes and holds garbage past
/// the returned count.
template <BlockMasks (*Classify)(const char*)>
std::size_t scan_range(std::string_view text, std::size_t begin,
                       std::size_t end,
                       std::vector<std::uint32_t>& positions,
                       std::size_t count, ScanState& st) {
  std::uint64_t prev_escape_parity = st.escape_parity;
  std::uint64_t prev_in_string = st.in_string;
  std::uint64_t prev_scalar = st.scalar_carry;
  std::size_t base = begin;
  while (base < end) {
    const std::size_t remaining = end - base;
    const char* block = text.data() + base;
    std::uint64_t valid = ~0ull;
    char tail[64];
    if (remaining < 64) {
      // Final partial block: classify a zero-padded stack copy so the wide
      // loads never touch bytes past the caller's buffer.
      std::memset(tail, 0, sizeof tail);
      std::memcpy(tail, block, remaining);
      block = tail;
      valid = (1ull << remaining) - 1;
    }
    BlockMasks m = Classify(block);
    m.op &= valid;
    m.ws &= valid;
    m.quote &= valid;
    m.backslash &= valid;
    // Escape resolution and the quote prefix-xor are the most expensive
    // per-block steps; blocks with no backslash (almost all of a numeric
    // corpus) and no quote (indentation runs) skip them. The carries still
    // update: no backslash forces even run-parity, no quote leaves the
    // in-string state unchanged.
    std::uint64_t quote = m.quote;
    if (m.backslash != 0) {
      quote &= ~find_escaped(m.backslash, prev_escape_parity);
    } else {
      quote &= ~prev_escape_parity;  // a run ending last block escapes bit 0
      prev_escape_parity = 0;
    }
    // In-string covers the opening quote through the byte before the
    // closing quote; the carry extends an unclosed string into this block.
    const std::uint64_t in_string =
        quote != 0 ? prefix_xor(quote) ^ prev_in_string : prev_in_string;
    prev_in_string = static_cast<std::uint64_t>(
        static_cast<std::int64_t>(in_string) >> 63);
    std::uint64_t structural = (m.op & ~in_string) | quote;
    // Scalar-token starts: the first byte of each run of non-structural,
    // non-whitespace bytes outside strings (numbers and literals).
    const std::uint64_t scalar =
        valid & ~(m.op | m.ws | quote) & ~in_string;
    const std::uint64_t follows_scalar = (scalar << 1) | prev_scalar;
    prev_scalar = scalar >> 63;
    structural |= scalar & ~follows_scalar;
    // Emit positions through a raw cursor, 8 unconditional slots per round:
    // slots past the real count hold garbage (ctz64 of an emptied mask) but
    // only `count` advances, so the next round overwrites them. Avoids one
    // branch per structural — at knowledge-corpus density (~16 entries per
    // block) the branchy pop-loop was stage 1's largest cost.
    if (structural == 0) {  // indentation and string-interior blocks
      base += 64;
      continue;
    }
    if (positions.size() < count + 64) {
      positions.resize(positions.size() * 2 + 64);
    }
    const int found = __builtin_popcountll(structural);
    std::uint32_t* dst = positions.data() + count;
    const auto b = static_cast<std::uint32_t>(base);
    for (int k = 0; k < 8; ++k) {
      dst[k] = b + ctz64(structural);
      structural &= structural - 1;
    }
    if (found > 8) {
      for (int k = 8; k < 16; ++k) {
        dst[k] = b + ctz64(structural);
        structural &= structural - 1;
      }
      if (found > 16) {
        int k = 16;
        while (structural != 0) {
          dst[k++] = b + ctz64(structural);
          structural &= structural - 1;
        }
      }
    }
    count += static_cast<std::size_t>(found);
    base += 64;
  }
  st.escape_parity = prev_escape_parity;
  st.in_string = prev_in_string;
  st.scalar_carry = prev_scalar;
  return count;
}

[[noreturn]] void fail_unterminated(std::size_t offset) {
  throw ParseError("JSON at offset " + std::to_string(offset) +
                   ": unterminated string");
}

void check_document_size(std::string_view text) {
  if (text.size() > std::numeric_limits<std::uint32_t>::max()) {
    throw ParseError("JSON document exceeds the 4 GiB structural-index limit");
  }
}

template <BlockMasks (*Classify)(const char*)>
void scan(std::string_view text, StructuralIndex& index) {
  check_document_size(text);
  // Size for the ~1/4 structural density of knowledge corpora (grown in
  // the range scan if a denser document needs it); an index reused across
  // parses keeps whatever capacity it already earned. The vector is trimmed
  // to the real count at the end.
  if (index.positions.size() < text.size() / 4 + 64) {
    index.positions.resize(text.size() / 4 + 64);
  }
  ScanState st;
  const std::size_t count =
      scan_range<Classify>(text, 0, text.size(), index.positions, 0, st);
  index.positions.resize(count);
  if (st.in_string != 0) {
    fail_unterminated(text.size());
  }
}

/// Streamed chunk size: big enough that per-chunk overhead vanishes, small
/// enough that the chunk (plus its index entries) sits in L2 when stage 2
/// walks it right behind the scan.
constexpr std::size_t kScanChunkBytes = std::size_t{1} << 18;  // 256 KiB
static_assert(kScanChunkBytes % 64 == 0);

}  // namespace

void build_structural_index(std::string_view text, StructuralIndex& index) {
  scan<classify_block>(text, index);
}

StructuralScanner::StructuralScanner(std::string_view text,
                                     StructuralIndex& scratch)
    : text_(text), scratch_(&scratch) {
  check_document_size(text);
  // Room for a typical chunk's entries without mid-scan growth; a denser
  // chunk grows the vector inside scan_range (bounded by one chunk of
  // all-structural bytes, ~1 MiB of offsets).
  if (scratch_->positions.size() < kScanChunkBytes / 8 + 64) {
    scratch_->positions.resize(kScanChunkBytes / 8 + 64);
  }
}

bool StructuralScanner::scan_until(std::size_t k) {
  while (k >= first_entry_ + count_ && base_ < text_.size()) {
    // Entries more than two behind the requested number can never be asked
    // for again (stage 2 walks forward with lookahead 1); dropping them
    // keeps the live window — and the scratch vector — chunk-sized.
    std::size_t keep = k >= 2 ? k - 2 : 0;
    if (keep < first_entry_) {
      keep = first_entry_;
    }
    std::size_t drop = keep - first_entry_;
    if (drop > count_) {
      drop = count_;
    }
    if (drop > 0) {
      std::uint32_t* data = scratch_->positions.data();
      std::memmove(data, data + drop,
                   (count_ - drop) * sizeof(std::uint32_t));
      first_entry_ += drop;
      count_ -= drop;
    }
    const std::size_t end = std::min(text_.size(), base_ + kScanChunkBytes);
    ScanState st{escape_parity_, in_string_, scalar_carry_};
    count_ = scan_range<classify_block>(text_, base_, end,
                                        scratch_->positions, count_, st);
    escape_parity_ = st.escape_parity;
    in_string_ = st.in_string;
    scalar_carry_ = st.scalar_carry;
    base_ = end;
    if (base_ == text_.size() && in_string_ != 0) {
      fail_unterminated(text_.size());
    }
  }
  return k < first_entry_ + count_;
}

namespace detail {

// SWAR-only scan, exposed so tests can cross-check the SIMD build against
// the portable classifier on the same inputs.
void build_structural_index_swar(std::string_view text,
                                 StructuralIndex& index) {
  scan<classify_block_swar>(text, index);
}

}  // namespace detail

}  // namespace iokc::util
