#include "src/util/csv.hpp"

#include <fstream>

#include "src/util/error.hpp"

namespace iokc::util {

namespace {

bool needs_quoting(std::string_view cell) {
  return cell.find_first_of(",\"\r\n") != std::string_view::npos;
}

std::string quote(std::string_view cell) {
  std::string out;
  out.reserve(cell.size() + 2);
  out += '"';
  for (const char c : cell) {
    if (c == '"') {
      out += '"';
    }
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::add_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) {
      text_ += ',';
    }
    text_ += needs_quoting(cells[i]) ? quote(cells[i]) : cells[i];
  }
  text_ += '\n';
}

void CsvWriter::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot open CSV file for writing: " + path);
  }
  out << text_;
  if (!out) {
    throw IoError("failed writing CSV file: " + path);
  }
}

std::vector<std::vector<std::string>> parse_csv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool after_quote = false;  // just closed a quoted cell; only , \r \n legal
  bool row_has_data = false;

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
          after_quote = true;
        }
      } else {
        cell += c;
      }
      continue;
    }
    if (after_quote && c != ',' && c != '\r' && c != '\n') {
      throw ParseError("unexpected character after closing quote at offset " +
                       std::to_string(i));
    }
    switch (c) {
      case '"':
        in_quotes = true;
        row_has_data = true;
        break;
      case ',':
        row.push_back(std::move(cell));
        cell.clear();
        after_quote = false;
        row_has_data = true;
        break;
      case '\r':
        break;  // handled by the following '\n'
      case '\n':
        // Every newline terminates a record. A bare newline is a record with
        // one empty cell (the closest CSV can come to CsvWriter::add_row({}),
        // which would otherwise vanish on the round trip).
        row.push_back(std::move(cell));
        cell.clear();
        rows.push_back(std::move(row));
        row.clear();
        after_quote = false;
        row_has_data = false;
        break;
      default:
        cell += c;
        row_has_data = true;
        break;
    }
  }
  if (in_quotes) {
    throw ParseError("unterminated quoted CSV field");
  }
  if (row_has_data || !cell.empty()) {
    row.push_back(std::move(cell));
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace iokc::util
