// Byte-size and rate parsing/formatting in the conventions used by IOR-style
// benchmark command lines ("4m", "2m", "1g") and reports ("MiB/s").
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace iokc::util {

inline constexpr std::uint64_t kKiB = 1024ull;
inline constexpr std::uint64_t kMiB = 1024ull * kKiB;
inline constexpr std::uint64_t kGiB = 1024ull * kMiB;
inline constexpr std::uint64_t kTiB = 1024ull * kGiB;

/// Parses an IOR-style size token: a non-negative integer with an optional
/// suffix [kKmMgGtT] interpreted as binary units (4m == 4 MiB).
/// Throws ParseError on malformed input or overflow.
std::uint64_t parse_size(std::string_view text);

/// Formats a byte count using the largest exact binary unit, e.g.
/// 4194304 -> "4 MiB", 1536 -> "1.50 KiB", 7 -> "7 B".
std::string format_bytes(std::uint64_t bytes);

/// Formats a size back into the compact IOR token form when it is an exact
/// multiple of a binary unit (4 MiB -> "4m"); otherwise plain bytes ("4100").
std::string format_size_token(std::uint64_t bytes);

/// Formats a bandwidth in MiB/s with two decimals, e.g. "2850.13".
std::string format_mib_per_sec(double mib_per_sec);

/// Converts bytes + seconds into MiB/s. Returns 0 for non-positive durations.
double to_mib_per_sec(std::uint64_t bytes, double seconds);

/// Formats a duration in seconds as "12.3456" (IOR report style, 4+ digits).
std::string format_seconds(double seconds);

}  // namespace iokc::util
