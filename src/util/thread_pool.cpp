#include "src/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

namespace iokc::util {

namespace {

/// Which pool/worker the current thread belongs to (nullptr off-pool).
/// Lets submit() route tasks from a worker onto that worker's own deque.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};

thread_local WorkerIdentity t_worker;

std::atomic<PoolObserver> g_pool_observer{nullptr};

}  // namespace

void set_pool_observer(PoolObserver observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = hardware_threads();
  }
  deques_.resize(threads);
  threads_.reserve(threads);
  try {
    for (std::size_t i = 0; i < threads; ++i) {
      threads_.emplace_back([this, i] { worker_loop(i); });
    }
  } catch (...) {
    {
      const LockGuard lock(mutex_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& thread : threads_) {
      thread.join();
    }
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) {
    thread.join();
  }
  // Workers are joined: the stats are final and reading them needs no lock.
  if (const PoolObserver observer =
          g_pool_observer.load(std::memory_order_acquire)) {
    observer(PoolRunStats{threads_.size(), tasks_, steals_, max_pending_});
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    const LockGuard lock(mutex_);
    std::size_t target;
    if (t_worker.pool == this) {
      target = t_worker.index;
    } else {
      target = next_deque_;
      next_deque_ = (next_deque_ + 1) % deques_.size();
    }
    deques_[target].push_back(std::move(task));
    ++pending_;
    ++tasks_;
    max_pending_ = std::max(max_pending_, pending_);
  }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  UniqueLock lock(mutex_);
  // Explicit wait loop (not the predicate overload): the predicate lambda
  // would be analyzed as a separate function, outside the lock's scope.
  while (pending_ != 0) {
    idle_cv_.wait(lock);
  }
}

std::size_t ThreadPool::steal_count() const {
  const LockGuard lock(mutex_);
  return steals_;
}

std::size_t ThreadPool::max_queue_depth() const {
  const LockGuard lock(mutex_);
  return max_pending_;
}

std::size_t ThreadPool::task_count() const {
  const LockGuard lock(mutex_);
  return tasks_;
}

std::size_t ThreadPool::current_worker_index() {
  return t_worker.pool != nullptr ? t_worker.index : 0;
}

std::size_t ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

bool ThreadPool::take_task(std::size_t self, std::function<void()>& task) {
  // Own work first, newest first: the task most likely still in cache.
  if (!deques_[self].empty()) {
    task = std::move(deques_[self].back());
    deques_[self].pop_back();
    return true;
  }
  // Steal oldest-first from the other workers, scanning round-robin from the
  // right neighbour so thieves spread over victims.
  const std::size_t n = deques_.size();
  for (std::size_t offset = 1; offset < n; ++offset) {
    std::deque<std::function<void()>>& victim = deques_[(self + offset) % n];
    if (!victim.empty()) {
      task = std::move(victim.front());
      victim.pop_front();
      ++steals_;
      return true;
    }
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t self) {
  t_worker = WorkerIdentity{this, self};
  UniqueLock lock(mutex_);
  for (;;) {
    std::function<void()> task;
    while (!take_task(self, task)) {
      if (stop_) {
        return;
      }
      work_cv_.wait(lock);
    }
    lock.unlock();
    task();
    task = nullptr;  // destroy captures outside the lock
    lock.lock();
    --pending_;
    if (pending_ == 0) {
      idle_cv_.notify_all();
    }
  }
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body) {
  parallel_for(count, jobs,
               [&body](const TaskContext& task) { body(task.index); });
}

void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(const TaskContext&)>& body) {
  if (count == 0) {
    return;
  }
  if (jobs == 0) {
    jobs = ThreadPool::hardware_threads();
  }
  jobs = std::min(jobs, count);
  if (jobs <= 1) {
    for (std::size_t i = 0; i < count; ++i) {
      body(TaskContext{i, 0});
    }
    return;
  }
  std::vector<std::exception_ptr> errors(count);
  {
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < count; ++i) {
      pool.submit([&body, &errors, i] {
        try {
          body(TaskContext{i, ThreadPool::current_worker_index()});
        } catch (...) {
          errors[i] = std::current_exception();
        }
      });
    }
    pool.wait_idle();
  }
  for (const std::exception_ptr& error : errors) {
    if (error) {
      std::rethrow_exception(error);
    }
  }
}

}  // namespace iokc::util
