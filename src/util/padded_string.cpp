#include "src/util/padded_string.hpp"

#include <cstring>
#include <fstream>

#include "src/util/error.hpp"

namespace iokc::util {

namespace {

std::unique_ptr<char[]> allocate_padded(std::size_t size) {
  auto data = std::make_unique<char[]>(size + PaddedString::kPadding);
  std::memset(data.get() + size, 0, PaddedString::kPadding);
  return data;
}

}  // namespace

PaddedString::PaddedString(std::string_view text) : size_(text.size()) {
  data_ = allocate_padded(size_);
  std::memcpy(data_.get(), text.data(), size_);
}

PaddedString PaddedString::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw IoError("cannot read " + path);
  }
  const std::streamoff end = in.tellg();
  if (end < 0) {
    throw IoError("cannot size " + path);
  }
  PaddedString result;
  result.size_ = static_cast<std::size_t>(end);
  result.data_ = allocate_padded(result.size_);
  in.seekg(0);
  in.read(result.data_.get(), end);
  if (!in) {
    throw IoError("failed reading " + path);
  }
  return result;
}

}  // namespace iokc::util
