#include "src/util/table.hpp"

#include <algorithm>

#include "src/util/strings.hpp"

namespace iokc::util {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::set_alignment(std::vector<Align> alignment) {
  alignment_ = std::move(alignment);
}

void TextTable::add_row(std::vector<std::string> row) {
  row.resize(std::max(row.size(), header_.size()));
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  const std::size_t columns =
      std::max(header_.size(),
               rows_.empty() ? std::size_t{0} : rows_.front().size());
  std::vector<std::size_t> widths(columns, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size() && c < columns; ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  widen(header_);
  for (const auto& row : rows_) {
    widen(row);
  }

  std::string rule = "+";
  for (const std::size_t w : widths) {
    rule += std::string(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string out = "|";
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      const Align align = c < alignment_.size() ? alignment_[c] : Align::kLeft;
      out += ' ';
      out += align == Align::kRight ? pad_left(cell, widths[c])
                                    : pad_right(cell, widths[c]);
      out += " |";
    }
    out += '\n';
    return out;
  };

  std::string out = rule;
  if (!header_.empty()) {
    out += render_row(header_);
    out += rule;
  }
  for (const auto& row : rows_) {
    out += render_row(row);
  }
  out += rule;
  return out;
}

}  // namespace iokc::util
