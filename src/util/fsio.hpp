// Durable file I/O: fsync-backed writes and atomic replace-by-rename. These
// are the primitives the database's save/journal protocols build on so that
// a crash at any point leaves either the old or the new file contents — never
// a torn mixture, and never a missing file once one existed.
#pragma once

#include <string>
#include <string_view>

namespace iokc::util {

/// Writes `content` to `path` (truncating) and fsyncs before returning.
/// Throws IoError on any failure.
void write_file_durable(const std::string& path, std::string_view content);

/// Atomically replaces `path` with `content`: writes a sibling temp file,
/// fsyncs it, renames it over `path`, then fsyncs the parent directory. A
/// crash at any step leaves `path` either untouched or fully replaced.
/// Throws IoError on failure (the temp file is cleaned up best-effort).
void atomic_replace_file(const std::string& path, std::string_view content);

/// Fsyncs a directory so a completed rename within it survives a crash.
/// Throws IoError on failure.
void fsync_directory(const std::string& path);

}  // namespace iokc::util
