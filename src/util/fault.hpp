// Fault-injection points for crash-recovery testing. Production code calls
// fault_point("site") at each step of a durability-critical protocol (journal
// append, atomic rename, checkpoint, work-package completion); the hook is
// null in production, so the call is a cheap test-only seam. The crash-test
// harness installs a hook that counts sites and SIGKILLs (or throws) at a
// chosen step, simulating a crash between any two consecutive system calls.
#pragma once

namespace iokc::util {

/// A fault hook: receives the site name; may throw or terminate the process.
using FaultHook = void (*)(const char* site);

/// Installs `hook` as the process-global fault hook (nullptr disables).
/// The registry is a single atomic pointer — deliberately lock-free, like
/// set_pool_observer: fault_point() fires inside durability-critical
/// sections that already hold ranked locks (e.g. db.journal), so the
/// registry must never introduce a lock of its own. Hooks may throw or kill
/// the process but must not acquire util::Mutex locks.
void set_fault_hook(FaultHook hook);

/// The currently installed hook, or nullptr.
FaultHook fault_hook();

/// Invokes the installed hook, if any. `site` names the protocol step.
void fault_point(const char* site);

}  // namespace iokc::util
