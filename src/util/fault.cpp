#include "src/util/fault.hpp"

#include <atomic>

namespace iokc::util {

namespace {

std::atomic<FaultHook> g_hook{nullptr};

}  // namespace

void set_fault_hook(FaultHook hook) {
  g_hook.store(hook, std::memory_order_release);
}

FaultHook fault_hook() { return g_hook.load(std::memory_order_acquire); }

void fault_point(const char* site) {
  if (const FaultHook hook = g_hook.load(std::memory_order_acquire)) {
    hook(site);
  }
}

}  // namespace iokc::util
