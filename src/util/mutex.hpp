// Capability-annotated lock wrappers with a runtime lock-rank detector.
//
// Every mutex in the repo outside util/ must be one of these wrappers (the
// `raw-mutex` iokc-lint pass enforces it). They add two things over the std
// primitives they wrap:
//
//   1. Clang Thread Safety Analysis capabilities (src/util/
//      thread_annotations.hpp), so `IOKC_GUARDED_BY` / `IOKC_REQUIRES`
//      contracts are machine-checked under the clang presets.
//   2. A lock *rank* plus a human-readable name. In IOKC_CHECKS builds a
//      thread-local held-lock stack enforces that locks are only acquired in
//      strictly descending rank order (svc -> persist -> db -> obs -> util),
//      aborting with both lock names on the first out-of-order acquisition —
//      a deadlock detector that fires on the acquisition pattern itself, not
//      only when threads actually interleave into a deadlock.
//
// Rank order mirrors the module layering: a request enters at the service
// layer and descends, so higher layers rank higher and may acquire
// lower-ranked locks while holding their own, never the reverse. Locks of
// equal rank must never be held together (the detector aborts on `>=`).
#pragma once

#include <mutex>
#include <shared_mutex>

#include "src/util/check.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::util {

/// Static acquisition rank of a Mutex. Gaps leave room for new modules.
enum class LockRank : int {
  kUtil = 0,
  kObs = 10,
  kDb = 20,
  kPersist = 30,
  kSim = 40,
  kCycle = 50,
  kSvc = 60,
  kRepl = 70,  // replication sits above svc: it drives servers/repositories
};

namespace detail {
#if IOKC_CHECKS_ENABLED
/// Aborts (with both lock names) unless `rank` is strictly lower than the
/// most recently acquired lock still held by this thread. Called *before*
/// blocking on the lock so a would-be deadlock aborts instead of hanging.
void note_acquire(const void* tag, int rank, const char* name);
/// Pops `tag` from the thread-local held stack (out-of-LIFO release is fine).
void note_release(const void* tag);
#endif
}  // namespace detail

/// Annotated std::mutex with a rank and a diagnostic name. Non-movable: the
/// address is the identity the runtime detector tracks.
class IOKC_CAPABILITY("mutex") Mutex {
 public:
  Mutex(LockRank rank, const char* name) : rank_(static_cast<int>(rank)), name_(name) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() IOKC_ACQUIRE() {
#if IOKC_CHECKS_ENABLED
    detail::note_acquire(this, rank_, name_);
#endif
    mutex_.lock();
  }

  void unlock() IOKC_RELEASE() {
    mutex_.unlock();
#if IOKC_CHECKS_ENABLED
    detail::note_release(this);
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::mutex mutex_;
  const int rank_;
  const char* const name_;
};

/// Annotated std::shared_mutex. Shared (reader) acquisitions obey the same
/// rank discipline as exclusive ones.
class IOKC_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex(LockRank rank, const char* name)
      : rank_(static_cast<int>(rank)), name_(name) {}
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() IOKC_ACQUIRE() {
#if IOKC_CHECKS_ENABLED
    detail::note_acquire(this, rank_, name_);
#endif
    mutex_.lock();
  }

  void unlock() IOKC_RELEASE() {
    mutex_.unlock();
#if IOKC_CHECKS_ENABLED
    detail::note_release(this);
#endif
  }

  void lock_shared() IOKC_ACQUIRE_SHARED() {
#if IOKC_CHECKS_ENABLED
    detail::note_acquire(this, rank_, name_);
#endif
    mutex_.lock_shared();
  }

  void unlock_shared() IOKC_RELEASE_SHARED() {
    mutex_.unlock_shared();
#if IOKC_CHECKS_ENABLED
    detail::note_release(this);
#endif
  }

  int rank() const { return rank_; }
  const char* name() const { return name_; }

 private:
  std::shared_mutex mutex_;
  const int rank_;
  const char* const name_;
};

/// Scoped exclusive lock. The `blocking-under-lock` and `lock-order` lint
/// passes key off the lexical scope of these guards, so prefer a tight block
/// around the guarded access over a function-wide guard.
class IOKC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mutex) IOKC_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
  }
  explicit LockGuard(SharedMutex& mutex) IOKC_ACQUIRE(mutex)
      : shared_mutex_(&mutex) {
    shared_mutex_->lock();
  }
  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;
  ~LockGuard() IOKC_RELEASE_GENERIC() {
    if (mutex_ != nullptr) {
      mutex_->unlock();
    } else {
      shared_mutex_->unlock();
    }
  }

 private:
  Mutex* mutex_ = nullptr;
  SharedMutex* shared_mutex_ = nullptr;
};

/// Scoped shared (reader) lock over a SharedMutex.
class IOKC_SCOPED_CAPABILITY SharedLockGuard {
 public:
  explicit SharedLockGuard(SharedMutex& mutex) IOKC_ACQUIRE_SHARED(mutex)
      : mutex_(&mutex) {
    mutex_->lock_shared();
  }
  SharedLockGuard(const SharedLockGuard&) = delete;
  SharedLockGuard& operator=(const SharedLockGuard&) = delete;
  ~SharedLockGuard() IOKC_RELEASE_GENERIC() { mutex_->unlock_shared(); }

 private:
  SharedMutex* mutex_;
};

/// Relockable scoped lock for condition-variable waits
/// (std::condition_variable_any requires only BasicLockable). Starts held.
class IOKC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mutex) IOKC_ACQUIRE(mutex) : mutex_(&mutex) {
    mutex_->lock();
    held_ = true;
  }
  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;
  ~UniqueLock() IOKC_RELEASE_GENERIC() {
    if (held_) {
      mutex_->unlock();
    }
  }

  void lock() IOKC_ACQUIRE() {
    mutex_->lock();
    held_ = true;
  }

  void unlock() IOKC_RELEASE() {
    held_ = false;
    mutex_->unlock();
  }

 private:
  Mutex* mutex_;
  bool held_ = false;
};

}  // namespace iokc::util
