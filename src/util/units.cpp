#include "src/util/units.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "src/util/error.hpp"

namespace iokc::util {

namespace {

std::uint64_t suffix_multiplier(char c) {
  switch (c) {
    case 'k': case 'K': return kKiB;
    case 'm': case 'M': return kMiB;
    case 'g': case 'G': return kGiB;
    case 't': case 'T': return kTiB;
    default: return 0;
  }
}

}  // namespace

std::uint64_t parse_size(std::string_view text) {
  if (text.empty()) {
    throw ParseError("empty size token");
  }
  std::uint64_t multiplier = 1;
  std::string_view digits = text;
  const char last = text.back();
  if (!std::isdigit(static_cast<unsigned char>(last))) {
    multiplier = suffix_multiplier(last);
    if (multiplier == 0) {
      throw ParseError("bad size suffix in '" + std::string(text) + "'");
    }
    digits.remove_suffix(1);
  }
  if (digits.empty()) {
    throw ParseError("missing digits in size token '" + std::string(text) + "'");
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(digits.data(), digits.data() + digits.size(), value);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    throw ParseError("bad size token '" + std::string(text) + "'");
  }
  if (multiplier != 0 && value > UINT64_MAX / multiplier) {
    throw ParseError("size token overflows 64 bits: '" + std::string(text) + "'");
  }
  return value * multiplier;
}

std::string format_bytes(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t size;
    const char* name;
  };
  static constexpr std::array<Unit, 4> kUnits{{
      {kTiB, "TiB"}, {kGiB, "GiB"}, {kMiB, "MiB"}, {kKiB, "KiB"}}};
  for (const auto& unit : kUnits) {
    if (bytes >= unit.size) {
      const double value = static_cast<double>(bytes) / static_cast<double>(unit.size);
      char buf[64];
      if (bytes % unit.size == 0) {
        std::snprintf(buf, sizeof buf, "%llu %s",
                      static_cast<unsigned long long>(bytes / unit.size), unit.name);
      } else {
        std::snprintf(buf, sizeof buf, "%.2f %s", value, unit.name);
      }
      return buf;
    }
  }
  return std::to_string(bytes) + " B";
}

std::string format_size_token(std::uint64_t bytes) {
  struct Unit {
    std::uint64_t size;
    char suffix;
  };
  static constexpr std::array<Unit, 4> kUnits{{
      {kTiB, 't'}, {kGiB, 'g'}, {kMiB, 'm'}, {kKiB, 'k'}}};
  for (const auto& unit : kUnits) {
    if (bytes >= unit.size && bytes % unit.size == 0) {
      return std::to_string(bytes / unit.size) + unit.suffix;
    }
  }
  return std::to_string(bytes);
}

std::string format_mib_per_sec(double mib_per_sec) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.2f", mib_per_sec);
  return buf;
}

double to_mib_per_sec(std::uint64_t bytes, double seconds) {
  if (seconds <= 0.0) {
    return 0.0;
  }
  return static_cast<double>(bytes) / static_cast<double>(kMiB) / seconds;
}

std::string format_seconds(double seconds) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.5f", seconds);
  return buf;
}

}  // namespace iokc::util
