// Basic descriptive statistics shared by benchmark engines, the knowledge
// model (per-operation summaries), and the analysis phase.
#pragma once

#include <span>
#include <vector>

namespace iokc::util {

/// Descriptive statistics of a sample.
struct SummaryStats {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  // sample standard deviation (n-1), 0 for n < 2
  double sum = 0.0;
};

/// Computes count/min/max/mean/stddev/sum. Empty input yields all zeros.
SummaryStats summarize(std::span<const double> values);

/// Linear-interpolated percentile (p in [0, 100]) of an unsorted sample.
/// Throws ConfigError for empty input or p outside [0, 100].
double percentile(std::span<const double> values, double p);

/// Median shorthand.
double median(std::span<const double> values);

/// Geometric mean; requires all values > 0 (throws ConfigError otherwise).
double geometric_mean(std::span<const double> values);

}  // namespace iokc::util
