#include "src/util/fsio.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/util/error.hpp"
#include "src/util/fault.hpp"

namespace iokc::util {

namespace {

void write_all(int fd, std::string_view data, const std::string& path) {
  std::size_t written = 0;
  while (written < data.size()) {
    const ::ssize_t n =
        ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      throw IoError("failed writing " + path + ": " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

}  // namespace

void write_file_durable(const std::string& path, std::string_view content) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    throw IoError("cannot open " + path + " for writing: " +
                  std::strerror(errno));
  }
  try {
    write_all(fd, content, path);
    if (::fsync(fd) != 0) {
      throw IoError("fsync failed for " + path + ": " + std::strerror(errno));
    }
  } catch (...) {
    ::close(fd);
    throw;
  }
  if (::close(fd) != 0) {
    throw IoError("close failed for " + path + ": " + std::strerror(errno));
  }
}

void fsync_directory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) {
    throw IoError("cannot open directory " + path + ": " +
                  std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    throw IoError("fsync failed for directory " + path + ": " +
                  std::strerror(errno));
  }
}

void atomic_replace_file(const std::string& path, std::string_view content) {
  const std::string tmp = path + ".tmp";
  try {
    write_file_durable(tmp, content);
    fault_point("fsio.replace.staged");
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
      throw IoError("cannot rename " + tmp + " to " + path + ": " +
                    std::strerror(errno));
    }
    fault_point("fsio.replace.renamed");
    const std::filesystem::path parent =
        std::filesystem::path(path).parent_path();
    fsync_directory(parent.empty() ? "." : parent.string());
  } catch (...) {
    std::error_code ignored;
    std::filesystem::remove(tmp, ignored);
    throw;
  }
}

}  // namespace iokc::util
