// Error types shared across the iokc library.
//
// The library throws exceptions derived from iokc::Error; each subsystem has
// its own subclass so callers can catch at the granularity they care about.
#pragma once

#include <stdexcept>
#include <string>

namespace iokc {

/// Root of the iokc exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed input text (benchmark output, SQL, JSON, CSV, config files).
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error("parse error: " + what) {}
};

/// Violations of database constraints or invalid database usage.
class DbError : public Error {
 public:
  explicit DbError(const std::string& what) : Error("db error: " + what) {}
};

/// Invalid simulation configuration or internal simulation invariant failure.
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim error: " + what) {}
};

/// Host filesystem I/O failures (reading/writing workspaces, logs, DB files).
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error("io error: " + what) {}
};

/// Invalid benchmark or workflow configuration supplied by the caller.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config error: " + what) {}
};

}  // namespace iokc
