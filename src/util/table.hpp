// Monospace text tables for CLI reports (knowledge viewer output, bench rows).
#pragma once

#include <string>
#include <vector>

namespace iokc::util {

/// Column alignment for TextTable.
enum class Align { kLeft, kRight };

/// Accumulates rows and renders an aligned, ruled text table:
///
///   +------------+---------+
///   | operation  |  MiB/s  |
///   +------------+---------+
///   | write      | 2850.13 |
///   +------------+---------+
class TextTable {
 public:
  /// Defines the header; must be called before add_row.
  void set_header(std::vector<std::string> header);

  /// Per-column alignment; defaults to left for every column.
  void set_alignment(std::vector<Align> alignment);

  /// Appends a data row. Rows shorter than the header are padded with "".
  void add_row(std::vector<std::string> row);

  std::size_t row_count() const { return rows_.size(); }

  /// Renders the full table including rules.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<Align> alignment_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace iokc::util
