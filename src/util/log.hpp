// Minimal leveled logger. Defaults to warnings-and-up on stderr so library
// users see problems without drowning bench output; tests and examples can
// raise or silence it.
#pragma once

#include <sstream>
#include <string>

namespace iokc::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits one log line ("[warn] message") to stderr when enabled.
void log_message(LogLevel level, const std::string& message);

namespace detail {

/// Builds the message lazily; evaluated only when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace iokc::util
