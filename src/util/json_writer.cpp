#include "src/util/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <system_error>

namespace iokc::util {

namespace {

/// Length of the well-formed UTF-8 sequence starting at text[i], or 0 when
/// the bytes there are not valid UTF-8 (truncated sequence, bad
/// continuation, overlong encoding, surrogate code point, or > U+10FFFF).
std::size_t utf8_sequence_length(std::string_view text, std::size_t i) {
  const auto byte = [&](std::size_t k) {
    return static_cast<unsigned char>(text[k]);
  };
  const unsigned char lead = byte(i);
  std::size_t length = 0;
  unsigned code = 0;
  if (lead < 0x80) {
    return 1;
  } else if ((lead & 0xE0) == 0xC0) {
    length = 2;
    code = lead & 0x1Fu;
  } else if ((lead & 0xF0) == 0xE0) {
    length = 3;
    code = lead & 0x0Fu;
  } else if ((lead & 0xF8) == 0xF0) {
    length = 4;
    code = lead & 0x07u;
  } else {
    return 0;  // stray continuation byte or invalid lead (0xFE/0xFF)
  }
  if (i + length > text.size()) {
    return 0;  // truncated at end of string
  }
  for (std::size_t k = 1; k < length; ++k) {
    if ((byte(i + k) & 0xC0) != 0x80) {
      return 0;  // not a continuation byte
    }
    code = (code << 6) | (byte(i + k) & 0x3Fu);
  }
  static constexpr unsigned kMinCode[5] = {0, 0, 0x80, 0x800, 0x10000};
  if (code < kMinCode[length]) {
    return 0;  // overlong encoding
  }
  if (code >= 0xD800 && code <= 0xDFFF) {
    return 0;  // surrogate code point
  }
  if (code > 0x10FFFF) {
    return 0;
  }
  return length;
}

}  // namespace

void JsonWriter::string(std::string_view text) {
  std::string& out = *out_;
  out += '"';
  std::size_t run_start = 0;
  std::size_t i = 0;
  const auto flush_run = [&](std::size_t end) {
    if (end > run_start) {
      out.append(text.data() + run_start, end - run_start);
    }
  };
  while (i < text.size()) {
    const unsigned char byte = static_cast<unsigned char>(text[i]);
    if (byte >= 0x20 && byte < 0x80 && byte != '"' && byte != '\\') {
      ++i;  // clean ASCII: extend the run
      continue;
    }
    if (byte >= 0x80) {
      const std::size_t length = utf8_sequence_length(text, i);
      if (length != 0) {
        i += length;  // well-formed UTF-8 travels verbatim inside the run
        continue;
      }
      flush_run(i);
      out += "\\ufffd";  // invalid byte: keep the output parseable
      ++i;
      run_start = i;
      continue;
    }
    flush_run(i);
    switch (byte) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Remaining C0 controls (RFC 8259 §7 requires escaping them all).
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x",
                      static_cast<unsigned>(byte));
        out += buf;
        break;
      }
    }
    ++i;
    run_start = i;
  }
  flush_run(text.size());
  out += '"';
}

void JsonWriter::number(std::int64_t value) {
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out_->append(buf, static_cast<std::size_t>(end - buf));
}

void JsonWriter::number(double value) {
  if (!std::isfinite(value)) {
    null();
    return;
  }
  char buf[64];
#if defined(__cpp_lib_to_chars)
  // Shortest round-trip form: the fewest digits that re-parse to exactly
  // this double (and an order of magnitude faster than snprintf %.17g,
  // which dominated dumps of metric-heavy knowledge objects).
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  (void)ec;
  out_->append(buf, static_cast<std::size_t>(end - buf));
#else
  const int n = std::snprintf(buf, sizeof buf, "%.17g", value);
  out_->append(buf, static_cast<std::size_t>(n));
#endif
}

}  // namespace iokc::util
