// A work-stealing thread pool for the parallel phases of the knowledge cycle
// (JUBE work-package fan-out, workspace extraction). Each worker owns a deque:
// it pops its own work LIFO (cache-warm) and steals FIFO from the other
// workers when its deque runs dry, so coarse uneven tasks — one benchmark run
// per task — balance without a central run queue becoming the bottleneck.
//
// Determinism contract: the pool schedules *execution*, never *results*.
// Callers that need reproducible output hand every task an independent seed
// and merge results by task index (see util::parallel_for and the JUBE
// runner), so thread interleaving cannot leak into what is produced.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/util/mutex.hpp"
#include "src/util/thread_annotations.hpp"

namespace iokc::util {

/// Execution context handed to parallel_for task bodies: the logical work
/// item is carried with the task itself, so per-work-package attribution
/// (tracing spans, metrics) is exact instead of guessed from the executing
/// thread, which work stealing makes meaningless.
struct TaskContext {
  std::size_t index = 0;   // logical work item (e.g. the JUBE work package)
  std::size_t worker = 0;  // executing worker within the pool (0 inline)
};

/// Aggregate statistics of one pool's lifetime, reported to the registered
/// pool observer when the drained pool is destroyed.
struct PoolRunStats {
  std::size_t workers = 0;
  std::size_t tasks = 0;            // tasks submitted (== executed at drain)
  std::size_t steals = 0;           // tasks taken from another worker's deque
  std::size_t max_queue_depth = 0;  // peak queued + running tasks
};

/// Receives PoolRunStats from every pool as it drains. A plain function
/// pointer so installation is a single atomic store; util stays independent
/// of whoever consumes the stats (the observability layer installs here).
using PoolObserver = void (*)(const PoolRunStats&);

/// Installs the process-wide pool observer; nullptr (the default) disables
/// reporting.
void set_pool_observer(PoolObserver observer);

/// The pool. Tasks must not throw (wrap them; parallel_for does).
class ThreadPool {
 public:
  /// Spawns `threads` workers; 0 means hardware_threads().
  explicit ThreadPool(std::size_t threads = 0);

  /// Completes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Worker count.
  std::size_t size() const { return threads_.size(); }

  /// Enqueues one task (round-robin over the worker deques; a task submitted
  /// from inside a worker lands on that worker's own deque).
  void submit(std::function<void()> task) IOKC_EXCLUDES(mutex_);

  /// Blocks until every submitted task has finished running.
  void wait_idle() IOKC_EXCLUDES(mutex_);

  /// Number of tasks a worker stole from another worker's deque (for tests
  /// and bench reporting; meaningful once the pool is idle).
  std::size_t steal_count() const IOKC_EXCLUDES(mutex_);

  /// Peak queued + running tasks observed so far.
  std::size_t max_queue_depth() const IOKC_EXCLUDES(mutex_);

  /// Total tasks submitted so far.
  std::size_t task_count() const IOKC_EXCLUDES(mutex_);

  /// Index of the pool worker executing the caller, or 0 when the caller is
  /// not a pool worker (the inline/serial case).
  static std::size_t current_worker_index();

  /// std::thread::hardware_concurrency with a floor of 1.
  static std::size_t hardware_threads();

 private:
  void worker_loop(std::size_t self) IOKC_EXCLUDES(mutex_);
  /// Pops the next task for worker `self` (own back, then steal others'
  /// front). Returns false when no task is available.
  bool take_task(std::size_t self, std::function<void()>& task)
      IOKC_REQUIRES(mutex_);

  mutable Mutex mutex_{LockRank::kUtil, "util.thread_pool"};
  // condition_variable_any: util::UniqueLock is BasicLockable, not
  // std::unique_lock<std::mutex>, which the plain condition_variable needs.
  std::condition_variable_any work_cv_;
  std::condition_variable_any idle_cv_;
  std::vector<std::deque<std::function<void()>>> deques_ IOKC_GUARDED_BY(mutex_);
  std::vector<std::thread> threads_;
  std::size_t pending_ IOKC_GUARDED_BY(mutex_) = 0;  // queued + running tasks
  std::size_t next_deque_ IOKC_GUARDED_BY(mutex_) = 0;
  std::size_t steals_ IOKC_GUARDED_BY(mutex_) = 0;
  std::size_t tasks_ IOKC_GUARDED_BY(mutex_) = 0;
  std::size_t max_pending_ IOKC_GUARDED_BY(mutex_) = 0;
  bool stop_ IOKC_GUARDED_BY(mutex_) = false;
};

/// Runs body(0) .. body(count - 1) on up to `jobs` threads. jobs == 0 means
/// hardware_threads(); jobs <= 1 runs inline on the calling thread in index
/// order (bit-identical to a hand-written loop). Exceptions thrown by `body`
/// are captured per index; after every task has finished, the one with the
/// lowest index is rethrown — deterministic regardless of interleaving.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(std::size_t)>& body);

/// Same contract, but the body receives the full TaskContext — use this
/// when the body needs to attribute work (spans, metrics) to its logical
/// item rather than to whichever thread happened to run it.
void parallel_for(std::size_t count, std::size_t jobs,
                  const std::function<void(const TaskContext&)>& body);

}  // namespace iokc::util
