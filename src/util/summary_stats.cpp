#include "src/util/summary_stats.hpp"

#include <algorithm>
#include <cmath>

#include "src/util/error.hpp"

namespace iokc::util {

SummaryStats summarize(std::span<const double> values) {
  SummaryStats stats;
  stats.count = values.size();
  if (values.empty()) {
    return stats;
  }
  stats.min = values.front();
  stats.max = values.front();
  for (const double v : values) {
    stats.min = std::min(stats.min, v);
    stats.max = std::max(stats.max, v);
    stats.sum += v;
  }
  stats.mean = stats.sum / static_cast<double>(values.size());
  if (values.size() >= 2) {
    double ss = 0.0;
    for (const double v : values) {
      const double d = v - stats.mean;
      ss += d * d;
    }
    stats.stddev = std::sqrt(ss / static_cast<double>(values.size() - 1));
  }
  return stats;
}

double percentile(std::span<const double> values, double p) {
  if (values.empty()) {
    throw ConfigError("percentile of empty sample");
  }
  if (p < 0.0 || p > 100.0) {
    throw ConfigError("percentile p must be in [0, 100]");
  }
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) {
    return sorted.front();
  }
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> values) {
  return percentile(values, 50.0);
}

double geometric_mean(std::span<const double> values) {
  if (values.empty()) {
    throw ConfigError("geometric mean of empty sample");
  }
  double log_sum = 0.0;
  for (const double v : values) {
    if (v <= 0.0) {
      throw ConfigError("geometric mean requires positive values");
    }
    log_sum += std::log(v);
  }
  return std::exp(log_sum / static_cast<double>(values.size()));
}

}  // namespace iokc::util
