#include "src/util/mutex.hpp"

#if IOKC_CHECKS_ENABLED

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace iokc::util::detail {

namespace {

struct HeldLock {
  const void* tag = nullptr;
  int rank = 0;
  const char* name = nullptr;
};

// Per-thread stack of currently held locks, most recent last. The descending
// rank rule keeps it strictly decreasing, so back() is always the minimum
// held rank even after an out-of-LIFO release.
std::vector<HeldLock>& held_stack() {
  thread_local std::vector<HeldLock> stack;
  return stack;
}

}  // namespace

void note_acquire(const void* tag, int rank, const char* name) {
  std::vector<HeldLock>& stack = held_stack();
  for (const HeldLock& held : stack) {
    if (held.tag == tag) {
      std::fprintf(stderr,
                   "iokc: lock-rank violation: recursive acquisition of "
                   "\"%s\" (rank %d) on the same thread\n",
                   name, rank);
      std::abort();
    }
  }
  if (!stack.empty() && rank >= stack.back().rank) {
    std::fprintf(stderr,
                 "iokc: lock-rank violation: acquiring \"%s\" (rank %d) while "
                 "holding \"%s\" (rank %d); locks must be acquired in "
                 "strictly descending rank order\n",
                 name, rank, stack.back().name, stack.back().rank);
    std::abort();
  }
  stack.push_back(HeldLock{tag, rank, name});
}

void note_release(const void* tag) {
  std::vector<HeldLock>& stack = held_stack();
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (it->tag == tag) {
      stack.erase(std::next(it).base());
      return;
    }
  }
  std::fprintf(stderr,
               "iokc: lock-rank violation: releasing a lock this thread does "
               "not hold\n");
  std::abort();
}

}  // namespace iokc::util::detail

#endif  // IOKC_CHECKS_ENABLED
