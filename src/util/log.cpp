#include "src/util/log.hpp"

#include <atomic>
#include <cstdio>

namespace iokc::util {

namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
    case LogLevel::kOff: return "off";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::kOff) {
    return;
  }
  std::fprintf(stderr, "[%s] %s\n", level_name(level), message.c_str());
}

namespace detail {

LogLine::~LogLine() { log_message(level_, stream_.str()); }

}  // namespace detail

}  // namespace iokc::util
