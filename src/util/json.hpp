// A small JSON document model with a strict RFC 8259 parser and a
// pretty/compact writer. Used for knowledge-object serialization,
// Darshan-like log headers, service request/response payloads, and
// machine-readable bench artifacts. Object key order is preserved.
//
// Parsing is two-stage (json_index.hpp): stage 1 classifies the document
// with wide loads and records a structural index; stage 2 builds the tree
// by walking that index instead of dispatching per byte. parse_json_scalar
// is the byte-at-a-time reference parser with identical accept/reject
// behavior — the differential suite holds the two to byte-identical trees.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace iokc::util {

class JsonValue;
class JsonWriter;
class PaddedString;

using JsonArray = std::vector<JsonValue>;
/// Insertion-ordered object representation.
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;

/// Default cap on container nesting. Network frames are attacker-controlled
/// input: without a cap, a few kilobytes of '[' overflow the parser's stack
/// inside the service worker. 256 is far above any knowledge object.
inline constexpr std::size_t kDefaultJsonMaxDepth = 256;

struct JsonParseOptions {
  std::size_t max_depth = kDefaultJsonMaxDepth;
};

/// A JSON value: null, bool, integer, double, string, array, or object.
/// Integers are kept distinct from doubles so round-trips preserve exactness.
class JsonValue {
 public:
  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(std::int64_t i) : value_(i) {}
  JsonValue(int i) : value_(static_cast<std::int64_t>(i)) {}
  JsonValue(std::uint64_t u) : value_(static_cast<std::int64_t>(u)) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(JsonArray a) : value_(std::move(a)) {}
  JsonValue(JsonObject o) : value_(std::move(o)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_int() const { return std::holds_alternative<std::int64_t>(value_); }
  bool is_double() const { return std::holds_alternative<double>(value_); }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<JsonArray>(value_); }
  bool is_object() const { return std::holds_alternative<JsonObject>(value_); }

  /// Typed accessors; throw ParseError when the type does not match.
  bool as_bool() const;
  std::int64_t as_int() const;
  double as_double() const;  // accepts both int and double
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  JsonArray& as_array();
  const JsonObject& as_object() const;
  JsonObject& as_object();

  /// Object field lookup; throws ParseError when absent or not an object.
  const JsonValue& at(std::string_view key) const;
  /// Object field lookup; returns nullptr when absent.
  const JsonValue* find(std::string_view key) const;
  /// Sets (or replaces) an object field; converts null value_ into an object.
  void set(std::string key, JsonValue value);

  /// Serializes compactly ({"a":1}) or pretty-printed when indent > 0.
  std::string dump(int indent = 0) const;
  /// Serializes into `writer`'s buffer (appending) — the reusable-buffer
  /// path: a writer cleared and reused across dumps stops allocating, and a
  /// writer wrapping a wire buffer encodes the document exactly once.
  void dump_to(JsonWriter& writer, int indent = 0) const;

 private:
  void dump_value(JsonWriter& writer, int indent, int depth) const;

  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string,
               JsonArray, JsonObject>
      value_;
};

/// Parses a complete JSON document (two-stage fast path); trailing garbage
/// is an error. Throws ParseError with position information on malformed
/// input, including container nesting beyond options.max_depth.
JsonValue parse_json(std::string_view text, const JsonParseOptions& options = {});
/// Same, over a padded buffer (the corpus-loading path — stage 1's wide
/// loads stay in-bounds without tail handling).
JsonValue parse_json(const PaddedString& text,
                     const JsonParseOptions& options = {});

/// The byte-at-a-time reference parser. Identical accept/reject behavior
/// and identical trees to parse_json by contract; kept as the differential
/// baseline and for the old-vs-new microbench comparison (bench/micro_json).
JsonValue parse_json_scalar(std::string_view text,
                            const JsonParseOptions& options = {});

}  // namespace iokc::util
