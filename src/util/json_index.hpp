// Stage 1 of the two-stage JSON parser (simdjson-style): one linear scan
// over the document that classifies every byte with wide loads (SSE2 where
// available, SWAR otherwise) and records the offset of each *structural*
// character — { } [ ] : , both string quotes, and the first byte of every
// scalar token (number / true / false / null). Stage 2 (json.cpp) then
// builds the tree by walking this index instead of dispatching per byte.
//
// Quote state is tracked block-wise: escaped quotes are masked out with the
// odd-length-backslash-run trick, and the in-string mask is the prefix XOR
// of the remaining quote bits, carried across blocks. Structural characters
// inside strings are therefore never recorded, and string contents are
// skipped at memory bandwidth.
//
// Inputs need no padding: full 64-byte blocks use wide loads directly and
// the final partial block is classified from a zero-padded copy on the
// stack, so the scan never reads past the buffer (a util::PaddedString
// makes even the tail a full-block load, which the corpus loaders use).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace iokc::util {

/// Offsets of structural characters and scalar-token starts, in document
/// order. Reused across parses: clear() keeps capacity.
struct StructuralIndex {
  std::vector<std::uint32_t> positions;

  void clear() { positions.clear(); }
  bool empty() const { return positions.empty(); }
  std::size_t size() const { return positions.size(); }
};

/// Scans `text` and fills `index`. Throws ParseError when a string is
/// unterminated at end of input or the document exceeds 4 GiB (offsets are
/// 32-bit). Purely lexical: bracket matching, token grammar, and depth are
/// stage 2's job.
void build_structural_index(std::string_view text, StructuralIndex& index);

/// Streaming stage 1: the same entry sequence as build_structural_index,
/// produced lazily in ~256 KiB chunks as the consumer walks forward. The
/// parse stays cache-resident — stage 2 re-reads each chunk while it is
/// still hot in L2 instead of streaming the whole document from DRAM twice
/// — and scratch memory is O(chunk), not O(document) (a multi-GB ingest no
/// longer materializes a gigabyte-scale index).
///
/// The consumer contract matches stage 2's walk: entry numbers are
/// requested in non-decreasing order with bounded lookahead; entries more
/// than two behind the highest number passed to has() may be discarded.
/// Throws ParseError from has() when the scan reaches end of input inside
/// an unterminated string, or from the constructor for documents over the
/// 4 GiB offset limit.
class StructuralScanner {
 public:
  StructuralScanner(std::string_view text, StructuralIndex& scratch);

  /// True when entry `k` exists, scanning further input on demand.
  bool has(std::size_t k) {
    if (k < first_entry_ + count_) {
      return true;
    }
    return scan_until(k);
  }

  /// Byte offset of entry `k`. Pre: has(k) returned true and no has(k')
  /// with k' > k + 2 has been issued since.
  std::uint32_t at(std::size_t k) const {
    return scratch_->positions[k - first_entry_];
  }

  /// Entry number just past the scanned window. Entries below it may be
  /// peeked freely via at() — peeking never advances the scan or discards
  /// anything (stage 2 uses this to size flat arrays exactly).
  std::size_t scanned_end() const { return first_entry_ + count_; }

 private:
  bool scan_until(std::size_t k);

  std::string_view text_;
  StructuralIndex* scratch_;
  std::size_t base_ = 0;         // next unscanned byte
  std::size_t first_entry_ = 0;  // entry number of scratch_->positions[0]
  std::size_t count_ = 0;        // live entries in scratch_
  std::uint64_t escape_parity_ = 0;
  std::uint64_t in_string_ = 0;
  std::uint64_t scalar_carry_ = 0;
};

namespace detail {
/// The portable SWAR scan regardless of SIMD availability — identical
/// results to build_structural_index by contract; tests cross-check the
/// SIMD build against it on randomized documents.
void build_structural_index_swar(std::string_view text,
                                 StructuralIndex& index);
}  // namespace detail

}  // namespace iokc::util
