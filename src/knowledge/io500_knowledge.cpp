#include "src/knowledge/io500_knowledge.hpp"

namespace iokc::knowledge {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

}  // namespace

const Io500Testcase* Io500Knowledge::find_testcase(
    const std::string& name) const {
  for (const Io500Testcase& testcase : testcases) {
    if (testcase.name == name) {
      return &testcase;
    }
  }
  return nullptr;
}

util::JsonValue Io500Knowledge::to_json() const {
  JsonObject obj;
  obj.emplace_back("command", JsonValue(command));
  obj.emplace_back("num_tasks", JsonValue(static_cast<std::int64_t>(num_tasks)));
  obj.emplace_back("num_nodes", JsonValue(static_cast<std::int64_t>(num_nodes)));
  obj.emplace_back("score_bw_gib", JsonValue(score_bw_gib));
  obj.emplace_back("score_md_kiops", JsonValue(score_md_kiops));
  obj.emplace_back("score_total", JsonValue(score_total));
  JsonArray cases;
  for (const Io500Testcase& testcase : testcases) {
    JsonObject c;
    c.emplace_back("name", JsonValue(testcase.name));
    c.emplace_back("options", JsonValue(testcase.options));
    c.emplace_back("value", JsonValue(testcase.value));
    c.emplace_back("unit", JsonValue(testcase.unit));
    c.emplace_back("time_sec", JsonValue(testcase.time_sec));
    cases.push_back(JsonValue(std::move(c)));
  }
  obj.emplace_back("testcases", JsonValue(std::move(cases)));
  if (system.has_value()) {
    obj.emplace_back("system", system_info_to_json(*system));
  }
  return JsonValue(std::move(obj));
}

Io500Knowledge Io500Knowledge::from_json(const util::JsonValue& json) {
  Io500Knowledge k;
  k.command = json.at("command").as_string();
  k.num_tasks = static_cast<std::uint32_t>(json.at("num_tasks").as_int());
  k.num_nodes = static_cast<std::uint32_t>(json.at("num_nodes").as_int());
  k.score_bw_gib = json.at("score_bw_gib").as_double();
  k.score_md_kiops = json.at("score_md_kiops").as_double();
  k.score_total = json.at("score_total").as_double();
  for (const JsonValue& c : json.at("testcases").as_array()) {
    Io500Testcase testcase;
    testcase.name = c.at("name").as_string();
    testcase.options = c.at("options").as_string();
    testcase.value = c.at("value").as_double();
    testcase.unit = c.at("unit").as_string();
    testcase.time_sec = c.at("time_sec").as_double();
    k.testcases.push_back(std::move(testcase));
  }
  if (const JsonValue* sys = json.find("system")) {
    k.system = system_info_from_json(*sys);
  }
  return k;
}

}  // namespace iokc::knowledge
