#include "src/knowledge/knowledge.hpp"

#include <vector>

#include "src/util/summary_stats.hpp"

namespace iokc::knowledge {

namespace {

using util::JsonArray;
using util::JsonObject;
using util::JsonValue;

JsonValue op_result_to_json(const OpResult& r) {
  JsonObject obj;
  obj.emplace_back("iteration", JsonValue(static_cast<std::int64_t>(r.iteration)));
  obj.emplace_back("bw_mib", JsonValue(r.bw_mib));
  obj.emplace_back("iops", JsonValue(r.iops));
  obj.emplace_back("latency_sec", JsonValue(r.latency_sec));
  obj.emplace_back("open_sec", JsonValue(r.open_sec));
  obj.emplace_back("wrrd_sec", JsonValue(r.wrrd_sec));
  obj.emplace_back("close_sec", JsonValue(r.close_sec));
  obj.emplace_back("total_sec", JsonValue(r.total_sec));
  return JsonValue(std::move(obj));
}

OpResult op_result_from_json(const JsonValue& json) {
  OpResult r;
  r.iteration = static_cast<int>(json.at("iteration").as_int());
  r.bw_mib = json.at("bw_mib").as_double();
  r.iops = json.at("iops").as_double();
  r.latency_sec = json.at("latency_sec").as_double();
  r.open_sec = json.at("open_sec").as_double();
  r.wrrd_sec = json.at("wrrd_sec").as_double();
  r.close_sec = json.at("close_sec").as_double();
  r.total_sec = json.at("total_sec").as_double();
  return r;
}

JsonValue summary_to_json(const OpSummary& s) {
  JsonObject obj;
  obj.emplace_back("operation", JsonValue(s.operation));
  obj.emplace_back("api", JsonValue(s.api));
  obj.emplace_back("max_bw_mib", JsonValue(s.max_bw_mib));
  obj.emplace_back("min_bw_mib", JsonValue(s.min_bw_mib));
  obj.emplace_back("mean_bw_mib", JsonValue(s.mean_bw_mib));
  obj.emplace_back("stddev_bw_mib", JsonValue(s.stddev_bw_mib));
  obj.emplace_back("max_ops", JsonValue(s.max_ops));
  obj.emplace_back("min_ops", JsonValue(s.min_ops));
  obj.emplace_back("mean_ops", JsonValue(s.mean_ops));
  obj.emplace_back("stddev_ops", JsonValue(s.stddev_ops));
  obj.emplace_back("mean_time_sec", JsonValue(s.mean_time_sec));
  JsonArray results;
  for (const OpResult& r : s.results) {
    results.push_back(op_result_to_json(r));
  }
  obj.emplace_back("results", JsonValue(std::move(results)));
  return JsonValue(std::move(obj));
}

OpSummary summary_from_json(const JsonValue& json) {
  OpSummary s;
  s.operation = json.at("operation").as_string();
  s.api = json.at("api").as_string();
  s.max_bw_mib = json.at("max_bw_mib").as_double();
  s.min_bw_mib = json.at("min_bw_mib").as_double();
  s.mean_bw_mib = json.at("mean_bw_mib").as_double();
  s.stddev_bw_mib = json.at("stddev_bw_mib").as_double();
  s.max_ops = json.at("max_ops").as_double();
  s.min_ops = json.at("min_ops").as_double();
  s.mean_ops = json.at("mean_ops").as_double();
  s.stddev_ops = json.at("stddev_ops").as_double();
  s.mean_time_sec = json.at("mean_time_sec").as_double();
  for (const JsonValue& r : json.at("results").as_array()) {
    s.results.push_back(op_result_from_json(r));
  }
  return s;
}

JsonValue fs_info_to_json(const FileSystemInfo& f) {
  JsonObject obj;
  obj.emplace_back("fs_name", JsonValue(f.fs_name));
  obj.emplace_back("entry_type", JsonValue(f.entry_type));
  obj.emplace_back("entry_id", JsonValue(f.entry_id));
  obj.emplace_back("metadata_node",
                   JsonValue(static_cast<std::int64_t>(f.metadata_node)));
  obj.emplace_back("stripe_pattern", JsonValue(f.stripe_pattern));
  obj.emplace_back("chunk_size",
                   JsonValue(static_cast<std::int64_t>(f.chunk_size)));
  obj.emplace_back("num_targets",
                   JsonValue(static_cast<std::int64_t>(f.num_targets)));
  obj.emplace_back("storage_pool",
                   JsonValue(static_cast<std::int64_t>(f.storage_pool)));
  return JsonValue(std::move(obj));
}

FileSystemInfo fs_info_from_json(const JsonValue& json) {
  FileSystemInfo f;
  f.fs_name = json.at("fs_name").as_string();
  f.entry_type = json.at("entry_type").as_string();
  f.entry_id = json.at("entry_id").as_string();
  f.metadata_node =
      static_cast<std::uint32_t>(json.at("metadata_node").as_int());
  f.stripe_pattern = json.at("stripe_pattern").as_string();
  f.chunk_size = static_cast<std::uint64_t>(json.at("chunk_size").as_int());
  f.num_targets = static_cast<std::uint32_t>(json.at("num_targets").as_int());
  f.storage_pool = static_cast<std::uint32_t>(json.at("storage_pool").as_int());
  return f;
}

}  // namespace

util::JsonValue system_info_to_json(const SystemInfoRecord& s) {
  JsonObject obj;
  obj.emplace_back("hostname", JsonValue(s.hostname));
  obj.emplace_back("os_release", JsonValue(s.os_release));
  obj.emplace_back("cpu_model", JsonValue(s.cpu_model));
  obj.emplace_back("sockets", JsonValue(static_cast<std::int64_t>(s.sockets)));
  obj.emplace_back("cores_per_socket",
                   JsonValue(static_cast<std::int64_t>(s.cores_per_socket)));
  obj.emplace_back("total_cores",
                   JsonValue(static_cast<std::int64_t>(s.total_cores)));
  obj.emplace_back("frequency_mhz", JsonValue(s.frequency_mhz));
  obj.emplace_back("l1d_kib", JsonValue(static_cast<std::int64_t>(s.l1d_kib)));
  obj.emplace_back("l2_kib", JsonValue(static_cast<std::int64_t>(s.l2_kib)));
  obj.emplace_back("l3_kib", JsonValue(static_cast<std::int64_t>(s.l3_kib)));
  obj.emplace_back("memory_bytes",
                   JsonValue(static_cast<std::int64_t>(s.memory_bytes)));
  obj.emplace_back("interconnect", JsonValue(s.interconnect));
  return JsonValue(std::move(obj));
}

SystemInfoRecord system_info_from_json(const util::JsonValue& json) {
  SystemInfoRecord s;
  s.hostname = json.at("hostname").as_string();
  s.os_release = json.at("os_release").as_string();
  s.cpu_model = json.at("cpu_model").as_string();
  s.sockets = static_cast<int>(json.at("sockets").as_int());
  s.cores_per_socket = static_cast<int>(json.at("cores_per_socket").as_int());
  s.total_cores = static_cast<int>(json.at("total_cores").as_int());
  s.frequency_mhz = json.at("frequency_mhz").as_double();
  s.l1d_kib = static_cast<std::uint64_t>(json.at("l1d_kib").as_int());
  s.l2_kib = static_cast<std::uint64_t>(json.at("l2_kib").as_int());
  s.l3_kib = static_cast<std::uint64_t>(json.at("l3_kib").as_int());
  s.memory_bytes = static_cast<std::uint64_t>(json.at("memory_bytes").as_int());
  s.interconnect = json.at("interconnect").as_string();
  return s;
}

util::JsonValue job_info_to_json(const JobInfoRecord& j) {
  JsonObject obj;
  obj.emplace_back("job_id", JsonValue(static_cast<std::int64_t>(j.job_id)));
  obj.emplace_back("job_name", JsonValue(j.job_name));
  obj.emplace_back("partition", JsonValue(j.partition));
  obj.emplace_back("user", JsonValue(j.user));
  obj.emplace_back("num_nodes",
                   JsonValue(static_cast<std::int64_t>(j.num_nodes)));
  obj.emplace_back("num_tasks",
                   JsonValue(static_cast<std::int64_t>(j.num_tasks)));
  obj.emplace_back("node_list", JsonValue(j.node_list));
  obj.emplace_back("submit_time", JsonValue(j.submit_time));
  obj.emplace_back("start_time", JsonValue(j.start_time));
  return JsonValue(std::move(obj));
}

JobInfoRecord job_info_from_json(const util::JsonValue& json) {
  JobInfoRecord j;
  j.job_id = static_cast<std::uint64_t>(json.at("job_id").as_int());
  j.job_name = json.at("job_name").as_string();
  j.partition = json.at("partition").as_string();
  j.user = json.at("user").as_string();
  j.num_nodes = static_cast<std::uint32_t>(json.at("num_nodes").as_int());
  j.num_tasks = static_cast<std::uint32_t>(json.at("num_tasks").as_int());
  j.node_list = json.at("node_list").as_string();
  j.submit_time = json.at("submit_time").as_double();
  j.start_time = json.at("start_time").as_double();
  return j;
}

void OpSummary::recompute() {
  std::vector<double> bws;
  std::vector<double> iopses;
  std::vector<double> times;
  for (const OpResult& r : results) {
    bws.push_back(r.bw_mib);
    iopses.push_back(r.iops);
    times.push_back(r.total_sec);
  }
  const auto bw = util::summarize(bws);
  const auto io = util::summarize(iopses);
  const auto tm = util::summarize(times);
  max_bw_mib = bw.max;
  min_bw_mib = bw.min;
  mean_bw_mib = bw.mean;
  stddev_bw_mib = bw.stddev;
  max_ops = io.max;
  min_ops = io.min;
  mean_ops = io.mean;
  stddev_ops = io.stddev;
  mean_time_sec = tm.mean;
}

const OpSummary* Knowledge::find_summary(const std::string& operation) const {
  for (const OpSummary& summary : summaries) {
    if (summary.operation == operation) {
      return &summary;
    }
  }
  return nullptr;
}

util::JsonValue Knowledge::to_json() const {
  JsonObject obj;
  obj.emplace_back("command", JsonValue(command));
  obj.emplace_back("benchmark", JsonValue(benchmark));
  obj.emplace_back("api", JsonValue(api));
  obj.emplace_back("test_file", JsonValue(test_file));
  obj.emplace_back("file_per_process", JsonValue(file_per_process));
  obj.emplace_back("start_time", JsonValue(start_time));
  obj.emplace_back("end_time", JsonValue(end_time));
  obj.emplace_back("num_tasks", JsonValue(static_cast<std::int64_t>(num_tasks)));
  obj.emplace_back("num_nodes", JsonValue(static_cast<std::int64_t>(num_nodes)));
  JsonArray summary_array;
  for (const OpSummary& s : summaries) {
    summary_array.push_back(summary_to_json(s));
  }
  obj.emplace_back("summaries", JsonValue(std::move(summary_array)));
  if (filesystem.has_value()) {
    obj.emplace_back("filesystem", fs_info_to_json(*filesystem));
  }
  if (system.has_value()) {
    obj.emplace_back("system", system_info_to_json(*system));
  }
  if (job.has_value()) {
    obj.emplace_back("job", job_info_to_json(*job));
  }
  return JsonValue(std::move(obj));
}

Knowledge Knowledge::from_json(const util::JsonValue& json) {
  Knowledge k;
  k.command = json.at("command").as_string();
  k.benchmark = json.at("benchmark").as_string();
  k.api = json.at("api").as_string();
  k.test_file = json.at("test_file").as_string();
  k.file_per_process = json.at("file_per_process").as_bool();
  k.start_time = json.at("start_time").as_double();
  k.end_time = json.at("end_time").as_double();
  k.num_tasks = static_cast<std::uint32_t>(json.at("num_tasks").as_int());
  k.num_nodes = static_cast<std::uint32_t>(json.at("num_nodes").as_int());
  for (const JsonValue& s : json.at("summaries").as_array()) {
    k.summaries.push_back(summary_from_json(s));
  }
  if (const JsonValue* fs = json.find("filesystem")) {
    k.filesystem = fs_info_from_json(*fs);
  }
  if (const JsonValue* sys = json.find("system")) {
    k.system = system_info_from_json(*sys);
  }
  if (const JsonValue* job = json.find("job")) {
    k.job = job_info_from_json(*job);
  }
  return k;
}

}  // namespace iokc::knowledge
