// The IO500 knowledge object. The paper keeps IO500 knowledge separate from
// the IOR knowledge object ("we decide to first separate our knowledge object
// from the knowledge object used in IO500"); it maps to the IOFHsRuns /
// IOFHsScores / IOFHsTestcases / IOFHsOptions / IOFHsResults tables.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/knowledge/knowledge.hpp"
#include "src/util/json.hpp"

namespace iokc::knowledge {

/// One executed IO500 test case with its options and result
/// (IOFHsTestcases + IOFHsOptions + IOFHsResults).
struct Io500Testcase {
  std::string name;     // e.g. "ior-easy-write"
  std::string options;  // textual options used for the test case
  double value = 0.0;   // GiB/s or kIOPS
  std::string unit;
  double time_sec = 0.0;

  bool operator==(const Io500Testcase&) const = default;
};

/// A complete IO500 run (IOFHsRuns + IOFHsScores + children).
struct Io500Knowledge {
  std::string command;
  std::uint32_t num_tasks = 0;
  std::uint32_t num_nodes = 0;
  double score_bw_gib = 0.0;
  double score_md_kiops = 0.0;
  double score_total = 0.0;
  std::vector<Io500Testcase> testcases;
  std::optional<SystemInfoRecord> system;

  bool operator==(const Io500Knowledge&) const = default;

  const Io500Testcase* find_testcase(const std::string& name) const;

  util::JsonValue to_json() const;
  static Io500Knowledge from_json(const util::JsonValue& json);
};

}  // namespace iokc::knowledge
