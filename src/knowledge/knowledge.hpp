// The Knowledge object — the paper's central data structure (Section V-B):
// "parameters describing the I/O pattern and the obtained benchmark results",
// extended with file-system settings and system statistics. It is the unit
// that is extracted (phase 2), persisted (phase 3), analyzed (phase 4), and
// used (phase 5).
//
// The model mirrors the paper's database schema:
//   Knowledge      -> performances row
//   OpSummary      -> summaries row (per operation, FK performance_id)
//   OpResult       -> results rows (per iteration, FK summary_id)
//   FileSystemInfo -> filesystems row
//   SystemInfoRecord is carried along and stored with the knowledge object.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/json.hpp"

namespace iokc::knowledge {

/// One per-iteration measurement of one operation (a `results` row).
struct OpResult {
  int iteration = 0;
  double bw_mib = 0.0;
  double iops = 0.0;
  double latency_sec = 0.0;
  double open_sec = 0.0;
  double wrrd_sec = 0.0;
  double close_sec = 0.0;
  double total_sec = 0.0;

  bool operator==(const OpResult&) const = default;
};

/// Per-operation statistics over all iterations (a `summaries` row), with
/// the individual results attached ("we have decided to store individual
/// results, instead of storing only the summary").
struct OpSummary {
  std::string operation;  // "write", "read", "create", "stat", ...
  std::string api;        // interface used for this operation
  double max_bw_mib = 0.0;
  double min_bw_mib = 0.0;
  double mean_bw_mib = 0.0;
  double stddev_bw_mib = 0.0;
  double max_ops = 0.0;
  double min_ops = 0.0;
  double mean_ops = 0.0;
  double stddev_ops = 0.0;
  double mean_time_sec = 0.0;
  std::vector<OpResult> results;

  bool operator==(const OpSummary&) const = default;

  /// Recomputes the aggregate fields from `results`.
  void recompute();
};

/// Parallel-file-system settings of the test file (a `filesystems` row).
struct FileSystemInfo {
  std::string fs_name;      // e.g. "beegfs-sim"
  std::string entry_type;   // "file" / "directory"
  std::string entry_id;
  std::uint32_t metadata_node = 0;
  std::string stripe_pattern;  // RAID scheme, e.g. "RAID0"
  std::uint64_t chunk_size = 0;
  std::uint32_t num_targets = 0;
  std::uint32_t storage_pool = 0;

  bool operator==(const FileSystemInfo&) const = default;
};

/// System statistics captured at runtime (from the /proc-style provider).
struct SystemInfoRecord {
  std::string hostname;
  std::string os_release;
  std::string cpu_model;
  int sockets = 0;
  int cores_per_socket = 0;
  int total_cores = 0;
  double frequency_mhz = 0.0;
  std::uint64_t l1d_kib = 0;
  std::uint64_t l2_kib = 0;
  std::uint64_t l3_kib = 0;
  std::uint64_t memory_bytes = 0;
  std::string interconnect;

  bool operator==(const SystemInfoRecord&) const = default;
};

/// Workload-manager context of a run (the outlook's "information from
/// workload managers such as Slurm, thus providing context between anomaly
/// and causes"). Maps to the jobinfos table.
struct JobInfoRecord {
  std::uint64_t job_id = 0;
  std::string job_name;
  std::string partition;
  std::string user;
  std::uint32_t num_nodes = 0;
  std::uint32_t num_tasks = 0;
  std::string node_list;
  double submit_time = 0.0;
  double start_time = 0.0;

  bool operator==(const JobInfoRecord&) const = default;
};

/// JSON round trip for the system record (shared with Io500Knowledge).
util::JsonValue system_info_to_json(const SystemInfoRecord& record);
SystemInfoRecord system_info_from_json(const util::JsonValue& json);

/// JSON round trip for the job record.
util::JsonValue job_info_to_json(const JobInfoRecord& record);
JobInfoRecord job_info_from_json(const util::JsonValue& json);

/// The knowledge object (a `performances` row plus children).
struct Knowledge {
  std::string command;    // command line used for the run
  std::string benchmark;  // "IOR", "HACC-IO", "mdtest", ...
  std::string api;
  std::string test_file;
  bool file_per_process = false;
  double start_time = 0.0;
  double end_time = 0.0;
  std::uint32_t num_tasks = 0;
  std::uint32_t num_nodes = 0;
  std::vector<OpSummary> summaries;
  std::optional<FileSystemInfo> filesystem;
  std::optional<SystemInfoRecord> system;
  std::optional<JobInfoRecord> job;

  bool operator==(const Knowledge&) const = default;

  const OpSummary* find_summary(const std::string& operation) const;

  /// JSON round trip (the "local knowledge object" exchange format of the
  /// knowledge explorer).
  util::JsonValue to_json() const;
  static Knowledge from_json(const util::JsonValue& json);
};

}  // namespace iokc::knowledge
