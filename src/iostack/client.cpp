#include "src/iostack/client.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/util/error.hpp"

namespace iokc::iostack {

ApiCosts default_api_costs(IoApi api) {
  switch (api) {
    case IoApi::kPosix:
      return ApiCosts{5.0e-6, 2.0e-6, 3.0e-6};
    case IoApi::kMpiio:
      return ApiCosts{4.0e-5, 1.5e-5, 2.5e-5};
    case IoApi::kHdf5:
      return ApiCosts{2.5e-4, 3.0e-5, 1.8e-4};
  }
  return ApiCosts{};
}

IoClient::IoClient(fs::ParallelFileSystem& pfs, IoApi api, MpiioHints hints)
    : pfs_(pfs), api_(api), hints_(hints), costs_(default_api_costs(api)) {}

void IoClient::after_overhead(double overhead, std::function<void()> action) {
  if (overhead <= 0.0) {
    action();
    return;
  }
  pfs_.cluster().queue().schedule_in(overhead, std::move(action));
}

void IoClient::open(const std::string& path, std::size_t node, bool create,
                    Callback done) {
  after_overhead(costs_.open_sec, [this, path, node, create,
                                   done = std::move(done)]() mutable {
    if (create) {
      pfs_.create(path, node, [this, path, node,
                               done = std::move(done)](sim::SimTime t) mutable {
        if (api_ == IoApi::kHdf5) {
          // HDF5 writes its superblock/root-group header on create.
          pfs_.write(path, 0, 2048, node, std::move(done));
        } else {
          done(t);
        }
      });
    } else {
      pfs_.open(path, node, std::move(done));
    }
  });
}

void IoClient::write(const std::string& path, std::uint64_t offset,
                     std::uint64_t length, std::size_t node, Callback done) {
  after_overhead(costs_.per_op_sec,
                 [this, path, offset, length, node, done = std::move(done)] {
                   pfs_.write(path, offset, length, node, done);
                 });
}

void IoClient::read(const std::string& path, std::uint64_t offset,
                    std::uint64_t length, std::size_t node, Callback done) {
  after_overhead(costs_.per_op_sec,
                 [this, path, offset, length, node, done = std::move(done)] {
                   pfs_.read(path, offset, length, node, done);
                 });
}

std::vector<std::size_t> IoClient::pick_aggregators(
    const std::vector<CollectiveRequest>& requests) const {
  std::vector<std::size_t> nodes;
  for (const auto& request : requests) {
    if (std::find(nodes.begin(), nodes.end(), request.node) == nodes.end()) {
      nodes.push_back(request.node);
    }
  }
  std::sort(nodes.begin(), nodes.end());
  const std::size_t limit =
      hints_.cb_nodes == 0 ? nodes.size()
                           : std::min<std::size_t>(hints_.cb_nodes, nodes.size());
  nodes.resize(std::max<std::size_t>(limit, 1));
  return nodes;
}

namespace {

/// Join-counter for fan-out phases.
struct Join {
  std::size_t remaining = 0;
  sim::SimTime last = 0.0;
  std::function<void(sim::SimTime)> done;
};

std::function<void(sim::SimTime)> make_joiner(std::shared_ptr<Join> join) {
  return [join = std::move(join)](sim::SimTime t) {
    join->last = std::max(join->last, t);
    if (--join->remaining == 0) {
      join->done(join->last);
    }
  };
}

}  // namespace

void IoClient::two_phase(const std::string& path,
                         const std::vector<CollectiveRequest>& requests,
                         bool is_write, Callback done) {
  if (requests.empty()) {
    throw ConfigError("collective call with no requests");
  }
  const std::vector<std::size_t> aggregators = pick_aggregators(requests);

  // Coalesce the rank requests into contiguous data runs (two-phase I/O
  // touches only real data — holes in a strided pattern are never written),
  // then split runs into cb_buffer_size aggregated accesses.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> runs;  // offset, len
  {
    std::vector<std::pair<std::uint64_t, std::uint64_t>> sorted;
    sorted.reserve(requests.size());
    for (const auto& request : requests) {
      sorted.emplace_back(request.offset, request.length);
    }
    std::sort(sorted.begin(), sorted.end());
    for (const auto& [offset, length] : sorted) {
      if (!runs.empty() &&
          offset <= runs.back().first + runs.back().second) {
        const std::uint64_t end =
            std::max(runs.back().first + runs.back().second, offset + length);
        runs.back().second = end - runs.back().first;
      } else {
        runs.emplace_back(offset, length);
      }
    }
  }
  const std::uint64_t piece = std::max<std::uint64_t>(hints_.cb_buffer_size, 1);
  std::vector<std::pair<std::uint64_t, std::uint64_t>> accesses;
  for (const auto& [offset, length] : runs) {
    for (std::uint64_t done_bytes = 0; done_bytes < length;
         done_bytes += piece) {
      accesses.emplace_back(offset + done_bytes,
                            std::min(piece, length - done_bytes));
    }
  }

  auto issue_file_phase = [this, path, accesses, aggregators](
                              Callback phase_done, bool phase_is_write) {
    auto join = std::make_shared<Join>();
    join->remaining = accesses.size();
    join->done = std::move(phase_done);
    auto joiner = make_joiner(join);
    for (std::size_t index = 0; index < accesses.size(); ++index) {
      const auto [offset, length] = accesses[index];
      const std::size_t agg = aggregators[index % aggregators.size()];
      if (phase_is_write) {
        pfs_.write(path, offset, length, agg, joiner);
      } else {
        pfs_.read(path, offset, length, agg, joiner);
      }
    }
  };

  // Shuffle: every rank's buffer crosses its NIC and the fabric once.
  auto issue_shuffle = [this, requests](Callback phase_done) {
    auto join = std::make_shared<Join>();
    join->remaining = requests.size();
    join->done = std::move(phase_done);
    auto joiner = make_joiner(join);
    for (const auto& request : requests) {
      auto& nic = pfs_.cluster().nic(request.node);
      auto& fabric = pfs_.cluster().fabric();
      const std::uint64_t bytes = request.length;
      nic.transfer(bytes, [&fabric, bytes, joiner](sim::SimTime) {
        fabric.transfer(bytes, joiner);
      });
    }
  };

  const double overhead =
      costs_.per_op_sec * static_cast<double>(requests.size());
  if (is_write) {
    after_overhead(overhead, [issue_shuffle, issue_file_phase,
                              done = std::move(done)]() mutable {
      issue_shuffle([issue_file_phase, done = std::move(done)](sim::SimTime) {
        issue_file_phase(done, /*phase_is_write=*/true);
      });
    });
  } else {
    after_overhead(overhead, [issue_shuffle, issue_file_phase,
                              done = std::move(done)]() mutable {
      issue_file_phase(
          [issue_shuffle, done = std::move(done)](sim::SimTime) {
            issue_shuffle(done);
          },
          /*phase_is_write=*/false);
    });
  }
}

void IoClient::write_collective(const std::string& path,
                                const std::vector<CollectiveRequest>& requests,
                                Callback done) {
  const bool buffered =
      hints_.collective_buffering && api_ != IoApi::kPosix;
  if (!buffered) {
    auto join = std::make_shared<Join>();
    join->remaining = requests.size();
    join->done = std::move(done);
    auto joiner = make_joiner(join);
    for (const auto& request : requests) {
      write(path, request.offset, request.length, request.node, joiner);
    }
    return;
  }
  two_phase(path, requests, /*is_write=*/true, std::move(done));
}

void IoClient::read_collective(const std::string& path,
                               const std::vector<CollectiveRequest>& requests,
                               Callback done) {
  const bool buffered =
      hints_.collective_buffering && api_ != IoApi::kPosix;
  if (!buffered) {
    auto join = std::make_shared<Join>();
    join->remaining = requests.size();
    join->done = std::move(done);
    auto joiner = make_joiner(join);
    for (const auto& request : requests) {
      read(path, request.offset, request.length, request.node, joiner);
    }
    return;
  }
  two_phase(path, requests, /*is_write=*/false, std::move(done));
}

void IoClient::fsync(const std::string& path, std::size_t node,
                     Callback done) {
  after_overhead(costs_.per_op_sec, [this, path, node, done = std::move(done)] {
    pfs_.fsync(path, node, done);
  });
}

void IoClient::close(const std::string& path, std::size_t node,
                     Callback done) {
  after_overhead(costs_.close_sec, [this, path, node,
                                    done = std::move(done)]() mutable {
    if (api_ == IoApi::kHdf5 && pfs_.exists(path)) {
      // Metadata-cache flush: a small tail write plus a metadata commit.
      pfs_.write(path, 0, 4096, node, std::move(done));
    } else {
      pfs_.cluster().queue().schedule_in(
          0.0, [this, done = std::move(done)] {
            done(pfs_.cluster().queue().now());
          });
    }
  });
}

}  // namespace iokc::iostack
