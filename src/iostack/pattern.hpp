// I/O interface and access-pattern vocabulary shared by benchmark engines,
// the knowledge model, and the analysis/usage phases.
#pragma once

#include <cstdint>
#include <string>

namespace iokc::iostack {

/// The I/O interface used by an application or benchmark.
enum class IoApi { kPosix, kMpiio, kHdf5 };

std::string to_string(IoApi api);            // "POSIX", "MPIIO", "HDF5"
IoApi api_from_string(const std::string& text);  // case-insensitive

/// Spatial access pattern of a workload.
enum class AccessPattern { kSequential, kRandom, kStrided };

std::string to_string(AccessPattern pattern);
AccessPattern access_pattern_from_string(const std::string& text);

/// File sharing mode (HACC-IO vocabulary; IOR's -F maps to kFilePerProcess).
enum class FileMode { kSharedFile, kFilePerProcess, kFilePerGroup };

std::string to_string(FileMode mode);
FileMode file_mode_from_string(const std::string& text);

}  // namespace iokc::iostack
