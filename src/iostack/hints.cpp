#include "src/iostack/hints.hpp"

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::iostack {

std::string render_hints(const MpiioHints& hints) {
  std::string out;
  out += "romio_cb_write=";
  out += hints.collective_buffering ? "enable" : "disable";
  out += ";cb_nodes=" + std::to_string(hints.cb_nodes);
  out += ";cb_buffer_size=" + std::to_string(hints.cb_buffer_size);
  return out;
}

MpiioHints parse_hints(const std::string& text) {
  MpiioHints hints;
  if (util::trim(text).empty()) {
    return hints;
  }
  for (const std::string& pair : util::split(text, ';')) {
    const auto kv = util::split(pair, '=');
    if (kv.size() != 2) {
      throw ParseError("bad hint pair '" + pair + "'");
    }
    const std::string key = util::to_lower(std::string(util::trim(kv[0])));
    const std::string value{util::trim(kv[1])};
    if (key == "romio_cb_write" || key == "romio_cb_read") {
      hints.collective_buffering = util::to_lower(value) == "enable";
    } else if (key == "cb_nodes") {
      hints.cb_nodes = static_cast<std::uint32_t>(util::parse_i64(value));
    } else if (key == "cb_buffer_size") {
      hints.cb_buffer_size = static_cast<std::uint64_t>(util::parse_i64(value));
    } else {
      throw ParseError("unknown MPI-IO hint '" + key + "'");
    }
  }
  return hints;
}

}  // namespace iokc::iostack
