// The I/O stack client: the layer benchmark engines program against.
//
// It maps POSIX / MPI-IO / HDF5 semantics onto the parallel file system:
//  - POSIX: thin pass-through with negligible software overhead.
//  - MPI-IO independent: pass-through plus MPI software overhead per call.
//  - MPI-IO collective: two-phase I/O — ranks shuffle data to aggregator
//    nodes over the fabric, aggregators issue large contiguous transfers of
//    cb_buffer_size. This is where small strided shared-file patterns win.
//  - HDF5: layered on MPI-IO; adds metadata traffic at open/close and a
//    small software cost per dataset access.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fs/pfs.hpp"
#include "src/iostack/hints.hpp"
#include "src/iostack/pattern.hpp"

namespace iokc::iostack {

/// Per-API software costs (client-side library overhead, not storage time).
struct ApiCosts {
  double open_sec = 0.0;
  double per_op_sec = 0.0;
  double close_sec = 0.0;
};

/// Returns the default software costs of an API layer.
ApiCosts default_api_costs(IoApi api);

/// One rank's piece of a collective operation.
struct CollectiveRequest {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;
  std::size_t node = 0;
};

/// A client session for one job run. All operations are asynchronous; the
/// callback receives the simulated completion time.
class IoClient {
 public:
  using Callback = fs::ParallelFileSystem::Callback;

  IoClient(fs::ParallelFileSystem& pfs, IoApi api, MpiioHints hints = {});

  IoApi api() const { return api_; }
  const MpiioHints& hints() const { return hints_; }
  fs::ParallelFileSystem& pfs() { return pfs_; }

  /// Opens (optionally creating) a file. HDF5 adds superblock I/O.
  void open(const std::string& path, std::size_t node, bool create,
            Callback done);

  /// Independent write/read of one contiguous region from one rank.
  void write(const std::string& path, std::uint64_t offset,
             std::uint64_t length, std::size_t node, Callback done);
  void read(const std::string& path, std::uint64_t offset,
            std::uint64_t length, std::size_t node, Callback done);

  /// Collective write/read: all ranks' requests for one collective call.
  /// With collective buffering disabled this degenerates to independent ops.
  void write_collective(const std::string& path,
                        const std::vector<CollectiveRequest>& requests,
                        Callback done);
  void read_collective(const std::string& path,
                       const std::vector<CollectiveRequest>& requests,
                       Callback done);

  /// Commits file data (IOR -e). Maps to fs fsync plus API overhead.
  void fsync(const std::string& path, std::size_t node, Callback done);

  /// Closes the file. HDF5 flushes its metadata cache.
  void close(const std::string& path, std::size_t node, Callback done);

 private:
  /// Runs `action` after the API's software overhead has elapsed.
  void after_overhead(double overhead, std::function<void()> action);
  void two_phase(const std::string& path,
                 const std::vector<CollectiveRequest>& requests, bool is_write,
                 Callback done);
  std::vector<std::size_t> pick_aggregators(
      const std::vector<CollectiveRequest>& requests) const;

  fs::ParallelFileSystem& pfs_;
  IoApi api_;
  MpiioHints hints_;
  ApiCosts costs_;
};

}  // namespace iokc::iostack
