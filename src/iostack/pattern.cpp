#include "src/iostack/pattern.hpp"

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::iostack {

std::string to_string(IoApi api) {
  switch (api) {
    case IoApi::kPosix: return "POSIX";
    case IoApi::kMpiio: return "MPIIO";
    case IoApi::kHdf5: return "HDF5";
  }
  return "?";
}

IoApi api_from_string(const std::string& text) {
  const std::string lower = util::to_lower(text);
  if (lower == "posix") {
    return IoApi::kPosix;
  }
  if (lower == "mpiio" || lower == "mpi-io") {
    return IoApi::kMpiio;
  }
  if (lower == "hdf5") {
    return IoApi::kHdf5;
  }
  throw ParseError("unknown I/O API '" + text + "'");
}

std::string to_string(AccessPattern pattern) {
  switch (pattern) {
    case AccessPattern::kSequential: return "sequential";
    case AccessPattern::kRandom: return "random";
    case AccessPattern::kStrided: return "strided";
  }
  return "?";
}

AccessPattern access_pattern_from_string(const std::string& text) {
  const std::string lower = util::to_lower(text);
  if (lower == "sequential") {
    return AccessPattern::kSequential;
  }
  if (lower == "random") {
    return AccessPattern::kRandom;
  }
  if (lower == "strided") {
    return AccessPattern::kStrided;
  }
  throw ParseError("unknown access pattern '" + text + "'");
}

std::string to_string(FileMode mode) {
  switch (mode) {
    case FileMode::kSharedFile: return "single-shared-file";
    case FileMode::kFilePerProcess: return "file-per-process";
    case FileMode::kFilePerGroup: return "file-per-group";
  }
  return "?";
}

FileMode file_mode_from_string(const std::string& text) {
  const std::string lower = util::to_lower(text);
  if (lower == "single-shared-file" || lower == "shared") {
    return FileMode::kSharedFile;
  }
  if (lower == "file-per-process" || lower == "fpp") {
    return FileMode::kFilePerProcess;
  }
  if (lower == "file-per-group" || lower == "fpg") {
    return FileMode::kFilePerGroup;
  }
  throw ParseError("unknown file mode '" + text + "'");
}

}  // namespace iokc::iostack
