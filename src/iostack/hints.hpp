// MPI-IO hints: the tunables the paper's optimization use case manipulates
// (collective buffering, aggregator count, buffer size). Serializable to the
// "key=value;key=value" form stored in the knowledge database.
#pragma once

#include <cstdint>
#include <string>

namespace iokc::iostack {

/// The subset of ROMIO hints the model honours.
struct MpiioHints {
  /// Enable two-phase collective buffering for collective operations.
  bool collective_buffering = true;
  /// Number of aggregator nodes; 0 means "one per compute node".
  std::uint32_t cb_nodes = 0;
  /// Aggregated transfer granularity.
  std::uint64_t cb_buffer_size = 16ull * 1024 * 1024;

  bool operator==(const MpiioHints&) const = default;
};

/// Renders "romio_cb_write=enable;cb_nodes=4;cb_buffer_size=16777216".
std::string render_hints(const MpiioHints& hints);

/// Parses the render_hints format; unknown keys raise ParseError.
MpiioHints parse_hints(const std::string& text);

}  // namespace iokc::iostack
