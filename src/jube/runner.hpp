// The JUBE-style benchmarking environment: a benchmark configuration (XML or
// programmatic) expands over its parameter space into work packages; each
// package's step commands run through registered executors; outputs land in a
// JUBE-shaped workspace tree that the knowledge extractor can auto-discover:
//
//   <workspace>/<outpath>/<run id>/<wp id>_<step>/parameters.txt
//                                               /command.txt
//                                               /stdout
//                                               /done
#pragma once

#include <filesystem>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/jube/parameters.hpp"
#include "src/jube/xml.hpp"

namespace iokc::jube {

/// One step of a benchmark: a command template executed per work package.
struct JubeStep {
  std::string name;
  std::string command_template;  // "$param" placeholders allowed
};

/// A benchmark description (the <benchmark> element of a JUBE config).
struct JubeBenchmarkConfig {
  std::string name;
  std::string outpath = "bench_run";
  ParameterSpace space;
  std::vector<JubeStep> steps;

  /// Parses <jube><benchmark>...</benchmark></jube> (or a bare <benchmark>).
  static JubeBenchmarkConfig from_xml(const XmlNode& root);
  static JubeBenchmarkConfig from_xml_text(const std::string& text);

  /// Serializes back to the XML dialect (used by the config generator).
  std::string to_xml() const;
};

/// What one command execution produced: the stdout text plus optional extra
/// files (system snapshots, profiler logs) written beside it.
struct ExecutionOutput {
  std::string stdout_text;
  std::vector<std::pair<std::string, std::string>> extra_files;  // name, data
};

/// Executes one command. The command's first token selects the executor
/// ("ior", "io500", "mdtest", ...).
using CommandExecutor =
    std::function<ExecutionOutput(const std::string& command)>;

/// Maps program names to executors.
class ExecutorRegistry {
 public:
  void register_executor(std::string program, CommandExecutor executor);
  /// nullptr when the program is unknown.
  const CommandExecutor* find(const std::string& program) const;
  /// Registered program names, sorted (for error reporting).
  std::vector<std::string> programs() const;

 private:
  std::map<std::string, CommandExecutor> executors_;
};

/// Builds the executor registry for one work package. Parallel runs call the
/// factory once per work package, so each package can execute against its own
/// isolated state (e.g. a SimEnvironment seeded from splitmix64(scenario
/// seed, wp_id)); the returned executors own whatever they capture.
using RegistryFactory = std::function<ExecutorRegistry(int wp_id)>;

/// Per-run execution options.
struct RunOptions {
  /// Worker threads for work-package execution: 1 = serial, 0 = one per
  /// hardware thread. Only factory-constructed runners fan out; a runner
  /// built around a shared ExecutorRegistry always runs serially because its
  /// executors may share mutable state.
  int jobs = 1;
  /// Resume an interrupted run instead of starting a fresh one: reuse the
  /// latest run directory whose configuration.xml matches this config, and
  /// skip work packages whose every step already has its "done" marker.
  /// Partially executed packages re-run from their first step (executors are
  /// deterministic per package, so the re-run reproduces the same outputs).
  bool resume = false;
};

/// One executed work package step.
struct WorkPackageResult {
  int work_package = 0;
  Assignment parameters;
  std::string step_name;
  std::string command;
  std::filesystem::path dir;
  std::filesystem::path stdout_path;
};

/// One completed benchmark run.
struct JubeRunResult {
  int run_id = 0;
  std::filesystem::path run_dir;
  std::vector<WorkPackageResult> packages;
};

/// The runner.
class JubeRunner {
 public:
  /// Shared-registry runner: every work package executes through `registry`,
  /// strictly serially (the executors may share mutable state).
  JubeRunner(std::filesystem::path workspace_root, ExecutorRegistry registry);

  /// Factory runner: each work package gets its own registry, so packages
  /// are independent and run() may fan them out over RunOptions::jobs
  /// threads. Results are merged in work-package order, so the workspace
  /// tree and the returned packages are identical for any job count.
  JubeRunner(std::filesystem::path workspace_root, RegistryFactory factory);

  /// Expands, executes, and persists a benchmark. Every command is validated
  /// up front (ConfigError names the unknown program and the registered
  /// set); each work package runs its steps in order and writes its "done"
  /// marker only after every other file, so a crashed or in-flight package
  /// is never discovered as a completed result. Throws IoError on
  /// filesystem failures.
  JubeRunResult run(const JubeBenchmarkConfig& config,
                    const RunOptions& options = {});

  const std::filesystem::path& workspace_root() const { return root_; }

  /// Finds every completed step output ("stdout" beside a "done" marker)
  /// under a workspace tree — the extractor's automatic search. Packages
  /// without the marker (crashed or still running) are excluded.
  static std::vector<std::filesystem::path> discover_outputs(
      const std::filesystem::path& root);

 private:
  int next_run_id(const std::filesystem::path& bench_dir) const;
  /// Latest numeric run dir under bench_dir whose configuration.xml equals
  /// `config_xml`, or -1 when none matches (resume support).
  int find_resumable_run(const std::filesystem::path& bench_dir,
                         const std::string& config_xml) const;
  /// Latest numeric run dir with NO configuration.xml at all — a run that
  /// crashed between mkdir and the config write, and therefore holds no step
  /// results. Resume reclaims its id instead of stranding it. -1 when none.
  int find_reclaimable_run(const std::filesystem::path& bench_dir) const;

  std::filesystem::path root_;
  ExecutorRegistry registry_;    // shared-registry mode
  RegistryFactory factory_;      // factory mode (empty in shared mode)
};

}  // namespace iokc::jube
