// A small XML subset parser for JUBE-style configuration files: elements,
// attributes, text content, comments, and XML declarations. No namespaces,
// CDATA, or DTDs — the JUBE configuration dialect needs none of them.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iokc::jube {

/// One XML element.
struct XmlNode {
  std::string name;
  std::vector<std::pair<std::string, std::string>> attributes;
  std::vector<XmlNode> children;
  std::string text;  // concatenated character data directly inside this node

  /// Attribute lookup; returns nullptr when absent.
  const std::string* find_attribute(std::string_view attr) const;
  /// Attribute lookup with a required value; throws ParseError when absent.
  const std::string& attribute(std::string_view attr) const;
  /// First child element with the given name; nullptr when absent.
  const XmlNode* find_child(std::string_view child_name) const;
  /// All child elements with the given name.
  std::vector<const XmlNode*> children_named(std::string_view child_name) const;
};

/// Parses a document and returns its root element.
/// Throws ParseError with offset information on malformed input.
XmlNode parse_xml(std::string_view text);

}  // namespace iokc::jube
