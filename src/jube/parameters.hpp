// JUBE-style parameter sets: named parameters with value lists, cartesian
// expansion into work packages, and $name template substitution in step
// commands.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace iokc::jube {

/// One parameter with its sweep values.
struct Parameter {
  std::string name;
  std::vector<std::string> values;
};

/// One concrete assignment of every parameter (a JUBE "work package").
using Assignment = std::map<std::string, std::string>;

/// An ordered collection of parameters.
class ParameterSpace {
 public:
  /// Adds a parameter; duplicate names raise ConfigError.
  void add(Parameter parameter);

  /// Convenience: comma-separated value list ("1m,2m,4m").
  void add_csv(const std::string& name, const std::string& csv_values);

  const std::vector<Parameter>& parameters() const { return parameters_; }

  /// Cartesian product in declaration order (first parameter varies slowest).
  /// An empty space expands to one empty assignment.
  std::vector<Assignment> expand() const;

  /// Number of assignments expand() would produce.
  std::size_t size() const;

 private:
  std::vector<Parameter> parameters_;
};

/// Substitutes $name and ${name} occurrences from the assignment. Unknown
/// parameters raise ConfigError; "$$" escapes a literal '$'.
std::string substitute(const std::string& templ, const Assignment& assignment);

}  // namespace iokc::jube
