#include "src/jube/xml.hpp"

#include <cctype>

#include "src/util/error.hpp"

namespace iokc::jube {

const std::string* XmlNode::find_attribute(std::string_view attr) const {
  for (const auto& [key, value] : attributes) {
    if (key == attr) {
      return &value;
    }
  }
  return nullptr;
}

const std::string& XmlNode::attribute(std::string_view attr) const {
  if (const std::string* value = find_attribute(attr)) {
    return *value;
  }
  throw ParseError("XML element <" + name + "> missing attribute '" +
                   std::string(attr) + "'");
}

const XmlNode* XmlNode::find_child(std::string_view child_name) const {
  for (const XmlNode& child : children) {
    if (child.name == child_name) {
      return &child;
    }
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::children_named(
    std::string_view child_name) const {
  std::vector<const XmlNode*> out;
  for (const XmlNode& child : children) {
    if (child.name == child_name) {
      out.push_back(&child);
    }
  }
  return out;
}

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view text) : text_(text) {}

  XmlNode parse_document() {
    skip_prolog();
    XmlNode root = parse_element();
    skip_misc();
    if (pos_ != text_.size()) {
      fail("trailing content after root element");
    }
    return root;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw ParseError("XML at offset " + std::to_string(pos_) + ": " + message);
  }

  bool at_end() const { return pos_ >= text_.size(); }

  char peek() const {
    if (pos_ >= text_.size()) {
      throw ParseError("XML: unexpected end of input");
    }
    return text_[pos_];
  }

  void skip_ws() {
    while (!at_end() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  void skip_comment() {
    const std::size_t end = text_.find("-->", pos_);
    if (end == std::string_view::npos) {
      fail("unterminated comment");
    }
    pos_ = end + 3;
  }

  void skip_prolog() {
    skip_misc();
  }

  void skip_misc() {
    while (true) {
      skip_ws();
      if (consume("<?")) {
        const std::size_t end = text_.find("?>", pos_);
        if (end == std::string_view::npos) {
          fail("unterminated XML declaration");
        }
        pos_ = end + 2;
      } else if (consume("<!--")) {
        skip_comment();
      } else {
        return;
      }
    }
  }

  std::string parse_name() {
    const std::size_t start = pos_;
    while (!at_end()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-' ||
          c == '.' || c == ':') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) {
      fail("expected a name");
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  std::string decode_entities(std::string_view raw) {
    std::string out;
    for (std::size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      const std::size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        fail("unterminated entity");
      }
      const std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        fail("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi;
    }
    return out;
  }

  std::string parse_attribute_value() {
    const char quote = peek();
    if (quote != '"' && quote != '\'') {
      fail("attribute value must be quoted");
    }
    ++pos_;
    const std::size_t start = pos_;
    while (!at_end() && text_[pos_] != quote) {
      ++pos_;
    }
    if (at_end()) {
      fail("unterminated attribute value");
    }
    const std::string value =
        decode_entities(text_.substr(start, pos_ - start));
    ++pos_;
    return value;
  }

  XmlNode parse_element() {
    if (!consume("<")) {
      fail("expected '<'");
    }
    XmlNode node;
    node.name = parse_name();
    while (true) {
      skip_ws();
      if (consume("/>")) {
        return node;
      }
      if (consume(">")) {
        break;
      }
      std::string attr = parse_name();
      skip_ws();
      if (!consume("=")) {
        fail("expected '=' after attribute name");
      }
      skip_ws();
      node.attributes.emplace_back(std::move(attr), parse_attribute_value());
    }
    // Content: text, children, comments, until matching close tag.
    while (true) {
      if (at_end()) {
        fail("unterminated element <" + node.name + ">");
      }
      if (consume("<!--")) {
        skip_comment();
        continue;
      }
      if (text_.substr(pos_, 2) == "</") {
        pos_ += 2;
        const std::string close = parse_name();
        if (close != node.name) {
          fail("mismatched close tag </" + close + "> for <" + node.name + ">");
        }
        skip_ws();
        if (!consume(">")) {
          fail("expected '>' in close tag");
        }
        return node;
      }
      if (peek() == '<') {
        node.children.push_back(parse_element());
        continue;
      }
      const std::size_t start = pos_;
      while (!at_end() && text_[pos_] != '<') {
        ++pos_;
      }
      node.text += decode_entities(text_.substr(start, pos_ - start));
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

XmlNode parse_xml(std::string_view text) {
  return XmlParser(text).parse_document();
}

}  // namespace iokc::jube
