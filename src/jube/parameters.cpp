#include "src/jube/parameters.hpp"

#include <cctype>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::jube {

void ParameterSpace::add(Parameter parameter) {
  if (parameter.name.empty()) {
    throw ConfigError("parameter needs a name");
  }
  if (parameter.values.empty()) {
    throw ConfigError("parameter '" + parameter.name + "' needs values");
  }
  for (const Parameter& existing : parameters_) {
    if (existing.name == parameter.name) {
      throw ConfigError("duplicate parameter '" + parameter.name + "'");
    }
  }
  parameters_.push_back(std::move(parameter));
}

void ParameterSpace::add_csv(const std::string& name,
                             const std::string& csv_values) {
  Parameter parameter;
  parameter.name = name;
  for (const std::string& value : util::split(csv_values, ',')) {
    parameter.values.emplace_back(util::trim(value));
  }
  add(std::move(parameter));
}

std::vector<Assignment> ParameterSpace::expand() const {
  std::vector<Assignment> assignments{Assignment{}};
  for (const Parameter& parameter : parameters_) {
    std::vector<Assignment> next;
    next.reserve(assignments.size() * parameter.values.size());
    for (const Assignment& base : assignments) {
      for (const std::string& value : parameter.values) {
        Assignment extended = base;
        extended[parameter.name] = value;
        next.push_back(std::move(extended));
      }
    }
    assignments = std::move(next);
  }
  return assignments;
}

std::size_t ParameterSpace::size() const {
  std::size_t count = 1;
  for (const Parameter& parameter : parameters_) {
    count *= parameter.values.size();
  }
  return count;
}

std::string substitute(const std::string& templ, const Assignment& assignment) {
  std::string out;
  for (std::size_t i = 0; i < templ.size(); ++i) {
    if (templ[i] != '$') {
      out += templ[i];
      continue;
    }
    if (i + 1 < templ.size() && templ[i + 1] == '$') {
      out += '$';
      ++i;
      continue;
    }
    std::string name;
    if (i + 1 < templ.size() && templ[i + 1] == '{') {
      const std::size_t close = templ.find('}', i + 2);
      if (close == std::string::npos) {
        throw ConfigError("unterminated ${...} in template");
      }
      name = templ.substr(i + 2, close - i - 2);
      i = close;
    } else {
      std::size_t j = i + 1;
      while (j < templ.size() &&
             (std::isalnum(static_cast<unsigned char>(templ[j])) ||
              templ[j] == '_')) {
        ++j;
      }
      name = templ.substr(i + 1, j - i - 1);
      i = j - 1;
    }
    if (name.empty()) {
      throw ConfigError("empty parameter reference in template");
    }
    const auto it = assignment.find(name);
    if (it == assignment.end()) {
      throw ConfigError("unknown parameter '$" + name + "' in template");
    }
    out += it->second;
  }
  return out;
}

}  // namespace iokc::jube
