#include "src/jube/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "src/util/error.hpp"
#include "src/util/strings.hpp"

namespace iokc::jube {

namespace {

std::string xml_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write " + path.string());
  }
  out << content;
  if (!out) {
    throw IoError("failed writing " + path.string());
  }
}

}  // namespace

JubeBenchmarkConfig JubeBenchmarkConfig::from_xml(const XmlNode& root) {
  const XmlNode* bench = &root;
  if (root.name == "jube") {
    bench = root.find_child("benchmark");
    if (bench == nullptr) {
      throw ParseError("JUBE config has no <benchmark> element");
    }
  } else if (root.name != "benchmark") {
    throw ParseError("expected <jube> or <benchmark> root, got <" + root.name +
                     ">");
  }
  JubeBenchmarkConfig config;
  config.name = bench->attribute("name");
  if (const std::string* outpath = bench->find_attribute("outpath")) {
    config.outpath = *outpath;
  }
  for (const XmlNode* set : bench->children_named("parameterset")) {
    for (const XmlNode* parameter : set->children_named("parameter")) {
      config.space.add_csv(parameter->attribute("name"),
                           std::string(util::trim(parameter->text)));
    }
  }
  for (const XmlNode* step : bench->children_named("step")) {
    config.steps.push_back(JubeStep{
        step->attribute("name"), std::string(util::trim(step->text))});
  }
  if (config.steps.empty()) {
    throw ParseError("JUBE benchmark '" + config.name + "' has no steps");
  }
  return config;
}

JubeBenchmarkConfig JubeBenchmarkConfig::from_xml_text(const std::string& text) {
  return from_xml(parse_xml(text));
}

std::string JubeBenchmarkConfig::to_xml() const {
  std::string out;
  out += "<jube>\n";
  out += "  <benchmark name=\"" + xml_escape(name) + "\" outpath=\"" +
         xml_escape(outpath) + "\">\n";
  if (!space.parameters().empty()) {
    out += "    <parameterset name=\"sweep\">\n";
    for (const Parameter& parameter : space.parameters()) {
      out += "      <parameter name=\"" + xml_escape(parameter.name) + "\">" +
             xml_escape(util::join(parameter.values, ",")) + "</parameter>\n";
    }
    out += "    </parameterset>\n";
  }
  for (const JubeStep& step : steps) {
    out += "    <step name=\"" + xml_escape(step.name) + "\">" +
           xml_escape(step.command_template) + "</step>\n";
  }
  out += "  </benchmark>\n";
  out += "</jube>\n";
  return out;
}

void ExecutorRegistry::register_executor(std::string program,
                                         CommandExecutor executor) {
  if (!executor) {
    throw ConfigError("executor for '" + program + "' is empty");
  }
  executors_[std::move(program)] = std::move(executor);
}

const CommandExecutor* ExecutorRegistry::find(const std::string& program) const {
  const auto it = executors_.find(program);
  return it == executors_.end() ? nullptr : &it->second;
}

JubeRunner::JubeRunner(std::filesystem::path workspace_root,
                       ExecutorRegistry registry)
    : root_(std::move(workspace_root)), registry_(std::move(registry)) {}

int JubeRunner::next_run_id(const std::filesystem::path& bench_dir) const {
  int next = 0;
  if (std::filesystem::exists(bench_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(bench_dir)) {
      if (!entry.is_directory()) {
        continue;
      }
      const std::string stem = entry.path().filename().string();
      try {
        next = std::max(next, static_cast<int>(util::parse_i64(stem)) + 1);
      } catch (const ParseError&) {
        // non-numeric directory; ignore
      }
    }
  }
  return next;
}

JubeRunResult JubeRunner::run(const JubeBenchmarkConfig& config) {
  const std::filesystem::path bench_dir = root_ / config.outpath;
  std::filesystem::create_directories(bench_dir);
  JubeRunResult result;
  result.run_id = next_run_id(bench_dir);
  char run_name[16];
  std::snprintf(run_name, sizeof run_name, "%06d", result.run_id);
  result.run_dir = bench_dir / run_name;
  std::filesystem::create_directories(result.run_dir);
  write_file(result.run_dir / "configuration.xml", config.to_xml());

  const std::vector<Assignment> assignments = config.space.expand();
  int wp_id = 0;
  for (const Assignment& assignment : assignments) {
    for (const JubeStep& step : config.steps) {
      const std::string command =
          substitute(step.command_template, assignment);
      const std::vector<std::string> tokens = util::split_ws(command);
      if (tokens.empty()) {
        throw ConfigError("step '" + step.name + "' expands to empty command");
      }
      const CommandExecutor* executor = registry_.find(tokens.front());
      if (executor == nullptr) {
        throw ConfigError("no executor registered for '" + tokens.front() +
                          "'");
      }

      char wp_name[64];
      std::snprintf(wp_name, sizeof wp_name, "%06d_%s", wp_id,
                    step.name.c_str());
      const std::filesystem::path wp_dir = result.run_dir / wp_name;
      std::filesystem::create_directories(wp_dir);

      std::string parameters_text;
      for (const auto& [key, value] : assignment) {
        parameters_text += key + ": " + value + "\n";
      }
      write_file(wp_dir / "parameters.txt", parameters_text);
      write_file(wp_dir / "command.txt", command + "\n");

      const ExecutionOutput output = (*executor)(command);
      write_file(wp_dir / "stdout", output.stdout_text);
      for (const auto& [name, data] : output.extra_files) {
        write_file(wp_dir / name, data);
      }
      write_file(wp_dir / "done", "");

      WorkPackageResult package;
      package.work_package = wp_id;
      package.parameters = assignment;
      package.step_name = step.name;
      package.command = command;
      package.dir = wp_dir;
      package.stdout_path = wp_dir / "stdout";
      result.packages.push_back(std::move(package));
    }
    ++wp_id;
  }
  return result;
}

std::vector<std::filesystem::path> JubeRunner::discover_outputs(
    const std::filesystem::path& root) {
  std::vector<std::filesystem::path> outputs;
  if (!std::filesystem::exists(root)) {
    return outputs;
  }
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() ||
        entry.path().filename() != "stdout") {
      continue;
    }
    if (std::filesystem::exists(entry.path().parent_path() / "done")) {
      outputs.push_back(entry.path());
    }
  }
  std::sort(outputs.begin(), outputs.end());
  return outputs;
}

}  // namespace iokc::jube
