#include "src/jube/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include <sstream>

#include "src/obs/observability.hpp"
#include "src/util/error.hpp"
#include "src/util/fault.hpp"
#include "src/util/fsio.hpp"
#include "src/util/strings.hpp"
#include "src/util/thread_pool.hpp"

namespace iokc::jube {

namespace {

std::string xml_escape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

void write_file(const std::filesystem::path& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw IoError("cannot write " + path.string());
  }
  out << content;
  if (!out) {
    throw IoError("failed writing " + path.string());
  }
}

}  // namespace

JubeBenchmarkConfig JubeBenchmarkConfig::from_xml(const XmlNode& root) {
  const XmlNode* bench = &root;
  if (root.name == "jube") {
    bench = root.find_child("benchmark");
    if (bench == nullptr) {
      throw ParseError("JUBE config has no <benchmark> element");
    }
  } else if (root.name != "benchmark") {
    throw ParseError("expected <jube> or <benchmark> root, got <" + root.name +
                     ">");
  }
  JubeBenchmarkConfig config;
  config.name = bench->attribute("name");
  if (const std::string* outpath = bench->find_attribute("outpath")) {
    config.outpath = *outpath;
  }
  for (const XmlNode* set : bench->children_named("parameterset")) {
    for (const XmlNode* parameter : set->children_named("parameter")) {
      config.space.add_csv(parameter->attribute("name"),
                           std::string(util::trim(parameter->text)));
    }
  }
  for (const XmlNode* step : bench->children_named("step")) {
    config.steps.push_back(JubeStep{
        step->attribute("name"), std::string(util::trim(step->text))});
  }
  if (config.steps.empty()) {
    throw ParseError("JUBE benchmark '" + config.name + "' has no steps");
  }
  return config;
}

JubeBenchmarkConfig JubeBenchmarkConfig::from_xml_text(const std::string& text) {
  return from_xml(parse_xml(text));
}

std::string JubeBenchmarkConfig::to_xml() const {
  std::string out;
  out += "<jube>\n";
  out += "  <benchmark name=\"" + xml_escape(name) + "\" outpath=\"" +
         xml_escape(outpath) + "\">\n";
  if (!space.parameters().empty()) {
    out += "    <parameterset name=\"sweep\">\n";
    for (const Parameter& parameter : space.parameters()) {
      out += "      <parameter name=\"" + xml_escape(parameter.name) + "\">" +
             xml_escape(util::join(parameter.values, ",")) + "</parameter>\n";
    }
    out += "    </parameterset>\n";
  }
  for (const JubeStep& step : steps) {
    out += "    <step name=\"" + xml_escape(step.name) + "\">" +
           xml_escape(step.command_template) + "</step>\n";
  }
  out += "  </benchmark>\n";
  out += "</jube>\n";
  return out;
}

void ExecutorRegistry::register_executor(std::string program,
                                         CommandExecutor executor) {
  if (!executor) {
    throw ConfigError("executor for '" + program + "' is empty");
  }
  executors_[std::move(program)] = std::move(executor);
}

const CommandExecutor* ExecutorRegistry::find(const std::string& program) const {
  const auto it = executors_.find(program);
  return it == executors_.end() ? nullptr : &it->second;
}

std::vector<std::string> ExecutorRegistry::programs() const {
  std::vector<std::string> names;
  names.reserve(executors_.size());
  for (const auto& [name, executor] : executors_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

JubeRunner::JubeRunner(std::filesystem::path workspace_root,
                       ExecutorRegistry registry)
    : root_(std::move(workspace_root)), registry_(std::move(registry)) {}

JubeRunner::JubeRunner(std::filesystem::path workspace_root,
                       RegistryFactory factory)
    : root_(std::move(workspace_root)), factory_(std::move(factory)) {
  if (!factory_) {
    throw ConfigError("JUBE runner registry factory is empty");
  }
}

int JubeRunner::next_run_id(const std::filesystem::path& bench_dir) const {
  int next = 0;
  if (std::filesystem::exists(bench_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(bench_dir)) {
      if (!entry.is_directory()) {
        continue;
      }
      const std::string stem = entry.path().filename().string();
      try {
        next = std::max(next, static_cast<int>(util::parse_i64(stem)) + 1);
      } catch (const ParseError&) {
        // non-numeric directory; ignore
      }
    }
  }
  return next;
}

int JubeRunner::find_resumable_run(const std::filesystem::path& bench_dir,
                                   const std::string& config_xml) const {
  int found = -1;
  if (!std::filesystem::exists(bench_dir)) {
    return found;
  }
  for (const auto& entry : std::filesystem::directory_iterator(bench_dir)) {
    if (!entry.is_directory()) {
      continue;
    }
    int id = -1;
    try {
      id = static_cast<int>(util::parse_i64(entry.path().filename().string()));
    } catch (const ParseError&) {
      continue;
    }
    if (id <= found) {
      continue;
    }
    std::ifstream in(entry.path() / "configuration.xml", std::ios::binary);
    if (!in) {
      continue;  // no config: a foreign or torn run, never resume into it
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    if (buffer.str() == config_xml) {
      found = id;
    }
  }
  return found;
}

int JubeRunner::find_reclaimable_run(
    const std::filesystem::path& bench_dir) const {
  int found = -1;
  if (!std::filesystem::exists(bench_dir)) {
    return found;
  }
  for (const auto& entry : std::filesystem::directory_iterator(bench_dir)) {
    if (!entry.is_directory()) {
      continue;
    }
    int id = -1;
    try {
      id = static_cast<int>(util::parse_i64(entry.path().filename().string()));
    } catch (const ParseError&) {
      continue;
    }
    if (id > found &&
        !std::filesystem::exists(entry.path() / "configuration.xml")) {
      found = id;
    }
  }
  return found;
}

JubeRunResult JubeRunner::run(const JubeBenchmarkConfig& config,
                              const RunOptions& options) {
  if (options.jobs < 0) {
    throw ConfigError("jobs must be >= 0");
  }
  obs::Span run_span("jube:" + config.name, {.category = "jube"});
  const std::filesystem::path bench_dir = root_ / config.outpath;
  std::filesystem::create_directories(bench_dir);
  const std::string config_xml = config.to_xml();
  JubeRunResult result;
  result.run_id =
      options.resume ? find_resumable_run(bench_dir, config_xml) : -1;
  const bool resuming = result.run_id >= 0;
  if (!resuming) {
    // A dir without configuration.xml crashed before any package could run;
    // reclaiming its id keeps resumed runs converging on the same run dir
    // (and the same source paths) as an uninterrupted run.
    result.run_id = options.resume ? find_reclaimable_run(bench_dir) : -1;
    if (result.run_id < 0) {
      result.run_id = next_run_id(bench_dir);
    }
  }
  char run_name[16];
  std::snprintf(run_name, sizeof run_name, "%06d", result.run_id);
  result.run_dir = bench_dir / run_name;
  std::filesystem::create_directories(result.run_dir);
  if (!resuming) {
    // Atomic so a crash mid-write cannot leave a torn configuration.xml; a
    // torn config would silently fail the resume match and strand the run.
    util::atomic_replace_file((result.run_dir / "configuration.xml").string(),
                              config_xml);
  }

  const std::vector<Assignment> assignments = config.space.expand();

  // Expand and validate every command before executing anything, so that
  // configuration errors surface deterministically and never leave packages
  // half-run. The factory's wp-0 registry stands in for them all — factories
  // vary executor state per package, not the program set.
  struct PlannedStep {
    std::string command;
    std::string program;
  };
  std::vector<std::vector<PlannedStep>> plan;
  plan.reserve(assignments.size());
  {
    ExecutorRegistry probe_storage;
    const ExecutorRegistry* probe = &registry_;
    if (factory_) {
      probe_storage = factory_(0);
      probe = &probe_storage;
    }
    for (const Assignment& assignment : assignments) {
      std::vector<PlannedStep> steps;
      steps.reserve(config.steps.size());
      for (const JubeStep& step : config.steps) {
        const std::string command =
            substitute(step.command_template, assignment);
        const std::vector<std::string> tokens = util::split_ws(command);
        if (tokens.empty()) {
          throw ConfigError("step '" + step.name +
                            "' expands to empty command");
        }
        if (probe->find(tokens.front()) == nullptr) {
          const std::vector<std::string> programs = probe->programs();
          throw ConfigError(
              "no executor registered for '" + tokens.front() +
              "'; registered programs: " +
              (programs.empty() ? "(none)" : util::join(programs, ", ")));
        }
        steps.push_back(PlannedStep{command, tokens.front()});
      }
      plan.push_back(std::move(steps));
    }
  }

  // One work package = every step of one assignment, executed in order
  // against one registry. Packages are independent, so a factory-built
  // runner fans them out; results merge in work-package order below, making
  // the output identical for any job count.
  const std::size_t jobs =
      factory_ ? static_cast<std::size_t>(options.jobs) : 1;
  std::vector<std::vector<WorkPackageResult>> packages(assignments.size());
  const obs::SpanContext run_context = run_span.context();
  util::parallel_for(
      assignments.size(), jobs, [&](const util::TaskContext& task) {
        const std::size_t wp = task.index;
        obs::Span wp_span("work_package",
                          {.category = "jube",
                           .work_package = static_cast<int>(wp),
                           .parent = &run_context});
        obs::count("jube.work_packages");
        // Resume: a package counts as complete only when EVERY step carries
        // its done marker; a partially executed package re-runs from step 0
        // (executors are deterministic per package, and step executors may
        // accumulate state across a package's steps).
        std::vector<std::filesystem::path> step_dirs(config.steps.size());
        bool skip_execution = resuming;
        for (std::size_t s = 0; s < config.steps.size(); ++s) {
          char wp_name[64];
          std::snprintf(wp_name, sizeof wp_name, "%06d_%s",
                        static_cast<int>(wp), config.steps[s].name.c_str());
          step_dirs[s] = result.run_dir / wp_name;
          if (!std::filesystem::exists(step_dirs[s] / "done") ||
              !std::filesystem::exists(step_dirs[s] / "stdout")) {
            skip_execution = false;
          }
        }
        if (skip_execution) {
          obs::count("jube.work_packages_resumed");
          for (std::size_t s = 0; s < config.steps.size(); ++s) {
            WorkPackageResult package;
            package.work_package = static_cast<int>(wp);
            package.parameters = assignments[wp];
            package.step_name = config.steps[s].name;
            package.command = plan[wp][s].command;
            package.dir = step_dirs[s];
            package.stdout_path = step_dirs[s] / "stdout";
            packages[wp].push_back(std::move(package));
          }
          return;
        }
        util::fault_point("jube.wp.begin");
        ExecutorRegistry owned;
        const ExecutorRegistry* registry = &registry_;
        if (factory_) {
          owned = factory_(static_cast<int>(wp));
          registry = &owned;
        }
        for (std::size_t s = 0; s < config.steps.size(); ++s) {
          const JubeStep& step = config.steps[s];
          const PlannedStep& planned = plan[wp][s];
          const CommandExecutor* executor = registry->find(planned.program);
          if (executor == nullptr) {
            const std::vector<std::string> programs = registry->programs();
            throw ConfigError(
                "no executor registered for '" + planned.program +
                "'; registered programs: " +
                (programs.empty() ? "(none)" : util::join(programs, ", ")));
          }

          const std::filesystem::path& wp_dir = step_dirs[s];
          std::filesystem::create_directories(wp_dir);

          std::string parameters_text;
          for (const auto& [key, value] : assignments[wp]) {
            parameters_text += key + ": " + value + "\n";
          }
          write_file(wp_dir / "parameters.txt", parameters_text);
          write_file(wp_dir / "command.txt", planned.command + "\n");

          const ExecutionOutput output = (*executor)(planned.command);
          write_file(wp_dir / "stdout", output.stdout_text);
          for (const auto& [name, data] : output.extra_files) {
            write_file(wp_dir / name, data);
          }
          // The "done" marker must be the very last write: extraction treats
          // its presence as "every other file is complete", which keeps
          // crashed or in-flight packages out of the knowledge base.
          write_file(wp_dir / "done", "");
          util::fault_point("jube.wp.done");

          WorkPackageResult package;
          package.work_package = static_cast<int>(wp);
          package.parameters = assignments[wp];
          package.step_name = step.name;
          package.command = planned.command;
          package.dir = wp_dir;
          package.stdout_path = wp_dir / "stdout";
          packages[wp].push_back(std::move(package));
        }
      });
  for (std::vector<WorkPackageResult>& per_wp : packages) {
    for (WorkPackageResult& package : per_wp) {
      result.packages.push_back(std::move(package));
    }
  }
  return result;
}

std::vector<std::filesystem::path> JubeRunner::discover_outputs(
    const std::filesystem::path& root) {
  std::vector<std::filesystem::path> outputs;
  if (!std::filesystem::exists(root)) {
    return outputs;
  }
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() ||
        entry.path().filename() != "stdout") {
      continue;
    }
    if (std::filesystem::exists(entry.path().parent_path() / "done")) {
      outputs.push_back(entry.path());
    }
  }
  std::sort(outputs.begin(), outputs.end());
  return outputs;
}

}  // namespace iokc::jube
