// The parallel file system model (BeeGFS-flavoured): metadata servers,
// storage targets, storage pools, striped data placement, a page-cache model,
// and BeeGFS-style entry-info text for the knowledge extractor.
//
// All operations are asynchronous against the cluster's event queue; data
// requests traverse client NIC -> storage fabric -> storage target, so
// contention and stragglers emerge from queueing rather than formulas.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/fs/page_cache.hpp"
#include "src/fs/stripe.hpp"
#include "src/sim/cluster.hpp"
#include "src/sim/interference.hpp"

namespace iokc::fs {

/// One storage target (an OST/storage daemon with its RAID volume).
struct TargetSpec {
  double write_bytes_per_sec = 280.0e6;
  double read_bytes_per_sec = 320.0e6;
  double op_overhead_sec = 4.0e-4;
};

/// A named group of targets; files are striped within one pool.
struct StoragePoolSpec {
  std::uint32_t id = 1;
  std::string name = "Default";
  std::vector<std::uint32_t> target_ids;
};

/// Which real parallel file system the model mimics; governs the dialect of
/// the entry-info text the knowledge extractor parses (the paper's outlook
/// names Lustre as the next file system to integrate).
enum class PfsFlavor { kBeeGfs, kLustre };

std::string to_string(PfsFlavor flavor);

/// Whole-file-system shape.
struct PfsSpec {
  PfsFlavor flavor = PfsFlavor::kBeeGfs;
  std::string name = "beegfs-sim";
  std::string mount_point = "/scratch";
  std::size_t num_metadata_servers = 2;
  std::vector<TargetSpec> targets = std::vector<TargetSpec>(12);
  std::vector<StoragePoolSpec> pools;  // empty -> one default pool of all
  StripeConfig default_stripe;

  // Metadata service times (per operation, before queueing).
  double mds_create_sec = 4.5e-4;
  double mds_open_sec = 1.8e-4;
  double mds_stat_sec = 1.5e-4;
  double mds_unlink_sec = 3.0e-4;
  double mds_mkdir_sec = 4.0e-4;

  // fsync: one metadata commit plus a flush touched on every stripe target.
  double fsync_flush_bytes = 64 * 1024;

  /// Service-time multiplier for writes not aligned to 4 KiB blocks
  /// (read-modify-write plus range locking on the target). This is what
  /// makes ior-hard-style tiny unaligned shared-file writes collapse.
  double unaligned_write_penalty = 4.0;

  /// Per-node page-cache budget (half of node RAM by default).
  std::uint64_t page_cache_bytes_per_node = 64ull * 1024 * 1024 * 1024;

  /// The BeeGFS installation backing FUCHS-CSC's /scratch, scaled so that
  /// large parallel jobs see roughly 3 GB/s of write bandwidth as in the
  /// paper's Fig. 5.
  static PfsSpec fuchs_beegfs();

  /// A Lustre-flavoured equivalent (same performance shape, `lfs
  /// getstripe`-style entry info) for the outlook's multi-file-system story.
  static PfsSpec lustre_scratch();
};

enum class EntryType { kFile, kDirectory };

std::string to_string(EntryType type);

/// A namespace entry with its placement decision.
struct FsEntry {
  std::string path;
  EntryType type = EntryType::kFile;
  std::string entry_id;
  std::uint32_t metadata_node = 0;  // 1-based MDS id
  StripeConfig stripe;
  std::vector<std::uint32_t> target_ids;  // actual stripe set (files only)
  std::uint64_t size = 0;
  std::size_t creator_node = 0;
};

/// The file system bound to a simulated cluster.
class ParallelFileSystem {
 public:
  using Callback = std::function<void(sim::SimTime)>;

  ParallelFileSystem(sim::Cluster& cluster, PfsSpec spec);

  ParallelFileSystem(const ParallelFileSystem&) = delete;
  ParallelFileSystem& operator=(const ParallelFileSystem&) = delete;

  // -- Metadata operations (async; complete through an MDS queue). --

  /// Creates a directory. Parent directories are implied (no -p semantics
  /// needed by the benchmarks). Fails (throws SimError) if the path exists.
  void mkdir(const std::string& path, std::size_t node, Callback done);

  /// Creates a file with the default or an overriding stripe configuration.
  void create(const std::string& path, std::size_t node, Callback done,
              std::optional<StripeConfig> stripe = std::nullopt);

  /// Opens an existing entry (metadata lookup).
  void open(const std::string& path, std::size_t node, Callback done);

  /// Stats an existing entry.
  void stat(const std::string& path, std::size_t node, Callback done);

  /// Removes a file and invalidates caches.
  void unlink(const std::string& path, std::size_t node, Callback done);

  // -- Data operations. --

  /// Writes [offset, offset+length) from `node` into `path` (must exist).
  void write(const std::string& path, std::uint64_t offset,
             std::uint64_t length, std::size_t node, Callback done);

  /// Reads [offset, offset+length) (must be within the file size) to `node`.
  /// Page-cache-resident files are served from node memory.
  void read(const std::string& path, std::uint64_t offset,
            std::uint64_t length, std::size_t node, Callback done);

  /// Commits a file: metadata update plus a flush op on each stripe target.
  void fsync(const std::string& path, std::size_t node, Callback done);

  // -- Introspection / control. --

  bool exists(const std::string& path) const;
  const FsEntry* find_entry(const std::string& path) const;

  /// BeeGFS "getentryinfo"-style text for the extractor.
  std::string render_entry_info(const std::string& path) const;

  /// Degrades one target to `fraction` of nominal rate (anomaly injection).
  void set_target_degraded(std::uint32_t target_id, double fraction);

  /// Applies an interference schedule to every target (shared back-end load).
  /// The schedule must outlive the file system.
  void attach_interference(const sim::InterferenceSchedule& schedule);

  const PfsSpec& spec() const { return spec_; }
  sim::Cluster& cluster() { return cluster_; }
  std::size_t target_count() const { return target_pipes_.size(); }
  sim::BandwidthPipe& target_pipe(std::uint32_t target_id);
  PageCache& page_cache() { return page_cache_; }

  std::uint64_t metadata_ops() const { return metadata_ops_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }

  void set_default_stripe(const StripeConfig& stripe);

 private:
  struct DataPlan;

  std::size_t mds_for_create(const std::string& path) const;
  std::size_t mds_for_lookup(const std::string& path) const;
  void submit_mds(std::size_t mds, double service_time, Callback done);
  FsEntry& require_file(const std::string& path, const char* op);
  std::vector<std::uint32_t> place_stripe(const std::string& path,
                                          const StripeConfig& stripe) const;
  void transfer_spans(const FsEntry& entry, std::uint64_t offset,
                      std::uint64_t length, std::size_t node, bool is_write,
                      Callback done);

  sim::Cluster& cluster_;
  PfsSpec spec_;
  std::vector<std::unique_ptr<sim::QueuedResource>> mds_;
  std::vector<std::unique_ptr<sim::BandwidthPipe>> target_pipes_;
  std::vector<double> target_degradation_;  // 1.0 = healthy
  const sim::InterferenceSchedule* interference_ = nullptr;
  std::unordered_map<std::string, FsEntry> entries_;
  PageCache page_cache_;
  std::uint64_t next_entry_seq_ = 1;
  std::uint64_t metadata_ops_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace iokc::fs
