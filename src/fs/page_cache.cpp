#include "src/fs/page_cache.hpp"

#include <algorithm>

#include "src/util/check.hpp"

namespace iokc::fs {

void PageCache::add_bytes(std::size_t node, const std::string& path,
                          std::uint64_t bytes) {
  NodeCache& cache = nodes_[node];
  IOKC_ASSERT(cache.used <= capacity_);
  const std::uint64_t budget = capacity_ - std::min(capacity_, cache.used);
  const std::uint64_t admitted = std::min(bytes, budget);
  if (admitted == 0) {
    return;
  }
  cache.files[path] += admitted;
  cache.used += admitted;
  IOKC_ASSERT(cache.used <= capacity_);
}

std::uint64_t PageCache::bytes_cached(std::size_t node,
                                      const std::string& path) const {
  const auto node_it = nodes_.find(node);
  if (node_it == nodes_.end()) {
    return 0;
  }
  const auto file_it = node_it->second.files.find(path);
  return file_it == node_it->second.files.end() ? 0 : file_it->second;
}

bool PageCache::resident(std::size_t node, const std::string& path,
                         std::uint64_t file_size) const {
  return file_size > 0 && bytes_cached(node, path) >= file_size;
}

void PageCache::invalidate(const std::string& path) {
  for (auto& [node, cache] : nodes_) {
    const auto it = cache.files.find(path);
    if (it != cache.files.end()) {
      // A per-file count larger than the node total means the bookkeeping
      // diverged somewhere between add_bytes and the invalidations.
      IOKC_ASSERT(it->second <= cache.used);
      cache.used -= std::min(cache.used, it->second);
      cache.files.erase(it);
    }
  }
}

void PageCache::invalidate_node(std::size_t node) { nodes_.erase(node); }

void PageCache::invalidate_others(const std::string& path, std::size_t writer) {
  for (auto& [node, cache] : nodes_) {
    if (node == writer) {
      continue;
    }
    const auto it = cache.files.find(path);
    if (it != cache.files.end()) {
      cache.used -= std::min(cache.used, it->second);
      cache.files.erase(it);
    }
  }
}

std::uint64_t PageCache::used_bytes(std::size_t node) const {
  const auto it = nodes_.find(node);
  return it == nodes_.end() ? 0 : it->second.used;
}

}  // namespace iokc::fs
