#include "src/fs/stripe.hpp"

#include <algorithm>

#include "src/util/check.hpp"
#include "src/util/error.hpp"
#include "src/util/strings.hpp"
#include "src/util/units.hpp"

namespace iokc::fs {

std::string to_string(StripePattern pattern) {
  switch (pattern) {
    case StripePattern::kRaid0: return "RAID0";
    case StripePattern::kBuddyMirror: return "Buddy Mirror";
  }
  return "?";
}

StripePattern stripe_pattern_from_string(const std::string& text) {
  const std::string lower = util::to_lower(text);
  if (lower == "raid0") {
    return StripePattern::kRaid0;
  }
  if (lower == "buddy mirror" || lower == "buddymirror") {
    return StripePattern::kBuddyMirror;
  }
  throw ParseError("unknown stripe pattern '" + text + "'");
}

std::vector<ChunkSpan> split_into_chunks(const StripeConfig& stripe,
                                         std::uint64_t offset,
                                         std::uint64_t length) {
  if (stripe.chunk_size == 0) {
    throw ConfigError("stripe chunk size must be positive");
  }
  std::vector<ChunkSpan> spans;
  std::uint64_t position = offset;
  [[maybe_unused]] std::uint64_t covered = 0;
  const std::uint64_t end = offset + length;
  while (position < end) {
    const std::uint64_t chunk_index = position / stripe.chunk_size;
    const std::uint64_t in_chunk = position % stripe.chunk_size;
    const std::uint64_t span =
        std::min(stripe.chunk_size - in_chunk, end - position);
    IOKC_ASSERT(in_chunk + span <= stripe.chunk_size);
    spans.push_back(ChunkSpan{chunk_index, in_chunk, span});
    position += span;
    covered += span;
  }
  IOKC_ASSERT(covered == length);
  return spans;
}

std::uint32_t chunk_to_stripe_slot(const StripeConfig& stripe,
                                   std::uint64_t chunk_index,
                                   std::uint32_t actual_targets) {
  if (actual_targets == 0) {
    throw ConfigError("stripe needs at least one actual target");
  }
  const std::uint32_t width = std::min(stripe.num_targets, actual_targets);
  return static_cast<std::uint32_t>(chunk_index % std::max(width, 1u));
}

std::string render_stripe_details(const StripeConfig& stripe,
                                  std::uint32_t actual_targets) {
  const std::uint32_t actual = std::min(stripe.num_targets, actual_targets);
  std::string out;
  out += "Stripe pattern details:\n";
  out += "+ Type: " + to_string(stripe.pattern) + "\n";
  out += "+ Chunksize: " + util::format_size_token(stripe.chunk_size) + "\n";
  out += "+ Number of storage targets: desired: " +
         std::to_string(stripe.num_targets) +
         "; actual: " + std::to_string(actual) + "\n";
  out += "+ Storage Pool: " + std::to_string(stripe.storage_pool) +
         (stripe.storage_pool == 1 ? " (Default)" : "") + "\n";
  return out;
}

}  // namespace iokc::fs
