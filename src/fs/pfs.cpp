#include "src/fs/pfs.hpp"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "src/util/error.hpp"

namespace iokc::fs {

namespace {

std::uint64_t fnv1a(std::string_view text) {
  std::uint64_t hash = 0xcbf29ce484222325ull;
  for (const char c : text) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ull;
  }
  return hash;
}

std::string parent_dir(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  if (pos == std::string::npos || pos == 0) {
    return "/";
  }
  return path.substr(0, pos);
}

}  // namespace

std::string to_string(EntryType type) {
  return type == EntryType::kFile ? "file" : "directory";
}

std::string to_string(PfsFlavor flavor) {
  return flavor == PfsFlavor::kBeeGfs ? "BeeGFS" : "Lustre";
}

PfsSpec PfsSpec::fuchs_beegfs() {
  PfsSpec spec;
  spec.name = "beegfs-sim";
  spec.mount_point = "/scratch";
  spec.num_metadata_servers = 2;
  // 12 spinning-RAID targets: ~3.6 GB/s raw write, ~4.1 GB/s raw read; with
  // per-op overheads and fabric sharing, an 80-rank IOR job lands near the
  // paper's ~2850 MiB/s write / ~3000 MiB/s read.
  spec.targets.assign(12, TargetSpec{340.0e6, 380.0e6, 3.0e-4});
  spec.default_stripe = StripeConfig{};  // RAID0, 512K chunks, 4 targets
  return spec;
}

PfsSpec PfsSpec::lustre_scratch() {
  PfsSpec spec = fuchs_beegfs();
  spec.flavor = PfsFlavor::kLustre;
  spec.name = "lustre-sim";
  // Lustre conventions: 1 MiB stripe size, stripe count 4.
  spec.default_stripe.chunk_size = 1024 * 1024;
  return spec;
}

ParallelFileSystem::ParallelFileSystem(sim::Cluster& cluster, PfsSpec spec)
    : cluster_(cluster),
      spec_(std::move(spec)),
      page_cache_(spec_.page_cache_bytes_per_node) {
  if (spec_.num_metadata_servers == 0) {
    throw iokc::SimError("file system needs at least one metadata server");
  }
  if (spec_.targets.empty()) {
    throw iokc::SimError("file system needs at least one storage target");
  }
  for (std::size_t m = 0; m < spec_.num_metadata_servers; ++m) {
    mds_.push_back(std::make_unique<sim::QueuedResource>(
        cluster_.queue(), spec_.name + "/meta" + std::to_string(m + 1), 1));
  }
  target_degradation_.assign(spec_.targets.size(), 1.0);
  for (std::size_t t = 0; t < spec_.targets.size(); ++t) {
    auto pipe = std::make_unique<sim::BandwidthPipe>(
        cluster_.queue(), spec_.name + "/target" + std::to_string(t),
        spec_.targets[t].write_bytes_per_sec, spec_.targets[t].op_overhead_sec);
    pipe->set_rate_multiplier([this, t](sim::SimTime now) {
      double multiplier = target_degradation_[t];
      if (interference_ != nullptr) {
        multiplier *= interference_->multiplier_at(now);
      }
      return multiplier;
    });
    target_pipes_.push_back(std::move(pipe));
  }
  if (spec_.pools.empty()) {
    StoragePoolSpec pool;
    pool.id = 1;
    pool.name = "Default";
    for (std::uint32_t t = 0; t < spec_.targets.size(); ++t) {
      pool.target_ids.push_back(t);
    }
    spec_.pools.push_back(std::move(pool));
  }
}

std::size_t ParallelFileSystem::mds_for_create(const std::string& path) const {
  // Directory entries live on the MDS owning the parent directory; a shared
  // directory (mdtest-hard) therefore serializes on one MDS.
  return fnv1a(parent_dir(path)) % mds_.size();
}

std::size_t ParallelFileSystem::mds_for_lookup(const std::string& path) const {
  return fnv1a(parent_dir(path)) % mds_.size();
}

void ParallelFileSystem::submit_mds(std::size_t mds, double service_time,
                                    Callback done) {
  ++metadata_ops_;
  mds_[mds]->submit(service_time * cluster_.jitter(), std::move(done));
}

FsEntry& ParallelFileSystem::require_file(const std::string& path,
                                          const char* op) {
  const auto it = entries_.find(path);
  if (it == entries_.end()) {
    throw iokc::SimError(std::string(op) + ": no such file '" + path + "'");
  }
  if (it->second.type != EntryType::kFile) {
    throw iokc::SimError(std::string(op) + ": not a file '" + path + "'");
  }
  return it->second;
}

std::vector<std::uint32_t> ParallelFileSystem::place_stripe(
    const std::string& path, const StripeConfig& stripe) const {
  const StoragePoolSpec* pool = nullptr;
  for (const auto& candidate : spec_.pools) {
    if (candidate.id == stripe.storage_pool) {
      pool = &candidate;
      break;
    }
  }
  if (pool == nullptr) {
    throw iokc::ConfigError("unknown storage pool " +
                            std::to_string(stripe.storage_pool));
  }
  if (pool->target_ids.empty()) {
    throw iokc::ConfigError("storage pool " + std::to_string(pool->id) +
                            " has no targets");
  }
  const std::size_t pool_size = pool->target_ids.size();
  const std::size_t width =
      std::min<std::size_t>(stripe.num_targets, pool_size);
  const std::size_t start = fnv1a(path) % pool_size;
  std::vector<std::uint32_t> targets;
  targets.reserve(width);
  for (std::size_t i = 0; i < width; ++i) {
    targets.push_back(pool->target_ids[(start + i) % pool_size]);
  }
  return targets;
}

void ParallelFileSystem::mkdir(const std::string& path, std::size_t node,
                               Callback done) {
  if (entries_.contains(path)) {
    throw iokc::SimError("mkdir: path exists '" + path + "'");
  }
  FsEntry entry;
  entry.path = path;
  entry.type = EntryType::kDirectory;
  const std::size_t mds = mds_for_create(path);
  char id[64];
  std::snprintf(id, sizeof id, "%llX-%08llX-%zu",
                static_cast<unsigned long long>(next_entry_seq_++),
                static_cast<unsigned long long>(fnv1a(path) & 0xFFFFFFFFull),
                mds + 1);
  entry.entry_id = id;
  entry.metadata_node = static_cast<std::uint32_t>(mds + 1);
  entry.creator_node = node;
  entries_.emplace(path, std::move(entry));
  submit_mds(mds, spec_.mds_mkdir_sec, std::move(done));
}

void ParallelFileSystem::create(const std::string& path, std::size_t node,
                                Callback done,
                                std::optional<StripeConfig> stripe) {
  if (entries_.contains(path)) {
    throw iokc::SimError("create: path exists '" + path + "'");
  }
  FsEntry entry;
  entry.path = path;
  entry.type = EntryType::kFile;
  entry.stripe = stripe.value_or(spec_.default_stripe);
  entry.target_ids = place_stripe(path, entry.stripe);
  const std::size_t mds = mds_for_create(path);
  char id[64];
  std::snprintf(id, sizeof id, "%llX-%08llX-%zu",
                static_cast<unsigned long long>(next_entry_seq_++),
                static_cast<unsigned long long>(fnv1a(path) & 0xFFFFFFFFull),
                mds + 1);
  entry.entry_id = id;
  entry.metadata_node = static_cast<std::uint32_t>(mds + 1);
  entry.creator_node = node;
  entries_.emplace(path, std::move(entry));
  submit_mds(mds, spec_.mds_create_sec, std::move(done));
}

void ParallelFileSystem::open(const std::string& path, std::size_t node,
                              Callback done) {
  (void)node;
  require_file(path, "open");
  submit_mds(mds_for_lookup(path), spec_.mds_open_sec, std::move(done));
}

void ParallelFileSystem::stat(const std::string& path, std::size_t node,
                              Callback done) {
  (void)node;
  if (!entries_.contains(path)) {
    throw iokc::SimError("stat: no such entry '" + path + "'");
  }
  submit_mds(mds_for_lookup(path), spec_.mds_stat_sec, std::move(done));
}

void ParallelFileSystem::unlink(const std::string& path, std::size_t node,
                                Callback done) {
  (void)node;
  require_file(path, "unlink");
  const std::size_t mds = mds_for_create(path);
  submit_mds(mds, spec_.mds_unlink_sec,
             [this, path, done = std::move(done)](sim::SimTime t) {
               entries_.erase(path);
               page_cache_.invalidate(path);
               done(t);
             });
}

struct ParallelFileSystem::DataPlan {
  std::size_t remaining = 0;
  sim::SimTime last_completion = 0.0;
  Callback done;
};

void ParallelFileSystem::transfer_spans(const FsEntry& entry,
                                        std::uint64_t offset,
                                        std::uint64_t length, std::size_t node,
                                        bool is_write, Callback done) {
  const auto spans = split_into_chunks(entry.stripe, offset, length);
  const auto width = static_cast<std::uint32_t>(entry.target_ids.size());
  const bool mirrored =
      is_write && entry.stripe.pattern == StripePattern::kBuddyMirror;

  auto plan = std::make_shared<DataPlan>();
  plan->remaining = spans.size() * (mirrored && width > 1 ? 2 : 1);
  plan->done = std::move(done);

  auto complete_one = [plan](sim::SimTime t) {
    plan->last_completion = std::max(plan->last_completion, t);
    if (--plan->remaining == 0) {
      plan->done(plan->last_completion);
    }
  };

  for (const ChunkSpan& span : spans) {
    const std::uint32_t slot =
        chunk_to_stripe_slot(entry.stripe, span.chunk_index, width);
    std::vector<std::uint32_t> destinations{entry.target_ids[slot]};
    if (mirrored && width > 1) {
      destinations.push_back(entry.target_ids[(slot + 1) % width]);
    }
    for (const std::uint32_t tid : destinations) {
      const TargetSpec& target_spec = spec_.targets[tid];
      // The pipe's nominal rate is the write rate; reads run faster by the
      // target's read/write ratio, applied through the service-time scale.
      double service_scale = cluster_.jitter();
      if (!is_write) {
        service_scale *=
            target_spec.write_bytes_per_sec / target_spec.read_bytes_per_sec;
      } else if (span.offset_in_chunk % 4096 != 0 || span.length % 4096 != 0) {
        service_scale *= spec_.unaligned_write_penalty;
      }
      const std::uint64_t bytes = span.length;
      auto& nic = cluster_.nic(node);
      auto& fabric = cluster_.fabric();
      auto& target = *target_pipes_[tid];
      // Store-and-forward pipeline: NIC -> fabric -> target. Under load the
      // aggregate throughput is governed by the slowest stage; the added
      // latency per chunk is the price of the simple model.
      nic.transfer(bytes, [&fabric, &target, bytes, service_scale,
                           complete_one](sim::SimTime) mutable {
        fabric.transfer(bytes, [&target, bytes, service_scale,
                                complete_one](sim::SimTime) mutable {
          target.transfer(bytes, complete_one, service_scale);
        });
      });
    }
  }
}

void ParallelFileSystem::write(const std::string& path, std::uint64_t offset,
                               std::uint64_t length, std::size_t node,
                               Callback done) {
  FsEntry& entry = require_file(path, "write");
  if (length == 0) {
    cluster_.queue().schedule_in(0.0, [done = std::move(done), this] {
      done(cluster_.queue().now());
    });
    return;
  }
  entry.size = std::max(entry.size, offset + length);
  bytes_written_ += length;
  page_cache_.invalidate_others(path, node);
  const std::string file_path = path;
  transfer_spans(entry, offset, length, node, /*is_write=*/true,
                 [this, file_path, node, length,
                  done = std::move(done)](sim::SimTime t) {
                   if (entries_.contains(file_path)) {
                     page_cache_.add_bytes(node, file_path, length);
                   }
                   done(t);
                 });
}

void ParallelFileSystem::read(const std::string& path, std::uint64_t offset,
                              std::uint64_t length, std::size_t node,
                              Callback done) {
  FsEntry& entry = require_file(path, "read");
  if (offset + length > entry.size) {
    throw iokc::SimError("read beyond EOF on '" + path + "'");
  }
  bytes_read_ += length;
  if (page_cache_.resident(node, path, entry.size)) {
    // Served from the node's page cache at memory bandwidth.
    const double duration =
        1.0e-5 + static_cast<double>(length) /
                     cluster_.spec().node.memory_bytes_per_sec;
    cluster_.queue().schedule_in(duration, [this, done = std::move(done)] {
      done(cluster_.queue().now());
    });
    return;
  }
  const std::string file_path = path;
  transfer_spans(entry, offset, length, node, /*is_write=*/false,
                 [this, file_path, node, length,
                  done = std::move(done)](sim::SimTime t) {
                   if (entries_.contains(file_path)) {
                     page_cache_.add_bytes(node, file_path, length);
                   }
                   done(t);
                 });
}

void ParallelFileSystem::fsync(const std::string& path, std::size_t node,
                               Callback done) {
  (void)node;
  FsEntry& entry = require_file(path, "fsync");
  auto plan = std::make_shared<DataPlan>();
  plan->remaining = entry.target_ids.size() + 1;  // targets + metadata commit
  plan->done = std::move(done);
  auto complete_one = [plan](sim::SimTime t) {
    plan->last_completion = std::max(plan->last_completion, t);
    if (--plan->remaining == 0) {
      plan->done(plan->last_completion);
    }
  };
  for (const std::uint32_t tid : entry.target_ids) {
    target_pipes_[tid]->transfer(
        static_cast<std::uint64_t>(spec_.fsync_flush_bytes), complete_one,
        cluster_.jitter());
  }
  submit_mds(mds_for_lookup(path), spec_.mds_stat_sec, complete_one);
}

bool ParallelFileSystem::exists(const std::string& path) const {
  return entries_.contains(path);
}

const FsEntry* ParallelFileSystem::find_entry(const std::string& path) const {
  const auto it = entries_.find(path);
  return it == entries_.end() ? nullptr : &it->second;
}

std::string ParallelFileSystem::render_entry_info(
    const std::string& path) const {
  const FsEntry* entry = find_entry(path);
  if (entry == nullptr) {
    throw iokc::SimError("getentryinfo: no such entry '" + path + "'");
  }
  if (spec_.flavor == PfsFlavor::kLustre) {
    // `lfs getstripe` dialect.
    std::string out = path + "\n";
    out += "lmm_stripe_count:  " + std::to_string(entry->target_ids.size()) +
           "\n";
    out += "lmm_stripe_size:   " + std::to_string(entry->stripe.chunk_size) +
           "\n";
    out += "lmm_pattern:       " +
           std::string(entry->stripe.pattern == StripePattern::kRaid0
                           ? "raid0"
                           : "mirror") +
           "\n";
    out += "lmm_layout_gen:    0\n";
    out += "lmm_stripe_offset: " +
           std::to_string(entry->target_ids.empty() ? 0
                                                    : entry->target_ids[0]) +
           "\n";
    out += "lmm_fid:           [0x200000400:0x" + entry->entry_id + ":0x0]\n";
    out += "lmm_pool:          pool" +
           std::to_string(entry->stripe.storage_pool) + "\n";
    return out;
  }
  std::string out;
  out += "Entry type: " + to_string(entry->type) + "\n";
  out += "EntryID: " + entry->entry_id + "\n";
  out += "Metadata node: meta" + std::to_string(entry->metadata_node) +
         " [ID: " + std::to_string(entry->metadata_node) + "]\n";
  if (entry->type == EntryType::kFile) {
    out += render_stripe_details(
        entry->stripe, static_cast<std::uint32_t>(entry->target_ids.size()));
  }
  return out;
}

void ParallelFileSystem::set_target_degraded(std::uint32_t target_id,
                                             double fraction) {
  if (target_id >= target_degradation_.size()) {
    throw iokc::SimError("no such target " + std::to_string(target_id));
  }
  if (fraction <= 0.0 || fraction > 1.0) {
    throw iokc::SimError("degradation fraction must be in (0, 1]");
  }
  target_degradation_[target_id] = fraction;
}

void ParallelFileSystem::attach_interference(
    const sim::InterferenceSchedule& schedule) {
  interference_ = &schedule;
}

sim::BandwidthPipe& ParallelFileSystem::target_pipe(std::uint32_t target_id) {
  if (target_id >= target_pipes_.size()) {
    throw iokc::SimError("no such target " + std::to_string(target_id));
  }
  return *target_pipes_[target_id];
}

void ParallelFileSystem::set_default_stripe(const StripeConfig& stripe) {
  spec_.default_stripe = stripe;
}

}  // namespace iokc::fs
