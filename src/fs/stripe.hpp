// Striping model of the parallel file system (BeeGFS-flavoured): chunk size,
// stripe width, pattern, and the mapping from file offsets to storage-target
// chunks. Also renders/parses the "Stripe pattern details" text the knowledge
// extractor consumes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iokc::fs {

/// Stripe pattern type. RAID0 stripes chunks round-robin; BuddyMirror writes
/// every chunk to a mirror pair (halving effective write bandwidth).
enum class StripePattern { kRaid0, kBuddyMirror };

std::string to_string(StripePattern pattern);
StripePattern stripe_pattern_from_string(const std::string& text);

/// Per-file striping configuration.
struct StripeConfig {
  std::uint64_t chunk_size = 512 * 1024;  // BeeGFS default 512K
  std::uint32_t num_targets = 4;          // desired stripe width
  StripePattern pattern = StripePattern::kRaid0;
  std::uint32_t storage_pool = 1;

  bool operator==(const StripeConfig&) const = default;
};

/// One contiguous piece of an I/O request that lands on a single target chunk.
struct ChunkSpan {
  std::uint64_t chunk_index = 0;  // global chunk number within the file
  std::uint64_t offset_in_chunk = 0;
  std::uint64_t length = 0;
};

/// Splits [offset, offset+length) into chunk-aligned spans.
std::vector<ChunkSpan> split_into_chunks(const StripeConfig& stripe,
                                         std::uint64_t offset,
                                         std::uint64_t length);

/// Maps a chunk to a storage-target slot in [0, actual_targets): round-robin
/// over the stripe set starting at the file's first target.
std::uint32_t chunk_to_stripe_slot(const StripeConfig& stripe,
                                   std::uint64_t chunk_index,
                                   std::uint32_t actual_targets);

/// Renders BeeGFS-getentryinfo-style stripe details, e.g.
///   Stripe pattern details:
///   + Type: RAID0
///   + Chunksize: 512K
///   + Number of storage targets: desired: 4; actual: 4
///   + Storage Pool: 1 (Default)
std::string render_stripe_details(const StripeConfig& stripe,
                                  std::uint32_t actual_targets);

}  // namespace iokc::fs
