// A deliberately coarse page-cache model: it tracks, per compute node, how
// many bytes of each file are resident from previous writes or reads on that
// node. A read is a cache hit only when the node holds the whole file, so a
// rank that wrote a *shared* file caches only its own portion while a
// file-per-process writer caches its entire file. That is exactly the effect
// IOR's -C (reorderTasksConstant) flag exists to defeat, so the model captures
// the performance cliff that matters for the paper's experiments without
// tracking individual pages.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

namespace iokc::fs {

/// Tracks per-node resident byte counts with a per-node capacity budget.
class PageCache {
 public:
  explicit PageCache(std::uint64_t capacity_bytes_per_node)
      : capacity_(capacity_bytes_per_node) {}

  /// Records that `node` gained `bytes` of `path` (after a write or read).
  /// Bytes beyond the node budget simply don't become resident — a coarse
  /// stand-in for eviction.
  void add_bytes(std::size_t node, const std::string& path,
                 std::uint64_t bytes);

  /// Bytes of `path` resident on `node`.
  std::uint64_t bytes_cached(std::size_t node, const std::string& path) const;

  /// True when the node holds at least `file_size` bytes of the file.
  bool resident(std::size_t node, const std::string& path,
                std::uint64_t file_size) const;

  /// Drops `path` everywhere (unlink) or a node's whole cache.
  void invalidate(const std::string& path);
  void invalidate_node(std::size_t node);

  /// Drops `path` on every node except `writer` — cache coherence on write:
  /// a node that rewrites a file leaves remote stale copies invalid.
  void invalidate_others(const std::string& path, std::size_t writer);

  std::uint64_t used_bytes(std::size_t node) const;

 private:
  struct NodeCache {
    std::unordered_map<std::string, std::uint64_t> files;
    std::uint64_t used = 0;
  };

  std::uint64_t capacity_;
  std::unordered_map<std::size_t, NodeCache> nodes_;
};

}  // namespace iokc::fs
