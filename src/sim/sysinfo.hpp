// System-information provider. The paper's extractor reads processor, cache,
// and memory data from /proc; this module renders the equivalent snapshot for
// a simulated node (both a /proc-style dump and a compact key:value summary)
// so the extraction phase can parse real text rather than peeking at structs.
#pragma once

#include <cstdint>
#include <string>

#include "src/sim/cluster.hpp"

namespace iokc::sim {

/// A snapshot of one node's system configuration.
struct SystemInfo {
  std::string hostname;
  std::string os_release;
  std::string cpu_model;
  int sockets = 0;
  int cores_per_socket = 0;
  int total_cores = 0;
  double frequency_mhz = 0.0;
  std::uint64_t l1d_kib = 0;
  std::uint64_t l2_kib = 0;
  std::uint64_t l3_kib = 0;
  std::uint64_t memory_bytes = 0;
  std::string interconnect;
};

/// Builds the snapshot for node `node` of `cluster`.
SystemInfo collect_system_info(const ClusterSpec& spec, std::size_t node);

/// Renders a /proc/cpuinfo-shaped dump (one stanza per logical core).
std::string render_proc_cpuinfo(const SystemInfo& info);

/// Renders a /proc/meminfo-shaped dump.
std::string render_proc_meminfo(const SystemInfo& info);

/// Renders the compact "key: value" summary the knowledge extractor parses.
std::string render_sysinfo_summary(const SystemInfo& info);

}  // namespace iokc::sim
