// The simulated HPC cluster: node specifications, per-node NICs, the storage
// fabric, node health (for broken/degraded-node anomaly scenarios), and node
// allocation. The default specification mirrors the paper's FUCHS-CSC system
// (198 nodes, 2x Xeon E5-2670 v2, 20 cores/node, 128 GB RAM, InfiniBand FDR,
// 27 GB/s aggregate storage bandwidth).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/event_queue.hpp"
#include "src/sim/resource.hpp"
#include "src/util/rng.hpp"

namespace iokc::sim {

/// CPU description surfaced through the system-info provider.
struct ProcessorSpec {
  std::string model = "Intel(R) Xeon(R) CPU E5-2670 v2 @ 2.50GHz";
  int sockets = 2;
  int cores_per_socket = 10;
  double frequency_mhz = 2500.0;
  std::uint64_t l1d_kib = 32;
  std::uint64_t l2_kib = 256;
  std::uint64_t l3_kib = 25600;

  int total_cores() const { return sockets * cores_per_socket; }
};

/// Per-node hardware model.
struct NodeSpec {
  ProcessorSpec cpu;
  std::uint64_t memory_bytes = 128ull * 1024 * 1024 * 1024;
  /// InfiniBand FDR 4x: 56 Gbit/s signalling, ~6 GB/s effective payload.
  double nic_bytes_per_sec = 6.0e9;
  double nic_op_overhead_sec = 2.0e-6;
  /// Memory bandwidth used to model page-cache hits.
  double memory_bytes_per_sec = 12.0e9;
};

/// Health used by anomaly scenarios. A degraded node serves at a fraction of
/// its NIC rate; a broken node must not be allocated.
enum class NodeHealth { kHealthy, kDegraded, kBroken };

/// Whole-system shape.
struct ClusterSpec {
  std::string name = "sim-cluster";
  std::size_t node_count = 4;
  NodeSpec node;
  /// Aggregate bandwidth between compute nodes and the storage system.
  double fabric_bytes_per_sec = 27.0e9;
  double fabric_op_overhead_sec = 1.0e-6;
  /// Fabric lanes: the fluid model serializes per lane; multiple lanes let
  /// concurrent streams share the aggregate without artificial convoying.
  std::size_t fabric_lanes = 16;
  std::string interconnect = "InfiniBand FDR";
  std::string os_release = "Linux 4.18.0-sim";
  /// Degraded nodes serve at this fraction of nominal NIC rate.
  double degraded_rate_fraction = 0.25;
  /// Relative sigma of lognormal service-time jitter applied by clients.
  double jitter_sigma = 0.02;

  /// The FUCHS-CSC system from the paper's Section V-E.
  static ClusterSpec fuchs_csc();
};

/// A simulated cluster bound to an event queue. Owns per-node NIC pipes and
/// the shared storage fabric pipe. Node health is mutable at any sim time and
/// takes effect for subsequently started transfers.
class Cluster {
 public:
  Cluster(EventQueue& queue, ClusterSpec spec, std::uint64_t seed);

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  const ClusterSpec& spec() const { return spec_; }
  EventQueue& queue() { return queue_; }
  util::Rng& rng() { return rng_; }

  std::size_t node_count() const { return spec_.node_count; }

  /// NIC pipe of a node (throws SimError for out-of-range ids).
  BandwidthPipe& nic(std::size_t node);
  /// The shared compute<->storage fabric.
  BandwidthPipe& fabric() { return *fabric_; }

  NodeHealth health(std::size_t node) const;
  void set_health(std::size_t node, NodeHealth health);
  std::size_t healthy_node_count() const;

  /// Picks `count` nodes for a job in id order. Broken nodes are excluded
  /// (the resource manager drains them), but *degraded* nodes are allocated
  /// like healthy ones — a silently slow node looks fine to the scheduler,
  /// which is exactly the Fig. 6 anomaly story. Throws SimError when not
  /// enough non-broken nodes exist.
  std::vector<std::size_t> allocate_nodes(std::size_t count) const;

  /// Lognormal service jitter factor around 1.0 (sigma from the spec).
  double jitter();

 private:
  void check_node(std::size_t node) const;

  EventQueue& queue_;
  ClusterSpec spec_;
  util::Rng rng_;
  std::vector<std::unique_ptr<BandwidthPipe>> nics_;
  std::unique_ptr<BandwidthPipe> fabric_;
  std::vector<NodeHealth> health_;
};

}  // namespace iokc::sim
