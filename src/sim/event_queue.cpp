#include "src/sim/event_queue.hpp"

#include <algorithm>
#include <utility>

#include "src/util/check.hpp"
#include "src/util/error.hpp"

namespace iokc::sim {

namespace {

// Heap predicate for a min-heap on (time, seq): earlier time first,
// insertion order on ties.
constexpr auto kLater = [](const auto& a, const auto& b) {
  if (a.time != b.time) {
    return a.time > b.time;
  }
  return a.seq > b.seq;
};

}  // namespace

void EventQueue::schedule_at(SimTime when, Action action) {
  IOKC_CHECK(static_cast<bool>(action), "scheduled action must be callable");
  if (when < now_) {
    when = now_;  // clamp: an event can never fire in the past
  }
  heap_.push_back(Event{when, next_seq_++, std::move(action)});
  std::push_heap(heap_.begin(), heap_.end(), kLater);
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(action));
}

EventQueue::Event EventQueue::pop_next() {
  IOKC_ASSERT(!heap_.empty());
  std::pop_heap(heap_.begin(), heap_.end(), kLater);
  Event event = std::move(heap_.back());
  heap_.pop_back();
  return event;
}

void EventQueue::run(std::uint64_t max_events) {
  while (!heap_.empty()) {
    if (executed_ >= max_events) {
      throw iokc::SimError("event budget exhausted (" +
                           std::to_string(max_events) +
                           " events); model is likely divergent");
    }
    Event event = pop_next();
    IOKC_ASSERT(event.time >= now_);
    now_ = event.time;
    ++executed_;
    event.action();
  }
}

}  // namespace iokc::sim
