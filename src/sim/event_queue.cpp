#include "src/sim/event_queue.hpp"

#include <utility>

#include "src/util/error.hpp"

namespace iokc::sim {

void EventQueue::schedule_at(SimTime when, Action action) {
  if (when < now_) {
    when = now_;  // clamp: an event can never fire in the past
  }
  heap_.push(Event{when, next_seq_++, std::move(action)});
}

void EventQueue::schedule_in(SimTime delay, Action action) {
  schedule_at(now_ + (delay > 0.0 ? delay : 0.0), std::move(action));
}

void EventQueue::run(std::uint64_t max_events) {
  while (!heap_.empty()) {
    if (executed_ >= max_events) {
      throw iokc::SimError("event budget exhausted (" +
                           std::to_string(max_events) +
                           " events); model is likely divergent");
    }
    // priority_queue::top() is const; move out via const_cast on the action,
    // which is safe because the element is popped immediately afterwards.
    Event event = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = event.time;
    ++executed_;
    event.action();
  }
}

}  // namespace iokc::sim
