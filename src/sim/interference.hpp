// Time-windowed interference (competing jobs, burst congestion) and its
// mapping onto BandwidthPipe rate multipliers. This is how anomaly scenarios
// (e.g. the iteration-2 throughput collapse of the paper's Fig. 5) are
// injected without touching benchmark code.
#pragma once

#include <string>
#include <vector>

#include "src/sim/resource.hpp"

namespace iokc::sim {

/// One interference window: during [start, end) the affected resource loses
/// `severity` (in [0, 1)) of its capacity.
struct InterferenceWindow {
  SimTime start = 0.0;
  SimTime end = 0.0;
  double severity = 0.0;
  std::string cause;  // free text, surfaced by anomaly-analysis reports
};

/// An ordered set of interference windows convertible to a rate multiplier.
class InterferenceSchedule {
 public:
  /// Adds a window; throws SimError for end <= start or severity outside
  /// [0, 1).
  void add_window(InterferenceWindow window);

  /// Product of (1 - severity) over all windows active at `t`; 1.0 when idle.
  double multiplier_at(SimTime t) const;

  /// A copyable callback suitable for BandwidthPipe::set_rate_multiplier.
  /// The schedule must outlive the pipe's use of the callback.
  BandwidthPipe::RateMultiplier as_multiplier() const;

  const std::vector<InterferenceWindow>& windows() const { return windows_; }
  bool empty() const { return windows_.empty(); }

 private:
  std::vector<InterferenceWindow> windows_;
};

}  // namespace iokc::sim
