// Queueing resources for the discrete-event model.
//
// Two shapes cover everything in the cluster:
//  - QueuedResource: `capacity` parallel service slots with caller-provided
//    service times (metadata servers, CPU-bound stages).
//  - BandwidthPipe: a byte-rate resource (NIC, fabrics, storage targets) with
//    a per-operation overhead, an optional time-varying rate multiplier
//    (interference, degradation), and jitter hooks supplied by the caller.
//
// Both are non-preemptive FIFO: contention and saturation *emerge* from slot
// availability rather than from closed-form formulas.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/sim/event_queue.hpp"

namespace iokc::sim {

/// A FIFO resource with a fixed number of parallel service slots.
class QueuedResource {
 public:
  /// `capacity` must be >= 1 (throws SimError otherwise).
  QueuedResource(EventQueue& queue, std::string name, std::size_t capacity);

  /// Enqueues a request that occupies one slot for `service_time` seconds and
  /// then invokes `done` with the completion time.
  void submit(SimTime service_time, std::function<void(SimTime)> done);

  /// The earliest time a new request could begin service.
  SimTime earliest_start() const;

  const std::string& name() const { return name_; }
  std::uint64_t completed_ops() const { return completed_ops_; }
  /// Total busy slot-seconds accumulated; used for utilization reporting.
  double busy_time() const { return busy_time_; }

 private:
  EventQueue& queue_;
  std::string name_;
  std::vector<SimTime> slot_free_at_;
  std::uint64_t completed_ops_ = 0;
  double busy_time_ = 0.0;
};

/// A byte-rate resource: requests serialize through `capacity` lanes, each
/// draining at `rate_bytes_per_sec`, plus a fixed per-operation overhead.
class BandwidthPipe {
 public:
  /// Multiplier on the nominal rate, evaluated at service start; values in
  /// (0, 1] model slowdowns (interference windows, degraded hardware).
  using RateMultiplier = std::function<double(SimTime)>;

  BandwidthPipe(EventQueue& queue, std::string name,
                double rate_bytes_per_sec, double per_op_overhead_sec,
                std::size_t capacity = 1);

  /// Transfers `bytes` through the pipe; `done` fires at completion time.
  /// `jitter` (>= 0, typically ~1.0) scales this request's service time.
  void transfer(std::uint64_t bytes, std::function<void(SimTime)> done,
                double jitter = 1.0);

  /// Installs a time-varying rate multiplier (replaces any previous one).
  void set_rate_multiplier(RateMultiplier multiplier);

  const std::string& name() const { return name_; }
  double nominal_rate() const { return rate_; }
  std::uint64_t transferred_bytes() const { return transferred_bytes_; }
  std::uint64_t completed_ops() const { return resource_.completed_ops(); }
  double busy_time() const { return resource_.busy_time(); }

 private:
  QueuedResource resource_;
  EventQueue& queue_;
  std::string name_;
  double rate_;
  double overhead_;
  RateMultiplier multiplier_;
  std::uint64_t transferred_bytes_ = 0;
};

}  // namespace iokc::sim
