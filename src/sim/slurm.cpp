#include "src/sim/slurm.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "src/util/strings.hpp"

namespace iokc::sim {

std::string SlurmJobInfo::render_scontrol() const {
  std::string out;
  out += "JobId=" + std::to_string(job_id) + " JobName=" + job_name + "\n";
  out += "   UserId=" + user + " Partition=" + partition + "\n";
  out += "   JobState=COMPLETED Reason=None\n";
  out += "   SubmitTime=t+" + util::format_double(submit_time, 3) +
         " StartTime=t+" + util::format_double(start_time, 3) + "\n";
  out += "   NumNodes=" + std::to_string(num_nodes) +
         " NumTasks=" + std::to_string(num_tasks) + "\n";
  out += "   NodeList=" + node_list + "\n";
  return out;
}

std::string compress_node_list(const std::string& prefix,
                               std::vector<std::size_t> nodes) {
  if (nodes.empty()) {
    return prefix + "[]";
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  std::string ranges;
  std::size_t run_start = nodes.front();
  std::size_t previous = nodes.front();
  auto flush = [&ranges, &run_start](std::size_t run_end) {
    char buf[32];
    if (!ranges.empty()) {
      ranges += ',';
    }
    if (run_start == run_end) {
      std::snprintf(buf, sizeof buf, "%03zu", run_start);
      ranges += buf;
    } else {
      std::snprintf(buf, sizeof buf, "%03zu-%03zu", run_start, run_end);
      ranges += buf;
    }
  };
  for (std::size_t i = 1; i < nodes.size(); ++i) {
    if (nodes[i] != previous + 1) {
      flush(previous);
      run_start = nodes[i];
    }
    previous = nodes[i];
  }
  flush(previous);
  return prefix + "[" + ranges + "]";
}

SlurmJobInfo SlurmContext::register_job(const std::string& job_name,
                                        const std::vector<std::size_t>& nodes,
                                        std::uint32_t num_tasks, double now,
                                        const std::string& node_prefix) {
  SlurmJobInfo info;
  info.job_id = next_job_id_++;
  info.job_name = job_name;
  info.num_nodes = static_cast<std::uint32_t>(
      std::set<std::size_t>(nodes.begin(), nodes.end()).size());
  info.num_tasks = num_tasks;
  info.node_list = compress_node_list(node_prefix, nodes);
  info.submit_time = now;
  info.start_time = now;
  return info;
}

}  // namespace iokc::sim
