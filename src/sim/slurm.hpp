// A Slurm-like workload-manager context. The paper's outlook plans "to
// collect further information from workload managers such as Slurm, thus
// providing context between anomaly and causes": this module assigns job ids
// to benchmark runs, records their allocation, and renders an
// `scontrol show job`-style snapshot the knowledge extractor parses.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iokc::sim {

/// One registered job.
struct SlurmJobInfo {
  std::uint64_t job_id = 0;
  std::string job_name;
  std::string partition = "parallel";
  std::string user = "iokc";
  std::uint32_t num_nodes = 0;
  std::uint32_t num_tasks = 0;
  std::string node_list;     // compressed, e.g. "node[000-003]"
  double submit_time = 0.0;  // simulated seconds
  double start_time = 0.0;

  /// `scontrol show job`-style text ("JobId=.. JobName=.." lines).
  std::string render_scontrol() const;
};

/// Compresses node ids into Slurm bracket notation: {0,1,2,5} on prefix
/// "node" -> "node[000-002,005]".
std::string compress_node_list(const std::string& prefix,
                               std::vector<std::size_t> nodes);

/// Assigns monotonically increasing job ids and builds job records.
class SlurmContext {
 public:
  explicit SlurmContext(std::uint64_t first_job_id = 4242)
      : next_job_id_(first_job_id), first_id_(first_job_id) {}

  /// Registers one job. `nodes` is the allocation; `now` the simulated
  /// submit/start time (the model starts jobs immediately).
  SlurmJobInfo register_job(const std::string& job_name,
                            const std::vector<std::size_t>& nodes,
                            std::uint32_t num_tasks, double now,
                            const std::string& node_prefix = "node");

  std::uint64_t jobs_registered() const { return next_job_id_ - first_id_; }

 private:
  std::uint64_t next_job_id_;
  std::uint64_t first_id_;
};

}  // namespace iokc::sim
