#include "src/sim/interference.hpp"

#include <utility>

#include "src/util/error.hpp"

namespace iokc::sim {

void InterferenceSchedule::add_window(InterferenceWindow window) {
  if (window.end <= window.start) {
    throw iokc::SimError("interference window must have end > start");
  }
  if (window.severity < 0.0 || window.severity >= 1.0) {
    throw iokc::SimError("interference severity must be in [0, 1)");
  }
  windows_.push_back(std::move(window));
}

double InterferenceSchedule::multiplier_at(SimTime t) const {
  double multiplier = 1.0;
  for (const auto& window : windows_) {
    if (t >= window.start && t < window.end) {
      multiplier *= 1.0 - window.severity;
    }
  }
  return multiplier;
}

BandwidthPipe::RateMultiplier InterferenceSchedule::as_multiplier() const {
  return [this](SimTime t) { return multiplier_at(t); };
}

}  // namespace iokc::sim
