// The discrete-event core. Everything time-dependent in the simulated cluster
// (NIC transfers, storage-target service, metadata ops, interference windows)
// is an event on this queue. Ties are broken by insertion order so runs are
// fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace iokc::sim {

/// Simulated time in seconds since scenario start.
using SimTime = double;

/// A deterministic discrete-event queue.
class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Current simulated time. Starts at 0.
  SimTime now() const { return now_; }

  /// Schedules `action` to run at absolute time `when` (>= now, clamped).
  void schedule_at(SimTime when, Action action);

  /// Schedules `action` to run `delay` seconds from now (delay >= 0, clamped).
  void schedule_in(SimTime delay, Action action);

  /// Runs events in time order until the queue is empty. Events may schedule
  /// further events. Throws SimError if more than `max_events` fire
  /// (runaway-model guard).
  void run(std::uint64_t max_events = 500'000'000ull);

  /// Number of events executed so far (across all run() calls).
  std::uint64_t executed_events() const { return executed_; }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    Action action;
  };

  // Mutable binary heap (std::push_heap/std::pop_heap over a vector) instead
  // of std::priority_queue: pop_heap moves the minimum to the back, so the
  // action can be moved out without the const_cast that priority_queue::top()
  // would force.
  Event pop_next();

  std::vector<Event> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace iokc::sim
